//! # rpq — Regular Path Queries with Constraints
//!
//! A full Rust reproduction of **Serge Abiteboul & Victor Vianu, "Regular
//! Path Queries with Constraints"** (PODS 1997; JCSS 58(3), 1999): regular
//! path queries over semistructured data, their distributed asynchronous
//! evaluation, and — the paper's main contribution — the implication
//! problem for path constraints and its use in query optimization.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | Module | Paper | Contents |
//! |---|---|---|
//! | [`automata`] | §2.2, §4 | regexes, quotients/derivatives, NFA/DFA, inclusion & equivalence, growth classification, algebraic simplifier |
//! | [`graph`] | §2.1 | the `Ref(source, label, destination)` data model: mutable [`graph::Instance`] builder, immutable label-indexed [`graph::CsrGraph`] query snapshot, generators, infinite sources |
//! | [`core`] | §2.2–2.4 | the unified [`core::Engine`] trait and the evaluation engines, streaming evaluation, general path queries (`μ`) |
//! | [`datalog`] | §2.3, §1 | Datalog engine + linear-monadic translations, QSQ, magic sets, `Engine`-trait adapters |
//! | [`constraints`] | §4, §5 | rewrite systems, Theorems 4.2/4.3/4.10, Armstrong instances, the sound axiomatization, the deterministic special case |
//! | [`distributed`] | §3.1, §5 | the subquery/answer/done/akn protocol, simulator, threaded runner (sites hold CSR shards), carrying agents, decomposition baseline, fault injection |
//! | [`optimizer`] | §3.2, §5 | constraint-based rewriting, static + label-statistics cost models, per-site hooks, cached-view combination search |
//! | [`server`] | — | the concurrent serving layer: epoch-pinned snapshot catalog, sessions with budgets/cancellation, admission control, per-class metrics |
//!
//! ## The two graph forms
//!
//! Build mutably, query immutably: an [`graph::Instance`] accumulates
//! nodes and edges; `CsrGraph::from(&instance)` freezes it into a
//! label-indexed compressed-sparse-row snapshot (forward **and** reverse
//! adjacency, per-label statistics). Every engine implements
//! [`core::Engine`] over that snapshot — `engine.eval(&query, &graph,
//! source)` with shared [`core::EvalStats`] — so evaluation work is
//! proportional to *matching* edges, not outdegree × automaton fanout.
//!
//! **Migration note:** the historical free functions
//! ([`core::eval_product`], [`core::eval_quotient_dfa`],
//! [`core::eval_derivative`], `datalog::translate::load_instance`,
//! `distributed::Simulator::new`, `distributed::run_threaded`) still
//! accept an `Instance` and now snapshot it internally per call. They stay
//! correct, but when evaluating several queries over one graph, build the
//! [`graph::CsrGraph`] once and use the `Engine` trait or the `*_csr`
//! entry points.
//!
//! ## Quickstart
//!
//! ```
//! use rpq::automata::Alphabet;
//! use rpq::graph::{CsrGraph, InstanceBuilder};
//! use rpq::core::{Engine, ProductEngine, Query};
//! use rpq::constraints::{implication::word_implies_path, ConstraintSet};
//! use rpq::automata::parse_regex;
//!
//! // Build the Figure 2 graph and run the Figure 3 query.
//! let mut ab = Alphabet::new();
//! let mut b = InstanceBuilder::new(&mut ab);
//! b.edge("o1", "a", "o2");
//! b.edge("o2", "b", "o3");
//! b.edge("o3", "b", "o2");
//! let (inst, names) = b.finish();
//! let graph = CsrGraph::from(&inst); // immutable query-time snapshot
//! let q = Query::parse(&mut ab, "a.b*").unwrap();
//! let answers = ProductEngine.eval(&q, &graph, names["o1"]).answers;
//! assert_eq!(answers.len(), 2); // {o2, o3}
//!
//! // Example 2 of Section 3.2: {l·l ⊆ l} ⊨ l* = l + ε.
//! let e = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
//! let l_star = parse_regex(&mut ab, "l*").unwrap();
//! let l_or_eps = parse_regex(&mut ab, "l + ()").unwrap();
//! assert!(word_implies_path(&e, &l_star, &l_or_eps).is_implied());
//! assert!(word_implies_path(&e, &l_or_eps, &l_star).is_implied());
//! ```
//!
//! See `examples/` for runnable scenarios and `rpq-bench` for the
//! experiment harness regenerating every figure and worked example of the
//! paper (documented in `EXPERIMENTS.md`).

pub use rpq_automata as automata;
pub use rpq_constraints as constraints;
pub use rpq_core as core;
pub use rpq_datalog as datalog;
pub use rpq_distributed as distributed;
pub use rpq_graph as graph;
pub use rpq_optimizer as optimizer;
pub use rpq_server as server;
