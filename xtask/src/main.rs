//! Repo automation tasks. Dependency-free on purpose: CI gates on
//! `cargo run -p xtask -- lint` before anything heavier builds.
//!
//! # The lint gate
//!
//! Token-level source invariants that `clippy` is not configured to
//! enforce here:
//!
//! * **No panicking escapes in the hot-path crates** — `.unwrap()`,
//!   `.expect(` and `panic!` are forbidden in `crates/core/src` and
//!   `crates/graph/src` outside `#[cfg(test)]` items. These two crates
//!   sit under every evaluation; a malformed input must degrade, not
//!   abort the process (`debug_assert!` is the sanctioned tripwire).
//! * **Documented planner surface** — every `pub fn` in
//!   `crates/optimizer/src` must carry a `///` doc comment, including
//!   ones in private modules that `#![warn(missing_docs)]` cannot see.
//! * **Allocation-free hot path** — `vec![` and `Vec::new()` are
//!   forbidden in the rpq-core hot-path modules (`product`, `pair`,
//!   `batch`, `pairset`, `parallel`) outside tests: all working memory
//!   must come from the `EvalScratch` arena so warm serving queries never
//!   touch the allocator. Deliberate exceptions (result vectors,
//!   non-pooled baseline arenas) carry an `// alloc-ok: <why>` comment on
//!   the same line, which allowlists it.
//! * **Lock-free worker loops** — `.lock()` is forbidden in the
//!   rpq-core `parallel` module outside tests: a blocking `Mutex` inside
//!   a per-level worker loop serializes the fan-out and defeats the
//!   chunked/slab partitioning (coordination is atomics + level
//!   barriers). Deliberate exceptions (e.g. a once-per-search pool
//!   checkout) carry a `// lock-ok: <why>` comment on the same line.
//! * **No blocking sleeps in the serving layer** — `thread::sleep` is
//!   forbidden in `crates/server/src` outside `#[cfg(test)]` items. The
//!   server coordinates with locks, atomics, and joins; a sleep in the
//!   serving path is a latency bug (or a hidden race being papered over).
//!
//! The scanner blanks comments and string/char literals before matching,
//! so prose like "never unwrap() here" or a format string containing
//! braces cannot trip (or hide) a finding. The `alloc-ok:` allowlist is
//! the one check made on *original* lines — the marker lives in a comment,
//! which the cleaner blanks.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        cmd => {
            eprintln!("unknown task {cmd:?}; usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

/// Crates whose non-test sources must not contain panicking escapes.
const NO_PANIC_DIRS: &[&str] = &["crates/core/src", "crates/graph/src"];
/// Crate whose `pub fn`s must all be documented.
const DOC_DIRS: &[&str] = &["crates/optimizer/src"];
/// Forbidden tokens for the no-panic rule.
const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!"];
/// Hot-path modules that must stay allocation-free: working memory comes
/// from the `scratch` arena, not per-call `Vec`s. (`scratch.rs` itself is
/// exempt — it is where construction is supposed to live.)
const NO_ALLOC_FILES: &[&str] = &[
    "crates/core/src/product.rs",
    "crates/core/src/pair.rs",
    "crates/core/src/batch.rs",
    "crates/core/src/pairset.rs",
    "crates/core/src/parallel.rs",
];
/// Forbidden tokens for the no-alloc rule.
const ALLOC_TOKENS: &[&str] = &["vec![", "Vec::new()"];
/// Parallel worker modules where a blocking `Mutex` lock would serialize
/// the per-level fan-out: coordination there is atomics and level
/// barriers, never a lock held inside a worker loop.
const NO_LOCK_FILES: &[&str] = &["crates/core/src/parallel.rs"];
/// Forbidden tokens for the no-worker-lock rule.
const LOCK_TOKENS: &[&str] = &[".lock()"];
/// Marker that allowlists one line for the no-worker-lock rule. Checked
/// on the *original* line text, because the marker lives in a comment.
const LOCK_OK: &str = "lock-ok:";
/// Crates whose non-test sources must never block on a timer.
const NO_SLEEP_DIRS: &[&str] = &["crates/server/src"];
/// Forbidden tokens for the no-sleep rule. `thread::sleep` catches both
/// the `std::thread::sleep(..)` path form and a `use`d `thread::sleep`;
/// `sleep(` alone would false-positive on unrelated identifiers.
const SLEEP_TOKENS: &[&str] = &["thread::sleep", "sleep_ms"];
/// Marker that allowlists one line for the no-alloc rule. Checked on the
/// *original* line text, because the marker lives in a comment.
const ALLOC_OK: &str = "alloc-ok:";

struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    text: String,
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut violations = Vec::new();
    for dir in NO_PANIC_DIRS {
        for file in rust_files(&root.join(dir)) {
            scan_file(&file, &mut violations, check_no_panics);
        }
    }
    for dir in DOC_DIRS {
        for file in rust_files(&root.join(dir)) {
            scan_file(&file, &mut violations, check_pub_fn_docs);
        }
    }
    for file in NO_ALLOC_FILES {
        scan_file(&root.join(file), &mut violations, check_no_hot_path_allocs);
    }
    for file in NO_LOCK_FILES {
        scan_file(&root.join(file), &mut violations, check_no_worker_locks);
    }
    for dir in NO_SLEEP_DIRS {
        for file in rust_files(&root.join(dir)) {
            scan_file(&file, &mut violations, check_no_sleeps);
        }
    }
    if violations.is_empty() {
        println!("xtask lint: clean");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!(
            "{}:{}: [{}] {}",
            v.file.display(),
            v.line,
            v.rule,
            v.text.trim()
        );
    }
    eprintln!("xtask lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is one level up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    out
}

/// A lint rule over one parsed file: (path, original lines, cleaned
/// lines, test mask, violations sink).
type Rule = fn(&Path, &[String], &[String], &[bool], &mut Vec<Violation>);

/// Parse one file into (original lines, cleaned lines, test mask) and run
/// a rule over it.
fn scan_file(file: &Path, violations: &mut Vec<Violation>, rule: Rule) {
    let Ok(text) = fs::read_to_string(file) else {
        violations.push(Violation {
            file: file.to_path_buf(),
            line: 0,
            rule: "io",
            text: "unreadable source file".into(),
        });
        return;
    };
    let original: Vec<String> = text.lines().map(str::to_string).collect();
    let cleaned = clean_source(&text);
    let mask = test_mask(&cleaned);
    rule(file, &original, &cleaned, &mask, violations);
}

fn check_no_panics(
    file: &Path,
    original: &[String],
    cleaned: &[String],
    mask: &[bool],
    violations: &mut Vec<Violation>,
) {
    for (i, line) in cleaned.iter().enumerate() {
        if mask[i] {
            continue;
        }
        for tok in PANIC_TOKENS {
            if line.contains(tok) {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: i + 1,
                    rule: "no-panic",
                    text: original[i].clone(),
                });
                break;
            }
        }
    }
}

fn check_no_hot_path_allocs(
    file: &Path,
    original: &[String],
    cleaned: &[String],
    mask: &[bool],
    violations: &mut Vec<Violation>,
) {
    for (i, line) in cleaned.iter().enumerate() {
        if mask[i] || original[i].contains(ALLOC_OK) {
            continue;
        }
        for tok in ALLOC_TOKENS {
            if line.contains(tok) {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: i + 1,
                    rule: "hot-path-alloc",
                    text: original[i].clone(),
                });
                break;
            }
        }
    }
}

fn check_no_worker_locks(
    file: &Path,
    original: &[String],
    cleaned: &[String],
    mask: &[bool],
    violations: &mut Vec<Violation>,
) {
    for (i, line) in cleaned.iter().enumerate() {
        if mask[i] || original[i].contains(LOCK_OK) {
            continue;
        }
        for tok in LOCK_TOKENS {
            if line.contains(tok) {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: i + 1,
                    rule: "worker-lock",
                    text: original[i].clone(),
                });
                break;
            }
        }
    }
}

fn check_no_sleeps(
    file: &Path,
    original: &[String],
    cleaned: &[String],
    mask: &[bool],
    violations: &mut Vec<Violation>,
) {
    for (i, line) in cleaned.iter().enumerate() {
        if mask[i] {
            continue;
        }
        for tok in SLEEP_TOKENS {
            if line.contains(tok) {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: i + 1,
                    rule: "no-sleep",
                    text: original[i].clone(),
                });
                break;
            }
        }
    }
}

fn check_pub_fn_docs(
    file: &Path,
    original: &[String],
    cleaned: &[String],
    mask: &[bool],
    violations: &mut Vec<Violation>,
) {
    for (i, line) in cleaned.iter().enumerate() {
        if mask[i] || !line.trim_start().starts_with("pub fn ") {
            continue;
        }
        // Walk upward over attributes; the first non-attribute line must
        // be a `///` doc comment (checked on the *original* text — the
        // cleaner blanks comments).
        let mut j = i;
        let documented = loop {
            if j == 0 {
                break false;
            }
            j -= 1;
            let t = original[j].trim_start();
            if t.starts_with("#[") || t.starts_with(')') || t.starts_with(']') {
                continue; // attribute (possibly multi-line)
            }
            break t.starts_with("///") || t.starts_with("#![doc") || t.starts_with("//!");
        };
        if !documented {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: i + 1,
                rule: "undocumented-pub-fn",
                text: original[i].clone(),
            });
        }
    }
}

/// Blank out comments and string/char literals, preserving line structure
/// and everything else byte-for-byte, so token matching and brace counting
/// only ever see code.
fn clean_source(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum S {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut state = S::Code;
    let mut out = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == S::LineComment {
                state = S::Code;
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            S::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = S::LineComment;
                    cur.push(' ');
                } else if c == '/' && next == Some('*') {
                    state = S::BlockComment(1);
                    cur.push(' ');
                } else if c == '"' {
                    state = S::Str;
                    cur.push('"');
                } else if c == 'r' && (next == Some('"') || next == Some('#')) {
                    // raw string r"..." / r#"..."# (count the hashes)
                    let mut hashes = 0;
                    let mut k = i + 1;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    if chars.get(k) == Some(&'"') {
                        state = S::RawStr(hashes);
                        cur.push(' ');
                        i = k + 1;
                        continue;
                    }
                    cur.push(c);
                } else if c == '\'' {
                    // char literal vs lifetime: a literal closes with a
                    // quote after one (possibly escaped) char
                    let close = if chars.get(i + 1) == Some(&'\\') {
                        // escape: find the next quote
                        chars[i + 2..].iter().position(|&x| x == '\'').map(|_| true)
                    } else if chars.get(i + 2) == Some(&'\'') {
                        Some(true)
                    } else {
                        None
                    };
                    if close.is_some() {
                        state = S::Char;
                    }
                    cur.push(' ');
                } else {
                    cur.push(c);
                }
            }
            S::LineComment => cur.push(' '),
            S::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    let d = depth - 1;
                    state = if d == 0 { S::Code } else { S::BlockComment(d) };
                    cur.push(' ');
                    cur.push(' ');
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    state = S::BlockComment(depth + 1);
                    cur.push(' ');
                    cur.push(' ');
                    i += 2;
                    continue;
                }
                cur.push(' ');
            }
            S::Str => {
                if c == '\\' {
                    cur.push(' ');
                    cur.push(' ');
                    i += 2;
                    continue;
                } else if c == '"' {
                    state = S::Code;
                    cur.push('"');
                } else {
                    cur.push(' ');
                }
            }
            S::RawStr(hashes) => {
                if c == '"' && chars[i + 1..].iter().take_while(|&&x| x == '#').count() >= hashes {
                    state = S::Code;
                    cur.push(' ');
                    i += 1 + hashes;
                    continue;
                }
                cur.push(' ');
            }
            S::Char => {
                if c == '\'' {
                    state = S::Code;
                }
                cur.push(' ');
            }
        }
        i += 1;
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Mark every line belonging to a `#[cfg(test)]` item (the attribute line
/// through the end of the braced item, or through the terminating `;`).
fn test_mask(cleaned: &[String]) -> Vec<bool> {
    let mut mask = vec![false; cleaned.len()];
    let mut i = 0;
    while i < cleaned.len() {
        if !cleaned[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut entered = false;
        let mut end = cleaned.len() - 1;
        'outer: for (j, line) in cleaned.iter().enumerate().skip(i) {
            mask[j] = true;
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth == 0 {
                            end = j;
                            break 'outer;
                        }
                    }
                    ';' if !entered && depth == 0 => {
                        end = j;
                        break 'outer;
                    }
                    _ => {}
                }
            }
            end = j;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(s: &str) -> Vec<String> {
        clean_source(s)
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"panic!\"; // .unwrap() in prose\nlet y = 1;\n";
        let c = lines(src);
        assert!(!c[0].contains("panic!"));
        assert!(!c[0].contains(".unwrap()"));
        assert_eq!(c[1], "let y = 1;");
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let c = lines(src);
        let m = test_mask(&c);
        assert_eq!(m, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn raw_strings_with_braces_do_not_break_the_mask() {
        let src = "#[cfg(test)]\nmod tests {\n  let p = r#\"} {\"#;\n}\nfn after() {}\n";
        let c = lines(src);
        let m = test_mask(&c);
        assert!(!m[4], "the brace inside the raw string must not leak");
    }

    #[test]
    fn hot_path_alloc_is_flagged_unless_allowlisted() {
        let src = "fn hot() {\n  let a = Vec::new(); // alloc-ok: result vector\n  let b = vec![0u32; n];\n}\n#[cfg(test)]\nmod tests {\n  fn t() { let c = Vec::new(); }\n}\n";
        let c = lines(src);
        let m = test_mask(&c);
        let mut v = Vec::new();
        check_no_hot_path_allocs(
            Path::new("x.rs"),
            &src.lines().map(str::to_string).collect::<Vec<_>>(),
            &c,
            &m,
            &mut v,
        );
        assert_eq!(v.len(), 1, "only the untagged non-test alloc is flagged");
        assert_eq!(v[0].line, 3);
        assert_eq!(v[0].rule, "hot-path-alloc");
    }

    #[test]
    fn worker_lock_is_flagged_unless_allowlisted() {
        let src = "fn fan_out() {\n  let s = pool.inner.lock(); // lock-ok: once per search\n  let t = shared.lock();\n}\n#[cfg(test)]\nmod tests {\n  fn t() { let u = m.lock(); }\n}\n";
        let c = lines(src);
        let m = test_mask(&c);
        let mut v = Vec::new();
        check_no_worker_locks(
            Path::new("x.rs"),
            &src.lines().map(str::to_string).collect::<Vec<_>>(),
            &c,
            &m,
            &mut v,
        );
        assert_eq!(v.len(), 1, "only the untagged non-test lock is flagged");
        assert_eq!(v[0].line, 3);
        assert_eq!(v[0].rule, "worker-lock");
    }

    #[test]
    fn sleeps_are_flagged_outside_tests_only() {
        let src = "fn serve() {\n  std::thread::sleep(d);\n}\n#[cfg(test)]\nmod tests {\n  fn t() { std::thread::sleep(d); }\n}\n";
        let c = lines(src);
        let m = test_mask(&c);
        let mut v = Vec::new();
        check_no_sleeps(
            Path::new("x.rs"),
            &src.lines().map(str::to_string).collect::<Vec<_>>(),
            &c,
            &m,
            &mut v,
        );
        assert_eq!(v.len(), 1, "only the non-test sleep is flagged");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, "no-sleep");
    }

    #[test]
    fn undocumented_pub_fn_is_flagged_documented_is_not() {
        let src = "/// Docs.\npub fn good() {}\n\npub fn bad() {}\n";
        let c = lines(src);
        let m = test_mask(&c);
        let mut v = Vec::new();
        check_pub_fn_docs(
            Path::new("x.rs"),
            &src.lines().map(str::to_string).collect::<Vec<_>>(),
            &c,
            &m,
            &mut v,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
    }
}
