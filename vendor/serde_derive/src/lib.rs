//! Offline shim for `serde_derive` — see `vendor/README.md`.
//!
//! The shim `serde` crate blanket-implements its `Serialize`/`Deserialize`
//! marker traits, so these derives only need to (a) exist so that
//! `#[derive(Serialize, Deserialize)]` resolves and (b) register the
//! `#[serde(...)]` helper attribute so field annotations like
//! `#[serde(skip)]` parse. They expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
