//! Offline shim for `rand 0.9` — see `vendor/README.md`.
//!
//! Implements the 0.9-era API surface this workspace uses: seeded `StdRng`,
//! `Rng::random_range` over integer ranges, and the slice helpers from the
//! prelude. The generator is SplitMix64-seeded xorshift64*: deterministic
//! per seed, portable, and statistically fine for workload generation —
//! but *not* cryptographic and not bit-compatible with real `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a range (subset of
/// `rand::distr::uniform::SampleUniform`).
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)`; `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`; `lo <= hi` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire-style widening multiply avoids plain-modulo bias
                // without a rejection loop; span << 64 always here.
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // only reachable for the full u64/i64 domain
                    return (rng.next_u64() as i128 + lo as i128) as $t;
                }
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::random_range`] (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Values producible by [`Rng::random`] (subset of the `StandardUniform`
/// distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The user-facing RNG extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`0..n` or `0..=n`).
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Sample from the standard distribution of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// `true` with probability `p` (`0.0 <= p <= 1.0`).
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (the form this workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = splitmix64(sm);
            chunk.copy_from_slice(&sm.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic seeded RNG (stands in for `rand::rngs::StdRng`).
    ///
    /// xorshift64* over a SplitMix64-expanded seed. Never zero-state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                state = splitmix64(state ^ u64::from_le_bytes(b));
            }
            StdRng {
                state: if state == 0 {
                    0x9E37_79B9_7F4A_7C15
                } else {
                    state
                },
            }
        }
    }

    /// Alias: the shim's small RNG is the same generator.
    pub type SmallRng = StdRng;
}

/// Slice helpers (subset of `rand::seq::IndexedRandom` / `SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random element selection from indexable collections.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.random_range(0..=i));
            }
        }
    }
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

pub use seq::{IndexedRandom, SliceRandom};

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let z: i64 = rng.random_range(-10..10);
            assert!((-10..10).contains(&z));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "8-value range not covered in 500 draws"
        );
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = [10, 20, 30];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut w: Vec<usize> = (0..50).collect();
        w.shuffle(&mut rng);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
