//! Offline shim for `bytes 1` — see `vendor/README.md`.
//!
//! `BytesMut`/`Bytes` over a plain `Vec<u8>` with a read cursor, plus the
//! `Buf`/`BufMut` trait surface the wire codec in `rpq-distributed` uses.
//! Big-endian integer encoding, matching the real crate. No refcounted
//! zero-copy splitting — `freeze` simply transfers the buffer.

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread tail as a slice.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

/// Write-side append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable byte buffer with a read cursor (stands in for `bytes::Bytes`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Total length including already-consumed bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer was empty to begin with.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// A growable byte buffer (stands in for `bytes::BytesMut`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_slice(b"hi");
        let mut b = buf.freeze();
        assert_eq!(b.len(), 7);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.chunk(), b"hi");
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.len(), 7, "len counts consumed bytes too");
    }
}
