//! Offline shim for `crossbeam 0.8` — see `vendor/README.md`.
//!
//! Provides `crossbeam::channel`'s unbounded MPSC surface over
//! `std::sync::mpsc` (whose `Sender` has been `Sync` since Rust 1.72,
//! which is what lets the threaded protocol runner share a
//! `Arc<Vec<Sender<_>>>` across sites). Multi-consumer `Receiver`
//! cloning and `select!` are not provided — the workspace's runner is
//! strictly one receiver per site.

/// Subset of `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half (subset of `crossbeam_channel::Sender`).
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    // Derived Clone would bound T: Clone; the handle itself never clones T.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message; errors iff the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half (subset of `crossbeam_channel::Receiver`).
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block for the next message; errors iff all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Bounded channel (std sync_channel semantics: `send` blocks when full).
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (SyncSender { inner: tx }, Receiver { inner: rx })
    }

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct SyncSender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            SyncSender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> SyncSender<T> {
        /// Send, blocking while the buffer is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }
}
