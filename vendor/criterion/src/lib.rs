//! Offline shim for `criterion 0.5` — see `vendor/README.md`.
//!
//! Implements the benchmark-harness subset this workspace uses: groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a real
//! warm-up + timed-loop mean over wall-clock time, reported as one
//! plain-text line per benchmark; there are no statistics, baselines,
//! or HTML reports.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-value hint, re-exported for benches importing it from criterion.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("engine", 500)` renders as `engine/500`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id with no function name, only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name in `bench_function`.
pub trait IntoBenchmarkId {
    /// Convert to the rendered id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    /// `--test` mode: run the body exactly once, no timing.
    test_mode: bool,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly: warm up, then measure for the configured time.
    /// In `--test` mode, run it exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std_black_box(f());
            self.iters = 1;
            return;
        }
        // Warm-up: also discovers a per-iteration estimate for batching.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std_black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Batch ~100 µs of work per clock read so Instant::elapsed()
        // (~20 ns) stays below ~0.1% of the measured time even for
        // nanosecond-scale bodies.
        let batch = (100_000.0 / per_iter.max(1.0)).clamp(1.0, 100_000.0) as u64;
        let mut total_iters: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement_time {
            for _ in 0..batch {
                std_black_box(f());
            }
            total_iters += batch;
        }
        self.mean_ns = measure_start.elapsed().as_nanos() as f64 / total_iters.max(1) as f64;
        self.iters = total_iters;
    }
}

fn measure_and_report<F: FnOnce(&mut Bencher)>(
    full_name: &str,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: F,
) {
    let mut b = Bencher {
        warm_up_time,
        measurement_time,
        test_mode: false,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{full_name:<60} time: [{}]  ({} iterations)",
        human(b.mean_ns),
        b.iters
    );
}

/// `--test` mode (mirrors real criterion): run each benchmark body exactly
/// once to prove it still works, with no warm-up or timing loop. Used by
/// CI as a cheap bench-bit-rot smoke check.
fn test_and_report<F: FnOnce(&mut Bencher)>(full_name: &str, f: F) {
    let mut b = Bencher {
        warm_up_time: Duration::ZERO,
        measurement_time: Duration::ZERO,
        test_mode: true,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!("Testing {full_name} ... ok");
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Kept for API compatibility; the shim's loop is time-based, so the
    /// sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measured duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) {
        let full = format!("{}/{}", self.name, id.full);
        if self.criterion.matches(&full) {
            if self.criterion.test_mode {
                test_and_report(&full, f);
            } else {
                measure_and_report(&full, self.warm_up_time, self.measurement_time, f);
            }
        }
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.into_benchmark_id(), |b| f(b));
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id, |b| f(b, input));
        self
    }

    /// End the group (report separator).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark manager (subset of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo-bench passes "--bench" plus any user filter; everything
        // that is not a flag is treated as a substring filter. `--test`
        // (as in real criterion) runs each benchmark once, untimed.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args.into_iter().find(|a| !a.starts_with('-'));
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        if self.matches(&id.full) {
            if self.test_mode {
                test_and_report(&id.full, |b| f(b));
            } else {
                measure_and_report(
                    &id.full,
                    Duration::from_millis(300),
                    Duration::from_millis(1000),
                    |b| f(b),
                );
            }
        }
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
