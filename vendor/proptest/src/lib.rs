//! Offline shim for `proptest 1` — see `vendor/README.md`.
//!
//! Supports the subset this workspace uses: `proptest!` blocks whose
//! arguments are drawn from integer range strategies (`seed in 0u64..N`),
//! an optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! and panic-based `prop_assert!`/`prop_assert_eq!`. Sampling is seeded
//! from the test name, so failures reproduce deterministically; there is
//! no shrinking — the failing input is reported as-is in the panic.

/// Runner configuration and state.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case did not pass (subset of
    /// `proptest::test_runner::TestCaseError`).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The input was rejected (e.g. by `prop_assume!`).
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "property falsified: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Per-property deterministic sample source.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Seed the runner from the property name (stable across runs).
        pub fn new(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                rng: StdRng::seed_from_u64(h),
            }
        }

        /// Raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }
    }
}

/// Range strategies.
pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::{Rng, SampleRange, SampleUniform};

    /// Sample one value from an integer range strategy. Case 0 pins the
    /// range minimum so every property sees its smallest input.
    pub fn sample<T: SampleUniform, S: SampleRange<T> + RangeMin<T>>(
        range: S,
        runner: &mut TestRunner,
        case: u32,
    ) -> T {
        struct R<'a>(&'a mut TestRunner);
        impl rand::RngCore for R<'_> {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
        if case == 0 {
            return range.min_value();
        }
        R(runner).random_range(range)
    }

    /// The smallest value of a range strategy.
    pub trait RangeMin<T> {
        /// Lower bound of the range.
        fn min_value(&self) -> T;
    }

    impl<T: Copy> RangeMin<T> for std::ops::Range<T> {
        fn min_value(&self) -> T {
            self.start
        }
    }

    impl<T: Copy> RangeMin<T> for std::ops::RangeInclusive<T> {
        fn min_value(&self) -> T {
            *self.start()
        }
    }
}

/// The property-block macro. Each `fn name(arg in range) { .. }` becomes a
/// plain `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($arg:ident in $range:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
                for case in 0..config.cases {
                    let $arg = $crate::strategy::sample($range, &mut runner, case);
                    let input = format!("{} = {:?}", stringify!($arg), $arg);
                    // Bodies follow proptest's convention: plain statements,
                    // with `return Ok(())` allowed as an early accept.
                    let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        Ok(Ok(())) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                        Ok(Err(err)) => {
                            panic!(
                                "proptest: property {} failed at case {}/{} with {}: {}",
                                stringify!($name), case, config.cases, input, err
                            );
                        }
                        Err(panic) => {
                            eprintln!(
                                "proptest: property {} failed at case {}/{} with {}",
                                stringify!($name), case, config.cases, input
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
}

/// Panic-based stand-in for `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Panic-based stand-in for `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Panic-based stand-in for `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Stand-in for `proptest::prop_assume!`: skips the case when the
/// precondition fails (the shim does not replace rejected cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}
