//! Offline shim for `serde 1` — see `vendor/README.md`.
//!
//! This workspace's actual wire format is the hand-written codec in
//! `rpq-distributed` (`message::codec`); the serde derives on data types
//! are interface surface for downstream users with the real serde. Here
//! the traits are blanket-implemented markers so that derive sites and
//! `T: Serialize` bounds compile unchanged without the real crate.

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// `serde::de` namespace stub.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// `serde::ser` namespace stub.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
