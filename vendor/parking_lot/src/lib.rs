//! Offline shim for `parking_lot 0.12` — see `vendor/README.md`.
//!
//! Wraps `std::sync` locks with parking_lot's guard-returning (never
//! `Result`) interface. A poisoned std lock — some holder panicked —
//! panics here too, matching the workspace's "protocol errors are fatal"
//! stance rather than parking_lot's poison-free semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Guard-returning mutex (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

/// Guard-returning reader–writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }
}
