//! End-to-end reproduction of every figure and worked example in the paper
//! (the per-experiment index of DESIGN.md): F1–F5 and X1–X3. Each test is
//! the assertion-backed version of what `paper-figures` prints.

use rpq::automata::{parse_regex, Alphabet, Nfa, Symbol};
use rpq::constraints::general::{check, Budget, Refutation, Verdict};
use rpq::constraints::{
    decide_boundedness, lemma44_instance, parse_constraint, suggested_radius, word_implies_path,
    ArmstrongSphere, Boundedness, ConstraintSet,
};
use rpq::core::eval_product;
use rpq::core::general::{eval_general, eval_general_direct, translate, GeneralPathQuery};
use rpq::distributed::{Delivery, MessageKind, Simulator};
use rpq::graph::generators::fig2_graph;
use rpq::graph::InstanceBuilder;

// ---------------------------------------------------------------- F1 ----

#[test]
fn fig1_example21_six_classes_and_translation() {
    // Example 2.1: patterns a*b, ba*, c, dd* induce six label classes:
    // [b], [ab], [ba], [c], [d], [h].
    let mut ab = Alphabet::new();
    let mut b = InstanceBuilder::new(&mut ab);
    for (i, l) in ["b", "aab", "baa", "c", "dd", "zzz"].iter().enumerate() {
        b.edge("o", l, &format!("t{i}"));
    }
    // a second level so paths of length 2 exist, as in Figure 1
    b.edge("t0", "baa", "u0");
    b.edge("t1", "c", "u1");
    b.edge("t4", "dd", "u2");
    let (inst, names) = b.finish();
    let o = names["o"];

    let q =
        GeneralPathQuery::parse(r#"("a*b" "ba*") + ("a*b" "c") + ("ba*" "c") + "dd*" ("dd*")*"#)
            .unwrap();
    let mu = translate(&q, &inst, &ab);
    assert_eq!(mu.class_signature.len(), 6, "{:?}", mu.class_repr);

    // Proposition 2.2: q(o, I) = μ(q)(o, μ(I)).
    let via_mu = eval_general(&q, &inst, o, &ab);
    let direct = eval_general_direct(&q, &inst, o, &ab);
    assert_eq!(via_mu, direct);
    // the b-then-ba and aab-then-c and dd-then-dd paths answer
    let names_of: Vec<String> = via_mu.iter().map(|&x| inst.node_name(x)).collect();
    assert!(names_of.contains(&"u0".to_string()));
    assert!(names_of.contains(&"u1".to_string()));
    assert!(names_of.contains(&"u2".to_string()));
}

// ----------------------------------------------------------- F2 / F3 ----

#[test]
fn fig2_fig3_distributed_run_of_ab_star() {
    let mut ab = Alphabet::new();
    let (inst, _d, o1) = fig2_graph(&mut ab);
    let q = parse_regex(&mut ab, "a.b*").unwrap();

    let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo);
    let res = sim.run(o1, &q);

    // answers {o2, o3}, exactly the paper's run
    let names: Vec<String> = res.answers.iter().map(|&o| inst.node_name(o)).collect();
    assert_eq!(names, ["o2", "o3"]);
    assert!(res.termination_detected);

    // the trace exhibits the paper's dedup: a subquery arrives at a site
    // already processing it and is answered done without spawning anything —
    // count done messages exceeding registered tasks' completions
    assert!(
        res.stats.subqueries > res.tasks_registered,
        "the o3→o2 duplicate b* subquery must be deduplicated"
    );
    // answers: o2 (as itself) and o3; each acked
    assert_eq!(res.stats.answers, 2);
    assert_eq!(res.stats.acks, 2);
    // first delivered message is d's initial subquery(ab*) to o1
    match &res.trace[0].message {
        rpq::distributed::Message::Subquery { query, .. } => {
            assert_eq!(format!("{}", query.display(&ab)), "a.b*");
        }
        other => panic!("unexpected first message {other:?}"),
    }
    // kinds present as in Figure 3
    for kind in [
        MessageKind::Subquery,
        MessageKind::Answer,
        MessageKind::Done,
        MessageKind::Ack,
    ] {
        assert!(
            res.trace.iter().any(|e| e.message.kind() == kind),
            "{kind:?} missing from trace"
        );
    }
}

// ---------------------------------------------------------------- F4 ----

#[test]
fn fig4_lemma44_instance_for_aa_in_a() {
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["a.a <= a"]).unwrap();
    let a = ab.get("a").unwrap();
    let ci = lemma44_instance(&set, &[a], 3, &ab).unwrap();

    // classes ε, a, a², a³; obj chain obj(a) ⊇ obj(a²) ⊇ obj(a³)
    assert_eq!(ci.class_reps.len(), 4);
    // aⁱ(o, I) = obj(aⁱ) — the figure's acceptance sets
    let expect_sizes = [1usize, 3, 2, 1]; // ε:1, a:3, a²:2, a³:1
    for (len, &expect) in expect_sizes.iter().enumerate() {
        let word = vec![a; len];
        let ans = eval_product(&Nfa::from_word(&word), &ci.instance, ci.source).answers;
        assert_eq!(ans.len(), expect, "a^{len}");
    }
    // the instance satisfies E
    assert!(set.holds_at(&ci.instance, ci.source));
}

// ---------------------------------------------------------------- F5 ----

#[test]
fn fig5_armstrong_sphere_structure() {
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["a.b.a = b", "b.b = a.a"]).unwrap();
    let syms: Vec<Symbol> = ab.symbols().collect();
    let k = suggested_radius(&set);
    let radius = 9.min(k + 2);
    let sphere = ArmstrongSphere::build(&set, &syms, radius, 200_000).unwrap();

    let m = set.max_word_len();
    assert!(
        sphere.indegree_violations(m).is_empty(),
        "Lemma 4.9(✳): indegree 1 outside the M-sphere"
    );
    assert!(
        sphere
            .reentry_violations(k.min(radius.saturating_sub(1)))
            .is_empty(),
        "Lemma 4.9: no re-entry past K"
    );

    // Proposition 4.8 (truncated): word equality implied ⇔ same class.
    let a = ab.get("a").unwrap();
    let b = ab.get("b").unwrap();
    let u = [a, b, a];
    let v = [b];
    assert_eq!(sphere.class_of_word(&u), sphere.class_of_word(&v));
    assert!(rpq::constraints::implication::word_implies_word_eq(
        &set, &u, &v
    ));
}

// ---------------------------------------------------------------- X1 ----

#[test]
fn x1_example1_literal_fails_sound_direction_holds() {
    // Σ*·l = ε with p = (la+lb)*d. The literal claim p = (a+b)d is refuted
    // (k=0 word `d`; l(o) may be empty); the sound upper bound
    // p ⊆ (ε+a+b)d under Σ*·l ⊆ ε is proved.
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["(a+b+d+l)*.l = ()"]).unwrap();
    let literal = parse_constraint(&mut ab, "(l.a + l.b)*.d = (a+b).d").unwrap();
    match check(&set, &literal, &Budget::default()) {
        Verdict::Refuted(Refutation::Instance(w)) => {
            assert!(set.holds_at(&w.instance, w.source));
            assert!(!literal.holds_at(&w.instance, w.source));
        }
        other => panic!("literal Example 1 claim should be refuted: {other:?}"),
    }

    let incl_set = ConstraintSet::parse(&mut ab, ["(a+b+d+l)*.l <= ()"]).unwrap();
    let sound = parse_constraint(&mut ab, "(l.a + l.b)*.d <= (() + a + b).d").unwrap();
    assert!(check(&incl_set, &sound, &Budget::default()).is_implied());
}

// ---------------------------------------------------------------- X2 ----

#[test]
fn x2_example2_l_star_collapses() {
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
    let p = parse_regex(&mut ab, "l*").unwrap();
    let q = parse_regex(&mut ab, "l + ()").unwrap();
    assert!(word_implies_path(&set, &p, &q).is_implied());
    assert!(word_implies_path(&set, &q, &p).is_implied());

    // and with the equality version, Theorem 4.10 finds it automatically
    let eq_set = ConstraintSet::parse(&mut ab, ["l.l = l"]).unwrap();
    match decide_boundedness(&eq_set, &p, &ab).unwrap() {
        Boundedness::Bounded { equivalent, .. } => {
            assert!(rpq::automata::ops::regex_equivalent(&equivalent, &q));
        }
        other => panic!("l* must be bounded under ll=l: {other:?}"),
    }
}

// ---------------------------------------------------------------- X3 ----

#[test]
fn x3_example3_cache_substitution() {
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
    let claim = parse_constraint(&mut ab, "a.(b.a)*.c = l.a.c").unwrap();
    assert!(check(&set, &claim, &Budget::default()).is_implied());

    // and the optimizer actually produces l.a.c
    let q = parse_regex(&mut ab, "a.(b.a)*.c").unwrap();
    let opt = rpq::optimizer::optimize(&set, &q, &ab, &Budget::default());
    assert!(opt.improved());
    let lac = parse_regex(&mut ab, "l.a.c").unwrap();
    assert!(rpq::automata::ops::regex_equivalent(&opt.query, &lac));
}

// ------------------------------------------------- semantic cross-check --

#[test]
fn x3_rewrite_preserves_answers_on_cached_data() {
    // build data where l = (ab)* holds, then check a(ba)*c and l.a.c agree
    let mut ab = Alphabet::new();
    let mut b = InstanceBuilder::new(&mut ab);
    b.edge("s", "a", "n1");
    b.edge("n1", "b", "n2");
    b.edge("n2", "a", "n3");
    b.edge("n3", "b", "n4");
    b.edge("n2", "c", "hit1"); // wrong parity: not reachable via (ab)*a then c
    b.edge("n1", "c", "hit2"); // a then c: in a(ba)*c
    b.edge("n3", "c", "hit3"); // aba…: n3 = (ab)¹a, then c
    let (mut inst, names) = b.finish();
    let s = names["s"];
    let l = ab.intern("l");
    // materialize the cache: (ab)* answers at s are s, n2, n4
    for t in [s, names["n2"], names["n4"]] {
        inst.add_edge(s, l, t);
    }
    let q1 = parse_regex(&mut ab, "a.(b.a)*.c").unwrap();
    let q2 = parse_regex(&mut ab, "l.a.c").unwrap();
    let a1 = eval_product(&Nfa::thompson(&q1), &inst, s).answers;
    let a2 = eval_product(&Nfa::thompson(&q2), &inst, s).answers;
    assert_eq!(a1, a2);
    let hit_names: Vec<String> = a1.iter().map(|&o| inst.node_name(o)).collect();
    assert_eq!(hit_names, ["hit2", "hit3"]);
}
