//! Property tests for the incremental-snapshot layer: random interleavings
//! of add/delete batches applied to a `DeltaGraph` must be observationally
//! equivalent to a from-scratch `CsrGraph` rebuild of the mirrored
//! `Instance` — structurally (rows, transpose, statistics) and through the
//! evaluation paths (product BFS, quotient-DFA, and `PlannedEngine`-wrapped
//! evaluation with the epoch-aware plan memo) — both before and after
//! `compact()` folds the overlay into a fresh base.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

use rpq::automata::random::{random_regex, RegexGenConfig};
use rpq::automata::{Alphabet, Nfa, Symbol};
use rpq::core::{eval_product_csr, eval_quotient_dfa_csr, ProductEngine, Query};
use rpq::graph::generators::random_graph;
use rpq::graph::{CsrGraph, DeltaGraph, EdgeDelta, Instance, Oid};
use rpq::optimizer::PlannedEngine;

/// Drive `batches` random mutation batches through a `DeltaGraph` while
/// mirroring them into the `Instance`, checking structural equivalence
/// after every batch. Returns the final pair.
fn mutate_in_lockstep(
    seed: u64,
    nodes: usize,
    edges: usize,
    batches: usize,
    syms: &[Symbol],
) -> (Instance, DeltaGraph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut mirror, _) = random_graph(&mut rng, nodes, edges, syms);
    let mut dg = DeltaGraph::from_instance(&mirror);

    for _ in 0..batches {
        let mut delta = EdgeDelta::new();
        // deletions of (probably) existing edges: sample from the mirror
        let existing: Vec<(Oid, Symbol, Oid)> = mirror.edges().collect();
        for _ in 0..rng.random_range(0..4) {
            if let Some(&(f, l, t)) = existing.get(rng.random_range(0..existing.len().max(1))) {
                delta.del(f, l, t);
            }
        }
        // additions of random triples (may duplicate live edges — no-ops)
        for _ in 0..rng.random_range(0..6) {
            let f = Oid(rng.random_range(0..nodes as u32));
            let t = Oid(rng.random_range(0..nodes as u32));
            let l = syms[rng.random_range(0..syms.len())];
            delta.add(f, l, t);
        }
        let epoch_before = dg.epoch();
        let applied = dg.apply_delta(&delta);
        // mirror the same batch in the same order (dels first, then adds)
        let mut mirrored = 0;
        for &(f, l, t) in &delta.dels {
            mirrored += usize::from(mirror.remove_edge(f, l, t));
        }
        for &(f, l, t) in &delta.adds {
            mirrored += usize::from(mirror.add_edge(f, l, t));
        }
        assert_eq!(applied, mirrored, "delta and mirror must agree on effect");
        assert_eq!(dg.epoch().base, epoch_before.base);
        assert_eq!(dg.epoch().version, epoch_before.version + 1);
        assert_structurally_equal(&dg, &mirror, syms);
    }
    (mirror, dg)
}

/// Rows, transpose, counts, and statistics of the overlay equal those of a
/// from-scratch rebuild.
fn assert_structurally_equal(dg: &DeltaGraph, mirror: &Instance, syms: &[Symbol]) {
    let rebuilt = CsrGraph::from(mirror);
    assert_eq!(dg.num_nodes(), rebuilt.num_nodes());
    assert_eq!(dg.num_edges(), rebuilt.num_edges());
    assert!(
        dg.stats().agrees_with(rebuilt.stats()),
        "incremental stats diverged from rebuild"
    );
    for v in rebuilt.nodes() {
        for &sym in syms {
            let overlay: Vec<Oid> = dg.out(v, sym).collect();
            assert_eq!(overlay, rebuilt.out(v, sym), "out({v:?}, {sym:?})");
            let overlay_rev: Vec<Oid> = dg.rev(v, sym).collect();
            assert_eq!(overlay_rev, rebuilt.rev(v, sym), "rev({v:?}, {sym:?})");
        }
        let grouped: usize = dg.out_groups(v).map(|(_, ts)| ts.len()).sum();
        assert_eq!(grouped, rebuilt.outdegree(v), "groups of {v:?}");
    }
}

/// Evaluation agreement on one (query, source) across the three engine
/// families the refactor touches.
fn assert_eval_equal(dg: &DeltaGraph, rebuilt: &CsrGraph, ab: &Alphabet, query: &Query, s: Oid) {
    let nfa = query.nfa();
    let expected = eval_product_csr(nfa, rebuilt, s).answers;
    assert_eq!(
        eval_product_csr(nfa, dg, s).answers,
        expected,
        "product over delta"
    );
    assert_eq!(
        eval_quotient_dfa_csr(nfa, dg, s).answers,
        expected,
        "quotient-DFA over delta"
    );
    let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
    assert_eq!(
        planned.eval_view(query, dg, s).answers,
        expected,
        "planned eval_view over delta"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline equivalence: random mutation interleavings, evaluated
    /// through the overlay, agree with the rebuild — before and after
    /// compaction — for a random regex from every node.
    #[test]
    fn delta_evaluation_agrees_with_rebuild(seed in 0u64..10_000) {
        let ab = Alphabet::from_names(["a", "b", "c"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let (mirror, mut dg) = mutate_in_lockstep(seed, 8, 20, 3, &syms);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xde17a);
        let cfg = RegexGenConfig::new(syms.clone());
        let regex = random_regex(&mut rng, &cfg);
        let query = Query::new(regex, &ab);
        let rebuilt = CsrGraph::from(&mirror);

        for s in rebuilt.nodes() {
            assert_eval_equal(&dg, &rebuilt, &ab, &query, s);
        }

        // compaction folds the overlay: same answers, fresh lineage
        let lineage = dg.epoch().base;
        dg.compact();
        prop_assert!(dg.epoch().base != lineage);
        assert_structurally_equal(&dg, &mirror, &syms);
        for s in rebuilt.nodes() {
            assert_eval_equal(&dg, &rebuilt, &ab, &query, s);
        }
    }

    /// Backward evaluation over the overlay's reverse logs agrees with the
    /// transpose semantics of the rebuild.
    #[test]
    fn delta_backward_agrees_with_rebuild(seed in 0u64..10_000) {
        let ab = Alphabet::from_names(["a", "b", "c"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let (mirror, dg) = mutate_in_lockstep(seed, 7, 16, 2, &syms);
        let rebuilt = CsrGraph::from(&mirror);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbac);
        let cfg = RegexGenConfig::new(syms.clone());
        let query = Query::new(random_regex(&mut rng, &cfg), &ab);
        let nfa = Nfa::thompson(query.regex());
        for t in rebuilt.nodes() {
            let over = rpq::core::eval_product_backward_csr(&nfa, &dg, t).answers;
            let full = rpq::core::eval_product_backward_csr(&nfa, &rebuilt, t).answers;
            prop_assert_eq!(over, full, "backward from {:?}", t);
        }
    }
}

/// The plan-memo acceptance test of the incremental-snapshots issue: plans
/// survive small-delta epochs (cache *hits*, no recompilation) and die at
/// compaction (fresh lineage).
#[test]
fn plan_memo_hits_across_delta_epochs_and_invalidates_on_compaction() {
    let mut ab = Alphabet::new();
    let mut b = rpq::graph::InstanceBuilder::new(&mut ab);
    for i in 0..64 {
        b.edge("s", "hot", &format!("m{i}"));
        b.edge(&format!("m{i}"), "cold", "t");
    }
    let (inst, names) = b.finish();
    let mut dg = DeltaGraph::from_instance(&inst);
    let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
    let query = {
        let mut ab2 = ab.clone();
        Query::parse(&mut ab2, "hot.cold").unwrap()
    };
    let hot = ab.get("hot").unwrap();

    // first evaluation compiles the plan
    let first = planned.eval_view(&query, &dg, names["s"]);
    assert_eq!(first.stats.plan_cache_misses, 1);

    // three small delta epochs: every one reuses the plan
    for i in 0..3 {
        let mut delta = EdgeDelta::new();
        delta.add(names[format!("m{i}").as_str()], hot, names["t"]);
        assert_eq!(dg.apply_delta(&delta), 1);
        let res = planned.eval_view(&query, &dg, names["s"]);
        assert_eq!(
            (res.stats.plan_cache_hits, res.stats.plan_cache_misses),
            (1, 0),
            "epoch {i} must reuse the memoized plan"
        );
    }
    assert_eq!(planned.plan_cache_hits(), 3);
    assert_eq!(planned.plan_cache_misses(), 1);

    // compaction starts a fresh lineage: the next evaluation recompiles
    dg.compact();
    let after = planned.eval_view(&query, &dg, names["s"]);
    assert_eq!(after.stats.plan_cache_misses, 1);
    assert_eq!(planned.plan_cache_misses(), 2);
    assert_eq!(after.answers, first.answers);
}
