//! Snapshot isolation under real concurrency: reader threads pinned to
//! old epochs evaluate through the serving layer while a writer thread
//! keeps absorbing deltas and triggering copy-on-write compactions.
//!
//! The oracle is a **single-threaded rebuild**: the same delta sequence
//! applied to a fresh overlay, with answers recorded after every prefix.
//! Every concurrent observation `(epoch, answers)` must match the rebuild
//! at exactly that epoch's prefix — readers see one consistent version,
//! never a torn mix, and a compaction never moves data under a pinned
//! snapshot. Early termination (budget, cancellation) must always yield
//! `Termination` with a *sound subset* of that same oracle, never a wrong
//! answer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use rpq::automata::Alphabet;
use rpq::core::{EvalRequest, Query, Termination};
use rpq::graph::{CompactionPolicy, DeltaGraph, EdgeDelta, Instance, InstanceBuilder, Oid};
use rpq::server::{Catalog, Commit, Server, ServerConfig};

const RING: u32 = 32;
const ROUNDS: usize = 64;

/// A directed `a`-ring over `RING` nodes. Deleting one ring edge makes
/// reachability from `n0` stop at the gap, so the delta stream below
/// changes the answer set at nearly every epoch.
fn ring() -> (Alphabet, Instance, Oid) {
    let mut ab = Alphabet::new();
    let mut b = InstanceBuilder::new(&mut ab);
    for i in 0..RING {
        b.edge(&format!("n{i}"), "a", &format!("n{}", (i + 1) % RING));
    }
    let (inst, names) = b.finish();
    let n0 = names["n0"];
    (ab, inst, n0)
}

/// The deterministic churn: a sliding window of cuts. Round `r` cuts ring
/// edge `r` and heals edge `r - 3`, so roughly three edges are always
/// missing and the overlay log never empties out — which keeps tripping
/// an aggressive compaction policy while the answer set keeps moving.
fn churn() -> Vec<EdgeDelta> {
    let ab = {
        let (ab, _, _) = ring();
        ab
    };
    let a = ab.get("a").unwrap();
    (0..ROUNDS)
        .map(|round| {
            let mut d = EdgeDelta::new();
            let cut = round as u32 % RING;
            d.del(Oid(cut), a, Oid((cut + 1) % RING));
            if round >= 3 {
                let heal = (round - 3) as u32 % RING;
                d.add(Oid(heal), a, Oid((heal + 1) % RING));
            }
            d
        })
        .collect()
}

/// Oracle: answers of `query` from `n0` after every prefix of `deltas`,
/// computed sequentially on one thread with compaction disabled.
fn rebuild_oracle(inst: &Instance, deltas: &[EdgeDelta], query: &Query, n0: Oid) -> Vec<Vec<Oid>> {
    let mut dg = DeltaGraph::from_instance(inst);
    let engine = rpq::core::ProductEngine;
    let mut out = Vec::with_capacity(deltas.len() + 1);
    let answers = |dg: &DeltaGraph| {
        let mut a = rpq::core::eval_product_csr_with(
            query.nfa(),
            dg,
            n0,
            rpq::core::FrontierMode::Hybrid,
            &mut rpq::core::EvalScratch::new(),
        )
        .answers;
        a.sort_unstable();
        a
    };
    let _ = &engine;
    out.push(answers(&dg));
    for d in deltas {
        dg.apply_delta(d);
        out.push(answers(&dg));
    }
    out
}

fn prefix_of(initial: rpq::graph::Epoch, commits: &[Commit]) -> HashMap<rpq::graph::Epoch, usize> {
    let mut map = HashMap::new();
    map.insert(initial, 0);
    for (i, c) in commits.iter().enumerate() {
        map.insert(c.epoch, i + 1);
    }
    map
}

#[test]
fn pinned_readers_agree_with_a_sequential_rebuild_at_their_epoch() {
    let (_, inst, n0) = ring();
    let deltas = churn();
    let catalog = Arc::new(Catalog::from_instance(&inst).with_policy(CompactionPolicy {
        min_log_len: 2,
        max_log_ratio: 0.01,
        ..CompactionPolicy::default()
    }));
    let server = Arc::new(Server::new(catalog.clone(), Alphabet::new()));
    let query = server.parse("a.a*").unwrap();
    let oracle = rebuild_oracle(&inst, &deltas, &query, n0);
    let initial = catalog.epoch();

    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let catalog = catalog.clone();
        let deltas = deltas.clone();
        let done = done.clone();
        thread::spawn(move || {
            let commits: Vec<Commit> = deltas
                .iter()
                .map(|d| {
                    let c = catalog.commit(d);
                    thread::yield_now();
                    c
                })
                .collect();
            done.store(true, Ordering::SeqCst);
            commits
        })
    };

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let server = server.clone();
            let query = query.clone();
            let done = done.clone();
            thread::spawn(move || {
                let mut observations = Vec::new();
                let mut iters = 0usize;
                loop {
                    // At least 16 iterations each, and keep going until the
                    // writer is done so the tail epochs get observed too.
                    iters += 1;
                    let finished = done.load(Ordering::SeqCst) && iters >= 16;
                    let session = server.session();
                    let epoch = session.epoch();
                    let resp = session.run(&query, &EvalRequest::source(n0));
                    assert_eq!(resp.termination, Termination::Complete);
                    let mut answers = resp.nodes().expect("node answers").to_vec();
                    answers.sort_unstable();
                    // Re-running against the same pinned session must be
                    // bit-identical even mid-churn: the snapshot is frozen.
                    let again = session.run(&query, &EvalRequest::source(n0));
                    let mut answers2 = again.nodes().expect("node answers").to_vec();
                    answers2.sort_unstable();
                    assert_eq!(answers, answers2, "pinned snapshot moved under a reader");
                    assert_eq!(session.epoch(), epoch);
                    observations.push((epoch, answers));
                    if finished {
                        break;
                    }
                    thread::yield_now();
                }
                observations
            })
        })
        .collect();

    let commits = writer.join().unwrap();
    assert!(
        catalog.compactions() >= 3,
        "the aggressive policy must compact under this churn (got {})",
        catalog.compactions()
    );
    let prefix = prefix_of(initial, &commits);
    let mut checked = 0usize;
    for handle in readers {
        for (epoch, answers) in handle.join().unwrap() {
            let i = *prefix
                .get(&epoch)
                .unwrap_or_else(|| panic!("reader pinned unpublished epoch {epoch:?}"));
            assert_eq!(
                answers, oracle[i],
                "epoch {epoch:?} (prefix {i}) diverged from the sequential rebuild"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 8,
        "readers made too few observations ({checked})"
    );
    // The very last published epoch equals the full rebuild.
    let last = server.session();
    let mut final_answers = last
        .run(&query, &EvalRequest::source(n0))
        .nodes()
        .expect("node answers")
        .to_vec();
    final_answers.sort_unstable();
    assert_eq!(final_answers, *oracle.last().unwrap());
}

#[test]
fn budget_and_cancellation_terminate_soundly_under_churn() {
    let (_, inst, n0) = ring();
    let deltas = churn();
    let catalog = Arc::new(Catalog::from_instance(&inst).with_policy(CompactionPolicy {
        min_log_len: 2,
        max_log_ratio: 0.01,
        ..CompactionPolicy::default()
    }));
    let server = Arc::new(Server::new(catalog.clone(), Alphabet::new()).with_config(
        ServerConfig {
            max_concurrent: 128,
            default_budget: None,
            ..ServerConfig::default()
        },
    ));
    let query = server.parse("a.a*").unwrap();
    let oracle = rebuild_oracle(&inst, &deltas, &query, n0);
    let initial = catalog.epoch();

    let writer = {
        let catalog = catalog.clone();
        let deltas = deltas.clone();
        thread::spawn(move || deltas.iter().map(|d| catalog.commit(d)).collect::<Vec<_>>())
    };

    // Interleave budgeted and cancelled submissions with the writer.
    let mut outcomes = Vec::new();
    for round in 0..48usize {
        let session = server.session();
        let epoch = session.epoch();
        if round % 3 == 2 {
            // Cancel immediately after submission.
            let handle = session
                .submit(&query, EvalRequest::source(n0))
                .expect("under cap");
            handle.cancel();
            outcomes.push((epoch, None, handle.join()));
        } else {
            let budget = [0, 1, 2, 5, 9, 17][round % 6];
            let handle = session
                .submit(&query, EvalRequest::source(n0).with_budget(budget))
                .expect("under cap");
            outcomes.push((epoch, Some(budget), handle.join()));
        }
        thread::yield_now();
    }
    let commits = writer.join().unwrap();
    let prefix = prefix_of(initial, &commits);

    for (epoch, budget, resp) in outcomes {
        let expect = &oracle[prefix[&epoch]];
        let mut answers = resp.nodes().expect("node answers").to_vec();
        answers.sort_unstable();
        match resp.termination {
            Termination::Complete => {
                assert_eq!(&answers, expect, "complete answer diverged at {epoch:?}");
            }
            Termination::BudgetExhausted => {
                let budget = budget.expect("only budgeted queries exhaust budgets");
                assert!(
                    resp.stats.edges_scanned <= budget,
                    "scanned {} > budget {budget}",
                    resp.stats.edges_scanned
                );
                assert!(
                    answers.iter().all(|o| expect.contains(o)),
                    "budget-terminated answers are not a subset at {epoch:?}"
                );
            }
            Termination::Cancelled => {
                assert!(
                    answers.iter().all(|o| expect.contains(o)),
                    "cancelled answers are not a subset at {epoch:?}"
                );
            }
        }
        if let Some(b) = budget {
            assert!(
                resp.stats.edges_scanned <= b,
                "budget {b} not respected even on completion"
            );
        }
    }
    assert_eq!(server.active_queries(), 0, "all admission slots released");
}
