//! Cross-engine agreement: every evaluation strategy of Section 2 computes
//! the same `p(o, I)` — the product-automaton BFS, the two quotient
//! engines, both Datalog translations (naive and semi-naive), and the
//! definitional word-enumeration oracle. Property-tested over random
//! graphs and random regexes, and exercised through the unified
//! `rpq::core::Engine` trait over the label-indexed `CsrGraph` snapshot.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq::automata::random::{random_regex, RegexGenConfig};
use rpq::automata::{Alphabet, Nfa, Regex, Symbol};
use rpq::core::{
    eval_derivative, eval_oracle, eval_product, eval_quotient_dfa, DerivativeEngine, Engine,
    OracleEngine, ProductEngine, Query, QuotientDfaEngine, StreamingEngine,
};
use rpq::datalog::engine::{eval_naive, eval_seminaive};
use rpq::datalog::translate::{load_instance, translate_quotient, translate_states};
use rpq::datalog::{DatalogMagicEngine, DatalogNaiveEngine, DatalogSeminaiveEngine};
use rpq::distributed::{SimulatorEngine, ThreadedEngine};
use rpq::graph::generators::random_graph;
use rpq::graph::{CsrGraph, Instance, Oid};

fn alphabet3() -> (Alphabet, Vec<Symbol>) {
    let ab = Alphabet::from_names(["a", "b", "c"]);
    let syms = ab.symbols().collect();
    (ab, syms)
}

fn random_setup(seed: u64, nodes: usize, edges: usize) -> (Alphabet, Instance, Oid, Regex) {
    let (ab, syms) = alphabet3();
    let mut rng = StdRng::seed_from_u64(seed);
    let (inst, src) = random_graph(&mut rng, nodes, edges, &syms);
    let cfg = RegexGenConfig::new(syms);
    let q = random_regex(&mut rng, &cfg);
    (ab, inst, src, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_engines_agree_on_random_inputs(seed in 0u64..10_000) {
        let (ab, inst, src, q) = random_setup(seed, 6, 12);
        let nfa = Nfa::thompson(&q);

        let product = eval_product(&nfa, &inst, src).answers;
        let quotient = eval_quotient_dfa(&nfa, &inst, src).answers;
        let derivative = eval_derivative(&q, &inst, src).answers;
        prop_assert_eq!(&product, &quotient, "product vs quotient");
        prop_assert_eq!(&product, &derivative, "product vs derivative");

        // Datalog, both translations, both engines.
        let tq = translate_quotient(&q, &ab).unwrap();
        prop_assert!(tq.program.is_linear() && tq.program.is_monadic());
        let mut db1 = load_instance(&tq, &inst, src);
        eval_naive(&tq.program, &mut db1);
        let mut naive: Vec<Oid> = db1
            .relation(tq.answer_pred)
            .iter()
            .map(|t| Oid(t[0] as u32))
            .collect();
        naive.sort();
        prop_assert_eq!(&product, &naive, "product vs datalog-naive");

        let ts = translate_states(&nfa);
        prop_assert!(ts.program.is_linear() && ts.program.is_monadic());
        let mut db2 = load_instance(&ts, &inst, src);
        eval_seminaive(&ts.program, &mut db2);
        let mut semi: Vec<Oid> = db2
            .relation(ts.answer_pred)
            .iter()
            .map(|t| Oid(t[0] as u32))
            .collect();
        semi.sort();
        prop_assert_eq!(&product, &semi, "product vs datalog-seminaive (states)");

        // The magic-sets rewriting of the quotient program agrees too.
        let db3 = load_instance(&tq, &inst, src);
        let (magic_answers, _) = rpq::datalog::eval_magic(
            &tq.program,
            &db3,
            &rpq::datalog::MagicQuery {
                pred: tq.answer_pred,
                pattern: vec![None],
            },
        );
        let mut magic: Vec<Oid> = magic_answers.iter().map(|t| Oid(t[0] as u32)).collect();
        magic.sort();
        prop_assert_eq!(&product, &magic, "product vs datalog-magic");
    }

    #[test]
    fn engines_match_definitional_oracle(seed in 0u64..10_000) {
        // tiny inputs only: the oracle is exponential
        let (_, inst, src, q) = random_setup(seed, 4, 7);
        let nfa = Nfa::thompson(&q);
        let oracle = eval_oracle(&nfa, &inst, src, Some(10));
        let product = eval_product(&nfa, &inst, src).answers;
        // the oracle bound (10) exceeds |Q|·|V| only sometimes; restrict to
        // cases where it is authoritative
        if nfa.num_states() * inst.num_nodes() <= 10 {
            prop_assert_eq!(product, oracle);
        } else {
            // oracle answers are always a subset
            for o in &oracle {
                prop_assert!(product.binary_search(o).is_ok());
            }
        }
    }

    #[test]
    fn membership_agreement_regex_vs_nfa_vs_dfa(seed in 0u64..10_000) {
        let (ab, syms) = alphabet3();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RegexGenConfig::new(syms.clone());
        let q = random_regex(&mut rng, &cfg);
        let nfa = Nfa::thompson(&q);
        let dfa = rpq::automata::Dfa::from_nfa(&nfa, ab.len());
        // exhaustive words up to length 4
        let mut words: Vec<Vec<Symbol>> = vec![vec![]];
        let mut layer: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &layer {
                for &s in &syms {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            words.extend(next.iter().cloned());
            layer = next;
        }
        for w in &words {
            let by_derivative = rpq::automata::derivative::accepts(&q, w);
            prop_assert_eq!(by_derivative, nfa.accepts(w));
            prop_assert_eq!(by_derivative, dfa.accepts(w));
        }
    }
}

/// Workspace-wiring smoke test: the Figure 2 graph and Figure 3 query from
/// the facade docs (`a.b*` asked at `o1`) evaluate to exactly `{o2, o3}`
/// through every engine the workspace re-exports — centralized product /
/// quotient-DFA / derivative, both Datalog translations, the definitional
/// oracle, the streaming evaluator, the deterministic distributed
/// simulator, and the threaded runner.
#[test]
fn figure2_query_answers_o2_o3_via_all_engines() {
    use rpq::distributed::{run_threaded, Delivery, Simulator};
    use rpq::graph::generators::fig2_graph;

    let mut ab = Alphabet::new();
    let (inst, _d, o1) = fig2_graph(&mut ab);
    let q = rpq::automata::parse_regex(&mut ab, "a.b*").unwrap();
    let nfa = Nfa::thompson(&q);

    let o2 = inst.node_by_name("o2").unwrap();
    let o3 = inst.node_by_name("o3").unwrap();
    let mut expected = vec![o2, o3];
    expected.sort();

    assert_eq!(eval_product(&nfa, &inst, o1).answers, expected, "product");
    assert_eq!(
        eval_quotient_dfa(&nfa, &inst, o1).answers,
        expected,
        "quotient dfa"
    );
    assert_eq!(
        eval_derivative(&q, &inst, o1).answers,
        expected,
        "derivative"
    );
    assert_eq!(eval_oracle(&nfa, &inst, o1, Some(8)), expected, "oracle");

    let tq = translate_quotient(&q, &ab).unwrap();
    let mut db = load_instance(&tq, &inst, o1);
    eval_naive(&tq.program, &mut db);
    let mut naive: Vec<Oid> = db
        .relation(tq.answer_pred)
        .iter()
        .map(|t| Oid(t[0] as u32))
        .collect();
    naive.sort();
    assert_eq!(naive, expected, "datalog naive");

    let ts = translate_states(&nfa);
    let mut db = load_instance(&ts, &inst, o1);
    eval_seminaive(&ts.program, &mut db);
    let mut semi: Vec<Oid> = db
        .relation(ts.answer_pred)
        .iter()
        .map(|t| Oid(t[0] as u32))
        .collect();
    semi.sort();
    assert_eq!(semi, expected, "datalog seminaive");

    let mut stream = rpq::core::StreamingEval::new(&nfa, &inst, o1.index() as u64, 10_000);
    let mut streamed: Vec<Oid> = stream
        .collect_all()
        .into_iter()
        .map(|n| Oid(n as u32))
        .collect();
    streamed.sort();
    assert_eq!(streamed, expected, "streaming");

    let sim = Simulator::new(&inst, &ab, Delivery::Fifo).run(o1, &q);
    assert_eq!(sim.answers, expected, "distributed simulator");

    let threaded = run_threaded(&inst, o1, &q);
    assert_eq!(threaded.answers, expected, "threaded runner");
}

/// The nine evaluation paths behind the unified `Engine` trait: product,
/// quotient-DFA, derivative, oracle, streaming, Datalog naive/semi-naive/
/// magic, and the distributed simulator. (The threaded runner joins below
/// on a smaller graph — one OS thread per node caps its test size.)
fn nine_engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(ProductEngine),
        Box::new(QuotientDfaEngine),
        Box::new(DerivativeEngine),
        Box::new(OracleEngine {
            max_word_len: Some(9),
        }),
        Box::new(StreamingEngine::default()),
        Box::new(DatalogNaiveEngine),
        Box::new(DatalogSeminaiveEngine),
        Box::new(DatalogMagicEngine),
        Box::new(SimulatorEngine::default()),
    ]
}

/// The agreement suite through the unified `Engine` calling convention,
/// over larger random graphs (50 nodes / 200 edges) than the per-function
/// proptests above. The oracle is exponential, so it only *asserts* (as a
/// subset check) rather than anchoring equality on these sizes.
#[test]
fn engine_trait_agreement_on_larger_random_graphs() {
    for seed in [3u64, 17, 55, 120, 9001] {
        let (ab, inst, src, q) = random_setup(seed, 50, 200);
        let graph = CsrGraph::from(&inst);
        assert_eq!(graph.num_nodes(), 50);
        let query = Query::new(q, &ab);
        let expected = ProductEngine.eval(&query, &graph, src).answers;
        for engine in nine_engines() {
            let got = engine.eval(&query, &graph, src);
            assert_eq!(got.stats.answers, got.answers.len(), "{}", engine.name());
            if engine.name() == "oracle" {
                // bounded enumeration: sound but possibly incomplete here
                for o in &got.answers {
                    assert!(
                        expected.binary_search(o).is_ok(),
                        "oracle produced a non-answer on seed {seed}"
                    );
                }
            } else {
                assert_eq!(got.answers, expected, "{} on seed {seed}", engine.name());
            }
        }
    }
}

/// The threaded runner (the ninth-plus path) through the trait, on a size
/// where one-thread-per-site is reasonable.
#[test]
fn threaded_engine_agrees_through_the_trait() {
    for seed in [7u64, 42] {
        let (ab, inst, src, q) = random_setup(seed, 20, 60);
        let graph = CsrGraph::from(&inst);
        let query = Query::new(q, &ab);
        let expected = ProductEngine.eval(&query, &graph, src).answers;
        let got = ThreadedEngine.eval(&query, &graph, src);
        assert_eq!(got.answers, expected, "threaded on seed {seed}");
    }
}

/// Engines with a real `eval_batch` override (bit-parallel product,
/// batched quotient-DFA, multi-seeded semi-naive Datalog, the partitioned
/// threaded driver) plus representatives of the default loop-over-`eval`
/// path. Batched and default paths must agree with the per-source map /
/// union of `eval`.
fn batch_engines() -> Vec<Box<dyn Engine>> {
    vec![
        // real overrides
        Box::new(ProductEngine),
        Box::new(QuotientDfaEngine),
        Box::new(DatalogSeminaiveEngine),
        Box::new(rpq::distributed::PartitionedBatchEngine::new(3)),
        // default-impl paths
        Box::new(DerivativeEngine),
        Box::new(StreamingEngine::default()),
        Box::new(DatalogNaiveEngine),
        Box::new(DatalogMagicEngine),
        Box::new(SimulatorEngine::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `eval_batch` over a random source set equals the per-source map of
    /// `eval` (for partitioning engines) and the union of `eval` (for all
    /// engines), with stats aggregated rather than discarded.
    #[test]
    fn eval_batch_agrees_with_per_source_eval(seed in 0u64..10_000) {
        let (ab, inst, _, q) = random_setup(seed, 6, 12);
        let graph = CsrGraph::from(&inst);
        let query = Query::new(q, &ab);
        // a nonempty source subset derived from the seed
        let mask = (seed.wrapping_mul(2654435761) % 62 + 1) as u8;
        let sources: Vec<Oid> = (0..6u32)
            .filter(|i| mask & (1 << i) != 0)
            .map(Oid)
            .collect();
        for engine in batch_engines() {
            let batch = engine.eval_batch(&query, &graph, &sources);
            let singles: Vec<Vec<Oid>> = sources
                .iter()
                .map(|&s| engine.eval(&query, &graph, s).answers)
                .collect();
            if let Some(per) = batch.per_source() {
                prop_assert_eq!(per, &singles[..], "{} per-source map", engine.name());
                prop_assert_eq!(
                    batch.stats.answers,
                    singles.iter().map(Vec::len).sum::<usize>(),
                    "{} aggregates answer counts",
                    engine.name()
                );
            }
            let mut union: Vec<Oid> = singles.into_iter().flatten().collect();
            union.sort_unstable();
            union.dedup();
            prop_assert_eq!(batch.union(), &union[..], "{} union", engine.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Direction agreement: for every (source, target) pair of a random
    /// graph × random regex, the forward answer relation, the backward
    /// (transpose-semantics) relation, and the meet-in-the-middle pair
    /// verdicts coincide — through the product engine, the quotient-DFA
    /// engine, and both `PlannedEngine`-wrapped variants — and a
    /// `PlannedEngine` never returns a different answer set than its
    /// inner engine.
    #[test]
    fn directions_agree_on_random_inputs(seed in 0u64..10_000) {
        use rpq::core::{eval_pair, eval_to, QuotientDfaEngine};
        use rpq::optimizer::PlannedEngine;

        let (ab, inst, _, q) = random_setup(seed, 6, 12);
        let graph = CsrGraph::from(&inst);
        let query = Query::new(q, &ab);
        // no constraints: the rewrite pass is an identity, so the wrapper
        // must match its inner engine on *every* input
        let planned_product = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let planned_quotient = PlannedEngine::unconstrained(QuotientDfaEngine, ab.clone());

        let forward: Vec<Vec<Oid>> = graph
            .nodes()
            .map(|s| ProductEngine.eval(&query, &graph, s).answers)
            .collect();
        for s in graph.nodes() {
            let quot = QuotientDfaEngine.eval(&query, &graph, s).answers;
            prop_assert_eq!(&quot, &forward[s.index()], "quotient fwd {:?}", s);
            prop_assert_eq!(
                &planned_product.eval(&query, &graph, s).answers,
                &forward[s.index()],
                "planned(product) == product at {:?}", s
            );
            prop_assert_eq!(
                &planned_quotient.eval(&query, &graph, s).answers,
                &quot,
                "planned(quotient) == quotient at {:?}", s
            );
        }

        for t in graph.nodes() {
            let backward = eval_to(&query, &graph, t).answers;
            prop_assert_eq!(
                &planned_product.eval_to(&query, &graph, t).answers,
                &backward,
                "planned eval_to at {:?}", t
            );
            for s in graph.nodes() {
                let fwd_says = forward[s.index()].binary_search(&t).is_ok();
                prop_assert_eq!(
                    backward.binary_search(&s).is_ok(),
                    fwd_says,
                    "transpose semantics {:?}->{:?}", s, t
                );
                prop_assert_eq!(
                    eval_pair(&query, &graph, s, t).reachable,
                    fwd_says,
                    "meet-in-the-middle {:?}->{:?}", s, t
                );
                prop_assert_eq!(
                    planned_product.eval_pair(&query, &graph, s, t).reachable,
                    fwd_says,
                    "planned(product) pair {:?}->{:?}", s, t
                );
                prop_assert_eq!(
                    planned_quotient.eval_pair(&query, &graph, s, t).reachable,
                    fwd_says,
                    "planned(quotient) pair {:?}->{:?}", s, t
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The static analyzer's simplifications are answer-preserving across
    /// every engine: the planned query (alphabet-restricted, trimmed)
    /// returns exactly the answers of the unanalyzed original through all
    /// nine engines, on the `CsrGraph` snapshot and on a post-delta
    /// `DeltaGraph` epoch, forward and backward. The query is extended
    /// with an arm through a zero-edge label so pruning always has work,
    /// and the delta later adds the first edge on that label — the plan
    /// must be rebuilt (pruned-label drift guard) and the new matches
    /// must appear.
    #[test]
    fn analyzed_queries_answer_like_unanalyzed_originals(seed in 0u64..10_000) {
        use rpq::core::{eval_product_backward_reversed_csr, eval_product_csr, eval_to};
        use rpq::graph::DeltaGraph;
        use rpq::optimizer::PlannedEngine;

        let (mut ab, inst, src, q0) = random_setup(seed, 6, 12);
        let ghost = ab.intern("ghost");
        let q = Regex::union(vec![q0.clone(), Regex::sym(ghost).then(q0)]);
        let query = Query::new(q.clone(), &ab);
        let graph = CsrGraph::from(&inst);

        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let plan = planned.plan(&query, &graph);
        prop_assert!(plan.facts.pruned_symbols.contains(&ghost));
        let analyzed = plan.query.clone();

        // forward, all nine engines: analyzed == original per engine
        // (the oracle is bounded the same way on both, so even it must
        // agree with itself)
        let expected = ProductEngine.eval(&query, &graph, src).answers;
        for engine in nine_engines() {
            let orig = engine.eval(&query, &graph, src).answers;
            let simp = engine.eval(&analyzed, &graph, src).answers;
            prop_assert_eq!(&simp, &orig, "{}: analyzed vs original", engine.name());
            if engine.name() != "oracle" {
                prop_assert_eq!(&orig, &expected, "{}: vs product", engine.name());
            }
        }
        // backward on the snapshot
        for t in graph.nodes() {
            prop_assert_eq!(
                planned.eval_to(&query, &graph, t).answers,
                eval_to(&query, &graph, t).answers,
                "backward at {:?}", t
            );
        }

        // post-delta epoch: new edges, including the first one on the
        // pruned label — the analyzed plan must be recompiled and agree
        // with the unanalyzed product BFS on the delta view
        let mut dg = DeltaGraph::from_instance(&inst);
        let nodes: Vec<Oid> = graph.nodes().collect();
        let (_, syms) = alphabet3();
        dg.add_edge(nodes[0], syms[0], nodes[nodes.len() - 1]);
        dg.add_edge(nodes[1], ghost, nodes[0]);
        let nfa = Nfa::thompson(&q);
        let rev = nfa.reverse();
        for &s in &nodes {
            prop_assert_eq!(
                planned.eval_view(&query, &dg, s).answers,
                eval_product_csr(&nfa, &dg, s).answers,
                "delta forward at {:?}", s
            );
            prop_assert_eq!(
                planned.eval_to(&query, &dg, s).answers,
                eval_product_backward_reversed_csr(&rev, &dg, s).answers,
                "delta backward at {:?}", s
            );
        }
    }
}

/// `PlannedEngine` wrapped around representatives of every evaluation
/// family (centralized, Datalog, distributed, partitioned batch) returns
/// exactly the inner engine's answer set — no constraints, so the rewrite
/// is an identity and any divergence would be a planner bug.
#[test]
fn planned_wrapper_never_changes_answers() {
    use rpq::core::QuotientDfaEngine;
    use rpq::optimizer::PlannedEngine;

    for seed in [2u64, 23, 404] {
        let (ab, inst, src, q) = random_setup(seed, 20, 60);
        let graph = CsrGraph::from(&inst);
        let query = Query::new(q, &ab);
        let expected = ProductEngine.eval(&query, &graph, src).answers;

        macro_rules! check {
            ($inner:expr) => {{
                let inner_answers = $inner.eval(&query, &graph, src).answers;
                assert_eq!(inner_answers, expected, "inner disagrees (seed {seed})");
                let planned = PlannedEngine::unconstrained($inner, ab.clone());
                assert_eq!(
                    planned.eval(&query, &graph, src).answers,
                    inner_answers,
                    "planned wrapper changed answers (seed {seed})"
                );
            }};
        }
        check!(ProductEngine);
        check!(QuotientDfaEngine);
        check!(DerivativeEngine);
        check!(DatalogSeminaiveEngine);
        check!(SimulatorEngine::default());
        check!(rpq::distributed::PartitionedBatchEngine::new(3));
    }
}

/// Acceptance: on shared-prefix graphs (many sources funneling into one
/// suffix) the bit-parallel batch engine scans strictly fewer edges than
/// the per-source loop — one CSR row pass carries every pending source
/// lane. At N = 16 entry nodes over a 40-edge chain the loop pays
/// N × (depth + 1) row scans, the batch N + depth.
#[test]
fn batched_product_scans_fewer_edges_on_shared_prefix_graphs() {
    use rpq::graph::InstanceBuilder;

    let mut ab = Alphabet::new();
    let mut b = InstanceBuilder::new(&mut ab);
    let n_sources = 16;
    for i in 0..n_sources {
        b.edge(&format!("e{i}"), "c", "x0");
    }
    for i in 0..40 {
        b.edge(&format!("x{i}"), "c", &format!("x{}", i + 1));
    }
    let (inst, names) = b.finish();
    let graph = CsrGraph::from(&inst);
    let sources: Vec<Oid> = (0..n_sources)
        .map(|i| names[format!("e{i}").as_str()])
        .collect();
    let query = Query::parse(&mut ab, "c*").unwrap();

    let batch = ProductEngine.eval_batch(&query, &graph, &sources);
    let mut loop_edges = 0usize;
    for (i, &s) in sources.iter().enumerate() {
        let single = ProductEngine.eval(&query, &graph, s);
        loop_edges += single.stats.edges_scanned;
        assert_eq!(batch.per_source().unwrap()[i], single.answers);
    }
    assert!(
        batch.stats.edges_scanned * 4 < loop_edges,
        "batch {} vs loop {} — expected at least a 4x edge-scan gap",
        batch.stats.edges_scanned,
        loop_edges
    );
}

#[test]
fn streaming_agrees_with_product_on_finite_instances() {
    for seed in 0..20u64 {
        let (_, inst, src, q) = random_setup(seed, 8, 16);
        let nfa = Nfa::thompson(&q);
        let product = eval_product(&nfa, &inst, src).answers;
        let mut stream = rpq::core::StreamingEval::new(&nfa, &inst, src.index() as u64, 1_000_000);
        let streamed: Vec<Oid> = stream
            .collect_all()
            .into_iter()
            .map(|n| Oid(n as u32))
            .collect();
        assert_eq!(product, streamed, "seed {seed}");
        assert_eq!(stream.status(), rpq::core::StreamStatus::Terminated);
    }
}

#[test]
fn general_queries_mu_equals_direct_on_random_instances() {
    use rpq::core::general::{eval_general, eval_general_direct, GeneralPathQuery};
    let queries = [
        r#""a*b" "c"?"#,
        r#"("a*b" + "ba*")*"#,
        r#"("[ab]" "[bc]")*"#,
        r#""(.)*""#,
    ];
    for seed in 0..10u64 {
        let ab = Alphabet::from_names(["b", "aab", "baa", "c", "zzz"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, src) = random_graph(&mut rng, 6, 14, &syms);
        for qs in queries {
            let q = GeneralPathQuery::parse(qs).unwrap();
            let via_mu = eval_general(&q, &inst, src, &ab);
            let direct = eval_general_direct(&q, &inst, src, &ab);
            assert_eq!(via_mu, direct, "Proposition 2.2 violated: {qs} seed {seed}");
        }
    }
}
