//! Language-level invariants of the analysis substrate: growth
//! classification is a *language* property (invariant under simplification
//! and minimization), the simplifier is idempotent and sound, and the
//! finite class agrees exactly with automaton finiteness and enumeration.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq::automata::growth::{classify_dfa, classify_regex, Growth};
use rpq::automata::random::{random_regex, RegexGenConfig};
use rpq::automata::simplify::{simplify, simplify_deep, SimplifyConfig};
use rpq::automata::{Alphabet, Dfa, Nfa};

fn gen(seed: u64) -> (Alphabet, rpq::automata::Regex) {
    let mut ab = Alphabet::new();
    let syms = vec![ab.intern("a"), ab.intern("b"), ab.intern("c")];
    let cfg = RegexGenConfig::new(syms);
    let mut rng = StdRng::seed_from_u64(seed);
    let r = random_regex(&mut rng, &cfg);
    (ab, r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn growth_is_invariant_under_simplification(seed in 0u64..50_000) {
        let (_, r) = gen(seed);
        let g1 = classify_regex(&r);
        let g2 = classify_regex(&simplify(&r));
        prop_assert_eq!(&g1, &g2, "simplify changed the growth class");
        let g3 = classify_regex(&simplify_deep(&r, &SimplifyConfig::default()));
        prop_assert_eq!(&g1, &g3, "simplify_deep changed the growth class");
    }

    #[test]
    fn growth_is_invariant_under_minimization(seed in 0u64..50_000) {
        let (_, r) = gen(seed);
        let dfa = Dfa::from_nfa(&Nfa::thompson(&r), 3);
        let g1 = classify_dfa(&dfa);
        let g2 = classify_dfa(&dfa.minimize());
        let g3 = classify_dfa(&dfa.minimize_hopcroft());
        prop_assert_eq!(&g1, &g2);
        prop_assert_eq!(&g1, &g3);
    }

    #[test]
    fn finite_class_agrees_with_enumeration(seed in 0u64..50_000) {
        let (_, r) = gen(seed);
        let nfa = Nfa::thompson(&r);
        match classify_regex(&r) {
            Growth::Empty => prop_assert!(nfa.is_empty_lang()),
            Growth::Finite { count, max_len } => {
                prop_assert!(nfa.is_finite_lang());
                if count <= 512 {
                    let words = nfa.enumerate_words(max_len, 1024);
                    prop_assert_eq!(words.len() as u64, count);
                    prop_assert_eq!(
                        words.iter().map(Vec::len).max().unwrap_or(0),
                        max_len
                    );
                }
            }
            Growth::Polynomial { .. } | Growth::Exponential => {
                prop_assert!(!nfa.is_finite_lang());
            }
        }
    }

    #[test]
    fn simplify_is_idempotent(seed in 0u64..50_000) {
        let (_, r) = gen(seed);
        let once = simplify(&r);
        let twice = simplify(&once);
        prop_assert_eq!(&once, &twice);
    }

    #[test]
    fn minimization_algorithms_agree(seed in 0u64..50_000) {
        let (_, r) = gen(seed);
        let dfa = Dfa::from_nfa(&Nfa::thompson(&r), 3);
        let moore = dfa.minimize();
        let hop = dfa.minimize_hopcroft();
        prop_assert_eq!(moore.num_states(), hop.num_states());
        prop_assert!(rpq::automata::ops::equivalent(&moore.to_nfa(), &hop.to_nfa()).is_ok());
    }
}

#[test]
fn growth_degree_laddder() {
    // Concatenating k independent stars gives polynomial degree k−1;
    // overlapping alphabets inside one star give exponential.
    let mut ab = Alphabet::new();
    for (src, expect) in [
        ("a*", Growth::Polynomial { degree: 0 }),
        ("a*.b*", Growth::Polynomial { degree: 1 }),
        ("a*.b*.c*", Growth::Polynomial { degree: 2 }),
        ("a*.b*.c*.a*", Growth::Polynomial { degree: 3 }),
        ("(a+b)*", Growth::Exponential),
    ] {
        let r = rpq::automata::parse_regex(&mut ab, src).unwrap();
        assert_eq!(classify_regex(&r), expect, "{src}");
    }
}
