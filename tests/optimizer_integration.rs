//! Optimizer end-to-end: every rewrite the planner selects preserves
//! answers on data where the constraints actually hold, and reduces
//! distributed message counts on cache workloads.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq::automata::{parse_regex, Alphabet, Nfa};
use rpq::constraints::general::Budget;
use rpq::constraints::ConstraintSet;
use rpq::core::eval_product;
use rpq::distributed::{Delivery, Simulator};
use rpq::graph::generators::cached_site;
use rpq::graph::{Instance, Oid};
use rpq::optimizer::{optimize, RewriteCache};

/// Build an instance where `l = (a.b)*` holds at the source.
fn cached_instance(seed: u64, n: usize) -> (Alphabet, Instance, Oid) {
    let mut ab = Alphabet::new();
    let a = ab.intern("a");
    let b = ab.intern("b");
    let l = ab.intern("l");
    let cached = parse_regex(&mut ab, "(a.b)*").unwrap();
    let words = Nfa::thompson(&cached).enumerate_words(16, 64);
    let mut rng = StdRng::seed_from_u64(seed);
    let (inst, src) = cached_site(&mut rng, n, 2, &[a, b], l, &words);
    (ab, inst, src)
}

#[test]
fn cache_constraint_holds_on_generated_sites() {
    for seed in 0..8u64 {
        let (mut ab, inst, src) = cached_instance(seed, 40);
        let set = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
        assert!(set.holds_at(&inst, src), "seed {seed}");
    }
}

#[test]
fn optimized_queries_agree_on_cached_sites() {
    let queries = ["(a.b)*", "a.(b.a)*.b", "(a.b)*.a"];
    for seed in 0..6u64 {
        let (mut ab, inst, src) = cached_instance(seed, 40);
        let set = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
        for qs in queries {
            let q = parse_regex(&mut ab, qs).unwrap();
            let opt = optimize(&set, &q, &ab, &Budget::default());
            let before = eval_product(&Nfa::thompson(&q), &inst, src).answers;
            let after = eval_product(&Nfa::thompson(&opt.query), &inst, src).answers;
            assert_eq!(before, after, "seed {seed} query {qs} → {:?}", opt.applied);
        }
    }
}

#[test]
fn boundedness_rewrites_agree_on_conforming_data() {
    // data where cites.cites = cites holds: cites is transitively closed
    let mut ab = Alphabet::new();
    let cites = ab.intern("cites");
    let mut inst = Instance::new();
    let nodes: Vec<Oid> = (0..5).map(|_| inst.add_node()).collect();
    // a transitively closed citation graph: i cites j for all i < j, and
    // every cited paper "cites itself" (a mirror page), which makes
    // cites² = cites hold at the source: every 1-hop target is a 2-hop
    // target through its self-loop, and transitivity gives the converse.
    for i in 0..5 {
        for j in (i + 1)..5 {
            inst.add_edge(nodes[i], cites, nodes[j]);
        }
    }
    for &n in &nodes[1..] {
        inst.add_edge(n, cites, n);
    }
    let eq_set = ConstraintSet::parse(&mut ab, ["cites.cites = cites"]).unwrap();
    assert!(eq_set.holds_at(&inst, nodes[0]));
    let q = parse_regex(&mut ab, "cites*").unwrap();
    let opt = optimize(&eq_set, &q, &ab, &Budget::default());
    assert!(opt.improved());
    let before = eval_product(&Nfa::thompson(&q), &inst, nodes[0]).answers;
    let after = eval_product(&Nfa::thompson(&opt.query), &inst, nodes[0]).answers;
    assert_eq!(before, after);
}

#[test]
fn distributed_cache_rewrite_saves_messages() {
    let (mut ab, inst, src) = cached_instance(3, 60);
    let set = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
    let q = parse_regex(&mut ab, "(a.b)*").unwrap();

    let plain = Simulator::new(&inst, &ab, Delivery::Fifo).run(src, &q);

    let cache = RewriteCache::new(&set, &ab, Budget::default());
    let src_id = src.0;
    let hook = move |site, incoming: &rpq::automata::Regex| {
        if site == src_id {
            cache.rewrite(incoming)
        } else {
            incoming.clone()
        }
    };
    let optimized = Simulator::new(&inst, &ab, Delivery::Fifo)
        .with_rewrite(hook)
        .run(src, &q);

    assert_eq!(plain.answers, optimized.answers);
    assert!(
        optimized.stats.total() <= plain.stats.total(),
        "optimized {} vs plain {}",
        optimized.stats.total(),
        plain.stats.total()
    );
}
