//! Distributed protocol correctness (Section 3.1): on arbitrary graphs and
//! queries, the protocol computes exactly `p(o, I)`, detects termination,
//! and maintains the message-accounting invariants (every answer acked,
//! every subquery eventually done).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq::automata::random::{random_regex, RegexGenConfig};
use rpq::automata::{Alphabet, Nfa, Symbol};
use rpq::core::eval_product;
use rpq::distributed::{run_threaded, Delivery, Simulator};
use rpq::graph::generators::{random_graph, web_graph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn simulator_computes_p_o_i(seed in 0u64..10_000) {
        let ab = Alphabet::from_names(["a", "b", "c"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, src) = random_graph(&mut rng, 7, 14, &syms);
        let cfg = RegexGenConfig::new(syms);
        let q = random_regex(&mut rng, &cfg);
        let expected = eval_product(&Nfa::thompson(&q), &inst, src).answers;

        for delivery in [
            Delivery::Fifo,
            Delivery::Random { seed, max_latency: 5 },
        ] {
            let mut sim = Simulator::new(&inst, &ab, delivery);
            let res = sim.run(src, &q);
            prop_assert_eq!(&res.answers, &expected);
            prop_assert!(res.termination_detected);
            // invariants: answers acked 1:1; done per registered task's
            // parent + one per duplicate subquery = subqueries total
            prop_assert_eq!(res.stats.answers, res.stats.acks);
            prop_assert_eq!(res.stats.subqueries, res.stats.dones);
        }
    }

    #[test]
    fn dedup_bounds_tasks_by_quotients_times_sites(seed in 0u64..10_000) {
        let ab = Alphabet::from_names(["a", "b"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, src) = random_graph(&mut rng, 6, 12, &syms);
        let cfg = RegexGenConfig::new(syms.clone());
        let q = random_regex(&mut rng, &cfg);
        let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo);
        let res = sim.run(src, &q);
        // the registered tasks are (site, quotient) pairs; quotients are
        // bounded by the derivative closure
        let closure = rpq::automata::DerivativeClosure::compute(&q, &syms, 4096).unwrap();
        prop_assert!(res.tasks_registered <= closure.len() * inst.num_nodes());
    }
}

#[test]
fn threaded_runner_agrees_across_topologies() {
    let mut ab = Alphabet::new();
    let labels: Vec<Symbol> = (0..2).map(|i| ab.intern(&format!("l{i}"))).collect();
    for seed in [3u64, 17, 91] {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, src) = web_graph(&mut rng, 30, 2, &labels);
        for qs in ["l0*", "(l0+l1)*", "l0.(l1.l0)*"] {
            let q = rpq::automata::parse_regex(&mut ab, qs).unwrap();
            let expected = eval_product(&Nfa::thompson(&q), &inst, src).answers;
            let got = run_threaded(&inst, src, &q);
            assert_eq!(got.answers, expected, "seed {seed} query {qs}");
        }
    }
}

#[test]
fn message_counts_deterministic_for_fixed_seed() {
    let mut ab = Alphabet::new();
    let (inst, _, o1) = rpq::graph::generators::fig2_graph(&mut ab);
    let q = rpq::automata::parse_regex(&mut ab, "a.b*").unwrap();
    let run1 = Simulator::new(
        &inst,
        &ab,
        Delivery::Random {
            seed: 5,
            max_latency: 4,
        },
    )
    .run(o1, &q);
    let run2 = Simulator::new(
        &inst,
        &ab,
        Delivery::Random {
            seed: 5,
            max_latency: 4,
        },
    )
    .run(o1, &q);
    assert_eq!(run1.stats, run2.stats);
    assert_eq!(run1.trace.len(), run2.trace.len());
}

#[test]
fn rewrite_hook_preserves_answers_on_random_sites() {
    // install a hook that rewrites with a *sound* simplification everywhere:
    // the minimal-DFA regex (language-preserving, so valid at every site)
    use rpq::automata::{nfa_to_regex, Dfa, Regex};
    let ab = Alphabet::from_names(["a", "b"]);
    let syms: Vec<Symbol> = ab.symbols().collect();
    let sigma = ab.len();
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, src) = random_graph(&mut rng, 6, 12, &syms);
        let cfg = RegexGenConfig::new(syms.clone());
        let q = random_regex(&mut rng, &cfg);
        let hook = move |_site, incoming: &Regex| -> Regex {
            let min = Dfa::from_nfa(&Nfa::thompson(incoming), sigma).minimize();
            let r = nfa_to_regex(&min.to_nfa());
            if r.size() < incoming.size() {
                r
            } else {
                incoming.clone()
            }
        };
        let plain = Simulator::new(&inst, &ab, Delivery::Fifo).run(src, &q);
        let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo).with_rewrite(hook);
        let rewritten = sim.run(src, &q);
        assert_eq!(plain.answers, rewritten.answers, "seed {seed}");
    }
}
