//! Cross-engine soundness for the Section 5 extensions:
//!
//! * everything the axiomatic prover proves must never be refuted by the
//!   certified Theorem 4.2 refuter, and for word-constraint inputs it must
//!   be confirmed by the exact Theorem 4.3 procedure;
//! * every view-based rewriting is an equivalence under the constraints
//!   and preserves the answers of a *distributed* run on instances where
//!   the cache constraint actually holds — and saves messages there.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rpq::automata::{parse_regex, Alphabet, Regex, Symbol};
use rpq::constraints::axioms::{Prover, ProverConfig};
use rpq::constraints::general::{check, Budget, Verdict};
use rpq::constraints::implication::word_implies_word;
use rpq::constraints::{ConstraintSet, PathConstraint};
use rpq::distributed::{run_and_check, Delivery, Simulator};
use rpq::optimizer::{rewrite_with_views, ViewSearchConfig};

fn random_word(rng: &mut StdRng, syms: &[Symbol], max_len: usize) -> Vec<Symbol> {
    (0..rng.random_range(1..=max_len))
        .map(|_| syms[rng.random_range(0..syms.len())])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn axiomatically_provable_word_goals_are_exactly_implied(seed in 0u64..10_000) {
        // On word-constraint systems the exact Theorem 4.3 procedure is
        // complete, so: prover says yes ⟹ word procedure says yes.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ab = Alphabet::new();
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| ab.intern(s)).collect();
        let mut set = ConstraintSet::new();
        for _ in 0..rng.random_range(1..4) {
            set.add(PathConstraint::inclusion(
                Regex::word(&random_word(&mut rng, &syms, 3)),
                Regex::word(&random_word(&mut rng, &syms, 3)),
            ));
        }
        let u = random_word(&mut rng, &syms, 4);
        let v = random_word(&mut rng, &syms, 4);
        let prover = Prover::new(&set, ProverConfig { max_depth: 8, ..ProverConfig::default() });
        if let Some(d) = prover.prove_inclusion(&Regex::word(&u), &Regex::word(&v)) {
            prop_assert!(d.verify(&prover), "derivation must replay");
            prop_assert!(
                word_implies_word(&set, &u, &v),
                "prover proved something Theorem 4.3 rejects"
            );
        }
    }

    #[test]
    fn provable_path_goals_are_never_refuted(seed in 0u64..3_000) {
        // Mixed regex axioms: the certified refuter must never contradict
        // the prover.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ab = Alphabet::new();
        let sources = ["l = (a.b)*", "l.l <= l", "m = a.b", "a <= b", "(a+b).c <= d"];
        let picked: Vec<&str> = sources
            .iter()
            .copied()
            .filter(|_| rng.random_range(0..2) == 0)
            .collect();
        let lines = if picked.is_empty() { vec!["a <= b"] } else { picked };
        let set = ConstraintSet::parse(&mut ab, lines).unwrap();
        let goals = ["a.c <= b.c", "l* <= l + ()", "a.(b.a)*.c <= l.a.c", "m.x <= a.b.x"];
        let goal = goals[rng.random_range(0..goals.len())];
        let c = rpq::constraints::parse_constraint(&mut ab, goal).unwrap();
        let prover = Prover::new(&set, ProverConfig::default());
        if prover.prove_constraint(&c).is_some() {
            if let Verdict::Refuted(_) = check(&set, &c, &Budget::default()) { prop_assert!(false, "prover/refuter disagree on {goal}") }
        }
    }
}

#[test]
fn view_rewriting_preserves_distributed_answers_and_saves_messages() {
    // A cached site: the backbone realizes (a.b)*, the l-edges materialize
    // its answers at the source, so `l = (a.b)*` holds there. The verified
    // view rewriting must give the same distributed answers with fewer
    // messages.
    let mut ab = Alphabet::new();
    let a = ab.intern("a");
    let b = ab.intern("b");
    let l = ab.intern("l");
    let c = ab.intern("c");
    let mut inst = rpq::graph::Instance::new();
    let v0 = inst.add_named_node("v0");
    let mut prev = v0;
    let mut evens = vec![v0];
    for i in 1..=10 {
        let v = inst.add_named_node(&format!("v{i}"));
        inst.add_edge(prev, if i % 2 == 1 { a } else { b }, v);
        if i % 2 == 0 {
            evens.push(v);
        }
        prev = v;
    }
    for &e in &evens {
        inst.add_edge(v0, l, e);
        // a c-tail off every (a.b)* endpoint so the query has a suffix
        let t = inst.add_node();
        inst.add_edge(e, c, t);
    }
    let set = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
    assert!(set.holds_at(&inst, v0), "workload must satisfy the cache");

    let q = parse_regex(&mut ab, "(a.b)*.c").unwrap();
    let rewritings = rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default());
    assert!(!rewritings.is_empty(), "expected a view rewriting");
    let best = rewritings[0].query.clone();

    let plain = run_and_check(&inst, &ab, v0, &q, Delivery::Fifo);
    let src = v0.0;
    let rewritten_q = best.clone();
    let hook = move |site: u32, incoming: &Regex| -> Regex {
        if site == src && incoming == &q {
            rewritten_q.clone()
        } else {
            incoming.clone()
        }
    };
    let q2 = parse_regex(&mut ab, "(a.b)*.c").unwrap();
    let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo).with_rewrite(hook);
    let optimized = sim.run(v0, &q2);
    assert_eq!(optimized.answers, plain.answers);
    assert!(
        optimized.stats.total() < plain.stats.total(),
        "optimized {} vs plain {}",
        optimized.stats.total(),
        plain.stats.total()
    );
}

#[test]
fn axiomatic_derivations_render_for_all_paper_examples() {
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["l.l <= l", "k = (a.b)*"]).unwrap();
    let prover = Prover::new(&set, ProverConfig::default());
    let cases = [("l*", "l + ()"), ("a.(b.a)*.c", "k.a.c")];
    for (p, q) in cases {
        let pr = parse_regex(&mut ab, p).unwrap();
        let qr = parse_regex(&mut ab, q).unwrap();
        let d = prover
            .prove_inclusion(&pr, &qr)
            .unwrap_or_else(|| panic!("no proof for {p} ⊆ {q}"));
        let text = d.render(&ab);
        assert!(text.contains('⊆'));
        assert!(d.verify(&prover));
    }
}
