//! Cross-protocol agreement: the Section 3.1 agent protocol, the Section 5
//! knowledge-carrying variant, and the related-work decomposition baseline
//! ([30]) all compute the same `p(o, I)` as the centralized engine — and
//! their message accounting satisfies the relations each design promises
//! (carrying never sends more messages than the base protocol;
//! decomposition always sends exactly two messages per site).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq::automata::random::{random_regex, RegexGenConfig};
use rpq::automata::{Alphabet, Nfa, Regex, Symbol};
use rpq::core::eval_product;
use rpq::distributed::{
    run_and_check, run_carrying, run_decomposition_checked, Delivery, Partition,
};
use rpq::graph::generators::random_graph;
use rpq::graph::{Instance, Oid};

fn random_setup(seed: u64, nodes: usize, edges: usize) -> (Alphabet, Instance, Oid, Regex) {
    let ab = Alphabet::from_names(["a", "b", "c"]);
    let syms: Vec<Symbol> = ab.symbols().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let (inst, src) = random_graph(&mut rng, nodes, edges, &syms);
    let mut cfg = RegexGenConfig::new(syms);
    cfg.max_depth = 3;
    let q = random_regex(&mut rng, &cfg);
    (ab, inst, src, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_protocols_compute_the_same_answers(seed in 0u64..10_000) {
        let (ab, inst, src, q) = random_setup(seed, 7, 14);
        let centralized = eval_product(&Nfa::thompson(&q), &inst, src).answers;

        let base = run_and_check(&inst, &ab, src, &q, Delivery::Fifo);
        prop_assert_eq!(&base.answers, &centralized);

        let carrying = run_carrying(&inst, &ab, src, &q);
        prop_assert_eq!(&carrying.answers, &centralized);
        prop_assert!(
            carrying.stats.total() <= base.stats.total(),
            "carrying must not send more messages: {} vs {}",
            carrying.stats.total(),
            base.stats.total()
        );

        for block in [1usize, 3] {
            let part = Partition::blocks(&inst, block);
            let dec = run_decomposition_checked(&inst, &ab, &part, src, &q);
            prop_assert_eq!(&dec.answers, &centralized);
            prop_assert_eq!(dec.messages, 2 * part.num_sites);
        }
    }

    #[test]
    fn concurrent_queries_match_solo_runs(seed in 0u64..5_000) {
        // Section 3.1's multi-query remark: per-query answers are exactly
        // the solo answers, and the aggregate message count is the sum
        // (the destination field isolates queries completely).
        let (ab, inst, src, q1) = random_setup(seed, 6, 12);
        let (_, _, _, q2) = random_setup(seed.wrapping_add(1), 6, 12);
        let solo1 = run_and_check(&inst, &ab, src, &q1, Delivery::Fifo);
        let solo2 = run_and_check(&inst, &ab, src, &q2, Delivery::Fifo);
        let both = rpq::distributed::run_concurrent(
            &inst,
            &ab,
            &[(src, q1.clone()), (src, q2.clone())],
            Delivery::Fifo,
        );
        prop_assert!(both.outcomes.iter().all(|o| o.termination_detected));
        prop_assert_eq!(&both.outcomes[0].answers, &solo1.answers);
        prop_assert_eq!(&both.outcomes[1].answers, &solo2.answers);
        prop_assert_eq!(
            both.stats.total(),
            solo1.stats.total() + solo2.stats.total()
        );
    }

    #[test]
    fn carrying_under_random_delivery_order_is_order_independent(seed in 0u64..2_000) {
        // The carrying protocol's skip decisions depend on message order,
        // but its *answers* must not.
        let (ab, inst, src, q) = random_setup(seed, 6, 12);
        let centralized = eval_product(&Nfa::thompson(&q), &inst, src).answers;
        let res = run_carrying(&inst, &ab, src, &q);
        prop_assert_eq!(&res.answers, &centralized);
    }
}

#[test]
fn decomposition_partition_granularity_tradeoff() {
    // Finer partitions mean more messages but less wasted per-site work;
    // the extremes must bracket each other on a two-component graph.
    let ab = Alphabet::from_names(["a", "b", "c"]);
    let syms: Vec<Symbol> = ab.symbols().collect();
    let mut rng = StdRng::seed_from_u64(77);
    let (inst, src) = random_graph(&mut rng, 24, 60, &syms);
    let mut ab = ab;
    let q = rpq::automata::parse_regex(&mut ab, "a.(b+c)*").unwrap();

    let fine = Partition::singletons(&inst);
    let coarse = Partition::blocks(&inst, 12);
    let rf = run_decomposition_checked(&inst, &ab, &fine, src, &q);
    let rc = run_decomposition_checked(&inst, &ab, &coarse, src, &q);
    assert_eq!(rf.answers, rc.answers);
    assert!(rf.messages > rc.messages);
}

#[test]
fn carrying_saves_on_cycle_heavy_graphs() {
    // Dense cyclic graphs maximize duplicate subqueries — the carrying
    // protocol's skip opportunity.
    let mut ab = Alphabet::new();
    let mut b = rpq::graph::InstanceBuilder::new(&mut ab);
    let n = 10usize;
    for i in 0..n {
        b.edge(&format!("v{i}"), "a", &format!("v{}", (i + 1) % n));
        b.edge(&format!("v{i}"), "a", &format!("v{}", (i + 2) % n));
    }
    let (inst, names) = b.finish();
    let src = names["v0"];
    let q = rpq::automata::parse_regex(&mut ab, "a*").unwrap();
    let base = run_and_check(&inst, &ab, src, &q, Delivery::Fifo);
    let carrying = run_carrying(&inst, &ab, src, &q);
    assert_eq!(base.answers, carrying.answers);
    assert!(carrying.skipped_spawns > 0);
    assert!(carrying.stats.total() < base.stats.total());
}
