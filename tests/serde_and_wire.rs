//! Serialization round trips: instances and stats through serde_json-less
//! serde (using the JSON-like debug of serde's derive is not enough, so we
//! go through the wire codec for messages and through serde's `Serialize`
//! via the `serde_test`-style manual checks the workspace can afford
//! without extra deps: here we use the bytes codec plus structural
//! equality on re-decoded values).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq::automata::random::{random_regex, RegexGenConfig};
use rpq::automata::{Alphabet, Symbol};
use rpq::distributed::message::{codec, Message, Mid};

#[test]
fn message_codec_round_trips_random_queries() {
    let ab0 = Alphabet::from_names(["a", "b", "c"]);
    let syms: Vec<Symbol> = ab0.symbols().collect();
    let cfg = RegexGenConfig::new(syms);
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_regex(&mut rng, &cfg);
        let msg = Message::Subquery {
            mid: Mid(seed as u32, 1),
            sender: 1,
            receiver: 2,
            destination: 0,
            query: q.clone(),
        };
        let bytes = codec::encode(&msg, &ab0);
        let mut ab = ab0.clone();
        let back = codec::decode(bytes, &mut ab).expect("decodes");
        assert_eq!(msg, back, "seed {seed}");
    }
}

#[test]
fn codec_byte_sizes_track_query_size() {
    let mut ab = Alphabet::new();
    let small = rpq::automata::parse_regex(&mut ab, "a").unwrap();
    let big = rpq::automata::parse_regex(&mut ab, "(a.b.c.d.e)*.(f+g+h)*").unwrap();
    let m = |q| Message::Subquery {
        mid: Mid(0, 1),
        sender: 0,
        receiver: 1,
        destination: 0,
        query: q,
    };
    let s1 = codec::encode(&m(small), &ab).len();
    let s2 = codec::encode(&m(big), &ab).len();
    assert!(s2 > s1, "bigger queries cost more bytes on the wire");
}

#[test]
fn control_messages_have_fixed_size() {
    let ab = Alphabet::new();
    let done = Message::Done {
        mid: Mid(7, 9),
        sender: 1,
        receiver: 2,
    };
    let ack = Message::Ack {
        mid: Mid(7, 9),
        sender: 1,
        receiver: 2,
    };
    let ans = Message::Answer {
        mid: Mid(7, 9),
        sender: 1,
        receiver: 2,
    };
    let sd = codec::encode(&done, &ab).len();
    let sa = codec::encode(&ack, &ab).len();
    let sn = codec::encode(&ans, &ab).len();
    assert_eq!(sd, sa);
    assert_eq!(sd, sn);
    assert!(sd <= 20, "control messages stay tiny: {sd} bytes");
}

#[test]
fn instance_survives_alphabet_index_rebuild() {
    // Alphabet serde skips the reverse index; rebuild_index restores it.
    let mut ab = Alphabet::from_names(["x", "y"]);
    let before = ab.get("y");
    ab.rebuild_index();
    assert_eq!(ab.get("y"), before);
}
