//! CRPQ executor agreement: the cost-based join order, semijoin
//! propagation, and per-atom direction choices are *optimizations*, never
//! semantics changes. Every static atom order — and the planner's own —
//! must return exactly the bindings of the naive nested-loop oracle
//! ([`rpq::optimizer::execute_naive`]: every atom evaluated independently
//! with both sides free, then hash-joined), on the immutable `CsrGraph`
//! snapshot and on a post-delta `DeltaGraph` epoch. Budget and
//! cancellation controls must yield sound *subsets* (a truncated atom
//! relation joins to a subset of the full join), with complete
//! terminations exact.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use rpq::automata::random::{random_regex, RegexGenConfig};
use rpq::automata::{Alphabet, Symbol};
use rpq::core::{EvalControl, EvalScratch, FrontierMode, Query};
use rpq::graph::generators::random_graph;
use rpq::graph::{CsrGraph, DeltaGraph, GraphView, Instance, Oid};
use rpq::optimizer::{
    execute_join, execute_naive, plan_join, Crpq, CrpqAtom, HeadBindings, PlannerConfig, Var,
};

/// A random chain-shaped CRPQ `ans(x0, xn) :- x0 -[r0]-> x1, …` with a
/// coin-flip extra atom closing a cycle back to `x0` (so cyclic join
/// graphs are exercised too).
fn random_crpq(rng: &mut StdRng, ab: &Alphabet, atoms: usize, close_cycle: bool) -> Crpq {
    let syms: Vec<Symbol> = ab.symbols().collect();
    let cfg = RegexGenConfig::new(syms);
    let mut crpq_atoms = Vec::new();
    for i in 0..atoms {
        crpq_atoms.push(CrpqAtom {
            query: Query::new(random_regex(rng, &cfg), ab),
            src: Var(i as u32),
            dst: Var(i as u32 + 1),
        });
    }
    if close_cycle {
        crpq_atoms.push(CrpqAtom {
            query: Query::new(random_regex(rng, &cfg), ab),
            src: Var(atoms as u32),
            dst: Var(0),
        });
    }
    let var_names = (0..=atoms).map(|i| format!("x{i}")).collect();
    Crpq {
        atoms: crpq_atoms,
        head: (Var(0), Var(atoms as u32)),
        var_names,
    }
}

/// All atom orders for `n ≤ 3` atoms (every permutation), a sample
/// otherwise.
fn orders(n: usize) -> Vec<Vec<usize>> {
    match n {
        1 => vec![vec![0]],
        2 => vec![vec![0, 1], vec![1, 0]],
        3 => vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ],
        _ => vec![(0..n).collect(), (0..n).rev().collect()],
    }
}

/// Assert `execute_join` under every order (and the planned one) matches
/// the oracle on `graph`.
fn assert_agreement<G: GraphView + Sync>(
    crpq: &Crpq,
    graph: &G,
    heads: HeadBindings<'_>,
) -> Result<Vec<(Oid, Oid)>, TestCaseError> {
    let (oracle, _) = execute_naive(crpq, graph, heads);
    let mut all = orders(crpq.atoms.len());
    all.push(plan_join(crpq, graph.stats(), &PlannerConfig::default(), false, false).order);
    for order in all {
        let mut scratch = EvalScratch::new();
        let res = execute_join(
            crpq,
            &order,
            graph,
            heads,
            FrontierMode::Hybrid,
            &EvalControl::UNLIMITED,
            &mut scratch,
        );
        prop_assert_eq!(&res.pairs, &oracle, "order {:?}", order);
        prop_assert!(res.termination.is_complete());
        prop_assert_eq!(res.stats.atoms.len(), crpq.atoms.len());
    }
    Ok(oracle)
}

fn setup(seed: u64) -> (Alphabet, Instance, Crpq) {
    let ab = Alphabet::from_names(["a", "b", "c"]);
    let syms: Vec<Symbol> = ab.symbols().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let (inst, _) = random_graph(&mut rng, 7, 16, &syms);
    let atoms = 1 + (seed as usize % 2); // 1 or 2 chain atoms
    let crpq = random_crpq(&mut rng, &ab, atoms, seed.is_multiple_of(3));
    (ab, inst, crpq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every atom order (all permutations up to 3 atoms, plus the
    /// cost-based plan) returns the oracle's bindings — on the CSR
    /// snapshot, on a mutated `DeltaGraph` epoch, and under random head
    /// restrictions.
    #[test]
    fn crpq_join_orders_agree_with_the_naive_oracle(seed in 0u64..5_000) {
        let (ab, inst, crpq) = setup(seed);
        let graph = CsrGraph::from(&inst);
        let free = assert_agreement(&crpq, &graph, HeadBindings::default())?;

        // A head restriction drawn from the free answers (plus a stray
        // node) must restrict, not invent.
        if let Some(&(s, _)) = free.first() {
            let sources = [s];
            let restricted =
                assert_agreement(&crpq, &graph, HeadBindings { sources: Some(&sources), targets: None })?;
            prop_assert!(restricted.iter().all(|&(x, _)| x == s));
            prop_assert!(restricted.iter().all(|p| free.contains(p)));
        }

        // Post-delta epoch: mutate the view; both executors track the
        // overlay identically.
        let mut dg = DeltaGraph::from_instance(&inst);
        let nodes: Vec<Oid> = graph.nodes().collect();
        let syms: Vec<Symbol> = ab.symbols().collect();
        dg.add_edge(nodes[seed as usize % nodes.len()], syms[0], nodes[0]);
        dg.add_edge(nodes[0], syms[seed as usize % syms.len()], nodes[nodes.len() - 1]);
        assert_agreement(&crpq, &dg, HeadBindings::default())?;
    }

    /// Early termination is *sound*: any budget yields a subset of the
    /// full binding set with `edges_scanned` within budget, a pre-set
    /// cancellation flag yields a subset, and a complete termination is
    /// exact.
    #[test]
    fn crpq_budgets_and_cancellation_are_sound(seed in 0u64..5_000) {
        let (_ab, inst, crpq) = setup(seed);
        let graph = CsrGraph::from(&inst);
        let (full, _) = execute_naive(&crpq, &graph, HeadBindings::default());
        let plan = plan_join(&crpq, graph.stats(), &PlannerConfig::default(), false, false);

        for budget in [0usize, 1, 2, 5, 17, 1_000_000] {
            let mut scratch = EvalScratch::new();
            let control = EvalControl { budget: Some(budget), cancel: None };
            let res = execute_join(
                &crpq, &plan.order, &graph, HeadBindings::default(),
                FrontierMode::Hybrid, &control, &mut scratch,
            );
            prop_assert!(res.stats.edges_scanned <= budget, "budget {}", budget);
            for p in &res.pairs {
                prop_assert!(full.contains(p), "unsound {:?} at budget {}", p, budget);
            }
            if res.termination.is_complete() {
                prop_assert_eq!(&res.pairs, &full, "complete at budget {}", budget);
            }
        }

        let cancelled = Arc::new(AtomicBool::new(true));
        let mut scratch = EvalScratch::new();
        let control = EvalControl { budget: None, cancel: Some(&cancelled) };
        let res = execute_join(
            &crpq, &plan.order, &graph, HeadBindings::default(),
            FrontierMode::Hybrid, &control, &mut scratch,
        );
        prop_assert!(!res.termination.is_complete());
        for p in &res.pairs {
            prop_assert!(full.contains(p), "unsound {:?} after cancel", p);
        }
    }
}
