//! Hot-path agreement: the direction-optimizing hybrid product BFS is an
//! *optimization*, never a semantics change. Forced-sparse (classic
//! push-only frontier), forced-dense (bitset level with pull steps), and
//! the hybrid switch rule must return identical answer sets — forward and
//! backward, on the immutable `CsrGraph` snapshot and on a post-delta
//! `DeltaGraph` epoch — and must agree with every evaluation engine of
//! Section 2. The pooled [`rpq::core::EvalScratch`] reuse is also pinned
//! here: warm evaluations report `scratch_reused` and allocate no frontier
//! memory, across interleaved queries of different `|Q|·|V|` shapes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq::automata::random::{random_regex, RegexGenConfig};
use rpq::automata::{Alphabet, Nfa, Regex, Symbol};
use rpq::core::{
    eval_product_backward_reversed_csr_with, eval_product_csr, eval_product_csr_with, eval_to,
    DerivativeEngine, Engine, EvalScratch, FrontierMode, OracleEngine, ProductEngine, Query,
    QuotientDfaEngine, ScratchPool, StreamingEngine,
};
use rpq::datalog::{DatalogMagicEngine, DatalogNaiveEngine, DatalogSeminaiveEngine};
use rpq::distributed::{PartitionedBatchEngine, SimulatorEngine};
use rpq::graph::generators::random_graph;
use rpq::graph::{CsrGraph, DeltaGraph, GraphView, Instance, Oid};
use rpq::optimizer::PlannedEngine;

const MODES: [FrontierMode; 4] = [
    FrontierMode::ForcedSparse,
    FrontierMode::ForcedDense,
    FrontierMode::Hybrid,
    // An aggressive tuned discount switches to pull much earlier than the
    // default — answers must be unaffected.
    FrontierMode::HybridTuned { pull_discount: 64 },
];

fn random_setup(seed: u64, nodes: usize, edges: usize) -> (Alphabet, Instance, Oid, Regex) {
    let ab = Alphabet::from_names(["a", "b", "c"]);
    let syms: Vec<Symbol> = ab.symbols().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let (inst, src) = random_graph(&mut rng, nodes, edges, &syms);
    let cfg = RegexGenConfig::new(syms);
    let q = random_regex(&mut rng, &cfg);
    (ab, inst, src, q)
}

/// The nine evaluation paths behind the unified `Engine` trait (the anchor
/// set of `tests/engines_agree.rs`).
fn nine_engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(ProductEngine),
        Box::new(QuotientDfaEngine),
        Box::new(DerivativeEngine),
        Box::new(OracleEngine {
            max_word_len: Some(9),
        }),
        Box::new(StreamingEngine::default()),
        Box::new(DatalogNaiveEngine),
        Box::new(DatalogSeminaiveEngine),
        Box::new(DatalogMagicEngine),
        Box::new(SimulatorEngine::default()),
    ]
}

/// Run all three frontier modes from `source` over `graph` (forward) and
/// assert they agree pairwise; returns the (shared) answer set and the
/// per-mode edge scans, with the hybrid-never-scans-more invariant checked
/// against forced-sparse.
fn modes_forward<G: GraphView>(nfa: &Nfa, graph: &G, source: Oid) -> Vec<Oid> {
    let mut answers: Option<Vec<Oid>> = None;
    let mut sparse_edges = 0usize;
    for mode in MODES {
        let mut scratch = EvalScratch::new();
        let res = eval_product_csr_with(nfa, graph, source, mode, &mut scratch);
        match mode {
            FrontierMode::ForcedSparse => sparse_edges = res.stats.edges_scanned,
            FrontierMode::Hybrid => assert!(
                res.stats.edges_scanned <= sparse_edges,
                "hybrid scanned {} > forced-sparse {} from {source:?}",
                res.stats.edges_scanned,
                sparse_edges
            ),
            FrontierMode::ForcedDense | FrontierMode::HybridTuned { .. } => {}
        }
        match &answers {
            None => answers = Some(res.answers),
            Some(a) => assert_eq!(a, &res.answers, "{mode:?} diverges from {source:?}"),
        }
    }
    answers.unwrap_or_default()
}

/// The backward counterpart of [`modes_forward`] (already-reversed NFA).
fn modes_backward<G: GraphView>(reversed: &Nfa, graph: &G, target: Oid) -> Vec<Oid> {
    let mut answers: Option<Vec<Oid>> = None;
    for mode in MODES {
        let mut scratch = EvalScratch::new();
        let res =
            eval_product_backward_reversed_csr_with(reversed, graph, target, mode, &mut scratch);
        match &answers {
            None => answers = Some(res.answers),
            Some(a) => assert_eq!(a, &res.answers, "{mode:?} diverges to {target:?}"),
        }
    }
    answers.unwrap_or_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Forced-sparse, forced-dense, and hybrid product searches answer
    /// identically — forward and backward, and against all nine engines —
    /// on the `CsrGraph` snapshot *and* on a post-delta `DeltaGraph`
    /// epoch. The hybrid run never scans more edges than forced-sparse.
    #[test]
    fn frontier_modes_agree_with_all_engines(seed in 0u64..10_000) {
        let (ab, inst, src, q) = random_setup(seed, 6, 12);
        let graph = CsrGraph::from(&inst);
        let query = Query::new(q.clone(), &ab);
        let nfa = query.nfa();
        let rev = nfa.reverse();

        // forward, all three modes, anchored on the nine-engine set
        let expected = modes_forward(nfa, &graph, src);
        for engine in nine_engines() {
            let got = engine.eval(&query, &graph, src).answers;
            if engine.name() == "oracle" {
                for o in &got {
                    prop_assert!(expected.binary_search(o).is_ok(), "oracle non-answer");
                }
            } else {
                prop_assert_eq!(&got, &expected, "{} vs frontier modes", engine.name());
            }
        }

        // backward, all three modes, against the unpooled eval_to
        for t in graph.nodes() {
            let back = modes_backward(&rev, &graph, t);
            prop_assert_eq!(&back, &eval_to(&query, &graph, t).answers, "backward {:?}", t);
        }

        // post-delta epoch: mutate the view, modes must track the overlay
        let mut dg = DeltaGraph::from_instance(&inst);
        let nodes: Vec<Oid> = graph.nodes().collect();
        let syms: Vec<Symbol> = ab.symbols().collect();
        dg.add_edge(nodes[seed as usize % nodes.len()], syms[0], nodes[0]);
        dg.add_edge(nodes[0], syms[seed as usize % syms.len()], nodes[nodes.len() - 1]);
        for &s in &nodes {
            let fwd = modes_forward(nfa, &dg, s);
            prop_assert_eq!(&fwd, &eval_product_csr(nfa, &dg, s).answers, "delta fwd {:?}", s);
            let back = modes_backward(&rev, &dg, s);
            prop_assert_eq!(&back, &eval_to(&query, &dg, s).answers, "delta bwd {:?}", s);
        }
    }
}

/// Pooled scratch reuse across interleaved query shapes: a warm
/// [`EvalScratch`] whose tables already cover `|Q|·|V|` reports
/// `scratch_reused = 1` and returns the same answers; growing to a larger
/// shape is a (correct) cold pass; shrinking back is warm again. The
/// [`ScratchPool`] counters track checkout reuse independently.
#[test]
fn scratch_pool_reuse_across_interleaved_shapes() {
    let (ab_s, inst_s, src_s, q_s) = random_setup(11, 8, 20);
    let (ab_l, inst_l, src_l, q_l) = random_setup(23, 60, 240);
    let small = (CsrGraph::from(&inst_s), Nfa::thompson(&q_s), src_s);
    let large = (CsrGraph::from(&inst_l), Nfa::thompson(&q_l), src_l);
    drop((ab_s, ab_l));

    let pool = ScratchPool::new();
    // shape schedule: small (cold) → large (grow) → small (warm) → large
    // (warm) → small (warm); reuse is capacity-driven, not query-driven
    let schedule = [
        (&small, false),
        (&large, false),
        (&small, true),
        (&large, true),
        (&small, true),
    ];
    for (i, ((graph, nfa, src), expect_warm)) in schedule.iter().enumerate() {
        let mut scratch = pool.checkout();
        let res = eval_product_csr_with(nfa, graph, *src, FrontierMode::Hybrid, &mut scratch);
        assert_eq!(
            res.answers,
            eval_product_csr(nfa, graph, *src).answers,
            "pooled answers diverge at step {i}"
        );
        let warm = res.stats.scratch_reused > 0;
        assert_eq!(warm, *expect_warm, "step {i}: warm={warm}");
        drop(scratch);
    }
    // one scratch allocated on the first checkout, reused ever after
    assert_eq!(pool.allocs(), 1, "pool allocated more than once");
    assert_eq!(pool.reuses(), schedule.len() - 1);
    assert_eq!(pool.idle(), 1);
}

/// The serving engines' built-in pools warm up: repeated queries through a
/// `PlannedEngine` and a `PartitionedBatchEngine` hit the pool after the
/// first evaluation, with answers unchanged.
#[test]
fn serving_engines_reuse_their_pools() {
    let (ab, inst, src, q) = random_setup(7, 40, 160);
    let graph = CsrGraph::from(&inst);
    let query = Query::new(q, &ab);

    let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
    let first = planned.eval(&query, &graph, src).answers;
    for _ in 0..3 {
        assert_eq!(planned.eval(&query, &graph, src).answers, first);
    }
    assert_eq!(planned.scratch_pool().allocs(), 1);
    assert!(
        planned.scratch_pool().reuses() >= 3,
        "planned pool never warmed"
    );

    let batch = PartitionedBatchEngine::new(2);
    let sources: Vec<Oid> = graph.nodes().take(10).collect();
    let b1 = batch.eval_batch(&query, &graph, &sources);
    let b2 = batch.eval_batch(&query, &graph, &sources);
    assert_eq!(b1.per_source(), b2.per_source());
    assert!(
        batch.scratch_pool().reuses() > 0,
        "partitioned pool never warmed"
    );
    let t1 = batch.eval_to_batch(&query, &graph, &sources);
    let t2 = batch.eval_to_batch(&query, &graph, &sources);
    assert_eq!(t1.per_source(), t2.per_source());
}
