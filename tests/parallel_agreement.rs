//! Parallel-evaluation agreement: intra-query parallelism is an
//! *optimization*, never a semantics change. The frontier-parallel product
//! BFS, the wave-parallel batch/pairset kernels, and the parallel CRPQ
//! executor must return exactly the sequential answers — across every
//! frontier mode, forward and backward, on the immutable `CsrGraph`
//! snapshot and on a post-delta `DeltaGraph` epoch, at every degree of
//! parallelism. Budget and cancellation under parallelism must yield sound
//! *subsets* with `edges_scanned <= budget`, and the sorted outputs must
//! be bit-for-bit deterministic across repeated parallel runs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::AtomicBool;

use rpq::automata::random::{random_regex, RegexGenConfig};
use rpq::automata::{Alphabet, Regex, Symbol};
use rpq::core::{
    eval_pairs_bound_csr_with, eval_pairs_bound_parallel_csr_with,
    eval_pairs_from_sources_csr_with, eval_pairs_from_sources_parallel_csr_with,
    eval_pairs_to_targets_csr_with, eval_pairs_to_targets_parallel_csr_with,
    eval_product_backward_parallel_reversed_csr_with, eval_product_backward_reversed_csr_with,
    eval_product_batch_csr_with, eval_product_batch_parallel_csr_with, eval_product_csr_with,
    eval_product_parallel_csr_with, eval_product_to_batch_csr_with,
    eval_product_to_batch_parallel_csr_with, EvalControl, EvalScratch, FrontierMode, Query,
    ScratchPool, Termination,
};
use rpq::graph::generators::random_graph;
use rpq::graph::{CsrGraph, DeltaGraph, GraphView, Instance, Oid};
use rpq::optimizer::{execute_join, execute_join_parallel, plan_join, HeadBindings, PlannerConfig};

const MODES: [FrontierMode; 4] = [
    FrontierMode::ForcedSparse,
    FrontierMode::ForcedDense,
    FrontierMode::Hybrid,
    FrontierMode::HybridTuned { pull_discount: 64 },
];

/// Degrees of parallelism to exercise: the sequential delegate, one extra
/// worker, and a small pool.
const DOPS: [usize; 3] = [1, 2, 4];

fn random_setup(seed: u64, nodes: usize, edges: usize) -> (Alphabet, Instance, Oid, Regex) {
    let ab = Alphabet::from_names(["a", "b", "c"]);
    let syms: Vec<Symbol> = ab.symbols().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let (inst, src) = random_graph(&mut rng, nodes, edges, &syms);
    let cfg = RegexGenConfig::new(syms);
    let q = random_regex(&mut rng, &cfg);
    (ab, inst, src, q)
}

/// A post-delta epoch over `inst`: a couple of extra edges keyed off
/// `seed`, so the parallel kernels are also exercised through the overlay
/// adjacency (`DeltaGraph`), not just the flat CSR.
fn post_delta(inst: &Instance, ab: &Alphabet, seed: u64) -> DeltaGraph {
    let mut dg = DeltaGraph::from_instance(inst);
    let nodes: Vec<Oid> = CsrGraph::from(inst).nodes().collect();
    let syms: Vec<Symbol> = ab.symbols().collect();
    dg.add_edge(nodes[seed as usize % nodes.len()], syms[0], nodes[0]);
    dg.add_edge(
        nodes[0],
        syms[seed as usize % syms.len()],
        nodes[nodes.len() - 1],
    );
    dg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The frontier-parallel single-source kernel answers exactly like the
    /// sequential kernel — every mode, every DoP, forward and backward, on
    /// the CSR snapshot and a post-delta epoch.
    #[test]
    fn parallel_product_search_agrees_with_sequential(seed in 0u64..10_000) {
        let (ab, inst, src, q) = random_setup(seed, 40, 160);
        let query = Query::new(q, &ab);
        let nfa = query.nfa();
        let rev = nfa.reverse();
        let csr = CsrGraph::from(&inst);
        let dg = post_delta(&inst, &ab, seed);
        let pool = ScratchPool::with_capacity(8);

        fn check<G: GraphView + Sync>(
            nfa: &rpq::automata::Nfa,
            rev: &rpq::automata::Nfa,
            graph: &G,
            src: Oid,
            pool: &ScratchPool,
        ) -> Result<(), TestCaseError> {
            for mode in MODES {
                let mut seq = EvalScratch::new();
                let fwd = eval_product_csr_with(nfa, graph, src, mode, &mut seq);
                let bwd = eval_product_backward_reversed_csr_with(rev, graph, src, mode, &mut seq);
                for dop in DOPS {
                    let mut scratch = EvalScratch::new();
                    let (res, term) = eval_product_parallel_csr_with(
                        nfa, graph, src, None, mode, &EvalControl::UNLIMITED,
                        dop, pool, &mut scratch,
                    );
                    prop_assert_eq!(&res.answers, &fwd.answers, "fwd {:?} dop={}", mode, dop);
                    prop_assert_eq!(term, Termination::Complete);
                    let (res, term) = eval_product_backward_parallel_reversed_csr_with(
                        rev, graph, src, None, mode, &EvalControl::UNLIMITED,
                        dop, pool, &mut scratch,
                    );
                    prop_assert_eq!(&res.answers, &bwd.answers, "bwd {:?} dop={}", mode, dop);
                    prop_assert_eq!(term, Termination::Complete);
                }
            }
            Ok(())
        }
        check(nfa, &rev, &csr, src, &pool)?;
        check(nfa, &rev, &dg, src, &pool)?;
    }

    /// The wave-parallel batch and pairset kernels reassemble their
    /// per-wave results into exactly the sequential output — batch
    /// forward, batch backward, and all three pairset strategies, at every
    /// DoP, on the CSR snapshot and a post-delta epoch. More than 64
    /// sources forces multiple waves, so the fan-out genuinely splits.
    #[test]
    fn parallel_wave_kernels_agree_with_sequential(seed in 0u64..10_000) {
        let (ab, inst, _, q) = random_setup(seed, 150, 600);
        let query = Query::new(q, &ab);
        let nfa = query.nfa();
        let rev = nfa.reverse();
        let csr = CsrGraph::from(&inst);
        let dg = post_delta(&inst, &ab, seed);
        let pool = ScratchPool::with_capacity(8);

        fn check<G: GraphView + Sync>(
            nfa: &rpq::automata::Nfa,
            rev: &rpq::automata::Nfa,
            graph: &G,
            pool: &ScratchPool,
        ) -> Result<(), TestCaseError> {
            let sources: Vec<Oid> = (0..graph.num_nodes() as u32).map(Oid).collect();
            let targets: Vec<Oid> = (0..graph.num_nodes() as u32).step_by(7).map(Oid).collect();
            let mut seq = EvalScratch::new();
            let batch = eval_product_batch_csr_with(nfa, graph, &sources, &mut seq);
            let to_batch = eval_product_to_batch_csr_with(rev, graph, &targets, &mut seq);
            let from = eval_pairs_from_sources_csr_with(nfa, graph, &sources, &mut seq);
            let to = eval_pairs_to_targets_csr_with(rev, graph, &targets, &mut seq);
            let bound = eval_pairs_bound_csr_with(nfa, graph, &sources, &targets, &mut seq);
            for dop in DOPS {
                let mut scratch = EvalScratch::new();
                let b = eval_product_batch_parallel_csr_with(
                    nfa, graph, &sources, dop, pool, &mut scratch,
                );
                prop_assert_eq!(b.per_source(), batch.per_source(), "batch dop={}", dop);
                let t = eval_product_to_batch_parallel_csr_with(
                    rev, graph, &targets, dop, pool, &mut scratch,
                );
                prop_assert_eq!(t.per_source(), to_batch.per_source(), "to-batch dop={}", dop);
                let f = eval_pairs_from_sources_parallel_csr_with(
                    nfa, graph, &sources, dop, pool, &mut scratch,
                );
                prop_assert_eq!(&f.pairs, &from.pairs, "pairs-from dop={}", dop);
                let t = eval_pairs_to_targets_parallel_csr_with(
                    rev, graph, &targets, dop, pool, &mut scratch,
                );
                prop_assert_eq!(&t.pairs, &to.pairs, "pairs-to dop={}", dop);
                let b = eval_pairs_bound_parallel_csr_with(
                    nfa, graph, &sources, &targets, dop, pool, &mut scratch,
                );
                prop_assert_eq!(&b.pairs, &bound.pairs, "pairs-bound dop={}", dop);
            }
            Ok(())
        }
        check(nfa, &rev, &csr, &pool)?;
        check(nfa, &rev, &dg, &pool)?;
    }

    /// The parallel CRPQ executor (semijoin steps on parallel pairset
    /// kernels) returns exactly the sequential executor's bindings — free
    /// heads and restricted heads, planned order and reversed order.
    #[test]
    fn parallel_crpq_executor_agrees_with_sequential(seed in 0u64..10_000) {
        let ab = Alphabet::from_names(["a", "b", "c"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, _) = random_graph(&mut rng, 30, 90, &syms);
        let cfg = RegexGenConfig::new(syms);
        let atoms = 2 + (seed as usize % 2);
        let crpq_atoms: Vec<rpq::optimizer::CrpqAtom> = (0..atoms)
            .map(|i| rpq::optimizer::CrpqAtom {
                query: Query::new(random_regex(&mut rng, &cfg), &ab),
                src: rpq::optimizer::Var(i as u32),
                dst: rpq::optimizer::Var(i as u32 + 1),
            })
            .collect();
        let crpq = rpq::optimizer::Crpq {
            atoms: crpq_atoms,
            head: (rpq::optimizer::Var(0), rpq::optimizer::Var(atoms as u32)),
            var_names: (0..=atoms).map(|i| format!("x{i}")).collect(),
        };
        let graph = CsrGraph::from(&inst);
        let pool = ScratchPool::with_capacity(8);
        let sources: Vec<Oid> = graph.nodes().step_by(3).collect();
        let head_shapes = [
            HeadBindings::default(),
            HeadBindings { sources: Some(&sources), targets: None },
        ];
        let mut orders = vec![plan_join(&crpq, graph.stats(), &PlannerConfig::default(), false, false).order];
        orders.push((0..crpq.atoms.len()).rev().collect());
        for heads in head_shapes {
            for order in &orders {
                let mut seq = EvalScratch::new();
                let expected = execute_join(
                    &crpq, order, &graph, heads, FrontierMode::Hybrid,
                    &EvalControl::UNLIMITED, &mut seq,
                );
                prop_assert!(expected.termination.is_complete());
                for dop in DOPS {
                    let mut scratch = EvalScratch::new();
                    let res = execute_join_parallel(
                        &crpq, order, &graph, heads, FrontierMode::Hybrid,
                        &EvalControl::UNLIMITED, dop, &pool, &mut scratch,
                    );
                    prop_assert_eq!(&res.pairs, &expected.pairs, "order {:?} dop={}", order, dop);
                    prop_assert!(res.termination.is_complete());
                    prop_assert_eq!(res.stats.atoms.len(), crpq.atoms.len());
                }
            }
        }
    }

    /// Budget soundness under parallelism: for every budget, the parallel
    /// kernel returns a subset of the exhaustive answers, never scans more
    /// than the budget, and a `Complete` termination means the subset is
    /// exact. The per-worker budget leases must never over-scan.
    #[test]
    fn parallel_budget_is_a_sound_subset(seed in 0u64..10_000) {
        let budget = (seed as usize).wrapping_mul(31) % 64;
        let (ab, inst, src, q) = random_setup(seed, 40, 160);
        let query = Query::new(q, &ab);
        let nfa = query.nfa();
        let graph = CsrGraph::from(&inst);
        let pool = ScratchPool::with_capacity(8);

        let mut seq = EvalScratch::new();
        let full = eval_product_csr_with(nfa, &graph, src, FrontierMode::Hybrid, &mut seq);
        let control = EvalControl { budget: Some(budget), cancel: None };
        for dop in DOPS {
            for mode in MODES {
                let mut scratch = EvalScratch::new();
                let (res, term) = eval_product_parallel_csr_with(
                    nfa, &graph, src, None, mode, &control, dop, &pool, &mut scratch,
                );
                prop_assert!(
                    res.stats.edges_scanned <= budget,
                    "scanned {} > budget {} ({:?} dop={})",
                    res.stats.edges_scanned, budget, mode, dop
                );
                for o in &res.answers {
                    prop_assert!(
                        full.answers.binary_search(o).is_ok(),
                        "unsound answer {:?} under budget ({:?} dop={})", o, mode, dop
                    );
                }
                if term == Termination::Complete {
                    prop_assert_eq!(&res.answers, &full.answers, "{:?} dop={}", mode, dop);
                } else {
                    prop_assert_eq!(term, Termination::BudgetExhausted);
                }
            }
        }
    }

    /// A cancellation raised before the search starts stops the parallel
    /// kernel at a level boundary with a sound (possibly empty) subset.
    #[test]
    fn parallel_cancel_is_a_sound_subset(seed in 0u64..10_000) {
        let (ab, inst, src, q) = random_setup(seed, 40, 160);
        let query = Query::new(q, &ab);
        let nfa = query.nfa();
        let graph = CsrGraph::from(&inst);
        let pool = ScratchPool::with_capacity(8);
        let mut seq = EvalScratch::new();
        let full = eval_product_csr_with(nfa, &graph, src, FrontierMode::Hybrid, &mut seq);
        let flag = AtomicBool::new(true);
        let control = EvalControl { budget: None, cancel: Some(&flag) };
        for dop in DOPS {
            let mut scratch = EvalScratch::new();
            let (res, term) = eval_product_parallel_csr_with(
                nfa, &graph, src, None, FrontierMode::Hybrid, &control, dop, &pool, &mut scratch,
            );
            for o in &res.answers {
                prop_assert!(full.answers.binary_search(o).is_ok(), "unsound after cancel");
            }
            // a search that finishes before its first level boundary may
            // complete; anything longer must observe the flag
            match term {
                Termination::Cancelled => {}
                Termination::Complete => prop_assert_eq!(&res.answers, &full.answers),
                other => prop_assert!(false, "unexpected termination {:?} at dop={}", other, dop),
            }
        }
    }
}

/// Sorted parallel outputs are deterministic: repeated runs at the same
/// DoP return bit-for-bit identical answers *and* identical work counters
/// (set-identical levels price identically, so `edges_scanned` is stable
/// without any budget in play).
#[test]
fn parallel_outputs_are_deterministic_across_runs() {
    let (ab, inst, src, q) = random_setup(42, 150, 600);
    let query = Query::new(q, &ab);
    let nfa = query.nfa();
    let graph = CsrGraph::from(&inst);
    let pool = ScratchPool::with_capacity(8);
    let sources: Vec<Oid> = graph.nodes().collect();

    let mut scratch = EvalScratch::new();
    let (first, _) = eval_product_parallel_csr_with(
        nfa,
        &graph,
        src,
        None,
        FrontierMode::Hybrid,
        &EvalControl::UNLIMITED,
        4,
        &pool,
        &mut scratch,
    );
    let first_batch =
        eval_product_batch_parallel_csr_with(nfa, &graph, &sources, 4, &pool, &mut scratch);
    for run in 0..5 {
        let mut scratch = EvalScratch::new();
        let (res, term) = eval_product_parallel_csr_with(
            nfa,
            &graph,
            src,
            None,
            FrontierMode::Hybrid,
            &EvalControl::UNLIMITED,
            4,
            &pool,
            &mut scratch,
        );
        assert_eq!(res.answers, first.answers, "answers drifted on run {run}");
        assert_eq!(
            res.stats.edges_scanned, first.stats.edges_scanned,
            "work counter drifted on run {run}"
        );
        assert_eq!(term, Termination::Complete);
        let batch =
            eval_product_batch_parallel_csr_with(nfa, &graph, &sources, 4, &pool, &mut scratch);
        assert_eq!(
            batch.per_source(),
            first_batch.per_source(),
            "batch output drifted on run {run}"
        );
    }
}
