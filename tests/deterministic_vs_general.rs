//! The Section 5 deterministic-instance special case against the general
//! Theorem 4.3 procedures: general implication is *sound* for deterministic
//! instances (every general implication holds deterministically), the
//! converse fails on specific witnesses, and every deterministic refutation
//! carries a machine-checked counterexample.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rpq::automata::{Alphabet, Regex, Symbol};
use rpq::constraints::deterministic::{det_implies_word, is_deterministic, DetImplication};
use rpq::constraints::implication::word_implies_word;
use rpq::constraints::{ConstraintSet, PathConstraint};

fn random_word(rng: &mut StdRng, syms: &[Symbol], max_len: usize) -> Vec<Symbol> {
    (0..rng.random_range(1..=max_len))
        .map(|_| syms[rng.random_range(0..syms.len())])
        .collect()
}

fn random_system(rng: &mut StdRng, syms: &[Symbol], n: usize) -> ConstraintSet {
    let mut set = ConstraintSet::new();
    for _ in 0..n {
        let u = random_word(rng, syms, 3);
        let v = random_word(rng, syms, 3);
        if rng.random_range(0..2) == 0 {
            set.add(PathConstraint::inclusion(Regex::word(&u), Regex::word(&v)));
        } else {
            set.add(PathConstraint::equality(Regex::word(&u), Regex::word(&v)));
        }
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn general_implication_holds_deterministically(seed in 0u64..20_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ab = Alphabet::new();
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| ab.intern(s)).collect();
        let n = rng.random_range(1..4);
        let set = random_system(&mut rng, &syms, n);
        let u = random_word(&mut rng, &syms, 4);
        let v = random_word(&mut rng, &syms, 4);
        if word_implies_word(&set, &u, &v) {
            prop_assert!(
                det_implies_word(&set, &u, &v).is_implied(),
                "E ⊨ u ⊆ v generally but not deterministically"
            );
        }
    }

    #[test]
    fn deterministic_refutations_are_machine_checked(seed in 0u64..20_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ab = Alphabet::new();
        let syms: Vec<Symbol> = ["a", "b"].iter().map(|s| ab.intern(s)).collect();
        let n = rng.random_range(1..3);
        let set = random_system(&mut rng, &syms, n);
        let u = random_word(&mut rng, &syms, 3);
        let v = random_word(&mut rng, &syms, 3);
        if let DetImplication::Refuted(w) = det_implies_word(&set, &u, &v) {
            prop_assert!(is_deterministic(&w.instance, &ab));
            prop_assert!(set.holds_at(&w.instance, w.source), "witness violates E");
            let ut = w.instance.word_targets(w.source, &u);
            let vt = w.instance.word_targets(w.source, &v);
            prop_assert!(!ut.is_empty());
            prop_assert!(ut.iter().any(|t| !vt.contains(t)));
            // The witness also refutes the general implication (a
            // deterministic counterexample is in particular an instance).
            prop_assert!(!word_implies_word(&set, &u, &v));
        }
    }
}

#[test]
fn separation_witnesses_from_the_paper_discussion() {
    // Families where determinism strictly strengthens implication: the
    // singleton-target contraction.
    let cases: Vec<(&[&str], &str, &str)> = vec![
        (&["a <= c", "a.x <= c"], "a.x", "a"),
        (&["x.y <= c", "x <= c"], "x.y.y", "x.y"),
    ];
    for (axioms, u_src, v_src) in cases {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, axioms.iter().copied()).unwrap();
        let u = rpq::automata::parse_word(&mut ab, u_src).unwrap();
        let v = rpq::automata::parse_word(&mut ab, v_src).unwrap();
        assert!(
            det_implies_word(&set, &u, &v).is_implied(),
            "{u_src} ⊆ {v_src} should hold deterministically"
        );
        assert!(
            !word_implies_word(&set, &u, &v),
            "{u_src} ⊆ {v_src} should NOT hold generally — that's the separation"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn det_implied_constraints_hold_on_random_deterministic_instances(seed in 0u64..20_000) {
        // Semantic end-to-end check: whenever the congruence-closure
        // procedure says E ⊨_det u ⊆ v, every sampled deterministic
        // instance satisfying E satisfies the conclusion.
        use rpq::graph::generators::deterministic_graph;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ab = Alphabet::new();
        let syms: Vec<Symbol> = ["a", "b"].iter().map(|s| ab.intern(s)).collect();
        let n = rng.random_range(1..3);
        let set = random_system(&mut rng, &syms, n);
        let u = random_word(&mut rng, &syms, 3);
        let v = random_word(&mut rng, &syms, 3);
        if !det_implies_word(&set, &u, &v).is_implied() {
            return Ok(());
        }
        let mut hits = 0;
        for _ in 0..40 {
            let (inst, src) = deterministic_graph(&mut rng, 6, &syms, 80);
            if !set.holds_at(&inst, src) {
                continue;
            }
            hits += 1;
            let ut = inst.word_targets(src, &u);
            let vt = inst.word_targets(src, &v);
            prop_assert!(
                ut.iter().all(|t| vt.contains(t)),
                "det-implied constraint violated on a satisfying instance"
            );
        }
        let _ = hits; // some seeds may produce no satisfying samples; fine
    }
}
