//! Property tests for the label-indexed snapshot: `CsrGraph::from` must be
//! a faithful, transposable round-trip of the `Instance` it freezes, and
//! the label index must make the product engine's per-step work
//! proportional to matching edges (the acceptance criterion of the
//! storage-layer refactor).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq::automata::{parse_regex, Alphabet, Nfa, Symbol};
use rpq::core::{eval_product_csr, eval_product_scan};
use rpq::graph::generators::random_graph;
use rpq::graph::{CsrGraph, Instance, InstanceBuilder, Oid};

fn random_instance(seed: u64, nodes: usize, edges: usize) -> (Alphabet, Vec<Symbol>, Instance) {
    let ab = Alphabet::from_names(["a", "b", "c", "d"]);
    let syms: Vec<Symbol> = ab.symbols().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let (inst, _) = random_graph(&mut rng, nodes, edges, &syms);
    (ab, syms, inst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_round_trips_instance(seed in 0u64..10_000) {
        let (_, syms, inst) = random_instance(seed, 12, 40);
        let csr = CsrGraph::from(&inst);

        // same node/edge counts
        prop_assert_eq!(csr.num_nodes(), inst.num_nodes());
        prop_assert_eq!(csr.num_edges(), inst.num_edges());

        for v in inst.nodes() {
            prop_assert_eq!(csr.outdegree(v), inst.outdegree(v));
            // same out(v, sym) sets, per label
            for &sym in &syms {
                let mut scanned: Vec<Oid> = inst
                    .out_edges(v)
                    .iter()
                    .filter(|&&(l, _)| l == sym)
                    .map(|&(_, t)| t)
                    .collect();
                scanned.sort_unstable();
                prop_assert_eq!(csr.out(v, sym), &scanned[..]);
            }
            // label groups partition the row
            let grouped: usize = csr.out_groups(v).map(|(_, ts)| ts.len()).sum();
            prop_assert_eq!(grouped, csr.outdegree(v));
        }

        // per-label statistics add up to the edge count
        let stat_total: usize = csr.stats().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(stat_total, csr.num_edges());
    }

    #[test]
    fn reverse_adjacency_transposes_forward(seed in 0u64..10_000) {
        let (_, syms, inst) = random_instance(seed, 12, 40);
        let csr = CsrGraph::from(&inst);
        let mut forward_total = 0usize;
        for u in csr.nodes() {
            for &sym in &syms {
                for &v in csr.out(u, sym) {
                    forward_total += 1;
                    prop_assert!(
                        csr.rev(v, sym).contains(&u),
                        "edge {u:?}-{sym:?}->{v:?} missing from reverse index"
                    );
                }
            }
        }
        let backward_total: usize = csr.nodes().map(|v| csr.indegree(v)).sum();
        prop_assert_eq!(forward_total, csr.num_edges());
        prop_assert_eq!(backward_total, csr.num_edges());
        // and transposing twice is the identity
        for v in csr.nodes() {
            for &sym in &syms {
                for &u in csr.rev(v, sym) {
                    prop_assert!(csr.out(u, sym).contains(&v));
                }
            }
        }
    }

    #[test]
    fn word_targets_agree_between_forms(seed in 0u64..10_000) {
        let (_, syms, inst) = random_instance(seed, 8, 24);
        let csr = CsrGraph::from(&inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        use rand::Rng as _;
        let word: Vec<Symbol> = (0..rng.random_range(0..5))
            .map(|_| syms[rng.random_range(0..syms.len())])
            .collect();
        prop_assert_eq!(csr.word_targets(Oid(0), &word), inst.word_targets(Oid(0), &word));
    }
}

/// The acceptance criterion of the storage refactor: on a label-skewed
/// graph (one hot label on high-outdegree nodes), the label-indexed product
/// BFS scans a small fraction of the edges the seed's scan-and-filter loop
/// touched, while answering identically.
#[test]
fn label_index_cuts_edges_scanned_on_skewed_graph() {
    let mut ab = Alphabet::new();
    let mut b = InstanceBuilder::new(&mut ab);
    // a spine of cold edges; every spine node also fans out 64 hot edges
    let depth = 20;
    for i in 0..depth {
        b.edge(&format!("n{i}"), "cold", &format!("n{}", i + 1));
        for j in 0..64 {
            b.edge(&format!("n{i}"), "hot", &format!("h{i}_{j}"));
        }
    }
    let (inst, names) = b.finish();
    let src = names["n0"];
    let q = parse_regex(&mut ab, "cold*").unwrap();
    let nfa = Nfa::thompson(&q);

    let scan = eval_product_scan(&nfa, &inst, src);
    let indexed = eval_product_csr(&nfa, &CsrGraph::from(&inst), src);

    assert_eq!(scan.answers, indexed.answers);
    assert_eq!(indexed.answers.len(), depth + 1);
    // the indexed walk touches only the cold edges it follows (a small
    // constant per spine node, from the handful of NFA states)…
    assert!(
        indexed.stats.edges_scanned <= 4 * depth,
        "indexed scanned {}",
        indexed.stats.edges_scanned
    );
    // …while the filter loop pays the hot fanout at every spine node
    assert!(
        indexed.stats.edges_scanned * 10 < scan.stats.edges_scanned,
        "indexed {} vs scan {}",
        indexed.stats.edges_scanned,
        scan.stats.edges_scanned
    );
}
