//! The printed form of a regex is a faithful wire format: for any
//! (smart-constructed) `Regex`, `parse(display(r)) == r` — the AST comes
//! back bit-identical, not merely language-equivalent. This is what lets
//! the serving layer treat query text as the canonical exchange form.
//!
//! The second property exercises the parser's *error* contract on random
//! garbage: reported spans always lie inside the input and rendering a
//! diagnostic never panics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rpq::automata::random::{random_regex, RegexGenConfig};
use rpq::automata::{parse_regex, Alphabet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn printed_regexes_reparse_to_the_same_ast(seed in 0u64..100_000) {
        let mut ab = Alphabet::new();
        // Cover all three identifier flavors the lexer distinguishes:
        // plain, digit/dash-bearing, and underscore-led.
        let syms = vec![ab.intern("a"), ab.intern("b-2"), ab.intern("_part")];
        let cfg = RegexGenConfig::new(syms);
        let mut rng = StdRng::seed_from_u64(seed);
        let r = random_regex(&mut rng, &cfg);
        let printed = r.display(&ab).to_string();
        let reparsed = parse_regex(&mut ab, &printed)
            .unwrap_or_else(|e| panic!("printed form {printed:?} did not reparse: {e}"));
        prop_assert_eq!(&r, &reparsed, "printed form: {}", printed);
    }

    #[test]
    fn error_spans_always_lie_within_the_input(seed in 0u64..100_000) {
        const CHARS: &[char] = &[
            'a', 'b', '.', '+', '*', '?', '(', ')', '[', ']', '"', '\\', 'ε', '∅', ' ',
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.random_range(0..14);
        let s: String = (0..len)
            .map(|_| CHARS[rng.random_range(0..CHARS.len())])
            .collect();
        let mut ab = Alphabet::new();
        match parse_regex(&mut ab, &s) {
            Ok(r) => {
                // Whatever parses must itself round-trip.
                let printed = r.display(&ab).to_string();
                prop_assert_eq!(parse_regex(&mut ab, &printed).as_ref(), Ok(&r));
            }
            Err(e) => {
                let (start, end) = e.span();
                prop_assert!(start <= end, "inverted span in {s:?}: {e}");
                prop_assert!(end <= s.len(), "span past the end of {s:?}: {e}");
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
