//! Soundness and completeness nets around the Section 4 decision
//! procedures:
//!
//! * rewriting is *sound*: if `E ⊨ u ⊆ v` is derived, then every instance
//!   satisfying `E` semantically satisfies `u ⊆ v` (checked on random
//!   instances filtered to satisfy `E`, and on the canonical Lemma 4.4
//!   instance where the equivalence is exact);
//! * rewriting is *complete* on the canonical instance: non-derivable
//!   constraints are violated there;
//! * the general engine's verdicts are certified (witnesses re-verified);
//! * boundedness results are certified equivalences.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use rpq::automata::random::{random_regex, random_word, RegexGenConfig};
use rpq::automata::{Alphabet, Nfa, Symbol};
use rpq::constraints::general::{check, Budget, Refutation, Verdict};
use rpq::constraints::{
    decide_boundedness, lemma44_instance, word_implies_path, word_implies_word, Boundedness,
    ConstraintKind, ConstraintSet, PathConstraint, WordImplication,
};
use rpq::core::eval_product;
use rpq::graph::generators::random_graph;

fn word_set(rng: &mut StdRng, syms: &[Symbol], n_rules: usize) -> ConstraintSet {
    let mut cs = Vec::new();
    for _ in 0..n_rules {
        let lu = 1 + (rng.next_u32() as usize % 3);
        let lv = rng.next_u32() as usize % 3;
        let u = random_word(rng, syms, lu);
        let v = random_word(rng, syms, lv);
        cs.push(PathConstraint {
            lhs: rpq::automata::Regex::word(&u),
            rhs: rpq::automata::Regex::word(&v),
            kind: if rng.next_u32().is_multiple_of(2) {
                ConstraintKind::Inclusion
            } else {
                ConstraintKind::Equality
            },
        });
    }
    ConstraintSet::from_constraints(cs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 4.4 exactness on the canonical instance: for words within the
    /// bound, semantic satisfaction there coincides with derivability.
    #[test]
    fn canonical_instance_is_exact(seed in 0u64..10_000) {
        let ab = Alphabet::from_names(["a", "b"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let set = word_set(&mut rng, &syms, 2);
        let k = 3usize;
        let Ok(ci) = lemma44_instance(&set, &syms, k, &ab) else {
            // size cap or a derived-emptiness set (see CanonicalError) — skip
            return Ok(());
        };
        // sanity: the canonical instance satisfies E (within-bound words)
        for u_len in 0..=k {
            for v_len in 0..=k {
                let u = random_word(&mut rng, &syms, u_len);
                let v = random_word(&mut rng, &syms, v_len);
                let semantic = {
                    let au = eval_product(&Nfa::from_word(&u), &ci.instance, ci.source).answers;
                    let av = eval_product(&Nfa::from_word(&v), &ci.instance, ci.source).answers;
                    au.iter().all(|o| av.binary_search(o).is_ok())
                };
                let derived = word_implies_word(&set, &u, &v);
                prop_assert_eq!(semantic, derived,
                    "u={:?} v={:?}", ab.render_word(&u), ab.render_word(&v));
            }
        }
    }

    /// Soundness on arbitrary instances: derived word implications hold on
    /// every random instance that satisfies `E`.
    #[test]
    fn derived_implications_hold_semantically(seed in 0u64..10_000) {
        let ab = Alphabet::from_names(["a", "b"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let set = word_set(&mut rng, &syms, 2);
        let u = random_word(&mut rng, &syms, 1 + (seed as usize % 3));
        let v = random_word(&mut rng, &syms, seed as usize % 3);
        if !word_implies_word(&set, &u, &v) {
            return Ok(());
        }
        // find instances satisfying E and check u ⊆ v there
        let mut checked = 0;
        for t in 0..40 {
            let (inst, src) = random_graph(&mut StdRng::seed_from_u64(seed * 100 + t), 4, 8, &syms);
            if !set.holds_at(&inst, src) {
                continue;
            }
            checked += 1;
            let au = eval_product(&Nfa::from_word(&u), &inst, src).answers;
            let av = eval_product(&Nfa::from_word(&v), &inst, src).answers;
            prop_assert!(
                au.iter().all(|o| av.binary_search(o).is_ok()),
                "unsound: E ⊨ {:?} ⊆ {:?} but violated",
                ab.render_word(&u), ab.render_word(&v)
            );
        }
        let _ = checked; // zero satisfying instances is fine
    }

    /// Theorem 4.3(ii) refutations produce genuine members of L(p).
    #[test]
    fn path_refutation_witnesses_are_members(seed in 0u64..10_000) {
        let ab = Alphabet::from_names(["a", "b"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let set = word_set(&mut rng, &syms, 2);
        let cfg = RegexGenConfig::new(syms);
        let p = random_regex(&mut rng, &cfg);
        let q = random_regex(&mut rng, &cfg);
        match word_implies_path(&set, &p, &q) {
            WordImplication::Implied => {}
            WordImplication::Refuted(w) => {
                prop_assert!(Nfa::thompson(&p).accepts(&w));
            }
        }
    }

    /// General-engine verdicts are certified: every refutation witness
    /// satisfies E and violates the constraint; `Implied` never coincides
    /// with a random counterexample.
    #[test]
    fn general_verdicts_are_certified(seed in 0u64..2_000) {
        let ab = Alphabet::from_names(["a", "b"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RegexGenConfig::new(syms.clone());
        let set = ConstraintSet::from_constraints([PathConstraint {
            lhs: random_regex(&mut rng, &cfg),
            rhs: random_regex(&mut rng, &cfg),
            kind: ConstraintKind::Inclusion,
        }]);
        let claim = PathConstraint {
            lhs: random_regex(&mut rng, &cfg),
            rhs: random_regex(&mut rng, &cfg),
            kind: ConstraintKind::Inclusion,
        };
        let budget = Budget {
            saturation_rounds: 2,
            chase_seeds: 6,
            repairs: 20,
            random_tries: 60,
            ..Budget::default()
        };
        match check(&set, &claim, &budget) {
            Verdict::Refuted(Refutation::Instance(w)) => {
                prop_assert!(set.holds_at(&w.instance, w.source));
                prop_assert!(!claim.holds_at(&w.instance, w.source));
            }
            Verdict::Refuted(Refutation::Word(_)) => {
                // only possible for word-constraint routes
                prop_assert!(set.all_word_constraints());
            }
            Verdict::Implied { .. } => {
                // spot-check: no random small instance violates it
                for t in 0..30 {
                    let (inst, src) =
                        random_graph(&mut StdRng::seed_from_u64(seed * 31 + t), 4, 8, &syms);
                    if set.holds_at(&inst, src) {
                        prop_assert!(
                            claim.holds_at(&inst, src),
                            "Implied contradicted by random instance"
                        );
                    }
                }
            }
            Verdict::Unknown => {}
        }
    }
}

#[test]
fn boundedness_results_are_certified_equivalences() {
    // every Bounded answer already passed two Theorem 4.3 checks inside
    // decide_boundedness; re-verify semantically on Armstrong truncations.
    let cases: &[(&[&str], &str)] = &[
        (&["a.a = a"], "a*"),
        (&["a.a.a = ()"], "a*"),
        (&["a.b = b.a"], "a.b + b.a"),
        (&["b.a = a", "b.b = b"], "b*.a"),
    ];
    for (lines, query) in cases {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        let p = rpq::automata::parse_regex(&mut ab, query).unwrap();
        match decide_boundedness(&set, &p, &ab).unwrap() {
            Boundedness::Bounded { equivalent, .. } => {
                // semantic check on the materialized Armstrong sphere
                let syms: Vec<Symbol> = ab.symbols().collect();
                let sphere = rpq::constraints::ArmstrongSphere::build(
                    &set,
                    &syms,
                    rpq::constraints::suggested_radius(&set) + 2,
                    200_000,
                )
                .unwrap();
                let (inst, src) = sphere.to_instance(&ab);
                let pa = eval_product(&Nfa::thompson(&p), &inst, src).answers;
                let qa = eval_product(&Nfa::thompson(&equivalent), &inst, src).answers;
                assert_eq!(pa, qa, "E={lines:?} p={query}");
            }
            Boundedness::Unbounded { .. } => {
                panic!("expected bounded for E={lines:?}, p={query}");
            }
        }
    }
}

#[test]
fn unbounded_queries_really_pump() {
    // For E = {aa = a}, (a+b)* is unbounded: no finite q can be equivalent.
    // Witness semantically: b^k answers are pairwise distinct classes.
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["a.a = a"]).unwrap();
    ab.intern("b");
    let p = rpq::automata::parse_regex(&mut ab, "(a+b)*").unwrap();
    match decide_boundedness(&set, &p, &ab).unwrap() {
        Boundedness::Unbounded { .. } => {}
        other => panic!("expected unbounded: {other:?}"),
    }
}

#[test]
fn example1_refutation_is_stable() {
    // The Example 1 literal claim must be refuted with a verified witness
    // (documented discrepancy; see DESIGN.md / EXPERIMENTS.md).
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["(a+b+d+l)*.l = ()"]).unwrap();
    let claim = rpq::constraints::parse_constraint(&mut ab, "(l.a + l.b)*.d = (a+b).d").unwrap();
    match check(&set, &claim, &Budget::default()) {
        Verdict::Refuted(Refutation::Instance(w)) => {
            assert!(set.holds_at(&w.instance, w.source));
            assert!(!claim.holds_at(&w.instance, w.source));
        }
        other => panic!("expected refutation: {other:?}"),
    }
}
