//! # rpq-constraints
//!
//! Path constraints and the implication problem — Section 4 of *Abiteboul &
//! Vianu, "Regular Path Queries with Constraints"*, the paper's main
//! technical contribution.
//!
//! | Paper result | Module |
//! |---|---|
//! | Definition 4.1 (path inclusions/equalities) | [`types`] |
//! | Lemma 4.4 (`→_E` sound & complete), Lemmas 4.5/4.7 (`RewriteTo` is regular) | [`rewrite`] |
//! | Theorem 4.3(i) PTIME word implication, (ii) PSPACE path-by-word implication | [`implication`] |
//! | Lemma 4.4's canonical instance (Figure 4) | [`canonical`] |
//! | Proposition 4.8 Armstrong instance, Lemma 4.9 K-sphere (Figure 5) | [`armstrong`] |
//! | Theorem 4.10 boundedness + effective nonrecursive equivalent | [`boundedness`] |
//! | Theorem 4.2 general implication (budgeted, certified verdicts) | [`general`] |
//! | Section 5: sound axiomatization (future work, built here) | [`axioms`] |
//! | Section 5: the ≤1-outgoing-edge-per-label special case | [`deterministic`] |
//! | Section 4's FO² connection (encoding + bounded countermodels) | [`fo2`] |
//!
//! ## Example: Example 2 of Section 3.2
//!
//! ```
//! use rpq_automata::{parse_regex, Alphabet};
//! use rpq_constraints::{ConstraintSet, implication::word_implies_path};
//!
//! let mut ab = Alphabet::new();
//! let e = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
//! let p = parse_regex(&mut ab, "l*").unwrap();
//! let q = parse_regex(&mut ab, "l + ()").unwrap();
//! // E ⊨ l* = l + ε : the recursive query collapses to a nonrecursive one
//! assert!(word_implies_path(&e, &p, &q).is_implied());
//! assert!(word_implies_path(&e, &q, &p).is_implied());
//! ```

#![warn(missing_docs)]

pub mod armstrong;
pub mod axioms;
pub mod boundedness;
pub mod canonical;
pub mod deterministic;
pub mod fo2;
pub mod general;
pub mod implication;
pub mod rewrite;
pub mod types;

pub use armstrong::{suggested_radius, ArmstrongSphere};
pub use axioms::{prove_constraint, prove_inclusion, Derivation, Prover, ProverConfig, Rule};
pub use boundedness::{
    bounded_under_path_constraints, decide_boundedness, Boundedness, GeneralBoundedness,
};
pub use canonical::{lemma44_instance, CanonicalInstance};
pub use deterministic::{
    det_implies_constraint, det_implies_word, det_implies_word_eq, DetImplication, DetModel,
    DetWitness,
};
pub use fo2::{bounded_countermodel, constraint_sentence, refutation_sentence, Fo2};
pub use general::{check, Budget, Refutation, Verdict, Witness};
pub use implication::{
    word_implies_constraint, word_implies_path, word_implies_word, WordImplication,
};
pub use rewrite::{rewrite_closure_nfa, rewrite_to_nfa, rewrite_to_word_nfa, RewriteSystem};
pub use types::{parse_constraint, ConstraintKind, ConstraintSet, PathConstraint};
