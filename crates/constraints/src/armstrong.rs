//! Armstrong instances for word equalities (Section 4.3).
//!
//! Proposition 4.8: every finite set `E` of word *equalities* has a (usually
//! infinite) Armstrong instance — vertices are the classes of the smallest
//! right-congruence containing `E`, `o = ε̂`, and each `û` has one `a`-edge
//! to `ûa` — satisfying exactly the word equalities implied by `E`.
//!
//! Lemma 4.9 (Figure 5): there is a radius `K` such that outside the
//! K-sphere every vertex has indegree 1 and no edge re-enters the sphere;
//! all "interesting information" lives within radius `K = M + N`.
//!
//! [`ArmstrongSphere`] materializes the sphere to a chosen radius by BFS,
//! canonicalizing classes with the `RewriteTo` automata (the relation
//! `→*_E` is symmetric for equalities, so one membership test decides `≈`).

use rpq_automata::{Alphabet, Nfa, StateId, Symbol};
use rpq_graph::{Instance, Oid};

use crate::rewrite::{rewrite_to_word_nfa, RewriteSystem};
use crate::types::ConstraintSet;

/// A finite truncation of the Armstrong instance.
#[derive(Clone, Debug)]
pub struct ArmstrongSphere {
    /// Canonical (shortest, lex-least) representative of each class;
    /// node ids are indices. Node 0 is `ε̂`.
    pub reps: Vec<Vec<Symbol>>,
    /// BFS depth of each node (= length of its shortest member).
    pub depth: Vec<usize>,
    /// `edges[n] = [(a, m), …]`: the `a`-successor classes.
    pub edges: Vec<Vec<(Symbol, usize)>>,
    /// Edges from radius-boundary nodes whose targets were not materialized.
    pub exits: Vec<(usize, Symbol)>,
    /// The construction radius.
    pub radius: usize,
    /// Symbols the sphere was expanded over.
    pub symbols: Vec<Symbol>,
}

/// Errors from [`ArmstrongSphere::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArmstrongError {
    /// The construction requires word equalities only (Section 4.3).
    NotWordEqualities,
    /// Node budget exceeded (sphere growth is |Σ|^radius in the worst case).
    TooLarge {
        /// Nodes materialized before giving up.
        nodes: usize,
    },
}

impl std::fmt::Display for ArmstrongError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArmstrongError::NotWordEqualities => {
                write!(f, "Armstrong construction requires word equalities")
            }
            ArmstrongError::TooLarge { nodes } => {
                write!(f, "Armstrong sphere exceeded {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for ArmstrongError {}

/// The radius bound of Lemma 4.9: `K = M + N` where `M` is the longest word
/// in `E` and `N` bounds the state count of any `RewriteTo(v)` automaton
/// with `|v| ≤ M`.
pub fn suggested_radius(set: &ConstraintSet) -> usize {
    let rules = RewriteSystem::from_constraints(set);
    let m = set.max_word_len();
    let n = m + rules.total_lhs_len() + 2;
    m + n
}

impl ArmstrongSphere {
    /// Build the sphere of the Armstrong instance for `set` (word
    /// equalities) over `symbols`, to the given `radius`, with a node
    /// budget.
    pub fn build(
        set: &ConstraintSet,
        symbols: &[Symbol],
        radius: usize,
        max_nodes: usize,
    ) -> Result<ArmstrongSphere, ArmstrongError> {
        if !set.all_word_equalities() {
            return Err(ArmstrongError::NotWordEqualities);
        }
        let rules = RewriteSystem::from_constraints(set);

        // Classes are keyed by their *canonical representative* (shortest,
        // lex-least member), computed from the class automaton pre*({w}):
        // since all rules come from equalities, `→*` is symmetric, so
        // L(pre*({w})) is exactly the ≈-class of w.
        let canon_of = |w: &[Symbol]| -> Vec<Symbol> {
            let auto = rewrite_to_word_nfa(w, &rules).nfa;
            shortest_lex_accepted(&auto, symbols).unwrap_or_else(|| w.to_vec())
        };

        let mut reps: Vec<Vec<Symbol>> = vec![canon_of(&[])];
        let mut depth: Vec<usize> = vec![0];
        let mut edges: Vec<Vec<(Symbol, usize)>> = vec![Vec::new()];
        let mut exits: Vec<(usize, Symbol)> = Vec::new();
        let mut index: std::collections::HashMap<Vec<Symbol>, usize> =
            std::collections::HashMap::new();
        index.insert(reps[0].clone(), 0);

        let mut frontier: Vec<usize> = vec![0];
        for d in 0..radius {
            let mut next_frontier = Vec::new();
            for &n in &frontier {
                let rep = reps[n].clone();
                for &a in symbols {
                    let mut wa = rep.clone();
                    wa.push(a);
                    let canon = canon_of(&wa);
                    match index.get(&canon) {
                        Some(&m) => edges[n].push((a, m)),
                        None => {
                            if reps.len() >= max_nodes {
                                return Err(ArmstrongError::TooLarge { nodes: reps.len() });
                            }
                            let m = reps.len();
                            index.insert(canon.clone(), m);
                            reps.push(canon);
                            depth.push(d + 1);
                            edges.push(Vec::new());
                            edges[n].push((a, m));
                            next_frontier.push(m);
                        }
                    }
                }
            }
            frontier = next_frontier;
            if frontier.is_empty() {
                break;
            }
        }
        // record exits: boundary nodes still need successors conceptually
        for &n in &frontier {
            for &a in symbols {
                exits.push((n, a));
            }
        }
        Ok(ArmstrongSphere {
            reps,
            depth,
            edges,
            exits,
            radius,
            symbols: symbols.to_vec(),
        })
    }

    /// Number of materialized classes.
    pub fn num_nodes(&self) -> usize {
        self.reps.len()
    }

    /// In-sphere indegrees.
    pub fn indegrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes()];
        for row in &self.edges {
            for &(_, m) in row {
                deg[m] += 1;
            }
        }
        deg
    }

    /// Lemma 4.9 check: nodes strictly outside the `m_radius`-sphere with
    /// indegree ≥ 2 (should be empty for `m_radius ≥ K`).
    pub fn indegree_violations(&self, m_radius: usize) -> Vec<usize> {
        let deg = self.indegrees();
        (0..self.num_nodes())
            .filter(|&n| self.depth[n] > m_radius && deg[n] >= 2)
            .collect()
    }

    /// Lemma 4.9 check: edges whose tail is outside the `k_radius`-sphere
    /// and whose head is inside (should be empty for `k_radius ≥ K`).
    pub fn reentry_violations(&self, k_radius: usize) -> Vec<(usize, Symbol, usize)> {
        let mut out = Vec::new();
        for (n, row) in self.edges.iter().enumerate() {
            if self.depth[n] <= k_radius {
                continue;
            }
            for &(a, m) in row {
                if self.depth[m] <= k_radius {
                    out.push((n, a, m));
                }
            }
        }
        out
    }

    /// The class reached from `ε̂` by reading `word`, while it stays within
    /// the sphere (`None` once it would step past the materialized part).
    pub fn class_of_word(&self, word: &[Symbol]) -> Option<usize> {
        let mut cur = 0usize;
        for &a in word {
            cur = self.edges[cur]
                .iter()
                .find(|&&(l, _)| l == a)
                .map(|&(_, m)| m)?;
        }
        Some(cur)
    }

    /// Materialize as an [`Instance`] (named by representatives) with the
    /// source `ε̂`; exits are dropped (callers add an `out` sink if needed).
    pub fn to_instance(&self, alphabet: &Alphabet) -> (Instance, Oid) {
        let mut inst = Instance::new();
        for rep in &self.reps {
            inst.add_named_node(&alphabet.render_word(rep));
        }
        for (n, row) in self.edges.iter().enumerate() {
            for &(a, m) in row {
                inst.add_edge(Oid(n as u32), a, Oid(m as u32));
            }
        }
        (inst, Oid(0))
    }
}

/// The shortest, lexicographically least (by the order of `symbols`) word
/// accepted by `nfa`, or `None` for the empty language.
pub fn shortest_lex_accepted(nfa: &Nfa, symbols: &[Symbol]) -> Option<Vec<Symbol>> {
    // distance-to-accept per state (ε edges are free): 0-1 BFS on reversed edges
    let n = nfa.num_states();
    let mut rev_eps: Vec<Vec<StateId>> = vec![Vec::new(); n];
    let mut rev_sym: Vec<Vec<(Symbol, StateId)>> = vec![Vec::new(); n];
    for s in 0..n as StateId {
        for &t in nfa.eps_transitions(s) {
            rev_eps[t as usize].push(s);
        }
        for &(a, t) in nfa.transitions(s) {
            rev_sym[t as usize].push((a, s));
        }
    }
    const INF: usize = usize::MAX;
    let mut dist = vec![INF; n];
    let mut dq = std::collections::VecDeque::new();
    for s in 0..n as StateId {
        if nfa.is_accepting(s) {
            dist[s as usize] = 0;
            dq.push_back(s);
        }
    }
    while let Some(s) = dq.pop_front() {
        let d = dist[s as usize];
        for &p in &rev_eps[s as usize] {
            if d < dist[p as usize] {
                dist[p as usize] = d;
                dq.push_front(p);
            }
        }
        for &(_, p) in &rev_sym[s as usize] {
            if d + 1 < dist[p as usize] {
                dist[p as usize] = d + 1;
                dq.push_back(p);
            }
        }
    }

    let mut set = nfa.start_set();
    let mut best = set.iter().map(|&s| dist[s as usize]).min().unwrap_or(INF);
    if best == INF {
        return None;
    }
    let mut word = Vec::with_capacity(best);
    while best > 0 {
        // choose the least symbol that keeps a shortest completion
        let mut chosen = None;
        for &a in symbols {
            let next = nfa.step(&set, a);
            if next.is_empty() {
                continue;
            }
            let nd = next.iter().map(|&s| dist[s as usize]).min().unwrap_or(INF);
            if nd == best - 1 {
                chosen = Some((a, next));
                break;
            }
        }
        let (a, next) = chosen?; // None can only happen for symbols outside `symbols`
        word.push(a);
        set = next;
        best -= 1;
    }
    Some(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::word_implies_word_eq;

    fn build(lines: &[&str], extra_syms: &[&str], radius: usize) -> (Alphabet, ArmstrongSphere) {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        for s in extra_syms {
            ab.intern(s);
        }
        let syms: Vec<Symbol> = ab.symbols().collect();
        let sphere = ArmstrongSphere::build(&set, &syms, radius, 100_000).unwrap();
        (ab, sphere)
    }

    #[test]
    fn single_loop_class() {
        // E = {a = ε}: one class, a self-loop.
        let (_, sphere) = build(&["a = ()"], &[], 4);
        assert_eq!(sphere.num_nodes(), 1);
        assert_eq!(sphere.edges[0], vec![(sphere.symbols[0], 0)]);
    }

    #[test]
    fn ab_equals_ba_merges() {
        let (ab, sphere) = build(&["a.b = b.a"], &[], 3);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let via_ab = sphere.class_of_word(&[a, b]).unwrap();
        let via_ba = sphere.class_of_word(&[b, a]).unwrap();
        assert_eq!(via_ab, via_ba);
        let aa = sphere.class_of_word(&[a, a]).unwrap();
        assert_ne!(via_ab, aa);
    }

    #[test]
    fn proposition_48_on_truncation() {
        // u(o,I) = v(o,I) iff E ⊨ u = v, for short words well inside radius.
        let (ab, sphere) = build(&["a.a = a", "b.b = b"], &[], 8);
        let mut ab2 = ab.clone();
        let set = ConstraintSet::parse(&mut ab2, ["a.a = a", "b.b = b"]).unwrap();
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let words: Vec<Vec<Symbol>> = vec![
            vec![],
            vec![a],
            vec![b],
            vec![a, a],
            vec![a, b],
            vec![b, a],
            vec![a, a, b],
            vec![a, b, b],
        ];
        for u in &words {
            for v in &words {
                let same_class = sphere.class_of_word(u) == sphere.class_of_word(v);
                let implied = word_implies_word_eq(&set, u, v);
                assert_eq!(same_class, implied, "{:?} vs {:?}", u, v);
            }
        }
    }

    #[test]
    fn lemma_49_properties_hold() {
        let (_, sphere) = build(&["a.b.a = b", "b.b = a.a"], &[], 9);
        let mut ab2 = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab2, ["a.b.a = b", "b.b = a.a"]).unwrap();
        let m = set.max_word_len();
        // indegree 1 outside the M-sphere
        assert!(
            sphere.indegree_violations(m).is_empty(),
            "violations: {:?}",
            sphere.indegree_violations(m)
        );
        // no re-entry past the suggested K
        let k = suggested_radius(&set).min(sphere.radius.saturating_sub(1));
        assert!(sphere.reentry_violations(k).is_empty());
    }

    #[test]
    fn reps_are_canonical_shortest_lex() {
        let (_, sphere) = build(&["b.a = a"], &[], 5);
        // class of "ba" has rep "a" (shortest)
        for (n, rep) in sphere.reps.iter().enumerate() {
            assert_eq!(rep.len(), sphere.depth[n], "rep length equals depth");
        }
    }

    #[test]
    fn to_instance_round_trip() {
        let (ab, sphere) = build(&["a.a = a"], &[], 4);
        let (inst, src) = sphere.to_instance(&ab);
        assert_eq!(inst.num_nodes(), sphere.num_nodes());
        let a = ab.get("a").unwrap();
        // a(o) is the a-successor class of ε̂
        let t = inst.word_targets(src, &[a]);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].index(), sphere.class_of_word(&[a]).unwrap());
    }

    #[test]
    fn rejects_inclusions() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a.a <= a"]).unwrap();
        let syms: Vec<Symbol> = ab.symbols().collect();
        let err = ArmstrongSphere::build(&set, &syms, 3, 1000).unwrap_err();
        assert_eq!(err, ArmstrongError::NotWordEqualities);
    }

    #[test]
    fn shortest_lex_picks_lex_least() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        // language {ba, ab}: shortest-lex with order [a, b] is "ab"
        let r = rpq_automata::Regex::word(&[b, a]).or(rpq_automata::Regex::word(&[a, b]));
        let nfa = Nfa::thompson(&r);
        assert_eq!(shortest_lex_accepted(&nfa, &[a, b]), Some(vec![a, b]));
        // empty language
        let empty = Nfa::thompson(&rpq_automata::Regex::Empty);
        assert_eq!(shortest_lex_accepted(&empty, &[a, b]), None);
        // ε in language
        let eps = Nfa::thompson(&rpq_automata::Regex::word(&[a]).opt());
        assert_eq!(shortest_lex_accepted(&eps, &[a, b]), Some(vec![]));
    }

    #[test]
    fn node_budget_enforced() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a.a.a.a.a.a = a.a.a.a.a"]).unwrap();
        ab.intern("b");
        ab.intern("c");
        let syms: Vec<Symbol> = ab.symbols().collect();
        let err = ArmstrongSphere::build(&set, &syms, 12, 50).unwrap_err();
        assert!(matches!(err, ArmstrongError::TooLarge { .. }));
    }
}
