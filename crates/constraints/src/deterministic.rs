//! Implication over *deterministic* instances — the Section 5 special case.
//!
//! The paper's conclusion singles out "instances whose nodes have at most
//! one outgoing edge with a given label" as "of practical interest" and
//! conjectures that "this property may simplify some of the problems
//! studied here." This module confirms the conjecture for word
//! constraints: over deterministic instances, implication of a word
//! constraint is decidable by **congruence closure on a partial
//! deterministic automaton** — a simple polynomial-time procedure that is
//! both sound and complete, with a counterexample instance extracted on
//! failure.
//!
//! ## Why determinism changes the answer
//!
//! On a deterministic instance every word `w` denotes at most one object:
//! `w(o, I)` is `∅` or the singleton `{δ*(o, w)}`. Three consequences:
//!
//! 1. An inclusion `u ⊆ v` *upgrades to an equality* whenever `u` is
//!    defined: a nonempty singleton inside a singleton forces equality.
//! 2. Definedness is prefix-closed and propagates across equal words:
//!    if `δ*(o,x) = δ*(o,y)` and `xa` is defined, then so is `ya`, with
//!    equal value (this is exactly functional congruence).
//! 3. Two inclusions into the same word *contract*: from `a ⊆ c` and
//!    `a·x ⊆ c`, a deterministic instance where `a·x` is defined must
//!    satisfy `a·x ⊆ a` — all three words hit the single `c`-object —
//!    while in general (Theorem 4.3) this fails: `c(o)` may contain both
//!    targets. This separation is witnessed by
//!    `tests::separating_example_beats_general_implication`.
//!
//! ## The procedure
//!
//! To decide `E ⊨_det u₀ ⊆ v₀`: build the *freest* deterministic model of
//! `E` in which `u₀` is defined — start from the path of `u₀`, then
//! saturate: for every directed constraint `u ⊆ v` of `E` whose left word
//! is defined, create `v`'s path and merge the two endpoints, propagating
//! merges through the transition function (union–find congruence closure).
//! States are only ever created along constraint words, so the model has
//! at most `|u₀| + Σ_{u⊆v∈E}(|u|+|v|)` states and saturation terminates in
//! polynomial time. The conclusion holds iff `v₀` is defined and lands in
//! `u₀`'s class; otherwise the saturated model itself is a verified
//! counterexample (it is deterministic, satisfies `E`, defines `u₀`, and
//! violates `u₀ ⊆ v₀`).
//!
//! Both directions of the soundness/completeness argument are summarized
//! in `DESIGN.md` (the Section 5 extensions table, row
//! `rpq-constraints::deterministic`); the property suite cross-checks
//! against Theorem 4.3's general procedure (`E ⊨ c` implies `E ⊨_det c`,
//! never the reverse).

use std::collections::HashMap;

use rpq_automata::{Alphabet, Symbol};
use rpq_graph::{Instance, Oid};

use crate::types::{ConstraintKind, ConstraintSet, PathConstraint};

/// Outcome of a deterministic-implication check.
#[derive(Clone, Debug)]
pub enum DetImplication {
    /// Every deterministic instance satisfying `E` satisfies the conclusion.
    Implied,
    /// A deterministic counterexample instance.
    Refuted(DetWitness),
}

impl DetImplication {
    /// True when implied.
    pub fn is_implied(&self) -> bool {
        matches!(self, DetImplication::Implied)
    }
}

/// A deterministic instance refuting an implication: it satisfies `E`,
/// defines the premise word, and violates the conclusion.
#[derive(Clone, Debug)]
pub struct DetWitness {
    /// The counterexample instance (deterministic by construction).
    pub instance: Instance,
    /// The source object.
    pub source: Oid,
}

/// The freest deterministic model of a word-constraint set in which a given
/// seed word is defined: a partial deterministic automaton over union–find
/// classes. Exposed so examples and benches can inspect the model the
/// decision procedure builds.
#[derive(Clone, Debug)]
pub struct DetModel {
    parent: Vec<u32>,
    trans: Vec<HashMap<Symbol, u32>>,
    start: u32,
}

impl DetModel {
    /// Build and saturate the model of `set` seeded with `def(seed)`.
    ///
    /// **Precondition:** `set` contains only word constraints (panics
    /// otherwise — this is the same contract as
    /// [`crate::implication::word_implies_path`]).
    pub fn for_premise(set: &ConstraintSet, seed: &[Symbol]) -> DetModel {
        assert!(
            set.all_word_constraints(),
            "deterministic implication requires a word-constraint set"
        );
        let mut m = DetModel {
            parent: vec![0],
            trans: vec![HashMap::new()],
            start: 0,
        };
        m.force(seed);
        m.saturate(set);
        m
    }

    /// Number of union–find classes currently live.
    pub fn num_classes(&mut self) -> usize {
        let n = self.parent.len();
        let mut seen = vec![false; n];
        let mut count = 0;
        for s in 0..n as u32 {
            let r = self.find(s) as usize;
            if !seen[r] {
                seen[r] = true;
                count += 1;
            }
        }
        count
    }

    /// Is `w` defined (does `δ*(start, w)` exist)?
    pub fn defined(&mut self, w: &[Symbol]) -> bool {
        self.walk(w).is_some()
    }

    /// Do `u` and `v` denote the same object (both defined, same class)?
    pub fn same(&mut self, u: &[Symbol], v: &[Symbol]) -> bool {
        match (self.walk(u), self.walk(v)) {
            (Some(x), Some(y)) => self.find(x) == self.find(y),
            _ => false,
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn step(&mut self, s: u32, sym: Symbol) -> Option<u32> {
        let s = self.find(s);
        let t = *self.trans[s as usize].get(&sym)?;
        Some(self.find(t))
    }

    fn walk(&mut self, w: &[Symbol]) -> Option<u32> {
        let mut s = self.find(self.start);
        for &sym in w {
            s = self.step(s, sym)?;
        }
        Some(s)
    }

    /// Walk `w`, creating fresh states along missing edges. Returns the
    /// endpoint and whether anything was created.
    fn force(&mut self, w: &[Symbol]) -> (u32, bool) {
        let mut s = self.find(self.start);
        let mut created = false;
        for &sym in w {
            s = match self.step(s, sym) {
                Some(t) => t,
                None => {
                    let t = self.parent.len() as u32;
                    self.parent.push(t);
                    self.trans.push(HashMap::new());
                    let sc = self.find(s);
                    self.trans[sc as usize].insert(sym, t);
                    created = true;
                    t
                }
            };
        }
        (s, created)
    }

    /// Union–find merge with functional congruence: merging two classes
    /// merges the targets of their shared transition labels, recursively.
    fn merge(&mut self, x: u32, y: u32) -> bool {
        let mut pending = vec![(x, y)];
        let mut changed = false;
        while let Some((x, y)) = pending.pop() {
            let (x, y) = (self.find(x), self.find(y));
            if x == y {
                continue;
            }
            changed = true;
            // Keep the smaller index as root so the start state's class
            // stays rooted at a stable id.
            let (root, other) = if x < y { (x, y) } else { (y, x) };
            self.parent[other as usize] = root;
            let moved = std::mem::take(&mut self.trans[other as usize]);
            for (sym, t) in moved {
                match self.trans[root as usize].get(&sym) {
                    Some(&t2) => pending.push((t, t2)),
                    None => {
                        self.trans[root as usize].insert(sym, t);
                    }
                }
            }
        }
        changed
    }

    /// Fire every directed constraint whose left word is defined, to
    /// fixpoint. Terminates: states are only created along constraint
    /// words (once each) and merges strictly reduce the class count.
    fn saturate(&mut self, set: &ConstraintSet) {
        let mut rules: Vec<(Vec<Symbol>, Vec<Symbol>)> = Vec::new();
        for c in set.iter() {
            let (u, v) = c
                .as_word_pair()
                .expect("all_word_constraints checked in for_premise");
            rules.push((u.clone(), v.clone()));
            if matches!(c.kind, ConstraintKind::Equality) {
                rules.push((v, u));
            }
        }
        loop {
            let mut changed = false;
            for (u, v) in &rules {
                let Some(su) = self.walk(u) else { continue };
                let (sv, created) = self.force(v);
                changed |= created;
                changed |= self.merge(su, sv);
            }
            if !changed {
                break;
            }
        }
    }

    /// Materialize the model as a labeled-graph [`Instance`] (one node per
    /// live class, one edge per defined transition). The result is
    /// deterministic and satisfies the constraint set it was saturated
    /// with.
    pub fn to_instance(&mut self) -> (Instance, Oid) {
        let n = self.parent.len();
        let mut node_of: HashMap<u32, Oid> = HashMap::new();
        let mut instance = Instance::new();
        for s in 0..n as u32 {
            let r = self.find(s);
            node_of.entry(r).or_insert_with(|| instance.add_node());
        }
        for s in 0..n {
            let r = self.find(s as u32);
            if r != s as u32 {
                continue; // transitions were drained into the root on merge
            }
            let entries: Vec<(Symbol, u32)> =
                self.trans[s].iter().map(|(&sym, &t)| (sym, t)).collect();
            for (sym, t) in entries {
                let tc = self.find(t);
                instance.add_edge(node_of[&r], sym, node_of[&tc]);
            }
        }
        let start = self.find(self.start);
        (instance, node_of[&start])
    }
}

/// Decide `E ⊨_det u ⊆ v` (over deterministic instances). Exact; PTIME.
///
/// **Precondition:** `set` contains only word constraints (panics
/// otherwise).
pub fn det_implies_word(set: &ConstraintSet, u: &[Symbol], v: &[Symbol]) -> DetImplication {
    let mut m = DetModel::for_premise(set, u);
    if m.same(u, v) {
        DetImplication::Implied
    } else {
        let (instance, source) = m.to_instance();
        DetImplication::Refuted(DetWitness { instance, source })
    }
}

/// Decide `E ⊨_det u = v`: both inclusion directions, each with its own
/// seeded model (the premise definedness differs per direction).
pub fn det_implies_word_eq(set: &ConstraintSet, u: &[Symbol], v: &[Symbol]) -> DetImplication {
    match det_implies_word(set, u, v) {
        DetImplication::Implied => det_implies_word(set, v, u),
        refuted => refuted,
    }
}

/// Decide `E ⊨_det c` for a word constraint `c`.
///
/// **Precondition:** `set` and `c` are word constraints (panics otherwise).
pub fn det_implies_constraint(set: &ConstraintSet, c: &PathConstraint) -> DetImplication {
    let (u, v) = c
        .as_word_pair()
        .expect("det_implies_constraint requires a word conclusion");
    match c.kind {
        ConstraintKind::Inclusion => det_implies_word(set, &u, &v),
        ConstraintKind::Equality => det_implies_word_eq(set, &u, &v),
    }
}

/// Check that an instance is deterministic: at most one outgoing edge per
/// (node, label). Exposed for tests and the workload generators.
pub fn is_deterministic(instance: &Instance, _alphabet: &Alphabet) -> bool {
    for o in instance.nodes() {
        let mut seen: Vec<Symbol> = Vec::new();
        for &(sym, _) in instance.out_edges(o) {
            if seen.contains(&sym) {
                return false;
            }
            seen.push(sym);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::{word_implies_word, word_implies_word_eq};
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpq_automata::parse_word;

    fn setup(constraints: &[&str]) -> (Alphabet, ConstraintSet) {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, constraints.iter().copied()).unwrap();
        (ab, set)
    }

    fn w(ab: &mut Alphabet, s: &str) -> Vec<Symbol> {
        parse_word(ab, s).unwrap()
    }

    #[test]
    fn separating_example_beats_general_implication() {
        // E = {a ⊆ c, a·x ⊆ c}: deterministically, a, a·x, and c all hit
        // the unique c-object, so a·x ⊆ a. In general this fails (c(o) may
        // contain both targets).
        let (mut ab, set) = setup(&["a <= c", "a.x <= c"]);
        let u = w(&mut ab, "a.x");
        let v = w(&mut ab, "a");
        assert!(det_implies_word(&set, &u, &v).is_implied());
        assert!(
            !word_implies_word(&set, &u, &v),
            "general implication must NOT hold — this is the separation"
        );
    }

    #[test]
    fn refuted_with_verified_deterministic_witness() {
        let (mut ab, set) = setup(&["a <= b"]);
        let u = w(&mut ab, "b");
        let v = w(&mut ab, "a");
        match det_implies_word(&set, &u, &v) {
            DetImplication::Implied => panic!("b ⊆ a must not follow from a ⊆ b"),
            DetImplication::Refuted(wit) => {
                assert!(is_deterministic(&wit.instance, &ab));
                assert!(set.holds_at(&wit.instance, wit.source));
                // def(b) but b ⊄ a at the source.
                assert!(!wit.instance.word_targets(wit.source, &u).is_empty());
                let bu = wit.instance.word_targets(wit.source, &u);
                let av = wit.instance.word_targets(wit.source, &v);
                assert!(bu.iter().any(|t| !av.contains(t)));
            }
        }
    }

    #[test]
    fn inclusion_upgrades_to_equality_when_defined() {
        // E = {a ⊆ b}: with def(a), a ≡ b, so a·w ⊆ b·w AND b·w ⊆ a·w both
        // hold when seeded from a·w.
        let (mut ab, set) = setup(&["a <= b"]);
        let aw = w(&mut ab, "a.x");
        let bw = w(&mut ab, "b.x");
        assert!(det_implies_word(&set, &aw, &bw).is_implied());
        // But seeded from b·x nothing fires: not implied.
        assert!(!det_implies_word(&set, &bw, &aw).is_implied());
    }

    #[test]
    fn equality_conclusion_needs_both_directions() {
        let (mut ab, set) = setup(&["a <= b"]);
        let a = w(&mut ab, "a.x");
        let b = w(&mut ab, "b.x");
        assert!(!det_implies_word_eq(&set, &a, &b).is_implied());
        let (mut ab2, set2) = setup(&["a = b"]);
        let a2 = w(&mut ab2, "a.x");
        let b2 = w(&mut ab2, "b.x");
        assert!(det_implies_word_eq(&set2, &a2, &b2).is_implied());
    }

    #[test]
    fn epsilon_constraints() {
        // Σ*-style returns: {a·b = ε} — from def(ab): ab ~ ε, so abab ~ ab...
        let (mut ab, set) = setup(&["a.b = ()"]);
        let u = w(&mut ab, "a.b.a.b");
        let eps: Vec<Symbol> = vec![];
        assert!(det_implies_word(&set, &u, &eps).is_implied());
        let v = w(&mut ab, "a.b");
        assert!(det_implies_word(&set, &u, &v).is_implied());
    }

    #[test]
    fn general_implication_is_subsumed() {
        // E ⊨ c ⟹ E ⊨_det c on random word-constraint systems.
        let mut rng = StdRng::seed_from_u64(0xDE7);
        for trial in 0..150 {
            let mut ab = Alphabet::new();
            let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| ab.intern(s)).collect();
            let rand_word = |rng: &mut StdRng, ab_len: usize| -> Vec<Symbol> {
                (0..rng.random_range(0..ab_len))
                    .map(|_| syms[rng.random_range(0..syms.len())])
                    .collect()
            };
            let mut set = ConstraintSet::new();
            for _ in 0..rng.random_range(1..4) {
                let u = rand_word(&mut rng, 4);
                let v = rand_word(&mut rng, 4);
                if u.is_empty() && v.is_empty() {
                    continue;
                }
                // Avoid the u ⊆ ε convention wrinkle by using equalities
                // when either side is empty.
                if u.is_empty() || v.is_empty() {
                    set.add(PathConstraint::equality(
                        rpq_automata::Regex::word(&u),
                        rpq_automata::Regex::word(&v),
                    ));
                } else {
                    set.add(PathConstraint::inclusion(
                        rpq_automata::Regex::word(&u),
                        rpq_automata::Regex::word(&v),
                    ));
                }
            }
            let u = rand_word(&mut rng, 5);
            let v = rand_word(&mut rng, 5);
            if word_implies_word(&set, &u, &v) {
                assert!(
                    det_implies_word(&set, &u, &v).is_implied(),
                    "trial {trial}: general implied but det refuted"
                );
            }
            if word_implies_word_eq(&set, &u, &v) {
                assert!(det_implies_word_eq(&set, &u, &v).is_implied());
            }
        }
    }

    #[test]
    fn refutations_always_carry_valid_witnesses() {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for _ in 0..100 {
            let mut ab = Alphabet::new();
            let syms: Vec<Symbol> = ["a", "b"].iter().map(|s| ab.intern(s)).collect();
            let rand_word = |rng: &mut StdRng| -> Vec<Symbol> {
                (0..rng.random_range(1..4))
                    .map(|_| syms[rng.random_range(0..syms.len())])
                    .collect()
            };
            let mut set = ConstraintSet::new();
            for _ in 0..2 {
                set.add(PathConstraint::inclusion(
                    rpq_automata::Regex::word(&rand_word(&mut rng)),
                    rpq_automata::Regex::word(&rand_word(&mut rng)),
                ));
            }
            let u = rand_word(&mut rng);
            let v = rand_word(&mut rng);
            if let DetImplication::Refuted(wit) = det_implies_word(&set, &u, &v) {
                assert!(is_deterministic(&wit.instance, &ab));
                assert!(
                    set.holds_at(&wit.instance, wit.source),
                    "witness violates E"
                );
                let ut = wit.instance.word_targets(wit.source, &u);
                let vt = wit.instance.word_targets(wit.source, &v);
                assert!(!ut.is_empty(), "witness must define the premise word");
                assert!(ut.iter().any(|t| !vt.contains(t)));
            }
        }
    }

    #[test]
    fn model_size_is_polynomial() {
        // States ≤ |seed| + Σ(|lhs|+|rhs|) — check on a chain system.
        let (mut ab, set) = setup(&["a.a <= a", "a.b <= c", "c.a <= a"]);
        let seed = w(&mut ab, "a.a.b");
        let mut m = DetModel::for_premise(&set, &seed);
        assert!(m.num_classes() <= 3 + 2 + 1 + 2 + 1 + 2 + 1 + 1);
    }

    #[test]
    fn chain_contraction_through_shared_target() {
        // {u ⊆ c, v ⊆ c} with v a prefix extension: def(u) where u extends
        // v contracts u ~ v through the single c-object.
        let (mut ab, set) = setup(&["x.y <= c", "x <= c"]);
        let u = w(&mut ab, "x.y");
        let v = w(&mut ab, "x");
        assert!(det_implies_word(&set, &u, &v).is_implied());
        // and then x·y·y ~ x·y by congruence (x ~ x·y, append y)
        let uy = w(&mut ab, "x.y.y");
        assert!(det_implies_word(&set, &uy, &u).is_implied());
        assert!(!word_implies_word(&set, &uy, &u));
    }
}
