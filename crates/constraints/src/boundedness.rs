//! The boundedness problem under word equalities — Theorem 4.10.
//!
//! *It is decidable, given a finite set `E` of word equalities and a regular
//! path expression `p`, whether `E ⊨ p = q` for some query `q` with finite
//! `L(q)`; such a `q` can be constructed in EXPTIME.*
//!
//! Implementation follows the paper's proof:
//! 1. build the K-sphere of the Armstrong instance (Lemma 4.9);
//! 2. form the automaton `F` accepting words that leave the sphere (sphere
//!    transitions + an absorbing `out` state);
//! 3. `p` is bounded iff the quotient `{v | uv ∈ L(p), u ∈ L(F)}` is finite;
//! 4. when bounded, evaluate `p` on a sufficiently expanded sphere and take
//!    the union of the class representatives of the answers as `q`;
//! 5. certify `E ⊨ p = q` with the exact word-constraint procedures of
//!    Theorem 4.3 — the returned result is *verified*, not just constructed.

use rpq_automata::nfa::strongly_connected_components;
use rpq_automata::{Alphabet, Nfa, Regex, Symbol};
use rpq_core::eval_product;

use crate::armstrong::{suggested_radius, ArmstrongError, ArmstrongSphere};
use crate::implication::{word_implies_path, WordImplication};
use crate::types::ConstraintSet;

/// Outcome of the boundedness decision.
#[derive(Clone, Debug)]
pub enum Boundedness {
    /// `E ⊨ p = equivalent`, with `L(equivalent)` finite (both inclusions
    /// certified by the Theorem 4.3 procedures before returning).
    Bounded {
        /// The equivalent nonrecursive query.
        equivalent: Regex,
        /// Its (finite) language, as words.
        words: Vec<Vec<Symbol>>,
    },
    /// Not bounded: the quotient of `L(p)` by the sphere-leaving language is
    /// infinite (`pump` is a word witnessing a pumpable tail).
    Unbounded {
        /// A tail that can be pumped outside the sphere.
        pump: Vec<Symbol>,
    },
}

/// Errors from [`decide_boundedness`].
#[derive(Debug)]
pub enum BoundednessError {
    /// Theorem 4.10 applies to word equalities.
    Constraints(ArmstrongError),
    /// The certification step failed — would indicate a bug, never expected.
    CertificationFailed {
        /// Which direction failed.
        direction: &'static str,
        /// The counterexample word from the implication checker.
        witness: Vec<Symbol>,
    },
}

impl std::fmt::Display for BoundednessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundednessError::Constraints(e) => write!(f, "{e}"),
            BoundednessError::CertificationFailed { direction, .. } => {
                write!(f, "internal error: certification failed ({direction})")
            }
        }
    }
}

impl std::error::Error for BoundednessError {}

/// Longest accepted word of a finite-language NFA (`None` if the language
/// is infinite, `Some(None)`… flattened: returns `None` for infinite,
/// `Some(len)` for finite nonempty/empty languages (0 for `{ε}` and ∅).
fn max_word_len(nfa: &Nfa) -> Option<usize> {
    if !nfa.is_finite_lang() {
        return None;
    }
    let t = nfa.trim();
    let n = t.num_states();
    // condense ε-SCCs, then longest-path DP over the DAG
    let comp = strongly_connected_components(n, |s, f| {
        for &e in t.eps_transitions(s as u32) {
            f(e as usize);
        }
        for &(_, e) in t.transitions(s as u32) {
            f(e as usize);
        }
    });
    let ncomp = comp.iter().copied().max().map_or(0, |m| m + 1);
    // edges between components with weights (symbol=1, eps=0)
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); ncomp];
    for s in 0..n {
        for &e in t.eps_transitions(s as u32) {
            if comp[s] != comp[e as usize] {
                adj[comp[s]].push((comp[e as usize], 0));
            }
        }
        for &(_, e) in t.transitions(s as u32) {
            // finite language ⇒ symbol edges never stay within an SCC
            adj[comp[s]].push((comp[e as usize], 1));
        }
    }
    // longest path from start component to accepting components (memoized DFS;
    // the condensation is acyclic)
    let mut accept_comp = vec![false; ncomp];
    for s in 0..n as u32 {
        if t.is_accepting(s) {
            accept_comp[comp[s as usize]] = true;
        }
    }
    fn longest(
        c: usize,
        adj: &[Vec<(usize, usize)>],
        accept: &[bool],
        memo: &mut Vec<Option<Option<usize>>>,
    ) -> Option<usize> {
        if let Some(m) = memo[c] {
            return m;
        }
        let mut best: Option<usize> = if accept[c] { Some(0) } else { None };
        memo[c] = Some(best); // provisional (acyclic, so no revisit matters)
        for &(d, w) in &adj[c] {
            if let Some(sub) = longest(d, adj, accept, memo) {
                let cand = sub + w;
                if best.is_none_or(|b| cand > b) {
                    best = Some(cand);
                }
            }
        }
        memo[c] = Some(best);
        best
    }
    let mut memo = vec![None; ncomp];
    if n == 0 {
        return Some(0);
    }
    Some(longest(comp[t.start() as usize], &adj, &accept_comp, &mut memo).unwrap_or(0))
}

/// The sphere-leaving automaton `F` of the Theorem 4.10 proof: sphere
/// transitions plus an accepting absorbing `out` state.
fn sphere_exit_automaton(sphere: &ArmstrongSphere) -> Nfa {
    let mut nfa = Nfa::empty(); // state 0 = sphere node 0 (ε̂) = start
    debug_assert!(!sphere.reps.is_empty());
    let mut ids = vec![nfa.start()];
    for _ in 1..sphere.num_nodes() {
        ids.push(nfa.add_state(false));
    }
    let out = nfa.add_state(true);
    for (n, row) in sphere.edges.iter().enumerate() {
        for &(a, m) in row {
            nfa.add_transition(ids[n], a, ids[m]);
        }
    }
    for &(n, a) in &sphere.exits {
        nfa.add_transition(ids[n], a, out);
    }
    for &a in &sphere.symbols {
        nfa.add_transition(out, a, out);
    }
    nfa
}

/// Decide boundedness of `p` under the word equalities `set`
/// (Theorem 4.10). See module docs for the algorithm.
pub fn decide_boundedness(
    set: &ConstraintSet,
    p: &Regex,
    alphabet: &Alphabet,
) -> Result<Boundedness, BoundednessError> {
    // Σ: symbols of E and p (classes of other labels are all trivial).
    let mut symbols = set.symbols();
    symbols.extend(p.symbols());
    symbols.sort();
    symbols.dedup();
    if symbols.is_empty() {
        // p over the empty alphabet: L(p) ⊆ {ε}, trivially bounded.
        let words = p.finite_language(2).unwrap_or_default();
        return Ok(Boundedness::Bounded {
            equivalent: Regex::from_finite_language(words.clone()),
            words,
        });
    }

    let k = suggested_radius(set);
    let sphere =
        ArmstrongSphere::build(set, &symbols, k, 200_000).map_err(BoundednessError::Constraints)?;

    // Quotient of L(p) by the sphere-leaving language L(F).
    let f = sphere_exit_automaton(&sphere);
    let p_nfa = Nfa::thompson(p);
    let reachable = p_nfa.reachable_via(&f);
    let quotient = {
        let mut q = Nfa::empty();
        let off = q.add_nfa(&p_nfa);
        for &s in &reachable {
            q.add_eps(q.start(), s + off);
        }
        // accepting states inherited via add_nfa; fresh start non-accepting,
        // but ε-quotient acceptance flows through the ε edges
        q
    };

    let tail_bound = match max_word_len(&quotient) {
        None => {
            // infinite quotient: extract a pump witness (a word of length
            // > sphere size must traverse a cycle)
            let pump = quotient
                .enumerate_words(sphere.num_nodes() + p_nfa.num_states() + 2, 1)
                .into_iter()
                .next()
                .unwrap_or_default();
            return Ok(Boundedness::Unbounded { pump });
        }
        Some(d) => d,
    };

    // Expand to radius K + D and evaluate p there.
    let radius = k + tail_bound + 1;
    let big = ArmstrongSphere::build(set, &symbols, radius, 400_000)
        .map_err(BoundednessError::Constraints)?;
    let (inst, src) = big.to_instance(alphabet);
    let answers = eval_product(&p_nfa, &inst, src).answers;
    let words: Vec<Vec<Symbol>> = answers
        .iter()
        .map(|o| big.reps[o.index()].clone())
        .collect();
    let equivalent = Regex::from_finite_language(words.clone());

    // Certify E ⊨ p = equivalent with the exact Theorem 4.3 machinery.
    if let WordImplication::Refuted(w) = word_implies_path(set, p, &equivalent) {
        return Err(BoundednessError::CertificationFailed {
            direction: "p ⊆ q",
            witness: w,
        });
    }
    if let WordImplication::Refuted(w) = word_implies_path(set, &equivalent, p) {
        return Err(BoundednessError::CertificationFailed {
            direction: "q ⊆ p",
            witness: w,
        });
    }
    Ok(Boundedness::Bounded { equivalent, words })
}

/// Outcome of the budgeted semi-decision for boundedness under **full path
/// constraints** — the problem the paper leaves open ("It remains open
/// whether boundedness of a path query assuming a set of full path
/// constraints is decidable", end of Section 4.3).
#[derive(Clone, Debug)]
pub enum GeneralBoundedness {
    /// `E ⊨ p = equivalent` with `L(equivalent)` finite, certified by the
    /// named engine (`"word-exact"`, `"regex-saturation"`, or
    /// `"theorem-4.10"` when the word-equality fast path applied).
    Bounded {
        /// The certified nonrecursive equivalent.
        equivalent: Regex,
        /// Which engine certified the equality.
        proof: &'static str,
    },
    /// `L(p)` is already finite — trivially bounded, no constraints needed.
    AlreadyFinite,
    /// Certified unbounded (only produced on the word-equality fragment,
    /// where Theorem 4.10 decides exactly).
    Unbounded {
        /// A pumpable tail witness from Theorem 4.10.
        pump: Vec<Symbol>,
    },
    /// Budgets exhausted — the general problem is open, so `Unknown` is an
    /// honest answer outside the decidable fragment.
    Unknown,
}

/// Budgeted semi-decision of boundedness under arbitrary path constraints.
///
/// Strategy:
/// 1. `L(p)` finite → [`GeneralBoundedness::AlreadyFinite`].
/// 2. Word-equality sets → the exact Theorem 4.10 decision (complete on
///    that fragment: `Bounded` or `Unbounded`, never `Unknown`).
/// 3. Otherwise, enumerate candidate finite equivalents `q_k = L(p) ∩ Σ^{≤k}`
///    for growing `k` and certify `E ⊨ p = q_k` through the Theorem 4.2
///    engine ([`crate::general::check`]) — sound, so a `Bounded` answer is
///    trustworthy; failure within budget returns `Unknown`.
///
/// The candidate family `L(p) ∩ Σ^{≤k}` is complete *relative to the
/// prover* whenever some finite subset of `L(p)` is equivalent to `p`
/// under `E` — which covers every example in the paper (a constraint that
/// collapses `p` into fresh labels outside `L(p)` would need a richer
/// candidate generator; the view-cover search in `rpq-optimizer` handles
/// that separately for cache shapes).
pub fn bounded_under_path_constraints(
    set: &ConstraintSet,
    p: &Regex,
    alphabet: &Alphabet,
    budget: &crate::general::Budget,
    max_candidate_len: usize,
    word_cap: usize,
) -> GeneralBoundedness {
    let p_nfa = Nfa::thompson(p);
    if p_nfa.is_finite_lang() {
        return GeneralBoundedness::AlreadyFinite;
    }

    // Exact fragment: Theorem 4.10.
    if set.all_word_equalities() && !set.is_empty() {
        match decide_boundedness(set, p, alphabet) {
            Ok(Boundedness::Bounded { equivalent, .. }) => {
                return GeneralBoundedness::Bounded {
                    equivalent,
                    proof: "theorem-4.10",
                }
            }
            Ok(Boundedness::Unbounded { pump }) => return GeneralBoundedness::Unbounded { pump },
            Err(_) => {}
        }
    }

    // Budgeted candidate search under full path constraints: test the
    // cumulative word set at every length boundary (per-word testing
    // wastes prover calls; per-length keeps candidates canonical).
    let all: Vec<Vec<Symbol>> = p_nfa.enumerate_words(max_candidate_len, word_cap);
    let mut frontiers: Vec<usize> = Vec::new();
    for i in 1..all.len() {
        if all[i].len() != all[i - 1].len() {
            frontiers.push(i);
        }
    }
    frontiers.push(all.len());
    for cut in frontiers {
        if cut == 0 {
            continue;
        }
        let candidate = Regex::from_finite_language(all[..cut].to_vec());
        let claim = crate::types::PathConstraint::equality(p.clone(), candidate.clone());
        if let crate::general::Verdict::Implied { method } =
            crate::general::check(set, &claim, budget)
        {
            return GeneralBoundedness::Bounded {
                equivalent: candidate,
                proof: method,
            };
        }
    }
    GeneralBoundedness::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(lines: &[&str], query: &str) -> (Alphabet, ConstraintSet, Regex) {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        let p = rpq_automata::parse_regex(&mut ab, query).unwrap();
        (ab, set, p)
    }

    #[test]
    fn a_star_bounded_under_a_eq_eps() {
        let (ab, set, p) = setup(&["a = ()"], "a*");
        match decide_boundedness(&set, &p, &ab).unwrap() {
            Boundedness::Bounded { words, .. } => {
                assert_eq!(words, vec![Vec::<Symbol>::new()]); // just ε
            }
            other => panic!("expected bounded, got {other:?}"),
        }
    }

    #[test]
    fn a_star_bounded_under_aa_eq_a() {
        // {aa = a} ⊨ a* = ε + a
        let (ab, set, p) = setup(&["a.a = a"], "a*");
        match decide_boundedness(&set, &p, &ab).unwrap() {
            Boundedness::Bounded { words, equivalent } => {
                let mut lens: Vec<usize> = words.iter().map(Vec::len).collect();
                lens.sort();
                assert_eq!(lens, vec![0, 1]);
                // ε + a
                let a = ab.get("a").unwrap();
                let expect = Regex::Epsilon.or(Regex::sym(a));
                assert!(rpq_automata::ops::regex_equivalent(&equivalent, &expect));
            }
            other => panic!("expected bounded, got {other:?}"),
        }
    }

    #[test]
    fn a_star_unbounded_without_constraints() {
        let (ab, set, p) = setup(&[], "a*");
        match decide_boundedness(&set, &p, &ab).unwrap() {
            Boundedness::Unbounded { pump } => {
                assert!(!pump.is_empty() || pump.is_empty()); // witness exists
            }
            other => panic!("expected unbounded, got {other:?}"),
        }
    }

    #[test]
    fn finite_query_trivially_bounded() {
        let (ab, set, p) = setup(&["a.b = b.a"], "a.b + b.a");
        match decide_boundedness(&set, &p, &ab).unwrap() {
            Boundedness::Bounded { words, .. } => {
                // both words collapse to the same class; rep appears once
                assert_eq!(words.len(), 1);
            }
            other => panic!("expected bounded, got {other:?}"),
        }
    }

    #[test]
    fn star_bounded_only_in_one_letter() {
        // {aa = a}: (a+b)* is NOT bounded (b can pump), a* is.
        let (ab, set, p) = setup(&["a.a = a"], "(a+b)*");
        match decide_boundedness(&set, &p, &ab).unwrap() {
            Boundedness::Unbounded { .. } => {}
            other => panic!("expected unbounded, got {other:?}"),
        }
    }

    #[test]
    fn loop_through_equality_cycle_is_bounded() {
        // {a.a.a = ()} : a* collapses to ε + a + aa.
        let (ab, set, p) = setup(&["a.a.a = ()"], "a*");
        match decide_boundedness(&set, &p, &ab).unwrap() {
            Boundedness::Bounded { words, .. } => {
                let mut lens: Vec<usize> = words.iter().map(Vec::len).collect();
                lens.sort();
                assert_eq!(lens, vec![0, 1, 2]);
            }
            other => panic!("expected bounded, got {other:?}"),
        }
    }

    #[test]
    fn inclusion_sets_are_rejected() {
        let (ab, set, p) = setup(&["a.a <= a"], "a*");
        assert!(matches!(
            decide_boundedness(&set, &p, &ab),
            Err(BoundednessError::Constraints(_))
        ));
    }

    #[test]
    fn max_word_len_helper() {
        let mut ab = Alphabet::new();
        let r = rpq_automata::parse_regex(&mut ab, "a.b.c + a.b").unwrap();
        assert_eq!(max_word_len(&Nfa::thompson(&r)), Some(3));
        let inf = rpq_automata::parse_regex(&mut ab, "a.b*").unwrap();
        assert_eq!(max_word_len(&Nfa::thompson(&inf)), None);
        let eps = rpq_automata::parse_regex(&mut ab, "()").unwrap();
        assert_eq!(max_word_len(&Nfa::thompson(&eps)), Some(0));
        let empty = rpq_automata::parse_regex(&mut ab, "[]").unwrap();
        assert_eq!(max_word_len(&Nfa::thompson(&empty)), Some(0));
    }

    #[test]
    fn empty_query_is_bounded() {
        let (ab, set, p) = setup(&["a.a = a"], "[]");
        match decide_boundedness(&set, &p, &ab).unwrap() {
            Boundedness::Bounded { words, .. } => assert!(words.is_empty()),
            other => panic!("expected bounded, got {other:?}"),
        }
    }
    #[test]
    fn general_boundedness_word_equality_fast_path() {
        // {ll = l}: l* collapses — routed through Theorem 4.10.
        let (ab, set, p) = setup(&["l.l = l"], "l*");
        match bounded_under_path_constraints(
            &set,
            &p,
            &ab,
            &crate::general::Budget::default(),
            4,
            32,
        ) {
            GeneralBoundedness::Bounded { equivalent, proof } => {
                assert_eq!(proof, "theorem-4.10");
                assert!(equivalent.finite_language(8).is_some());
            }
            other => panic!("expected bounded, got {other:?}"),
        }
    }

    #[test]
    fn general_boundedness_with_path_inclusions() {
        // A genuine PATH constraint (star on the left): a* ⊆ a + ε makes a*
        // bounded — outside Theorem 4.10's fragment, certified by the
        // Theorem 4.2 saturation engine.
        let (ab, set, p) = setup(&["a* <= a + ()"], "a*");
        match bounded_under_path_constraints(
            &set,
            &p,
            &ab,
            &crate::general::Budget::default(),
            3,
            16,
        ) {
            GeneralBoundedness::Bounded { equivalent, proof } => {
                assert_ne!(proof, "theorem-4.10");
                let words = equivalent.finite_language(8).expect("finite");
                assert!(words.len() <= 2, "{words:?}");
            }
            other => panic!("expected bounded, got {other:?}"),
        }
    }

    #[test]
    fn general_boundedness_already_finite() {
        let (ab, set, p) = setup(&["a.a = a"], "a.b + b");
        assert!(matches!(
            bounded_under_path_constraints(
                &set,
                &p,
                &ab,
                &crate::general::Budget::default(),
                3,
                16
            ),
            GeneralBoundedness::AlreadyFinite
        ));
    }

    #[test]
    fn general_boundedness_unknown_when_actually_unbounded() {
        // No constraint helps (a+b)*: honest Unknown outside the exact
        // fragment (the set mixes an inclusion, so Theorem 4.10 is off).
        let (ab, set, p) = setup(&["c <= d"], "(a+b)*");
        assert!(matches!(
            bounded_under_path_constraints(
                &set,
                &p,
                &ab,
                &crate::general::Budget::default(),
                2,
                12
            ),
            GeneralBoundedness::Unknown
        ));
    }

    #[test]
    fn general_boundedness_unbounded_via_theorem_410() {
        // Word equalities that do NOT bound (ab = ba leaves (ab)* infinite
        // is false — it bounds nothing but stays infinite): use a system
        // that certifies Unbounded through the exact decision.
        let (ab, set, p) = setup(&["a.b = b.a"], "a*");
        match bounded_under_path_constraints(
            &set,
            &p,
            &ab,
            &crate::general::Budget::default(),
            3,
            16,
        ) {
            GeneralBoundedness::Unbounded { pump } => assert!(!pump.is_empty() || pump.is_empty()),
            other => panic!("expected unbounded, got {other:?}"),
        }
    }
}
