//! The prefix rewrite system `→_E` and the `RewriteTo` automata
//! (Lemmas 4.4, 4.5, 4.7).
//!
//! Each word inclusion `u ⊆ v` contributes a rewrite rule `u → v` applied
//! *to prefixes only*: `x·w → y·w` when `x → y ∈ E`. Lemma 4.4 proves
//! `E ⊨ u ⊆ v  iff  u →*_E v` — prefix rewriting is sound and complete for
//! word-constraint implication.
//!
//! Lemma 4.5/4.7 show `RewriteTo(p) = {u | ∃v ∈ L(p): u →*_E v}` is regular,
//! via a PDA that loads the input on its stack and rewrites prefixes. We
//! implement the equivalent *pre\*-saturation* directly on an NFA: starting
//! from an automaton for `L(p)` rooted at a start state `s₀`, add (once per
//! rule) a chain spelling the rule's left-hand side out of `s₀`, and then
//! saturate: whenever the rule's right-hand side can be read from `s₀` to a
//! state `t`, connect the chain's last transition to `t`. The construction
//! is polynomial and yields exactly `pre*(L(p))` under prefix rewriting —
//! the same language as the paper's PDA argument.

use rpq_automata::{Alphabet, Nfa, Regex, StateId, Symbol};

use crate::types::{ConstraintSet, PathConstraint};

/// A word-level prefix rewrite system extracted from a constraint set.
#[derive(Clone, Debug, Default)]
pub struct RewriteSystem {
    /// Rules `lhs → rhs` (words).
    pub rules: Vec<(Vec<Symbol>, Vec<Symbol>)>,
}

impl RewriteSystem {
    /// Extract the rules from the *word* constraints of `E` (an inclusion
    /// `u ⊆ v` gives `u → v`; an equality gives both directions). Non-word
    /// constraints are ignored — callers that need exactness must check
    /// [`ConstraintSet::all_word_constraints`] first.
    ///
    /// Dedup is hash-based, so extraction is linear in the total rule size
    /// — constraint sets with thousands of (often duplicated) word
    /// constraints no longer pay the quadratic `Vec::contains` scan per
    /// rule (bench `t2_word_implication`, `rewrite_system_build` series).
    pub fn from_constraints(set: &ConstraintSet) -> RewriteSystem {
        let mut rules = Vec::new();
        let mut seen: std::collections::HashSet<(Vec<Symbol>, Vec<Symbol>)> =
            std::collections::HashSet::new();
        for c in set.iter() {
            if let Some((u, v)) = c.as_word_pair() {
                let as_constraint = PathConstraint {
                    lhs: Regex::word(&u),
                    rhs: Regex::word(&v),
                    kind: c.kind,
                };
                for (l, r) in as_constraint.as_inclusions() {
                    let rule = (
                        l.as_word().expect("word constraint"),
                        r.as_word().expect("word constraint"),
                    );
                    if seen.insert(rule.clone()) {
                        rules.push(rule);
                    }
                }
            }
        }
        RewriteSystem { rules }
    }

    /// One-step successors of `w` under prefix rewriting (first-application
    /// order, deduplicated). Allocates once per *distinct* successor; the
    /// duplicate check is a hash probe, not a linear scan of the output.
    pub fn step(&self, w: &[Symbol]) -> Vec<Vec<Symbol>> {
        let mut out: Vec<Vec<Symbol>> = Vec::new();
        let mut seen: std::collections::HashSet<Vec<Symbol>> = std::collections::HashSet::new();
        for (lhs, rhs) in &self.rules {
            if w.len() >= lhs.len() && &w[..lhs.len()] == lhs.as_slice() {
                let mut next = Vec::with_capacity(rhs.len() + w.len() - lhs.len());
                next.extend_from_slice(rhs);
                next.extend_from_slice(&w[lhs.len()..]);
                if seen.insert(next.clone()) {
                    out.push(next);
                }
            }
        }
        out
    }

    /// BFS derivation `u →* v` with an explicit witness chain (a
    /// *certificate* for the implication `E ⊨ u ⊆ v`). Bounded by
    /// `max_visited` distinct words and by an intermediate-word length cap
    /// (word-growing rules make the frontier explode otherwise) — use
    /// [`rewrite_to_word_nfa`] for the unbounded decision (PTIME); this is
    /// the explainability path.
    pub fn derive(
        &self,
        u: &[Symbol],
        v: &[Symbol],
        max_visited: usize,
    ) -> Option<Vec<Vec<Symbol>>> {
        use std::collections::{HashMap, VecDeque};
        if u == v {
            return Some(vec![u.to_vec()]);
        }
        let max_rhs = self.rules.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
        let max_len = u.len().max(v.len()) + 4 * (max_rhs + 1) + 8;
        let mut parent: HashMap<Vec<Symbol>, Vec<Symbol>> = HashMap::new();
        let mut queue: VecDeque<Vec<Symbol>> = VecDeque::new();
        queue.push_back(u.to_vec());
        parent.insert(u.to_vec(), Vec::new()); // sentinel
        let mut visited = 0usize;
        while let Some(w) = queue.pop_front() {
            visited += 1;
            if visited > max_visited {
                return None;
            }
            if w.len() > max_len {
                continue;
            }
            for next in self.step(&w) {
                if parent.contains_key(&next) {
                    continue;
                }
                parent.insert(next.clone(), w.clone());
                if next == v {
                    // reconstruct chain
                    let mut chain = vec![next.clone()];
                    let mut cur = w.clone();
                    loop {
                        chain.push(cur.clone());
                        let p = parent[&cur].clone();
                        if p.is_empty() && cur == u {
                            break;
                        }
                        cur = p;
                    }
                    chain.reverse();
                    return Some(chain);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// Maximum left-hand-side length (bounds the saturation chain states).
    pub fn max_lhs_len(&self) -> usize {
        self.rules.iter().map(|(l, _)| l.len()).max().unwrap_or(0)
    }

    /// Total length of all left-hand sides (the paper's `N` ingredient for
    /// the K-sphere radius: the `RewriteTo` NFA has at most
    /// `|target| + Σ|lhs| + 1` states).
    pub fn total_lhs_len(&self) -> usize {
        self.rules.iter().map(|(l, _)| l.len()).sum()
    }

    /// Render the rules.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        self.rules
            .iter()
            .map(|(l, r)| format!("{} -> {}", alphabet.render_word(l), alphabet.render_word(r)))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The saturated automaton for `RewriteTo(target)` together with the
/// bookkeeping needed to answer membership and size questions.
#[derive(Clone, Debug)]
pub struct RewriteToAutomaton {
    /// Accepts exactly `{u | ∃v ∈ L(target): u →*_E v}`.
    pub nfa: Nfa,
    /// Saturation rounds until fixpoint (diagnostic).
    pub rounds: usize,
    /// Transitions added by saturation (diagnostic).
    pub added_edges: usize,
}

/// Build `RewriteTo(p)` for a regular target by pre\*-saturation
/// (Lemma 4.7). For a single word target use [`rewrite_to_word_nfa`].
pub fn rewrite_to_nfa(target: &Nfa, rules: &RewriteSystem) -> RewriteToAutomaton {
    // The saturation requires a single designated root out of which both the
    // target language and the rule chains are read.
    let mut nfa = Nfa::empty();
    let off = nfa.add_nfa(target);
    let root = nfa.start();
    nfa.add_eps(root, target.start() + off);

    // Per-rule chain states: root --x1--> c1 --x2--> ... --x_{m-1}--> c_{m-1};
    // `tail[i]` is (state, last symbol) so saturation adds `state --xm--> t`.
    enum Tail {
        Edge(StateId, Symbol),
        Epsilon, // lhs = ε: saturation adds ε-edges from root
    }
    let mut tails: Vec<Tail> = Vec::with_capacity(rules.rules.len());
    for (lhs, _) in &rules.rules {
        if lhs.is_empty() {
            tails.push(Tail::Epsilon);
            continue;
        }
        let mut cur = root;
        for &sym in &lhs[..lhs.len() - 1] {
            let next = nfa.add_state(false);
            nfa.add_transition(cur, sym, next);
            cur = next;
        }
        tails.push(Tail::Edge(cur, *lhs.last().expect("non-empty lhs")));
    }

    // Saturate: for each rule, find all states reachable from the root by
    // reading the rule's rhs (a word), and wire the chain tail to them.
    let mut rounds = 0usize;
    let mut added_edges = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for (i, (_, rhs)) in rules.rules.iter().enumerate() {
            let targets = reachable_by_word(&nfa, root, rhs);
            for t in targets {
                let added = match &tails[i] {
                    Tail::Edge(state, sym) => nfa.add_transition(*state, *sym, t),
                    Tail::Epsilon => nfa.add_eps(root, t),
                };
                if added {
                    added_edges += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    RewriteToAutomaton {
        nfa,
        rounds,
        added_edges,
    }
}

/// `RewriteTo(v)` for a single word `v` (Lemma 4.5).
pub fn rewrite_to_word_nfa(v: &[Symbol], rules: &RewriteSystem) -> RewriteToAutomaton {
    rewrite_to_nfa(&Nfa::from_word(v), rules)
}

/// Pre\*-saturation closure of `target` under the *full* constraint set —
/// the Lemma 4.7 construction generalized from word rules to regular-side
/// rules, with the polarity certification demands: the returned automaton
/// accepts only words `u` with `E ⊨ answers(u) ⊆ answers(target)` at the
/// constrained source, so `L(q) ⊆ L(closure)` *soundly* certifies
/// `E ⊨ q ⊆ target`.
///
/// Each inclusion `P ⊆ R` of `set` (equalities contribute both directions)
/// is embedded as a non-accepting fragment reading `L(P)` out of the root;
/// how its exits are wired depends on the shape of `R`:
///
/// * **Single-word `R = {r}`** — answer semantics are right-congruent
///   (`answers(P) ⊆ answers(r)` gives `answers(x·w) ⊆ answers(r·w)` for
///   every `x ∈ L(P)`), so the exits are ε-wired to every state the root
///   reaches by reading `r` — the word saturation of [`rewrite_to_nfa`].
///   Only ε-edges over a fixed state set are added, so this runs to its
///   exact fixpoint.
/// * **Multi-word `R`** — the constraint only promises an `R`-path
///   spelling *some* word of `L(R)`, so a continuation `w` is certified
///   after `L(P)` only when `y·w` is already certified for **every**
///   `y ∈ L(R)`. (Existential wiring here is unsound: under `{a = b + c}`
///   it would certify `a.x ⊆ b.x`, which the satisfying instance
///   `s -a→ m, s -c→ m, m -x→ t` refutes.) The universal continuation
///   language `K = {w | ∀y ∈ L(R): y·w ∈ L(closure)}` is computed by
///   `universal_continuations` and attached behind the exits as a fresh
///   sub-automaton. Since that adds states, the outer loop re-runs word
///   saturation and re-derives `K` until nothing new is certified or a
///   round cap is hit; capping — like skipping a rule whose construction
///   exceeds its budget — loses only completeness, never soundness.
///
/// Completeness holds on the word-constraint fragment (Lemma 4.4); on
/// general regular constraints the closure is a sound under-approximation
/// — exactly the right polarity for certification, which must never
/// accept an unsound rewrite.
pub fn rewrite_closure_nfa(set: &ConstraintSet, target: &Nfa) -> RewriteToAutomaton {
    use rpq_automata::ops::included_antichain;

    /// Universal-wiring rounds before giving up on a fixpoint (each round
    /// may add a fresh `K` sub-automaton, so unlike the ε-only word
    /// saturation this loop has no natural termination guarantee).
    const MAX_UNIVERSAL_ROUNDS: usize = 8;

    let mut nfa = Nfa::empty();
    let off = nfa.add_nfa(target);
    let root = nfa.start();
    nfa.add_eps(root, target.start() + off);

    // Embed each rule's lhs as a reading fragment out of the root, and
    // split the rules by rhs shape: single-word rhs saturates by ε-wiring,
    // everything else goes through the universal construction.
    let mut word_rules: Vec<(Vec<StateId>, Vec<Symbol>)> = Vec::new();
    let mut regex_rules: Vec<(Vec<StateId>, Nfa, Nfa)> = Vec::new();
    for c in set.iter() {
        for (lhs, rhs) in c.as_inclusions() {
            let lhs_nfa = Nfa::thompson(&lhs);
            let frag = nfa.add_nfa(&lhs_nfa);
            nfa.add_eps(root, lhs_nfa.start() + frag);
            let mut exits = Vec::new();
            for s in 0..lhs_nfa.num_states() as StateId {
                if lhs_nfa.is_accepting(s) {
                    nfa.set_accepting(s + frag, false);
                    exits.push(s + frag);
                }
            }
            if let Some(word) = rhs.as_word() {
                word_rules.push((exits, word));
            } else {
                let rhs_nfa = Nfa::thompson(&rhs).trim();
                if rhs_nfa.is_empty_lang() {
                    // `P ⊆ ∅` pins answers(P) to ∅ on satisfying
                    // instances; certifying nothing through it is sound.
                    continue;
                }
                regex_rules.push((exits, lhs_nfa, rhs_nfa));
            }
        }
    }

    let mut rounds = 0usize;
    let mut added_edges = 0usize;
    let mut universal_rounds = 0usize;
    loop {
        // Word saturation to fixpoint over the current state set.
        loop {
            rounds += 1;
            let mut changed = false;
            for (exits, rhs) in &word_rules {
                for t in reachable_by_word(&nfa, root, rhs) {
                    for &e in exits {
                        if e != t && nfa.add_eps(e, t) {
                            added_edges += 1;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Universal wiring for regex-sided rules (may add states).
        universal_rounds += 1;
        let mut changed = false;
        for (exits, lhs_nfa, rhs_nfa) in &regex_rules {
            let Some(k) = universal_continuations(&nfa, rhs_nfa) else {
                continue; // K = ∅ or over budget: skip the rule (sound)
            };
            if k.is_empty_lang() {
                continue;
            }
            // Skip when L(lhs)·K is already certified, so the loop
            // reaches a fixpoint instead of stacking equal sub-automata.
            if included_antichain(&Nfa::concat(lhs_nfa, &k), &nfa).is_ok() {
                continue;
            }
            let koff = nfa.add_nfa(&k);
            for &e in exits {
                if nfa.add_eps(e, k.start() + koff) {
                    added_edges += 1;
                }
            }
            changed = true;
        }
        if !changed || universal_rounds >= MAX_UNIVERSAL_ROUNDS {
            break;
        }
    }

    RewriteToAutomaton {
        nfa,
        rounds,
        added_edges,
    }
}

/// The universal continuation language `K = {w | ∀y ∈ L(rhs): y·w ∈ L(nfa)}`
/// as a fresh automaton, or `None` when `K` is empty or the construction
/// exceeds its budget — callers skip the rule either way, which
/// under-approximates the closure but never over-accepts.
///
/// `rhs` must be trimmed with a non-empty language. The subset-states of
/// `nfa` reachable from its start via words of `L(rhs)` (the *profiles*)
/// are collected by a product walk; because `rhs` is trimmed, stepping the
/// `nfa` side to ∅ while the `rhs` side is alive means some rhs word has no
/// accepted continuation at all, i.e. `K = ∅`. `K` is then the
/// intersection of the profiles' right languages, built by a second subset
/// construction whose states are *sets of subset-states*: a transition
/// exists only when every member survives it, and a state accepts only
/// when every member does — the ∀ made mechanical.
fn universal_continuations(nfa: &Nfa, rhs: &Nfa) -> Option<Nfa> {
    use std::collections::{BTreeSet, HashMap, VecDeque};
    /// Budget on visited (nfa-subset, rhs-subset) pairs in the profile walk.
    const PAIR_BUDGET: usize = 4096;
    /// Budget on states of the intersection automaton.
    const STATE_BUDGET: usize = 1024;

    let s0 = nfa.start_set();
    let f0 = rhs.start_set();
    let mut profiles: BTreeSet<Vec<StateId>> = BTreeSet::new();
    let mut seen: BTreeSet<(Vec<StateId>, Vec<StateId>)> = BTreeSet::new();
    let mut queue: VecDeque<(Vec<StateId>, Vec<StateId>)> = VecDeque::new();
    seen.insert((s0.clone(), f0.clone()));
    queue.push_back((s0, f0));
    while let Some((s, f)) = queue.pop_front() {
        if rhs.set_accepts(&f) {
            profiles.insert(s.clone());
        }
        let mut syms: Vec<Symbol> = f
            .iter()
            .flat_map(|&q| rhs.transitions(q).iter().map(|&(sym, _)| sym))
            .collect();
        syms.sort_unstable();
        syms.dedup();
        for sym in syms {
            let f2 = rhs.step(&f, sym);
            if f2.is_empty() {
                continue;
            }
            let s2 = nfa.step(&s, sym);
            if s2.is_empty() {
                // rhs is trimmed, so f2 extends to an accepting state:
                // some y ∈ L(rhs) strands the closure entirely.
                return None;
            }
            if seen.len() >= PAIR_BUDGET {
                return None;
            }
            let pair = (s2, f2);
            if seen.insert(pair.clone()) {
                queue.push_back(pair);
            }
        }
    }
    if profiles.is_empty() {
        return None; // unreachable for trimmed non-empty rhs; be safe
    }

    let mut out = Nfa::empty();
    let mut ids: HashMap<BTreeSet<Vec<StateId>>, StateId> = HashMap::new();
    out.set_accepting(out.start(), profiles.iter().all(|s| nfa.set_accepts(s)));
    ids.insert(profiles.clone(), out.start());
    let mut queue: VecDeque<BTreeSet<Vec<StateId>>> = VecDeque::new();
    queue.push_back(profiles);
    while let Some(cur) = queue.pop_front() {
        let from = ids[&cur];
        let mut syms: Vec<Symbol> = cur
            .iter()
            .flat_map(|s| s.iter())
            .flat_map(|&q| nfa.transitions(q).iter().map(|&(sym, _)| sym))
            .collect();
        syms.sort_unstable();
        syms.dedup();
        'symbols: for sym in syms {
            let mut next: BTreeSet<Vec<StateId>> = BTreeSet::new();
            for s in &cur {
                let s2 = nfa.step(s, sym);
                if s2.is_empty() {
                    continue 'symbols; // one member dies: the ∀ fails
                }
                next.insert(s2);
            }
            let to = match ids.get(&next) {
                Some(&t) => t,
                None => {
                    if ids.len() >= STATE_BUDGET {
                        return None;
                    }
                    let t = out.add_state(next.iter().all(|s| nfa.set_accepts(s)));
                    ids.insert(next.clone(), t);
                    queue.push_back(next);
                    t
                }
            };
            out.add_transition(from, sym, to);
        }
    }
    Some(out)
}

/// All states reachable from `from` by reading exactly `word` (with ε-moves
/// folded in at every step).
fn reachable_by_word(nfa: &Nfa, from: StateId, word: &[Symbol]) -> Vec<StateId> {
    let mut set = nfa.eps_closure(&[from]);
    for &sym in word {
        set = nfa.step(&set, sym);
        if set.is_empty() {
            return set;
        }
    }
    set
}

/// Decide `u →*_E v` in polynomial time: membership of `u` in the saturated
/// automaton for `RewriteTo(v)` (Theorem 4.3(i) via Lemmas 4.4 + 4.5).
pub fn rewrites_to(rules: &RewriteSystem, u: &[Symbol], v: &[Symbol]) -> bool {
    rewrite_to_word_nfa(v, rules).nfa.accepts(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::parse_regex;

    fn system(ab: &mut Alphabet, lines: &[&str]) -> RewriteSystem {
        let set = ConstraintSet::parse(ab, lines.iter().copied()).unwrap();
        RewriteSystem::from_constraints(&set)
    }

    fn w(ab: &mut Alphabet, s: &str) -> Vec<Symbol> {
        s.chars().map(|c| ab.intern(&c.to_string())).collect()
    }

    #[test]
    fn paper_motivating_example() {
        // u1 ⊆ u2 and u2·u3 ⊆ u4 imply u1·u3·u5 ⊆ u4·u5 (Section 4 intro).
        let mut ab = Alphabet::new();
        let rs = system(&mut ab, &["u1 <= u2", "u2.u3 <= u4"]);
        let u1 = ab.get("u1").unwrap();
        let u3 = ab.get("u3").unwrap();
        let u4 = ab.get("u4").unwrap();
        let u5 = ab.intern("u5");
        assert!(rewrites_to(&rs, &[u1, u3, u5], &[u4, u5]));
        // and the intermediate step too
        let u2 = ab.get("u2").unwrap();
        assert!(rewrites_to(&rs, &[u1, u3, u5], &[u2, u3, u5]));
        // but not the reverse
        assert!(!rewrites_to(&rs, &[u4, u5], &[u1, u3, u5]));
    }

    #[test]
    fn derivation_witness_matches_decision() {
        let mut ab = Alphabet::new();
        let rs = system(&mut ab, &["u1 <= u2", "u2.u3 <= u4"]);
        let u1 = ab.get("u1").unwrap();
        let u3 = ab.get("u3").unwrap();
        let u4 = ab.get("u4").unwrap();
        let u5 = ab.intern("u5");
        let chain = rs.derive(&[u1, u3, u5], &[u4, u5], 10_000).unwrap();
        assert_eq!(chain.len(), 3); // u1u3u5 → u2u3u5 → u4u5
                                    // each step is a legal one-step rewrite
        for pair in chain.windows(2) {
            assert!(rs.step(&pair[0]).contains(&pair[1]));
        }
    }

    #[test]
    fn aa_to_a_rewrites_powers() {
        // E = {aa ⊆ a}: aⁱ →* a for all i ≥ 1, but a ↛ aa.
        let mut ab = Alphabet::new();
        let rs = system(&mut ab, &["a.a <= a"]);
        let a = ab.get("a").unwrap();
        for i in 1..8 {
            let u = vec![a; i];
            assert!(rewrites_to(&rs, &u, &[a]), "a^{i} →* a");
        }
        assert!(!rewrites_to(&rs, &[a], &[a, a]));
        // aa →* aa (reflexive)
        assert!(rewrites_to(&rs, &[a, a], &[a, a]));
    }

    #[test]
    fn equalities_rewrite_both_ways() {
        let mut ab = Alphabet::new();
        let rs = system(&mut ab, &["a.b = c"]);
        let u_ab = w(&mut ab, "ab");
        let u_c = w(&mut ab, "c");
        assert!(rewrites_to(&rs, &u_ab, &u_c));
        assert!(rewrites_to(&rs, &u_c, &u_ab));
        // and right-congruence: abx ↔ cx
        let u_abx = w(&mut ab, "abx");
        let u_cx = w(&mut ab, "cx");
        assert!(rewrites_to(&rs, &u_abx, &u_cx));
        assert!(rewrites_to(&rs, &u_cx, &u_abx));
    }

    #[test]
    fn epsilon_rules_work() {
        // l = ε: every l·w ↔ w.
        let mut ab = Alphabet::new();
        let rs = system(&mut ab, &["l = ()"]);
        let l = ab.get("l").unwrap();
        let x = ab.intern("x");
        assert!(rewrites_to(&rs, &[l, x], &[x]));
        assert!(rewrites_to(&rs, &[x], &[l, x]));
        assert!(rewrites_to(&rs, &[l, l, x], &[x]));
        // prefix-only: x·l does not lose its l
        assert!(!rewrites_to(&rs, &[x, l], &[x]));
    }

    #[test]
    fn rewriting_is_prefix_only() {
        let mut ab = Alphabet::new();
        let rs = system(&mut ab, &["a <= b"]);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let x = ab.intern("x");
        assert!(rewrites_to(&rs, &[a, x], &[b, x]));
        // inner occurrence untouched
        assert!(!rewrites_to(&rs, &[x, a], &[x, b]));
    }

    #[test]
    fn rewrite_to_regular_target() {
        // RewriteTo(l*) under ll ⊆ l: any lⁱ (i ≥ 0) plus nothing else.
        let mut ab = Alphabet::new();
        let rs = system(&mut ab, &["l.l <= l"]);
        let l = ab.get("l").unwrap();
        let m = ab.intern("m");
        let target = Nfa::thompson(&parse_regex(&mut ab, "l + ()").unwrap());
        let auto = rewrite_to_nfa(&target, &rs);
        assert!(auto.nfa.accepts(&[]));
        for i in 1..6 {
            assert!(auto.nfa.accepts(&vec![l; i]), "l^{i}");
        }
        assert!(!auto.nfa.accepts(&[m]));
        assert!(!auto.nfa.accepts(&[l, m]));
    }

    #[test]
    fn saturation_terminates_and_reports() {
        let mut ab = Alphabet::new();
        let rs = system(&mut ab, &["a.a <= a", "b.a <= a.b", "a.b <= b.a"]);
        let target = Nfa::from_word(&w(&mut ab, "a"));
        let auto = rewrite_to_nfa(&target, &rs);
        assert!(auto.rounds >= 1);
        // a b? — ab →(ab→ba) ba →(ba→ab)… and aa→a chains
        let u = w(&mut ab, "aaa");
        assert!(auto.nfa.accepts(&u));
    }

    #[test]
    fn general_closure_agrees_with_word_saturation_on_word_rules() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
        let rs = RewriteSystem::from_constraints(&set);
        let l = ab.get("l").unwrap();
        let m = ab.intern("m");
        let target = Nfa::thompson(&parse_regex(&mut ab, "l + ()").unwrap());
        let word_auto = rewrite_to_nfa(&target, &rs);
        let gen_auto = rewrite_closure_nfa(&set, &target);
        for i in 0..6 {
            let u = vec![l; i];
            assert_eq!(word_auto.nfa.accepts(&u), gen_auto.nfa.accepts(&u), "l^{i}");
            assert!(gen_auto.nfa.accepts(&u), "l^{i} →* l + ε");
        }
        assert!(!gen_auto.nfa.accepts(&[m]));
        assert!(!gen_auto.nfa.accepts(&[l, m]));
    }

    #[test]
    fn general_closure_handles_regex_valued_cache_rules() {
        // E = {l = (a.b)*}: the Example 3 certification both ways —
        // a.(b.a)*.c ⊆ closure(l.a.c) and l.a.c ⊆ closure(a.(b.a)*.c).
        // Word-only saturation cannot see this rule at all.
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
        let q = Nfa::thompson(&parse_regex(&mut ab, "a.(b.a)*.c").unwrap());
        let r = Nfa::thompson(&parse_regex(&mut ab, "l.a.c").unwrap());
        let closure_r = rewrite_closure_nfa(&set, &r);
        let closure_q = rewrite_closure_nfa(&set, &q);
        assert!(
            rpq_automata::ops::included_antichain(&q, &closure_r.nfa).is_ok(),
            "every a.(b.a)*.c word must rewrite into l.a.c"
        );
        assert!(
            rpq_automata::ops::included_antichain(&r, &closure_q.nfa).is_ok(),
            "l.a.c must rewrite into a.(b.a)*.c"
        );
        // and an unrelated query must NOT certify
        let bad = Nfa::thompson(&parse_regex(&mut ab, "c.a").unwrap());
        assert!(rpq_automata::ops::included_antichain(&bad, &closure_r.nfa).is_err());
    }

    #[test]
    fn union_rhs_rules_do_not_certify_per_branch() {
        // E = {a = b + c} only promises an R-path spelling *some* word of
        // b + c after an a-edge: the satisfying instance s -a→ m, s -c→ m,
        // m -x→ t has answers(a.x) = {t} but answers(b.x) = ∅, so the
        // closure of b.x must not accept a.x (existential wiring of the
        // union rhs did exactly that).
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a = b + c"]).unwrap();
        let ax = Nfa::thompson(&parse_regex(&mut ab, "a.x").unwrap());
        let bx = Nfa::thompson(&parse_regex(&mut ab, "b.x").unwrap());
        let closure_bx = rewrite_closure_nfa(&set, &bx);
        assert!(
            rpq_automata::ops::included_antichain(&ax, &closure_bx.nfa).is_err(),
            "a.x ⊆ b.x is not implied by a = b + c"
        );
        // The sound direction still certifies: answers(b) ⊆ answers(b + c)
        // = answers(a), so b.x ⊆ a.x (word-rhs rule b + c → a).
        let closure_ax = rewrite_closure_nfa(&set, &ax);
        assert!(rpq_automata::ops::included_antichain(&bx, &closure_ax.nfa).is_ok());
    }

    #[test]
    fn star_rhs_rules_certify_universally() {
        // E = {a ⊆ b*}: a.x ⊆ b*.x is valid (every m ∈ answers(a) lies in
        // answers(b*)), and the universal construction certifies it since
        // every b^k·x lands in the target. a.x ⊆ b.x remains uncertified —
        // b.b.x strands the continuation.
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a <= b*"]).unwrap();
        let ax = Nfa::thompson(&parse_regex(&mut ab, "a.x").unwrap());
        let bstar_x = Nfa::thompson(&parse_regex(&mut ab, "b*.x").unwrap());
        let bx = Nfa::thompson(&parse_regex(&mut ab, "b.x").unwrap());
        let closure_bstar = rewrite_closure_nfa(&set, &bstar_x);
        assert!(
            rpq_automata::ops::included_antichain(&ax, &closure_bstar.nfa).is_ok(),
            "a.x ⊆ b*.x is implied by a ⊆ b* and must certify"
        );
        let closure_bx = rewrite_closure_nfa(&set, &bx);
        assert!(
            rpq_automata::ops::included_antichain(&ax, &closure_bx.nfa).is_err(),
            "a.x ⊆ b.x is not implied by a ⊆ b*"
        );
    }

    #[test]
    fn general_closure_is_prefix_only() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a <= b"]).unwrap();
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let x = ab.intern("x");
        let target = Nfa::from_word(&[b, x]);
        let auto = rewrite_closure_nfa(&set, &target);
        assert!(auto.nfa.accepts(&[a, x]), "prefix a rewrites to b");
        assert!(auto.nfa.accepts(&[b, x]));
        let target_inner = Nfa::from_word(&[x, b]);
        let auto_inner = rewrite_closure_nfa(&set, &target_inner);
        assert!(
            !auto_inner.nfa.accepts(&[x, a]),
            "inner occurrences must not rewrite"
        );
    }

    #[test]
    fn empty_rule_set_is_identity() {
        let mut ab = Alphabet::new();
        let rs = RewriteSystem::default();
        let u = w(&mut ab, "abc");
        let v = w(&mut ab, "abc");
        assert!(rewrites_to(&rs, &u, &v));
        let v2 = w(&mut ab, "ab");
        assert!(!rewrites_to(&rs, &u, &v2));
    }

    #[test]
    fn step_applies_all_matching_rules() {
        let mut ab = Alphabet::new();
        let rs = system(&mut ab, &["a <= b", "a <= c", "a.x <= y"]);
        let word = w(&mut ab, "ax");
        let succ = rs.step(&word);
        assert_eq!(succ.len(), 3); // bx, cx, y
    }

    #[test]
    fn from_constraints_dedups_repeated_rules() {
        let mut ab = Alphabet::new();
        // the equality contributes both directions; the inclusions repeat
        // one of them twice more
        let rs = system(&mut ab, &["a.b = c", "a.b <= c", "a.b <= c", "c <= a.b"]);
        assert_eq!(rs.rules.len(), 2);
        // large duplicated sets stay linear: 2,000 copies of 4 rules
        let lines: Vec<String> = (0..2_000)
            .map(|i| format!("x{} <= y{}", i % 4, i % 4))
            .collect();
        let set = ConstraintSet::parse(&mut ab, lines.iter().map(String::as_str)).unwrap();
        let rs = RewriteSystem::from_constraints(&set);
        assert_eq!(rs.rules.len(), 4);
    }

    #[test]
    fn derive_respects_budget() {
        let mut ab = Alphabet::new();
        // growing system: a → aa (never reaches b)
        let rs = system(&mut ab, &["a <= a.a"]);
        let a = ab.get("a").unwrap();
        let b = ab.intern("b");
        assert!(rs.derive(&[a], &[b], 100).is_none());
    }
}
