//! The FO² connection (Section 4, "First-order logic with two variables").
//!
//! "In the particular context of word constraints, the implication problem
//! can be stated in terms of first-order logic. Moreover, only two
//! variables are needed. Then the decidability of the implication problem
//! for word constraints follows from known results about first-order logic
//! with two variables (FO²) … satisfiability of FO² sentences (with
//! relational vocabulary and constants) is decidable \[25\]."
//!
//! The paper then deliberately *bypasses* FO² (its direct procedure is
//! PTIME where FO² satisfiability is doubly exponential), but the encoding
//! itself is instructive and makes a strong cross-validation net, so this
//! module builds it:
//!
//! * a tiny FO² fragment: two variables `X`/`Y`, one constant `o`, binary
//!   relations `E_a` per label, equality, the usual connectives and
//!   quantifiers — with a **syntactic two-variable check** enforced by
//!   construction;
//! * the encoding of reachability by a word using only two variables (the
//!   classic alternation trick: `reach_{w·a}(x) = ∃y (reach_w(y) ∧
//!   E_a(y, x))` with the roles of `x` and `y` swapped at each step);
//! * word constraints and their implication as FO² sentences;
//! * an evaluator over finite [`Instance`]s and a bounded countermodel
//!   search.
//!
//! The cross-validation (tests + property suite): the FO² sentence for
//! `E ∧ ¬(u ⊆ v)` is satisfied by an instance iff the instance is a direct
//! counterexample — so (a) any countermodel found bounds Theorem 4.3's
//! answer from above, and (b) the witness instances produced by the
//! canonical-instance machinery must satisfy the encoding. The PTIME
//! procedure and the FO² view never disagree.

use rpq_automata::Symbol;
use rpq_graph::{Instance, Oid};

use crate::types::{ConstraintKind, ConstraintSet, PathConstraint};

/// The two variables of FO².
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Var {
    /// The variable `x`.
    X,
    /// The variable `y`.
    Y,
}

impl Var {
    /// The other variable.
    pub fn other(self) -> Var {
        match self {
            Var::X => Var::Y,
            Var::Y => Var::X,
        }
    }
}

/// A term: one of the two variables or the source constant `o`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// The designated source object.
    Source,
}

/// FO² formulas over the vocabulary `{E_a : a ∈ Σ} ∪ {o}`.
#[derive(Clone, Debug, PartialEq)]
pub enum Fo2 {
    /// `E_label(t1, t2)` — a labeled edge.
    Edge(Symbol, Term, Term),
    /// `t1 = t2`.
    Equal(Term, Term),
    /// Negation.
    Not(Box<Fo2>),
    /// Conjunction (n-ary for readability).
    And(Vec<Fo2>),
    /// Disjunction.
    Or(Vec<Fo2>),
    /// `∃v φ`.
    Exists(Var, Box<Fo2>),
    /// `∀v φ`.
    Forall(Var, Box<Fo2>),
}

impl Fo2 {
    /// `φ → ψ` as `¬φ ∨ ψ`.
    pub fn implies(self, other: Fo2) -> Fo2 {
        Fo2::Or(vec![Fo2::Not(Box::new(self)), other])
    }

    /// Count quantifiers (formula size measure for the docs/tests).
    pub fn quantifier_count(&self) -> usize {
        match self {
            Fo2::Edge(..) | Fo2::Equal(..) => 0,
            Fo2::Not(f) => f.quantifier_count(),
            Fo2::And(fs) | Fo2::Or(fs) => fs.iter().map(Fo2::quantifier_count).sum(),
            Fo2::Exists(_, f) | Fo2::Forall(_, f) => 1 + f.quantifier_count(),
        }
    }

    /// Evaluate on a finite instance with `o = source` under a partial
    /// assignment of the two variables.
    pub fn eval(&self, instance: &Instance, source: Oid, x: Option<Oid>, y: Option<Oid>) -> bool {
        let resolve = |t: &Term| -> Oid {
            match t {
                Term::Source => source,
                Term::Var(Var::X) => x.expect("x unbound"),
                Term::Var(Var::Y) => y.expect("y unbound"),
            }
        };
        match self {
            Fo2::Edge(label, t1, t2) => {
                let (a, b) = (resolve(t1), resolve(t2));
                instance
                    .out_edges(a)
                    .iter()
                    .any(|&(l, t)| l == *label && t == b)
            }
            Fo2::Equal(t1, t2) => resolve(t1) == resolve(t2),
            Fo2::Not(f) => !f.eval(instance, source, x, y),
            Fo2::And(fs) => fs.iter().all(|f| f.eval(instance, source, x, y)),
            Fo2::Or(fs) => fs.iter().any(|f| f.eval(instance, source, x, y)),
            Fo2::Exists(v, f) => instance.nodes().any(|n| match v {
                Var::X => f.eval(instance, source, Some(n), y),
                Var::Y => f.eval(instance, source, x, Some(n)),
            }),
            Fo2::Forall(v, f) => instance.nodes().all(|n| match v {
                Var::X => f.eval(instance, source, Some(n), y),
                Var::Y => f.eval(instance, source, x, Some(n)),
            }),
        }
    }
}

/// `reach_w(v)`: "`v` is reachable from `o` by the word `w`", built with
/// only two variables by swapping the working variable at every letter.
pub fn reach(word: &[Symbol], v: Var) -> Fo2 {
    match word.split_last() {
        None => Fo2::Equal(Term::Var(v), Term::Source),
        Some((&last, prefix)) => {
            let u = v.other();
            Fo2::Exists(
                u,
                Box::new(Fo2::And(vec![
                    reach(prefix, u),
                    Fo2::Edge(last, Term::Var(u), Term::Var(v)),
                ])),
            )
        }
    }
}

/// The FO² sentence for a word constraint at the source:
/// `u ⊆ v` ⇝ `∀x (reach_u(x) → reach_v(x))`, equality as both inclusions.
pub fn constraint_sentence(c: &PathConstraint) -> Option<Fo2> {
    let (u, v) = c.as_word_pair()?;
    let fwd = Fo2::Forall(
        Var::X,
        Box::new(reach(&u, Var::X).implies(reach(&v, Var::X))),
    );
    Some(match c.kind {
        ConstraintKind::Inclusion => fwd,
        ConstraintKind::Equality => Fo2::And(vec![
            fwd,
            Fo2::Forall(
                Var::X,
                Box::new(reach(&v, Var::X).implies(reach(&u, Var::X))),
            ),
        ]),
    })
}

/// The FO² sentence whose models are exactly the counterexamples to
/// `E ⊨ u ⊆ v`: all of `E` holds, and some object witnesses `u ⊄ v`.
///
/// Panics if `set` contains non-word constraints (same contract as
/// [`crate::implication::word_implies_path`]).
pub fn refutation_sentence(set: &ConstraintSet, u: &[Symbol], v: &[Symbol]) -> Fo2 {
    let mut parts: Vec<Fo2> = set
        .iter()
        .map(|c| constraint_sentence(c).expect("word-constraint set"))
        .collect();
    parts.push(Fo2::Exists(
        Var::X,
        Box::new(Fo2::And(vec![
            reach(u, Var::X),
            Fo2::Not(Box::new(reach(v, Var::X))),
        ])),
    ));
    Fo2::And(parts)
}

/// Bounded countermodel search: enumerate all instances with `≤ max_nodes`
/// nodes and `≤ Σ`-labeled edges (every subset), return one satisfying the
/// refutation sentence. Exponential — the paper's reason for preferring
/// the direct procedure — usable only for tiny bounds, which is exactly
/// what the cross-validation tests need.
pub fn bounded_countermodel(
    set: &ConstraintSet,
    u: &[Symbol],
    v: &[Symbol],
    labels: &[Symbol],
    max_nodes: usize,
) -> Option<(Instance, Oid)> {
    let sentence = refutation_sentence(set, u, v);
    for n in 1..=max_nodes {
        let slots: Vec<(usize, Symbol, usize)> = (0..n)
            .flat_map(|a| {
                labels
                    .iter()
                    .flat_map(move |&l| (0..n).map(move |b| (a, l, b)))
            })
            .collect();
        let total = slots.len();
        if total > 20 {
            // 2^20 structures is the practical ceiling for a test net.
            return None;
        }
        for mask in 0u32..(1u32 << total) {
            let mut instance = Instance::new();
            let nodes: Vec<Oid> = (0..n).map(|_| instance.add_node()).collect();
            for (i, &(a, l, b)) in slots.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    instance.add_edge(nodes[a], l, nodes[b]);
                }
            }
            let source = nodes[0];
            if sentence.eval(&instance, source, None, None) {
                return Some((instance, source));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::word_implies_word;
    use rpq_automata::{parse_word, Alphabet};
    use rpq_graph::InstanceBuilder;

    fn setup(lines: &[&str]) -> (Alphabet, ConstraintSet) {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        (ab, set)
    }

    #[test]
    fn reach_uses_exactly_word_length_quantifiers() {
        let mut ab = Alphabet::new();
        let w = parse_word(&mut ab, "a.b.a").unwrap();
        let f = reach(&w, Var::X);
        assert_eq!(f.quantifier_count(), 3);
    }

    #[test]
    fn reach_evaluates_correctly() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o", "a", "p");
        b.edge("p", "b", "q");
        let (inst, names) = b.finish();
        let w = parse_word(&mut ab, "a.b").unwrap();
        let f = Fo2::Exists(
            Var::X,
            Box::new(Fo2::And(vec![
                reach(&w, Var::X),
                Fo2::Not(Box::new(Fo2::Equal(Term::Var(Var::X), Term::Source))),
            ])),
        );
        assert!(f.eval(&inst, names["o"], None, None));
        // from q nothing is a·b-reachable
        assert!(!f.eval(&inst, names["q"], None, None));
    }

    #[test]
    fn constraint_sentence_matches_semantic_satisfaction() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o", "a", "p");
        b.edge("o", "b", "p");
        let (inst, names) = b.finish();
        let o = names["o"];
        let c_good = crate::parse_constraint(&mut ab, "a <= b").unwrap();
        let c_bad = crate::parse_constraint(&mut ab, "a <= a.a").unwrap();
        assert_eq!(
            constraint_sentence(&c_good)
                .unwrap()
                .eval(&inst, o, None, None),
            c_good.holds_at(&inst, o)
        );
        assert_eq!(
            constraint_sentence(&c_bad)
                .unwrap()
                .eval(&inst, o, None, None),
            c_bad.holds_at(&inst, o)
        );
        assert!(c_good.holds_at(&inst, o));
        assert!(!c_bad.holds_at(&inst, o));
    }

    #[test]
    fn countermodel_found_for_non_implication() {
        // {a ⊆ b} ⊭ b ⊆ a: a 2-node countermodel exists.
        let (mut ab, set) = setup(&["a <= b"]);
        let u = parse_word(&mut ab, "b").unwrap();
        let v = parse_word(&mut ab, "a").unwrap();
        let labels: Vec<Symbol> = ab.symbols().collect();
        let (inst, o) = bounded_countermodel(&set, &u, &v, &labels, 2).expect("countermodel");
        assert!(set.holds_at(&inst, o));
        assert!(!inst.word_targets(o, &u).is_empty());
        let bt = inst.word_targets(o, &u);
        let at = inst.word_targets(o, &v);
        assert!(bt.iter().any(|t| !at.contains(t)));
        // and of course the PTIME procedure agrees
        assert!(!word_implies_word(&set, &u, &v));
    }

    #[test]
    fn no_countermodel_for_implication() {
        // {a ⊆ b} ⊨ a·c ⊆ b·c (right congruence): no countermodel with ≤ 2
        // nodes over {a, b, c} exists... 2 nodes × 3 labels × 2 targets =
        // 12 slots, still searchable.
        let (mut ab, set) = setup(&["a <= b"]);
        let u = parse_word(&mut ab, "a.c").unwrap();
        let v = parse_word(&mut ab, "b.c").unwrap();
        let labels: Vec<Symbol> = ab.symbols().collect();
        assert!(word_implies_word(&set, &u, &v));
        assert!(bounded_countermodel(&set, &u, &v, &labels, 2).is_none());
    }

    #[test]
    fn fo2_and_theorem43_agree_on_random_tiny_systems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xF02);
        for trial in 0..40 {
            let mut ab = Alphabet::new();
            let syms = [ab.intern("a"), ab.intern("b")];
            let rand_word = |rng: &mut StdRng| -> Vec<Symbol> {
                (0..rng.random_range(1..=2))
                    .map(|_| syms[rng.random_range(0..2)])
                    .collect()
            };
            let mut set = ConstraintSet::new();
            set.add(PathConstraint::inclusion(
                rpq_automata::Regex::word(&rand_word(&mut rng)),
                rpq_automata::Regex::word(&rand_word(&mut rng)),
            ));
            let u = rand_word(&mut rng);
            let v = rand_word(&mut rng);
            // One direction is sound unconditionally: a found countermodel
            // refutes the implication.
            if let Some((inst, o)) = bounded_countermodel(&set, &u, &v, &syms, 2) {
                assert!(set.holds_at(&inst, o), "trial {trial}");
                assert!(
                    !word_implies_word(&set, &u, &v),
                    "trial {trial}: FO² countermodel vs PTIME implied"
                );
            }
            // And the converse on this tiny scale: if the PTIME procedure
            // refutes, the canonical machinery yields a small witness whose
            // violation the FO² sentence must detect.
            if !word_implies_word(&set, &u, &v) {
                let sentence = refutation_sentence(&set, &u, &v);
                if let crate::general::Verdict::Refuted(crate::general::Refutation::Instance(w)) =
                    crate::general::check(
                        &set,
                        &PathConstraint::inclusion(
                            rpq_automata::Regex::word(&u),
                            rpq_automata::Regex::word(&v),
                        ),
                        &crate::general::Budget::default(),
                    )
                {
                    assert!(
                        sentence.eval(&w.instance, w.source, None, None),
                        "trial {trial}: witness not recognized by the FO² sentence"
                    );
                }
            }
        }
    }
}
