//! The canonical bounded instance of Lemma 4.4 (Figure 4).
//!
//! For a finite set `E` of word constraints and a bound `k`, the lemma's
//! completeness proof builds a finite instance `(o, I)` such that for all
//! words `u, v` of length ≤ k: `(o, I) ⊨ u ⊆ v` iff `u →*_E v`. Vertices
//! are the ≈-classes of words (`u ≈ v` iff they rewrite into each other),
//! `obj(û) = {o_ψ | ψ ⪯ û}` with `ψ ⪯ û` iff `ψ`'s words rewrite to `û`'s,
//! and each `o_û` has an `a`-edge to *every* member of `obj(ûa)`.
//!
//! The paper works the example `E = {a² ⊆ a}`, `k = 3` (Figure 4);
//! `rpq-bench`'s `paper-figures f4` reprints it from this construction.

use rpq_automata::{Alphabet, Symbol};
use rpq_graph::{Instance, Oid};

use crate::rewrite::{rewrite_to_word_nfa, RewriteSystem};
use crate::types::ConstraintSet;

/// The Lemma 4.4 instance with its class structure exposed.
#[derive(Clone, Debug)]
pub struct CanonicalInstance {
    /// The instance `I`.
    pub instance: Instance,
    /// The source `o = o_ε̂`.
    pub source: Oid,
    /// Representative word of each class; index = vertex oid index.
    pub class_reps: Vec<Vec<Symbol>>,
    /// `obj(û)` per class: the classes ⪯ it (as vertex oids).
    pub obj: Vec<Vec<Oid>>,
}

/// Errors from [`lemma44_instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanonicalError {
    /// `E` contains non-word constraints.
    NotWordConstraints,
    /// `|Σ|^k` exceeds the safety cap (the construction enumerates words).
    TooLarge {
        /// Number of words that would be enumerated.
        words: usize,
    },
    /// `E` *derives* `u ⊆ ε` without `ε ⊆ u` for some `u` (e.g.
    /// `{a = ε, b ⊆ a}` derives `b ⊆ ε` only). The paper's convention
    /// completes syntactic `u ⊆ ε` rules, but its least-element argument
    /// for `ε̂` ("for each u ⊆ ε we also have ε ⊆ u", proof of Lemma 4.4)
    /// needs the same for *derived* ones — such sets behave like the
    /// emptiness constraints the paper explicitly excludes, so we reject
    /// them here rather than build an instance violating `E`.
    DerivedEmptiness {
        /// A class representative that rewrites to ε but is not reachable
        /// back from ε.
        witness: Vec<Symbol>,
    },
}

impl std::fmt::Display for CanonicalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanonicalError::NotWordConstraints => {
                write!(f, "Lemma 4.4 construction requires word constraints")
            }
            CanonicalError::TooLarge { words } => {
                write!(
                    f,
                    "construction would enumerate {words} words; raise the cap"
                )
            }
            CanonicalError::DerivedEmptiness { .. } => {
                write!(
                    f,
                    "E derives u ⊆ ε without ε ⊆ u (emptiness-like constraint, \
                     excluded by the paper's Section 4.2 convention)"
                )
            }
        }
    }
}

impl std::error::Error for CanonicalError {}

/// Build the Lemma 4.4 instance for `E` restricted to words of length ≤ k
/// over `symbols`. Enumerates `O(|Σ|^k)` words — intended for the small
/// parameters of figures and tests (a cap of 100 000 words is enforced).
pub fn lemma44_instance(
    set: &ConstraintSet,
    symbols: &[Symbol],
    k: usize,
    alphabet: &Alphabet,
) -> Result<CanonicalInstance, CanonicalError> {
    if !set.all_word_constraints() {
        return Err(CanonicalError::NotWordConstraints);
    }
    let sigma = symbols.len().max(1);
    let mut word_count = 1usize;
    let mut total = 1usize;
    for _ in 0..k {
        word_count = word_count.saturating_mul(sigma);
        total = total.saturating_add(word_count);
    }
    if total > 100_000 {
        return Err(CanonicalError::TooLarge { words: total });
    }

    let rules = RewriteSystem::from_constraints(set);

    // Enumerate words length ≤ k in (length, lex) order.
    let mut words: Vec<Vec<Symbol>> = vec![vec![]];
    let mut layer: Vec<Vec<Symbol>> = vec![vec![]];
    for _ in 0..k {
        let mut next = Vec::with_capacity(layer.len() * sigma);
        for w in &layer {
            for &s in symbols {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        words.extend(next.iter().cloned());
        layer = next;
    }

    // Group into ≈-classes. For each class keep the pre*({rep}) automaton
    // so membership tests (u →* rep) are cheap; the other direction
    // (rep →* u) uses a per-word pre*({u}) automaton.
    let mut class_reps: Vec<Vec<Symbol>> = Vec::new();
    let mut class_autos: Vec<rpq_automata::Nfa> = Vec::new();
    let mut class_of_word: Vec<usize> = Vec::with_capacity(words.len());
    for w in &words {
        let pre_w = rewrite_to_word_nfa(w, &rules).nfa;
        let mut found = None;
        for (c, rep) in class_reps.iter().enumerate() {
            // w ≈ rep iff w →* rep and rep →* w
            if class_autos[c].accepts(w) && pre_w.accepts(rep) {
                found = Some(c);
                break;
            }
        }
        let c = match found {
            Some(c) => c,
            None => {
                class_reps.push(w.clone());
                class_autos.push(pre_w);
                class_reps.len() - 1
            }
        };
        class_of_word.push(c);
    }

    // Partial order ⪯: class i ⪯ class j iff rep_i →* rep_j.
    let ncls = class_reps.len();
    let mut leq = vec![vec![false; ncls]; ncls];
    for i in 0..ncls {
        for j in 0..ncls {
            leq[i][j] = class_autos[j].accepts(&class_reps[i]);
        }
    }

    // The ε class must be a least element of ⪯ (proof of Lemma 4.4); a
    // strictly smaller class witnesses a derived emptiness-like constraint.
    let eps_class = class_of_word[0];
    for c in 0..ncls {
        if c != eps_class && leq[c][eps_class] && !leq[eps_class][c] {
            return Err(CanonicalError::DerivedEmptiness {
                witness: class_reps[c].clone(),
            });
        }
    }

    // obj(j) = {o_i | i ⪯ j}
    let obj: Vec<Vec<Oid>> = (0..ncls)
        .map(|j| {
            (0..ncls)
                .filter(|&i| leq[i][j])
                .map(|i| Oid(i as u32))
                .collect()
        })
        .collect();

    // Build the instance: one vertex per class; for each word u (|u| < k)
    // and symbol a, an a-edge from o_û to every member of obj(ûa).
    let mut instance = Instance::new();
    for rep in &class_reps {
        instance.add_named_node(&alphabet.render_word(rep));
    }
    let class_of = |w: &[Symbol]| -> usize {
        let pos = word_index(w, symbols, k);
        class_of_word[pos]
    };
    for w in &words {
        if w.len() >= k {
            continue;
        }
        let from = Oid(class_of(w) as u32);
        for &a in symbols {
            let mut wa = w.clone();
            wa.push(a);
            let target_class = class_of(&wa);
            for &o in &obj[target_class] {
                instance.add_edge(from, a, o);
            }
        }
    }

    let source = Oid(class_of(&[]) as u32);
    Ok(CanonicalInstance {
        instance,
        source,
        class_reps,
        obj,
    })
}

/// Index of a word in the (length, lex-by-symbol-position) enumeration used
/// by [`lemma44_instance`].
fn word_index(w: &[Symbol], symbols: &[Symbol], _k: usize) -> usize {
    let sigma = symbols.len();
    // offset of the length-|w| block
    let mut offset = 0usize;
    let mut block = 1usize;
    for _ in 0..w.len() {
        offset += block;
        block *= sigma;
    }
    // rank within the block
    let mut rank = 0usize;
    for &s in w {
        let pos = symbols
            .iter()
            .position(|&t| t == s)
            .expect("symbol in enumeration alphabet");
        rank = rank * sigma + pos;
    }
    offset + rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::Nfa;
    use rpq_core::eval_product;

    fn fig4() -> (Alphabet, CanonicalInstance) {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a.a <= a"]).unwrap();
        let a = ab.get("a").unwrap();
        let ci = lemma44_instance(&set, &[a], 3, &ab).unwrap();
        (ab, ci)
    }

    #[test]
    fn fig4_has_four_classes() {
        let (_, ci) = fig4();
        // ε, a, a², a³ are pairwise inequivalent under {aa ⊆ a}
        assert_eq!(ci.class_reps.len(), 4);
        assert_eq!(ci.instance.num_nodes(), 4);
    }

    #[test]
    fn fig4_obj_sets_match_paper() {
        let (_, ci) = fig4();
        // obj(ε)={ε}, obj(a³)={a³}, obj(a²)={a²,a³}, obj(a)={a,a²,a³}
        let len_of = |o: Oid| ci.class_reps[o.index()].len();
        let objs: Vec<Vec<usize>> = ci
            .obj
            .iter()
            .map(|v| {
                let mut ls: Vec<usize> = v.iter().map(|&o| len_of(o)).collect();
                ls.sort();
                ls
            })
            .collect();
        // find the classes by rep length
        for (c, rep) in ci.class_reps.iter().enumerate() {
            match rep.len() {
                0 => assert_eq!(objs[c], vec![0]),
                1 => assert_eq!(objs[c], vec![1, 2, 3]),
                2 => assert_eq!(objs[c], vec![2, 3]),
                3 => assert_eq!(objs[c], vec![3]),
                _ => panic!("unexpected rep"),
            }
        }
    }

    #[test]
    fn fig4_word_answers_equal_obj() {
        // u(o, I) = obj(û) — the claim (✳) of the proof.
        let (ab, ci) = fig4();
        let a = ab.get("a").unwrap();
        for len in 0..=3usize {
            let word = vec![a; len];
            let nfa = Nfa::from_word(&word);
            let ans = eval_product(&nfa, &ci.instance, ci.source).answers;
            // find the class of a^len by rep
            let c = ci
                .class_reps
                .iter()
                .position(|r| r.len() == len)
                .expect("class exists");
            let mut expected = ci.obj[c].clone();
            expected.sort();
            assert_eq!(ans, expected, "a^{len}(o, I)");
        }
    }

    #[test]
    fn instance_satisfies_exactly_implied_short_constraints() {
        // For words ≤ k: (o,I) ⊨ u ⊆ v iff u →* v.
        let (ab, ci) = fig4();
        let a = ab.get("a").unwrap();
        let mut ab2 = ab.clone();
        let set = ConstraintSet::parse(&mut ab2, ["a.a <= a"]).unwrap();
        let rules = RewriteSystem::from_constraints(&set);
        for i in 0..=3usize {
            for j in 0..=3usize {
                let u = vec![a; i];
                let v = vec![a; j];
                let semantic = {
                    let au = eval_product(&Nfa::from_word(&u), &ci.instance, ci.source).answers;
                    let av = eval_product(&Nfa::from_word(&v), &ci.instance, ci.source).answers;
                    au.iter().all(|o| av.binary_search(o).is_ok())
                };
                let syntactic = crate::rewrite::rewrites_to(&rules, &u, &v);
                assert_eq!(semantic, syntactic, "a^{i} ⊆ a^{j}");
            }
        }
    }

    #[test]
    fn two_letter_alphabet_classes() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a.b = b.a"]).unwrap();
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let ci = lemma44_instance(&set, &[a, b], 2, &ab).unwrap();
        // words: ε,a,b,aa,ab,ba,bb → ab ≈ ba merge: 6 classes
        assert_eq!(ci.class_reps.len(), 6);
    }

    #[test]
    fn size_cap_enforced() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a <= b"]).unwrap();
        let syms: Vec<Symbol> = (0..10).map(|i| ab.intern(&format!("s{i}"))).collect();
        let err = lemma44_instance(&set, &syms, 6, &ab).unwrap_err();
        assert!(matches!(err, CanonicalError::TooLarge { .. }));
    }

    #[test]
    fn non_word_sets_rejected() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a* <= b"]).unwrap();
        let a = ab.get("a").unwrap();
        let err = lemma44_instance(&set, &[a], 2, &ab).unwrap_err();
        assert_eq!(err, CanonicalError::NotWordConstraints);
    }
}

#[cfg(test)]
mod emptiness_tests {
    use super::*;

    #[test]
    fn derived_emptiness_is_rejected() {
        // {a = ε, b ⊆ a} derives b ⊆ ε but not ε ⊆ b: ε̂ would not be a
        // least element and the construction would violate E.
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a = ()", "b <= a"]).unwrap();
        let syms: Vec<Symbol> = ab.symbols().collect();
        match lemma44_instance(&set, &syms, 2, &ab) {
            Err(CanonicalError::DerivedEmptiness { witness }) => {
                assert_eq!(witness.len(), 1); // the class of b
            }
            other => panic!("expected DerivedEmptiness, got {other:?}"),
        }
    }

    #[test]
    fn syntactic_epsilon_rules_still_work() {
        // u ⊆ ε with the ε-completion is fine: a = ε collapses everything.
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a <= ()"]).unwrap();
        let a = ab.get("a").unwrap();
        let ci = lemma44_instance(&set, &[a], 3, &ab).unwrap();
        assert_eq!(ci.class_reps.len(), 1);
        assert!(set.holds_at(&ci.instance, ci.source));
    }
}
