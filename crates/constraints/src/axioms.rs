//! A sound axiomatization of path-constraint implication, with derivations.
//!
//! Section 5 of the paper lists as an open problem "devising a sound and (if
//! possible) complete axiomatization for path constraint implication …
//! such an axiomatization may yield rewrite rules of practical use in
//! simplifying path queries under given path constraints." This module
//! builds the sound half: an inference system whose judgments are
//! inclusions `E ⊢ p ⊆ q`, a goal-directed proof search, and printable
//! derivation trees. Completeness is impossible to hope for from a simple
//! finitary system (the decision procedure is 2-EXPSPACE, Theorem 4.2), so
//! the prover is *sound and budgeted*: `Some(derivation)` is a proof,
//! `None` means "not provable within budget."
//!
//! ## The inference rules
//!
//! Semantics: `p ⊆ q` holds at `(o, I)` iff `p(o, I) ⊆ q(o, I)`; `E ⊢` means
//! every instance satisfying `E` (at the source) satisfies the conclusion
//! (at the source). The load-bearing asymmetry: **right-congruence is sound,
//! left-congruence is not** — constraints hold at the source object only, so
//! `p ⊆ q` may fail at the node an `r`-path leads to. All rules below avoid
//! left contexts.
//!
//! | rule | premises ⟹ conclusion | soundness |
//! |---|---|---|
//! | `language` | — ⟹ `p ⊆ q` when `L(p) ⊆ L(q)` | monotone semantics |
//! | `union-left` | `pᵢ ⊆ q` for all arms ⟹ `p₁+…+pₙ ⊆ q` (arms obtained by distributing one union factor of a concatenation) | `(p₁+p₂)(o,I) = p₁(o,I) ∪ p₂(o,I)` |
//! | `union-right` | `p ⊆ qᵢ` ⟹ `p ⊆ q₁+…+qₙ` | subset of a union |
//! | `suffix-strip` | `p' ⊆ q'` ⟹ `p'·r ⊆ q'·r` | right-congruence |
//! | `star-induction` | `ε ⊆ q`, `q·x ⊆ q` ⟹ `x* ⊆ q` | induction on the number of `x`-blocks |
//! | `prefix-rewrite(l ⊆ r)` | `r·s ⊆ q` ⟹ `p ⊆ q` when `p = pre·s` and `L(pre) ⊆ L(l)` | axiom + right-congruence + transitivity |
//! | `suffix-intro(l ⊆ r)` | `p ⊆ l·s` ⟹ `p ⊆ q` when `q = qpre·s` and `L(r) ⊆ L(qpre)` | axiom + right-congruence + transitivity (backwards) |
//!
//! Equalities of `E` contribute both directed inclusions as axioms.
//!
//! ## Safety net
//!
//! Every derivation the prover returns can be replayed ([`Derivation::verify`]
//! re-checks each leaf's language side conditions), and the property suite
//! cross-checks provable goals against the certified refuter of
//! [`crate::general`]: a goal that is both provable and refutable would be a
//! soundness bug in one of the two engines.

use std::collections::HashSet;
use std::fmt::Write as _;

use rpq_automata::ops;
use rpq_automata::simplify::simplify;
use rpq_automata::{Alphabet, Regex};

use crate::types::{ConstraintSet, PathConstraint};

/// Budget and behavior knobs for the proof search.
///
/// The `enable_*` flags exist for rule ablations (bench
/// `t11_det_axioms_simplify` and the test corpus measure which rules are
/// load-bearing on the paper's examples); they default to on.
#[derive(Clone, Debug)]
pub struct ProverConfig {
    /// Maximum derivation depth.
    pub max_depth: usize,
    /// Global cap on expanded goals (the search is exponential in the worst
    /// case; this bounds total work).
    pub max_goals: usize,
    /// Skip the (PSPACE) language-inclusion side conditions when the two
    /// sides' combined AST size exceeds this.
    pub lang_size_limit: usize,
    /// Allow the `star-induction` rule.
    pub enable_star_induction: bool,
    /// Allow the `suffix-strip` rule.
    pub enable_suffix_strip: bool,
    /// Allow the backward `suffix-intro` rule.
    pub enable_suffix_intro: bool,
    /// Allow the forward `prefix-rewrite` rule.
    pub enable_prefix_rewrite: bool,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            max_depth: 12,
            max_goals: 50_000,
            lang_size_limit: 160,
            enable_star_induction: true,
            enable_suffix_strip: true,
            enable_suffix_intro: true,
            enable_prefix_rewrite: true,
        }
    }
}

/// The rule that concludes a derivation node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `L(lhs) ⊆ L(rhs)` outright; no constraints used.
    Language,
    /// Split the left side into union arms; one child per arm.
    UnionLeft,
    /// Commit to one arm of the right-side union.
    UnionRight {
        /// Index of the chosen arm in the (normalized) union.
        arm: usize,
    },
    /// Strip a common syntactic suffix (backward right-congruence).
    SuffixStrip,
    /// Fixpoint induction for a starred left side with the right side as
    /// invariant.
    StarInduction,
    /// Rewrite a prefix of the left side with axiom `l ⊆ r` (forward).
    PrefixRewrite {
        /// Index into [`Prover::axioms`].
        axiom: usize,
    },
    /// Introduce axiom `l ⊆ r` at the head of the right side (backward).
    SuffixIntro {
        /// Index into [`Prover::axioms`].
        axiom: usize,
    },
}

impl Rule {
    fn name(&self) -> String {
        match self {
            Rule::Language => "language".into(),
            Rule::UnionLeft => "union-left".into(),
            Rule::UnionRight { arm } => format!("union-right #{arm}"),
            Rule::SuffixStrip => "suffix-strip".into(),
            Rule::StarInduction => "star-induction".into(),
            Rule::PrefixRewrite { axiom } => format!("prefix-rewrite ax{axiom}"),
            Rule::SuffixIntro { axiom } => format!("suffix-intro ax{axiom}"),
        }
    }
}

/// A derivation tree for a judgment `E ⊢ lhs ⊆ rhs`.
#[derive(Clone, Debug)]
pub struct Derivation {
    /// Left side of the proved inclusion.
    pub lhs: Regex,
    /// Right side of the proved inclusion.
    pub rhs: Regex,
    /// The concluding rule.
    pub rule: Rule,
    /// Premise subderivations, in rule order.
    pub children: Vec<Derivation>,
}

impl Derivation {
    /// Number of nodes in the tree (proof size).
    pub fn num_nodes(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(Derivation::num_nodes)
            .sum::<usize>()
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(Derivation::depth)
            .max()
            .unwrap_or(0)
    }

    /// Re-check the language side conditions of every `language` leaf and
    /// the structural premise shapes. A `true` result means the derivation
    /// replays; it does not re-run the proof search.
    pub fn verify(&self, prover: &Prover<'_>) -> bool {
        let ok_here = match &self.rule {
            Rule::Language => {
                self.children.is_empty() && prover.lang_included(&self.lhs, &self.rhs)
            }
            Rule::UnionLeft => {
                !self.children.is_empty()
                    && self.children.iter().all(|c| c.rhs == self.rhs)
                    && ops::regex_equivalent(
                        &Regex::union(self.children.iter().map(|c| c.lhs.clone()).collect()),
                        &self.lhs,
                    )
            }
            Rule::UnionRight { .. } => {
                self.children.len() == 1
                    && self.children[0].lhs == self.lhs
                    && prover.lang_included(&self.children[0].rhs, &self.rhs)
            }
            Rule::SuffixStrip => {
                // lhs = p'·r and rhs = q'·r for the child (p' ⊆ q') and some
                // common r; recover r by matching sizes is fragile, so check
                // semantically: child.lhs·r == lhs for the r that makes
                // child.rhs·r == rhs. We re-derive r from the stored shapes.
                self.children.len() == 1
                    && suffix_strip_consistent(
                        &self.lhs,
                        &self.rhs,
                        &self.children[0].lhs,
                        &self.children[0].rhs,
                    )
            }
            Rule::StarInduction => {
                if self.children.len() != 2 {
                    return false;
                }
                let inv = &self.rhs;
                let x = match &self.lhs {
                    Regex::Star(x) => (**x).clone(),
                    _ => return false,
                };
                self.children[0].lhs == Regex::Epsilon
                    && self.children[0].rhs == *inv
                    && self.children[1].lhs == simplify(&inv.clone().then(x))
                    && self.children[1].rhs == *inv
            }
            Rule::PrefixRewrite { axiom } => {
                let Some((l, r)) = prover.axioms.get(*axiom) else {
                    return false;
                };
                self.children.len() == 1 && self.children[0].rhs == self.rhs && {
                    // child.lhs must be r·s with lhs = pre·s, L(pre) ⊆ L(l)
                    splits(&self.lhs).into_iter().any(|(pre, suf)| {
                        simplify(&r.clone().then(suf.clone())) == self.children[0].lhs
                            && prover.lang_included(&pre, l)
                    })
                }
            }
            Rule::SuffixIntro { axiom } => {
                let Some((l, r)) = prover.axioms.get(*axiom) else {
                    return false;
                };
                self.children.len() == 1 && self.children[0].lhs == self.lhs && {
                    splits(&self.rhs).into_iter().any(|(qpre, qsuf)| {
                        simplify(&l.clone().then(qsuf.clone())) == self.children[0].rhs
                            && prover.lang_included(r, &qpre)
                    })
                }
            }
        };
        ok_here && self.children.iter().all(|c| c.verify(prover))
    }

    /// Render an indented proof tree.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        let mut out = String::new();
        self.render_into(alphabet, "", true, &mut out);
        out
    }

    fn render_into(&self, ab: &Alphabet, prefix: &str, root: bool, out: &mut String) {
        let connector = if root { "" } else { "└─ " };
        let _ = writeln!(
            out,
            "{prefix}{connector}{} ⊆ {}   [{}]",
            self.lhs.display(ab),
            self.rhs.display(ab),
            self.rule.name()
        );
        let child_prefix = if root {
            String::new()
        } else {
            format!("{prefix}   ")
        };
        for c in &self.children {
            c.render_into(ab, &child_prefix, false, out);
        }
    }
}

/// `lhs = p'·r` and `rhs = q'·r` for some common suffix `r`?
fn suffix_strip_consistent(lhs: &Regex, rhs: &Regex, child_l: &Regex, child_r: &Regex) -> bool {
    for (pre, suf) in splits(lhs) {
        if simplify(&pre) != *child_l {
            continue;
        }
        for (qpre, qsuf) in splits(rhs) {
            if suf == qsuf && simplify(&qpre) == *child_r {
                return true;
            }
        }
    }
    false
}

/// All syntactic decompositions `p = pre·suf`. For a flattened concatenation
/// these are the cut points; every expression also splits trivially as
/// `ε·p` and `p·ε`. Splits inside a star (`x* = x*·x*`) are deliberately not
/// enumerated — soundness needs no completeness here.
fn splits(p: &Regex) -> Vec<(Regex, Regex)> {
    let mut out = Vec::new();
    if let Regex::Concat(parts) = p {
        for k in 0..=parts.len() {
            out.push((
                Regex::concat(parts[..k].to_vec()),
                Regex::concat(parts[k..].to_vec()),
            ));
        }
    } else {
        out.push((Regex::Epsilon, p.clone()));
        out.push((p.clone(), Regex::Epsilon));
    }
    out
}

/// If `p` is a union — or a concatenation with a top-level union factor —
/// return language-preserving arms to case-split on.
fn union_arms(p: &Regex) -> Option<Vec<Regex>> {
    match p {
        Regex::Union(parts) => Some(parts.clone()),
        Regex::Concat(parts) => {
            let idx = parts
                .iter()
                .position(|part| matches!(part, Regex::Union(_)))?;
            let Regex::Union(arms) = &parts[idx] else {
                unreachable!("position() matched a union");
            };
            Some(
                arms.iter()
                    .map(|arm| {
                        let mut whole = parts.clone();
                        whole[idx] = arm.clone();
                        Regex::concat(whole)
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

/// The proof-search engine for a fixed constraint set.
pub struct Prover<'a> {
    /// Directed axioms `(l, r)` meaning `l ⊆ r`, from the constraint set
    /// (equalities contribute both directions).
    pub axioms: Vec<(Regex, Regex)>,
    cfg: ProverConfig,
    _set: &'a ConstraintSet,
}

impl<'a> Prover<'a> {
    /// Build a prover over `set` with the given budgets.
    pub fn new(set: &'a ConstraintSet, cfg: ProverConfig) -> Prover<'a> {
        let mut axioms = Vec::new();
        for c in set.iter() {
            for (l, r) in c.as_inclusions() {
                axioms.push((simplify(&l), simplify(&r)));
            }
        }
        Prover {
            axioms,
            cfg,
            _set: set,
        }
    }

    /// Try to prove `E ⊢ p ⊆ q`.
    pub fn prove_inclusion(&self, p: &Regex, q: &Regex) -> Option<Derivation> {
        let mut st = SearchState {
            on_path: HashSet::new(),
            goals: 0,
        };
        self.search(&simplify(p), &simplify(q), self.cfg.max_depth, &mut st)
    }

    /// Prove every inclusion of `c` (two for an equality); `None` if any
    /// fails within budget.
    pub fn prove_constraint(&self, c: &PathConstraint) -> Option<Vec<Derivation>> {
        let mut proofs = Vec::new();
        for (p, q) in c.as_inclusions() {
            proofs.push(self.prove_inclusion(&p, &q)?);
        }
        Some(proofs)
    }

    /// Budgeted language inclusion (the `language` side condition).
    pub fn lang_included(&self, p: &Regex, q: &Regex) -> bool {
        if p.size() + q.size() > self.cfg.lang_size_limit {
            return false;
        }
        ops::regex_included(p, q)
    }

    fn search(
        &self,
        p: &Regex,
        q: &Regex,
        depth: usize,
        st: &mut SearchState,
    ) -> Option<Derivation> {
        if st.goals >= self.cfg.max_goals {
            return None;
        }
        st.goals += 1;

        // 1. language — cheap relative to search, closes most leaves.
        if p.is_empty_lang() || self.lang_included(p, q) {
            return Some(Derivation {
                lhs: p.clone(),
                rhs: q.clone(),
                rule: Rule::Language,
                children: Vec::new(),
            });
        }
        if depth == 0 {
            return None;
        }
        let key = (p.clone(), q.clone());
        if !st.on_path.insert(key.clone()) {
            return None; // cycle
        }
        let result = self.expand(p, q, depth, st);
        st.on_path.remove(&key);
        result
    }

    fn expand(
        &self,
        p: &Regex,
        q: &Regex,
        depth: usize,
        st: &mut SearchState,
    ) -> Option<Derivation> {
        // 2. union-left: case split on the arms of the left side.
        if let Some(arms) = union_arms(p) {
            let mut children = Vec::with_capacity(arms.len());
            let mut all = true;
            for arm in &arms {
                match self.search(&simplify(arm), q, depth - 1, st) {
                    Some(d) => children.push(d),
                    None => {
                        all = false;
                        break;
                    }
                }
            }
            if all {
                return Some(Derivation {
                    lhs: p.clone(),
                    rhs: q.clone(),
                    rule: Rule::UnionLeft,
                    children,
                });
            }
        }

        // 3. suffix-strip: common syntactic suffix on both sides.
        if self.cfg.enable_suffix_strip {
            for (pre, suf) in splits(p) {
                if suf == Regex::Epsilon {
                    continue;
                }
                for (qpre, qsuf) in splits(q) {
                    if qsuf != suf || (qpre == *q && pre == *p) {
                        continue;
                    }
                    if let Some(d) = self.search(&simplify(&pre), &simplify(&qpre), depth - 1, st) {
                        return Some(Derivation {
                            lhs: p.clone(),
                            rhs: q.clone(),
                            rule: Rule::SuffixStrip,
                            children: vec![d],
                        });
                    }
                }
            }
        }

        // 4. star-induction with the right side as invariant.
        if self.cfg.enable_star_induction {
            if let Regex::Star(x) = p {
                let base = self.search(&Regex::Epsilon, q, depth - 1, st);
                if let Some(base) = base {
                    let step_lhs = simplify(&q.clone().then((**x).clone()));
                    if let Some(step) = self.search(&step_lhs, q, depth - 1, st) {
                        return Some(Derivation {
                            lhs: p.clone(),
                            rhs: q.clone(),
                            rule: Rule::StarInduction,
                            children: vec![base, step],
                        });
                    }
                }
            }
        }

        // 5. prefix-rewrite: forward-apply an axiom at the head of `p`.
        if self.cfg.enable_prefix_rewrite {
            for (i, (l, r)) in self.axioms.iter().enumerate() {
                for (pre, suf) in splits(p) {
                    // `p = pre·suf`, `L(pre) ⊆ L(l)` ⟹ `p ⊆ l·suf ⊆ r·suf`.
                    if pre == Regex::Epsilon && *l != Regex::Epsilon {
                        continue; // ε ⊆ l is rarely useful and explodes search
                    }
                    if !self.lang_included(&pre, l) {
                        continue;
                    }
                    let next = simplify(&r.clone().then(suf));
                    if next == *p {
                        continue;
                    }
                    if let Some(d) = self.search(&next, q, depth - 1, st) {
                        return Some(Derivation {
                            lhs: p.clone(),
                            rhs: q.clone(),
                            rule: Rule::PrefixRewrite { axiom: i },
                            children: vec![d],
                        });
                    }
                }
            }
        }

        // 6. suffix-intro: backward-apply an axiom at the head of `q`.
        if self.cfg.enable_suffix_intro {
            for (i, (l, r)) in self.axioms.iter().enumerate() {
                for (qpre, qsuf) in splits(q) {
                    if qpre == Regex::Epsilon && *r != Regex::Epsilon {
                        continue;
                    }
                    if !self.lang_included(r, &qpre) {
                        continue;
                    }
                    let next = simplify(&l.clone().then(qsuf));
                    if next == *q {
                        continue;
                    }
                    if let Some(d) = self.search(p, &next, depth - 1, st) {
                        return Some(Derivation {
                            lhs: p.clone(),
                            rhs: q.clone(),
                            rule: Rule::SuffixIntro { axiom: i },
                            children: vec![d],
                        });
                    }
                }
            }
        }

        // 7. union-right: commit to one arm (after the rules that keep the
        // whole union available, since this one loses information).
        if let Regex::Union(parts) = q {
            for (i, arm) in parts.iter().enumerate() {
                if let Some(d) = self.search(p, &simplify(arm), depth - 1, st) {
                    return Some(Derivation {
                        lhs: p.clone(),
                        rhs: q.clone(),
                        rule: Rule::UnionRight { arm: i },
                        children: vec![d],
                    });
                }
            }
        }

        None
    }
}

struct SearchState {
    on_path: HashSet<(Regex, Regex)>,
    goals: usize,
}

/// Convenience: prove `E ⊢ p ⊆ q` with default budgets.
pub fn prove_inclusion(set: &ConstraintSet, p: &Regex, q: &Regex) -> Option<Derivation> {
    Prover::new(set, ProverConfig::default()).prove_inclusion(p, q)
}

/// Convenience: prove every inclusion of `c` with default budgets.
pub fn prove_constraint(set: &ConstraintSet, c: &PathConstraint) -> Option<Vec<Derivation>> {
    Prover::new(set, ProverConfig::default()).prove_constraint(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::{check, Budget, Verdict};
    use crate::types::parse_constraint;
    use rpq_automata::{parse_regex, Alphabet};

    fn setup(constraints: &[&str]) -> (Alphabet, ConstraintSet) {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, constraints.iter().copied()).unwrap();
        (ab, set)
    }

    fn prove(ab: &mut Alphabet, set: &ConstraintSet, p: &str, q: &str) -> Option<Derivation> {
        let p = parse_regex(ab, p).unwrap();
        let q = parse_regex(ab, q).unwrap();
        prove_inclusion(set, &p, &q)
    }

    #[test]
    fn language_leaf_needs_no_axioms() {
        let (mut ab, set) = setup(&[]);
        let d = prove(&mut ab, &set, "a.(b.a)*.c", "(a.b)*.a.c").unwrap();
        assert_eq!(d.rule, Rule::Language);
        assert!(d.verify(&Prover::new(&set, ProverConfig::default())));
    }

    #[test]
    fn example2_star_induction() {
        // X2: {ll ⊆ l} ⊢ l* ⊆ l + ε (the hard direction).
        let (mut ab, set) = setup(&["l.l <= l"]);
        let d = prove(&mut ab, &set, "l*", "l + ()").unwrap();
        assert!(d.verify(&Prover::new(&set, ProverConfig::default())));
        // And the easy direction is a language fact.
        let d2 = prove(&mut ab, &set, "l + ()", "l*").unwrap();
        assert_eq!(d2.rule, Rule::Language);
    }

    #[test]
    fn example3_cached_query() {
        // X3: {l = (ab)*} ⊢ a(ba)*c = l·a·c, both directions.
        let (mut ab, set) = setup(&["l = (a.b)*"]);
        let d1 = prove(&mut ab, &set, "a.(b.a)*.c", "l.a.c").unwrap();
        assert!(d1.verify(&Prover::new(&set, ProverConfig::default())));
        let d2 = prove(&mut ab, &set, "l.a.c", "a.(b.a)*.c").unwrap();
        assert!(d2.verify(&Prover::new(&set, ProverConfig::default())));
    }

    #[test]
    fn example1_corrected_envelope() {
        // Corrected X1: under Σ*·l ⊆ ε, (la+lb)*·d ⊆ (ε+a+b)·d.
        let (mut ab, set) = setup(&["(l+a+b+d)*.l <= ()"]);
        let d = prove(&mut ab, &set, "(l.a + l.b)*.d", "(() + a + b).d").unwrap();
        assert!(d.verify(&Prover::new(&set, ProverConfig::default())));
        let mut rendered = d.render(&ab);
        rendered.truncate(200);
        assert!(rendered.contains("star-induction") || rendered.contains("suffix-strip"));
    }

    #[test]
    fn word_chain_via_prefix_rewrite() {
        // {u ⊆ v, v·w ⊆ x} ⊢ u·w ⊆ x (the rewrite-system motivation of §4).
        let (mut ab, set) = setup(&["u <= v", "v.w <= x"]);
        let d = prove(&mut ab, &set, "u.w", "x").unwrap();
        assert!(d.verify(&Prover::new(&set, ProverConfig::default())));
    }

    #[test]
    fn unprovable_goals_return_none() {
        let (mut ab, set) = setup(&["a <= b"]);
        // b ⊆ a does not follow from a ⊆ b.
        assert!(prove(&mut ab, &set, "b", "a").is_none());
        // And nothing proves a fresh symbol inclusion.
        assert!(prove(&mut ab, &set, "c", "d").is_none());
    }

    #[test]
    fn mirror_cache_rewrite() {
        // Mirror-site style: {m = s} ⊢ m·x·y ⊆ s·x·y.
        let (mut ab, set) = setup(&["m = s"]);
        let d = prove(&mut ab, &set, "m.x.y", "s.x.y").unwrap();
        assert!(d.verify(&Prover::new(&set, ProverConfig::default())));
    }

    #[test]
    fn renders_readable_tree() {
        let (mut ab, set) = setup(&["l.l <= l"]);
        let d = prove(&mut ab, &set, "l*", "l + ()").unwrap();
        let text = d.render(&ab);
        assert!(text.contains("l* ⊆ ()+l"));
        assert!(text.lines().count() >= 2);
    }

    #[test]
    fn derivation_statistics() {
        let (mut ab, set) = setup(&["l.l <= l"]);
        let d = prove(&mut ab, &set, "l*", "l + ()").unwrap();
        assert!(d.num_nodes() >= 3);
        assert!(d.depth() >= 2);
    }

    #[test]
    fn provable_is_never_refuted() {
        // Cross-engine soundness net on a family of goal/axiom pairs.
        let cases: Vec<(&[&str], &str)> = vec![
            (&["l.l <= l"], "l* <= l + ()"),
            (&["l = (a.b)*"], "a.(b.a)*.c = l.a.c"),
            (&["u <= v", "v.w <= x"], "u.w <= x"),
            (&["m = s"], "m.x <= s.x"),
            (&["a.a <= a"], "a.a.a <= a"),
        ];
        for (axioms, goal) in cases {
            let mut ab = Alphabet::new();
            let set = ConstraintSet::parse(&mut ab, axioms.iter().copied()).unwrap();
            let c = parse_constraint(&mut ab, goal).unwrap();
            let proofs = prove_constraint(&set, &c);
            assert!(proofs.is_some(), "expected a proof for {goal}");
            if let Verdict::Refuted(_) = check(&set, &c, &Budget::default()) {
                panic!("prover and refuter disagree on {goal}")
            }
        }
    }

    #[test]
    fn goal_budget_is_respected() {
        let (mut ab, set) = setup(&["a <= b", "b <= c", "c <= a"]);
        let p = parse_regex(&mut ab, "a.a.a.a.a.a").unwrap();
        let q = parse_regex(&mut ab, "d").unwrap();
        let prover = Prover::new(
            &set,
            ProverConfig {
                max_goals: 50,
                ..ProverConfig::default()
            },
        );
        // Unprovable; must terminate quickly under the budget.
        assert!(prover.prove_inclusion(&p, &q).is_none());
    }
    #[test]
    fn rule_ablations_show_which_rules_are_load_bearing() {
        // X2 needs star-induction; X3 needs suffix-intro (or the
        // prefix-rewrite direction); the corrected X1 needs suffix-strip
        // AND star-induction. Disabling the responsible rule must lose the
        // proof, and re-enabling it must restore it.
        let corpus: Vec<(&[&str], &str, &str)> = vec![
            (&["l.l <= l"], "l* <= l + ()", "star_induction"),
            (&["l = (a.b)*"], "a.(b.a)*.c <= l.a.c", "suffix_intro"),
            (
                &["(l+a+b+d)*.l <= ()"],
                "(l.a + l.b)*.d <= (() + a + b).d",
                "suffix_strip",
            ),
        ];
        for (axioms, goal, critical) in corpus {
            let mut ab = Alphabet::new();
            let set = ConstraintSet::parse(&mut ab, axioms.iter().copied()).unwrap();
            let c = parse_constraint(&mut ab, goal).unwrap();
            let full = Prover::new(&set, ProverConfig::default());
            assert!(full.prove_constraint(&c).is_some(), "{goal} with all rules");
            let ablated_cfg = match critical {
                "star_induction" => ProverConfig {
                    enable_star_induction: false,
                    ..ProverConfig::default()
                },
                "suffix_intro" => ProverConfig {
                    enable_suffix_intro: false,
                    ..ProverConfig::default()
                },
                "suffix_strip" => ProverConfig {
                    enable_suffix_strip: false,
                    ..ProverConfig::default()
                },
                _ => unreachable!(),
            };
            let ablated = Prover::new(&set, ablated_cfg);
            assert!(
                ablated.prove_constraint(&c).is_none(),
                "{goal} should need {critical}"
            );
        }
    }

    #[test]
    fn corrupted_derivations_fail_verification() {
        let (mut ab, set) = setup(&["l.l <= l"]);
        let prover = Prover::new(&set, ProverConfig::default());
        let p = parse_regex(&mut ab, "l*").unwrap();
        let q = parse_regex(&mut ab, "l + ()").unwrap();
        let good = prover.prove_inclusion(&p, &q).unwrap();
        assert!(good.verify(&prover));

        // Claim something false at the root.
        let mut bad = good.clone();
        bad.rhs = parse_regex(&mut ab, "l").unwrap();
        assert!(!bad.verify(&prover), "changed conclusion must not verify");

        // Fabricate a language leaf for a non-inclusion.
        let fake = Derivation {
            lhs: parse_regex(&mut ab, "l.l").unwrap(),
            rhs: parse_regex(&mut ab, "l").unwrap(),
            rule: Rule::Language,
            children: Vec::new(),
        };
        assert!(!fake.verify(&prover));

        // Point an axiom rule at the wrong axiom index.
        let fake_ax = Derivation {
            lhs: parse_regex(&mut ab, "l.l").unwrap(),
            rhs: parse_regex(&mut ab, "l").unwrap(),
            rule: Rule::PrefixRewrite { axiom: 99 },
            children: vec![Derivation {
                lhs: parse_regex(&mut ab, "l").unwrap(),
                rhs: parse_regex(&mut ab, "l").unwrap(),
                rule: Rule::Language,
                children: Vec::new(),
            }],
        };
        assert!(!fake_ax.verify(&prover));
    }
}
