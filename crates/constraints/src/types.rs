//! Path constraints (Definition 4.1) and constraint sets.
//!
//! A *path inclusion* `p ⊆ q` holds at `(o, I)` when `p(o, I) ⊆ q(o, I)`;
//! a *path equality* `p = q` when the answer sets coincide. When both sides
//! are single words the constraint is a *word* constraint — the tractable
//! class of Section 4.2. Following the paper's convention, whenever
//! `u ⊆ ε` is present for a word `u`, the set is completed with `ε ⊆ u`
//! (avoiding the degenerate "emptiness constraints" the paper excludes).

use std::fmt;

use rpq_automata::{parse_regex, Alphabet, Nfa, ParseError, Regex, Symbol};
use rpq_core::eval_product;
use rpq_graph::{Instance, Oid};

/// Inclusion or equality.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// `lhs ⊆ rhs`.
    Inclusion,
    /// `lhs = rhs`.
    Equality,
}

/// A path constraint `lhs ⊆ rhs` or `lhs = rhs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathConstraint {
    /// Left-hand side.
    pub lhs: Regex,
    /// Right-hand side.
    pub rhs: Regex,
    /// Inclusion or equality.
    pub kind: ConstraintKind,
}

impl PathConstraint {
    /// An inclusion constraint.
    pub fn inclusion(lhs: Regex, rhs: Regex) -> PathConstraint {
        PathConstraint {
            lhs,
            rhs,
            kind: ConstraintKind::Inclusion,
        }
    }

    /// An equality constraint.
    pub fn equality(lhs: Regex, rhs: Regex) -> PathConstraint {
        PathConstraint {
            lhs,
            rhs,
            kind: ConstraintKind::Equality,
        }
    }

    /// Is this a *word* constraint (both sides single words)?
    pub fn is_word_constraint(&self) -> bool {
        self.lhs.as_word().is_some() && self.rhs.as_word().is_some()
    }

    /// The word pair, when this is a word constraint.
    pub fn as_word_pair(&self) -> Option<(Vec<Symbol>, Vec<Symbol>)> {
        Some((self.lhs.as_word()?, self.rhs.as_word()?))
    }

    /// View as the list of inclusions it denotes (1 for ⊆, 2 for =).
    pub fn as_inclusions(&self) -> Vec<(Regex, Regex)> {
        match self.kind {
            ConstraintKind::Inclusion => vec![(self.lhs.clone(), self.rhs.clone())],
            ConstraintKind::Equality => vec![
                (self.lhs.clone(), self.rhs.clone()),
                (self.rhs.clone(), self.lhs.clone()),
            ],
        }
    }

    /// Does the constraint hold at `(source, instance)`? Direct evaluation
    /// (the semantics of Definition 4.1) — the final arbiter used to verify
    /// every witness the decision procedures produce.
    pub fn holds_at(&self, instance: &Instance, source: Oid) -> bool {
        let l = eval_product(&Nfa::thompson(&self.lhs), instance, source).answers;
        let r = eval_product(&Nfa::thompson(&self.rhs), instance, source).answers;
        match self.kind {
            ConstraintKind::Inclusion => l.iter().all(|o| r.binary_search(o).is_ok()),
            ConstraintKind::Equality => l == r,
        }
    }

    /// All symbols mentioned.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut s = self.lhs.symbols();
        s.extend(self.rhs.symbols());
        s.sort();
        s.dedup();
        s
    }

    /// Render against an alphabet (`⊆` prints as `<=`).
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> ConstraintDisplay<'a> {
        ConstraintDisplay { c: self, alphabet }
    }
}

/// Display helper for [`PathConstraint`].
pub struct ConstraintDisplay<'a> {
    c: &'a PathConstraint,
    alphabet: &'a Alphabet,
}

impl fmt::Display for ConstraintDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.c.kind {
            ConstraintKind::Inclusion => "<=",
            ConstraintKind::Equality => "=",
        };
        write!(
            f,
            "{} {} {}",
            self.c.lhs.display(self.alphabet),
            op,
            self.c.rhs.display(self.alphabet)
        )
    }
}

/// Parse a constraint: `p <= q` (inclusion) or `p = q` (equality). The paper
/// writes inclusion as `⊆`, which is also accepted.
pub fn parse_constraint(alphabet: &mut Alphabet, src: &str) -> Result<PathConstraint, ParseError> {
    let (op_pos, op_len, kind) = find_op(src).ok_or_else(|| {
        let mut e = ParseError::new(0, "expected `<=`, `⊆`, or `=` between two path expressions");
        e.end = src.len();
        e.expected = vec!["'<='", "'⊆'", "'='"];
        e
    })?;
    let lhs = parse_regex(alphabet, &src[..op_pos])?;
    let rhs =
        parse_regex(alphabet, &src[op_pos + op_len..]).map_err(|e| e.offset(op_pos + op_len))?;
    Ok(PathConstraint { lhs, rhs, kind })
}

fn find_op(src: &str) -> Option<(usize, usize, ConstraintKind)> {
    if let Some(i) = src.find("<=") {
        return Some((i, 2, ConstraintKind::Inclusion));
    }
    if let Some(i) = src.find('⊆') {
        return Some((i, '⊆'.len_utf8(), ConstraintKind::Inclusion));
    }
    // Plain `=` must not be inside a quoted label; scan outside quotes.
    let bytes = src.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'=' if !in_str => return Some((i, 1, ConstraintKind::Equality)),
            _ => {}
        }
        i += 1;
    }
    None
}

/// A finite set `E` of path constraints with the normalizations of
/// Section 4.2 applied.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    constraints: Vec<PathConstraint>,
}

impl ConstraintSet {
    /// Empty set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Build from constraints, applying the ε-completion: for every word
    /// inclusion `u ⊆ ε` the symmetric `ε ⊆ u` is added (the paper assumes
    /// this to exclude emptiness constraints).
    pub fn from_constraints<I>(constraints: I) -> ConstraintSet
    where
        I: IntoIterator<Item = PathConstraint>,
    {
        let mut set = ConstraintSet::new();
        for c in constraints {
            set.add(c);
        }
        set
    }

    /// Parse several constraints (one per line / iterator item).
    pub fn parse<I, S>(alphabet: &mut Alphabet, lines: I) -> Result<ConstraintSet, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = ConstraintSet::new();
        for line in lines {
            let line = line.as_ref().trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            out.add(parse_constraint(alphabet, line)?);
        }
        Ok(out)
    }

    /// Add one constraint (with ε-completion).
    pub fn add(&mut self, c: PathConstraint) {
        if let Some((u, v)) = c.as_word_pair() {
            if v.is_empty() && !u.is_empty() && c.kind == ConstraintKind::Inclusion {
                let completion = PathConstraint::inclusion(Regex::Epsilon, Regex::word(&u));
                if !self.constraints.contains(&completion) {
                    self.constraints.push(completion);
                }
            }
        }
        if !self.constraints.contains(&c) {
            self.constraints.push(c);
        }
    }

    /// The constraints.
    pub fn iter(&self) -> impl Iterator<Item = &PathConstraint> {
        self.constraints.iter()
    }

    /// Number of constraints (after normalization).
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Are *all* constraints word constraints (the Theorem 4.3 class)?
    pub fn all_word_constraints(&self) -> bool {
        self.constraints
            .iter()
            .all(PathConstraint::is_word_constraint)
    }

    /// Are all constraints word *equalities* (the Section 4.3 class)?
    pub fn all_word_equalities(&self) -> bool {
        self.constraints
            .iter()
            .all(|c| c.is_word_constraint() && c.kind == ConstraintKind::Equality)
    }

    /// All symbols mentioned by any constraint.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for c in &self.constraints {
            out.extend(c.symbols());
        }
        out.sort();
        out.dedup();
        out
    }

    /// Longest word occurring in a word constraint (the paper's `M`).
    pub fn max_word_len(&self) -> usize {
        self.constraints
            .iter()
            .filter_map(|c| {
                let (u, v) = c.as_word_pair()?;
                Some(u.len().max(v.len()))
            })
            .max()
            .unwrap_or(0)
    }

    /// Do all constraints hold at `(source, instance)`?
    pub fn holds_at(&self, instance: &Instance, source: Oid) -> bool {
        self.constraints
            .iter()
            .all(|c| c.holds_at(instance, source))
    }
}

impl FromIterator<PathConstraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = PathConstraint>>(iter: T) -> Self {
        ConstraintSet::from_constraints(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::InstanceBuilder;

    #[test]
    fn parse_inclusion_and_equality() {
        let mut ab = Alphabet::new();
        let c = parse_constraint(&mut ab, "a.b <= c").unwrap();
        assert_eq!(c.kind, ConstraintKind::Inclusion);
        assert!(c.is_word_constraint());
        let c2 = parse_constraint(&mut ab, "a.(b)* = d").unwrap();
        assert_eq!(c2.kind, ConstraintKind::Equality);
        assert!(!c2.is_word_constraint());
        let c3 = parse_constraint(&mut ab, "a ⊆ b").unwrap();
        assert_eq!(c3.kind, ConstraintKind::Inclusion);
    }

    #[test]
    fn parse_rejects_garbage() {
        let mut ab = Alphabet::new();
        assert!(parse_constraint(&mut ab, "a b c").is_err());
        assert!(parse_constraint(&mut ab, "<= a").is_err());
        assert!(parse_constraint(&mut ab, "a <= ").is_err());
    }

    #[test]
    fn equals_inside_quotes_is_not_an_operator() {
        let mut ab = Alphabet::new();
        let c = parse_constraint(&mut ab, r#""content=x" <= l"#).unwrap();
        assert_eq!(c.kind, ConstraintKind::Inclusion);
        assert!(ab.get("content=x").is_some());
    }

    #[test]
    fn epsilon_completion_applied() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a.b <= ()"]).unwrap();
        // u ⊆ ε forces ε ⊆ u to be present too
        assert_eq!(set.len(), 2);
        assert!(set
            .iter()
            .any(|c| c.lhs == Regex::Epsilon && c.kind == ConstraintKind::Inclusion));
    }

    #[test]
    fn word_classification() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a.a <= a", "b = a.b"]).unwrap();
        assert!(set.all_word_constraints());
        assert!(!set.all_word_equalities());
        let eqs = ConstraintSet::parse(&mut ab, ["a.a = a"]).unwrap();
        assert!(eqs.all_word_equalities());
        let paths = ConstraintSet::parse(&mut ab, ["a* <= b"]).unwrap();
        assert!(!paths.all_word_constraints());
    }

    #[test]
    fn holds_at_checks_semantics() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o", "l", "x");
        b.edge("o", "m", "x");
        b.edge("o", "m", "y");
        let (inst, names) = b.finish();
        let o = names["o"];
        let incl = parse_constraint(&mut ab, "l <= m").unwrap();
        assert!(incl.holds_at(&inst, o));
        let eq = parse_constraint(&mut ab, "l = m").unwrap();
        assert!(!eq.holds_at(&inst, o));
        let rev = parse_constraint(&mut ab, "m <= l").unwrap();
        assert!(!rev.holds_at(&inst, o));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(
            &mut ab,
            ["# header", "", "a <= b", "  # trailing comment line"],
        )
        .unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn max_word_len_and_symbols() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a.b.c <= d", "d = e"]).unwrap();
        assert_eq!(set.max_word_len(), 3);
        assert_eq!(set.symbols().len(), 5);
    }

    #[test]
    fn duplicates_collapse() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a <= b", "a <= b", "a <= b"]).unwrap();
        assert_eq!(set.len(), 1);
    }
}
