//! General path-constraint implication — Theorem 4.2.
//!
//! The paper proves decidability in 2-EXPSPACE by a bounded-model argument:
//! a violated implication has a finite counterexample whose vertices are
//! sets of states of the product automaton `F` of all the constraint and
//! query automata (the homomorphism `μ` mapping `o'` to `o_{states(o')}`).
//! Enumerating all instances up to that doubly-exponential size is
//! hopeless in practice, so this engine returns one of three *certified*
//! verdicts:
//!
//! * [`Verdict::Implied`] — proved by a **sound** fixpoint: prefix
//!   rewriting generalized to regex rules. `S₀ = L(q)`; each round adds
//!   `L(P)·(Q ⧵⧵ S)` for every inclusion `P ⊆ Q` of `E`, where
//!   `Q ⧵⧵ S = {w | ∀y ∈ L(Q): y·w ∈ S}` is the *universal* left residual
//!   (complementation + existential quotient). If eventually
//!   `L(p) ⊆ S`, then `E ⊨ p ⊆ q` (soundness argument in `DESIGN.md`;
//!   for word constraints this specializes to Lemma 4.4, which is also
//!   complete — those inputs are routed to the exact Theorem 4.3
//!   procedures).
//! * [`Verdict::Refuted`] — a finite instance `(o, I)` with `I ⊨ E` but
//!   `p(o, I) ⊄ q(o, I)`, found by a chase-style counterexample search
//!   seeded with words of `L(p)` (with `μ`-style vertex merging to curb
//!   growth) plus a randomized fallback. **Every witness is re-verified by
//!   direct evaluation before being returned.**
//! * [`Verdict::Unknown`] — budgets exhausted; mirrors the practical
//!   intractability of the paper's doubly-exponential bound.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq_automata::ops::included_antichain;
use rpq_automata::{Dfa, Nfa, Regex, Symbol};
use rpq_graph::{Instance, Oid};

use crate::implication::{word_implies_constraint, WordImplication};
use crate::types::{ConstraintKind, ConstraintSet, PathConstraint};

/// A verified counterexample instance.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The instance; `I ⊨ E` holds (re-checked before returning).
    pub instance: Instance,
    /// The source object.
    pub source: Oid,
}

/// Evidence for a refutation.
#[derive(Clone, Debug)]
pub enum Refutation {
    /// A concrete verified instance.
    Instance(Witness),
    /// Word-constraint case: a word of `L(p)` that does not rewrite into
    /// the target (complete by Lemma 4.6, but no instance was materialized
    /// within budget).
    Word(Vec<Symbol>),
}

/// Outcome of [`check`].
#[derive(Clone, Debug)]
pub enum Verdict {
    /// `E ⊨ c`, with the name of the deciding method.
    Implied {
        /// `"word-exact"` (Theorem 4.3) or `"regex-saturation"`.
        method: &'static str,
    },
    /// `E ⊭ c`, with evidence.
    Refuted(Refutation),
    /// Budgets exhausted without a certified answer.
    Unknown,
}

impl Verdict {
    /// True when implied.
    pub fn is_implied(&self) -> bool {
        matches!(self, Verdict::Implied { .. })
    }

    /// True when refuted.
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted(_))
    }
}

/// Budgets for the saturation and search phases.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Max saturation rounds of the regex-rule fixpoint.
    pub saturation_rounds: usize,
    /// Abort saturation if the working DFA exceeds this many states.
    pub max_dfa_states: usize,
    /// How many seed words of `L(p)` to chase.
    pub chase_seeds: usize,
    /// Max seed word length.
    pub seed_len: usize,
    /// Repair iterations per chase.
    pub repairs: usize,
    /// Random instances to try as counterexamples.
    pub random_tries: usize,
    /// Nodes per random instance.
    pub random_nodes: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            saturation_rounds: 6,
            max_dfa_states: 4_000,
            chase_seeds: 24,
            seed_len: 8,
            repairs: 60,
            random_tries: 400,
            random_nodes: 5,
        }
    }
}

/// Check `E ⊨ c` for arbitrary path constraints.
pub fn check(set: &ConstraintSet, c: &PathConstraint, budget: &Budget) -> Verdict {
    // Exact route for word-constraint sets (Theorem 4.3).
    if set.all_word_constraints() {
        return match word_implies_constraint(set, c) {
            WordImplication::Implied => Verdict::Implied {
                method: "word-exact",
            },
            WordImplication::Refuted(w) => {
                // try to materialize an instance witness for explainability
                match refute(set, c, budget) {
                    Some(wit) => Verdict::Refuted(Refutation::Instance(wit)),
                    None => Verdict::Refuted(Refutation::Word(w)),
                }
            }
        };
    }

    // Sound prover on each inclusion of the constraint.
    let mut all_proved = true;
    for (p, q) in c.as_inclusions() {
        if !prove_inclusion_by_saturation(set, &p, &q, budget) {
            all_proved = false;
            break;
        }
    }
    if all_proved {
        return Verdict::Implied {
            method: "regex-saturation",
        };
    }

    // Sound refuter.
    if let Some(w) = refute(set, c, budget) {
        return Verdict::Refuted(Refutation::Instance(w));
    }
    Verdict::Unknown
}

/// Σ for the complement-based language algebra: everything mentioned.
fn full_sigma(set: &ConstraintSet, c: &PathConstraint) -> usize {
    let mut max = 0usize;
    for s in set.symbols().into_iter().chain(c.symbols()) {
        max = max.max(s.index() + 1);
    }
    max.max(1)
}

/// Sound prover: regex-rule prefix rewriting with universal residuals.
fn prove_inclusion_by_saturation(
    set: &ConstraintSet,
    p: &Regex,
    q: &Regex,
    budget: &Budget,
) -> bool {
    let sigma = full_sigma(set, &PathConstraint::inclusion(p.clone(), q.clone()));
    let rules: Vec<(Regex, Regex)> = set.iter().flat_map(|c| c.as_inclusions()).collect();

    // S as a minimized DFA.
    let mut s_dfa = Dfa::from_nfa(&Nfa::thompson(q), sigma).minimize();
    let p_nfa = Nfa::thompson(p);

    for _ in 0..budget.saturation_rounds {
        if included_antichain(&p_nfa, &s_dfa.to_nfa()).is_ok() {
            return true;
        }
        let mut grew = false;
        for (rp, rq) in &rules {
            // R = Q ⧵⧵ S = ¬( quotient∃(Q, ¬S) )
            let not_s = s_dfa.complement();
            let quot = existential_quotient(&not_s.to_nfa(), &Nfa::thompson(rq));
            let quot_dfa = Dfa::from_nfa(&quot, sigma);
            if quot_dfa.num_states() > budget.max_dfa_states {
                return false;
            }
            let residual = quot_dfa.complement();
            if residual.is_empty_lang() {
                continue;
            }
            // S' = S ∪ L(P)·R
            let extension = Nfa::concat(&Nfa::thompson(rp), &residual.to_nfa());
            // only grow if extension adds something
            if included_antichain(&extension, &s_dfa.to_nfa()).is_ok() {
                continue;
            }
            let unioned = Nfa::union(&s_dfa.to_nfa(), &extension);
            let new_dfa = Dfa::from_nfa(&unioned, sigma).minimize();
            if new_dfa.num_states() > budget.max_dfa_states {
                return false;
            }
            s_dfa = new_dfa;
            grew = true;
        }
        if !grew {
            break;
        }
    }
    included_antichain(&p_nfa, &s_dfa.to_nfa()).is_ok()
}

/// `{w | ∃y ∈ L(filter): y·w ∈ L(base)}` — the existential left quotient.
fn existential_quotient(base: &Nfa, filter: &Nfa) -> Nfa {
    let starts = base.reachable_via(filter);
    let mut out = Nfa::empty();
    let off = out.add_nfa(base);
    for s in starts {
        out.add_eps(out.start(), s + off);
    }
    out
}

/// Sound refuter: chase + merge + randomized search. Any returned witness
/// satisfies `E` and violates `c` (verified by direct evaluation).
fn refute(set: &ConstraintSet, c: &PathConstraint, budget: &Budget) -> Option<Witness> {
    let verify =
        |inst: &Instance, src: Oid| -> bool { set.holds_at(inst, src) && !c.holds_at(inst, src) };

    // --- chase from path-instance seeds -------------------------------
    let p_nfa = Nfa::thompson(&c.lhs);
    let seeds = p_nfa.enumerate_words(budget.seed_len, budget.chase_seeds);
    // seed ε-only queries still need a vertex
    for seed in seeds.iter() {
        if let Some(w) = chase_seed(set, c, seed, budget, &verify) {
            return Some(w);
        }
    }
    // for equalities, also chase from the right-hand side (violation may
    // need rhs answers the lhs lacks)
    if c.kind == ConstraintKind::Equality {
        let q_nfa = Nfa::thompson(&c.rhs);
        for seed in q_nfa.enumerate_words(budget.seed_len, budget.chase_seeds) {
            if let Some(w) = chase_seed(set, c, &seed, budget, &verify) {
                return Some(w);
            }
        }
    }

    // --- randomized small-instance search ------------------------------
    let mut symbols = set.symbols();
    symbols.extend(c.symbols());
    symbols.sort();
    symbols.dedup();
    if symbols.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(0x5eed_cafe);
    for _ in 0..budget.random_tries {
        let n = rng.random_range(1..=budget.random_nodes);
        let mut inst = Instance::new();
        for _ in 0..n {
            inst.add_node();
        }
        let m = rng.random_range(0..=(n * symbols.len()).min(3 * n));
        for _ in 0..m {
            let from = Oid(rng.random_range(0..n) as u32);
            let to = Oid(rng.random_range(0..n) as u32);
            let sym = *symbols.choose(&mut rng).expect("non-empty");
            inst.add_edge(from, sym, to);
        }
        let src = Oid(0);
        if verify(&inst, src) {
            return Some(Witness {
                instance: inst,
                source: src,
            });
        }
    }
    None
}

/// Chase one seed word: build the path instance, repair constraint
/// violations by adding witness paths, merge when it grows, verify.
fn chase_seed(
    set: &ConstraintSet,
    c: &PathConstraint,
    seed: &[Symbol],
    budget: &Budget,
    verify: &dyn Fn(&Instance, Oid) -> bool,
) -> Option<Witness> {
    let mut inst = Instance::new();
    let src = inst.add_node();
    let mut cur = src;
    for &s in seed {
        let next = inst.add_node();
        inst.add_edge(cur, s, next);
        cur = next;
    }

    let inclusions: Vec<(Regex, Regex)> = set.iter().flat_map(|x| x.as_inclusions()).collect();
    for _ in 0..budget.repairs {
        if verify(&inst, src) {
            return Some(Witness {
                instance: inst,
                source: src,
            });
        }
        // find a violated inclusion and repair it
        let mut repaired = false;
        for (pp, qq) in &inclusions {
            let pa = rpq_core::eval_product(&Nfa::thompson(pp), &inst, src).answers;
            let qa = rpq_core::eval_product(&Nfa::thompson(qq), &inst, src).answers;
            let missing: Vec<Oid> = pa
                .iter()
                .copied()
                .filter(|o| qa.binary_search(o).is_err())
                .collect();
            if missing.is_empty() {
                continue;
            }
            // witness word for Q (shortest)
            let q_nfa = Nfa::thompson(qq);
            let Some(y) = q_nfa.shortest_accepted() else {
                // L(Q) = ∅ but P produces answers: unrepairable seed
                return None;
            };
            for z in missing.into_iter().take(2) {
                if y.is_empty() {
                    // need z ∈ ε(o) = {o}: only possible if z == src; merge
                    // z into src is too invasive — give up on this seed.
                    if z != src {
                        return None;
                    }
                    continue;
                }
                let mut cur = src;
                for &s in &y[..y.len() - 1] {
                    let fresh = inst.add_node();
                    inst.add_edge(cur, s, fresh);
                    cur = fresh;
                }
                inst.add_edge(cur, *y.last().expect("non-empty"), z);
            }
            repaired = true;
            break;
        }
        if !repaired {
            // all constraints hold; target not violated → seed failed
            return None;
        }
        if inst.num_nodes() > 24 {
            // μ-style merge: vertices with equal reachable-state signatures
            // w.r.t. all constraint/query automata collapse.
            inst = merge_by_signature(&inst, src, set, c);
            if inst.num_nodes() > 64 {
                return None;
            }
        }
    }
    if verify(&inst, src) {
        return Some(Witness {
            instance: inst,
            source: src,
        });
    }
    None
}

/// The Theorem 4.2 homomorphism `μ`: replace each vertex by the set of
/// product-automaton states reachable at it, then merge equal signatures.
fn merge_by_signature(
    inst: &Instance,
    src: Oid,
    set: &ConstraintSet,
    c: &PathConstraint,
) -> Instance {
    // Signature: per automaton, the set of its states reachable from src at
    // this vertex (equivalently, states of the disjoint-union automaton).
    let mut autos: Vec<Nfa> = Vec::new();
    for pc in set.iter() {
        autos.push(Nfa::thompson(&pc.lhs));
        autos.push(Nfa::thompson(&pc.rhs));
    }
    autos.push(Nfa::thompson(&c.lhs));
    autos.push(Nfa::thompson(&c.rhs));

    let nv = inst.num_nodes();
    // reachable (automaton, state, vertex) triples via BFS per automaton
    let mut signature: Vec<Vec<(usize, u32)>> = vec![Vec::new(); nv];
    for (ai, a) in autos.iter().enumerate() {
        let mut seen = vec![false; a.num_states() * nv];
        let mut stack = vec![(a.start(), src)];
        seen[a.start() as usize * nv + src.index()] = true;
        while let Some((q, v)) = stack.pop() {
            signature[v.index()].push((ai, q));
            for &q2 in a.eps_transitions(q) {
                let idx = q2 as usize * nv + v.index();
                if !seen[idx] {
                    seen[idx] = true;
                    stack.push((q2, v));
                }
            }
            for &(sym, q2) in a.transitions(q) {
                for &(label, v2) in inst.out_edges(v) {
                    if label == sym {
                        let idx = q2 as usize * nv + v2.index();
                        if !seen[idx] {
                            seen[idx] = true;
                            stack.push((q2, v2));
                        }
                    }
                }
            }
        }
    }
    for sig in &mut signature {
        sig.sort_unstable();
        sig.dedup();
    }

    // merge by signature; keep src distinguished in its own class
    let mut class_of: std::collections::HashMap<(bool, Vec<(usize, u32)>), u32> =
        std::collections::HashMap::new();
    let mut merged = Instance::new();
    let mut map: Vec<Oid> = Vec::with_capacity(nv);
    for v in inst.nodes() {
        let key = (v == src, signature[v.index()].clone());
        let id = *class_of.entry(key).or_insert_with(|| merged.add_node().0);
        map.push(Oid(id));
    }
    for (a, l, b) in inst.edges() {
        merged.add_edge(map[a.index()], l, map[b.index()]);
    }
    // note: merged source is map[src]
    let merged_src = map[src.index()];
    if merged_src != Oid(0) {
        // relabel so the source is vertex 0 for the caller's convenience:
        // cheap to skip — callers use the returned instance with `src`
        // looked up below; instead we just return as-is and fix src.
    }
    // The caller expects the same `src` oid; rebuild with src first.
    if merged_src == Oid(0) {
        return merged;
    }
    // swap vertex 0 and merged_src by rebuilding
    let mut final_inst = Instance::new();
    for _ in 0..merged.num_nodes() {
        final_inst.add_node();
    }
    let swap = |o: Oid| -> Oid {
        if o == merged_src {
            Oid(0)
        } else if o == Oid(0) {
            merged_src
        } else {
            o
        }
    };
    for (a, l, b) in merged.edges() {
        final_inst.add_edge(swap(a), l, swap(b));
    }
    final_inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::parse_constraint;
    use rpq_automata::{parse_regex, Alphabet};

    fn setup(lines: &[&str]) -> (Alphabet, ConstraintSet) {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        (ab, set)
    }

    #[test]
    fn word_route_is_exact() {
        let (mut ab, set) = setup(&["l.l <= l"]);
        let c = parse_constraint(&mut ab, "l* = l + ()").unwrap();
        let v = check(&set, &c, &Budget::default());
        assert!(matches!(
            v,
            Verdict::Implied {
                method: "word-exact"
            }
        ));
    }

    #[test]
    fn example3_cached_query() {
        // E = {l = (a.b)*} ⊨ a.(b.a)*.c = l.a.c   (Example 3, Section 3.2)
        let (mut ab, set) = setup(&["l = (a.b)*"]);
        let c = parse_constraint(&mut ab, "a.(b.a)*.c = l.a.c").unwrap();
        let v = check(&set, &c, &Budget::default());
        assert!(v.is_implied(), "{v:?}");
    }

    #[test]
    fn example1_literal_claim_is_refuted() {
        // Σ*·l = ε does NOT imply (la+lb)*d = (a+b)d  (the k=0 word `d`).
        let (mut ab, set) = setup(&["(a+b+d+l)*.l = ()"]);
        let c = parse_constraint(&mut ab, "(l.a + l.b)*.d = (a+b).d").unwrap();
        let v = check(&set, &c, &Budget::default());
        match v {
            Verdict::Refuted(Refutation::Instance(w)) => {
                assert!(set.holds_at(&w.instance, w.source));
                assert!(!c.holds_at(&w.instance, w.source));
            }
            other => panic!("expected instance refutation, got {other:?}"),
        }
    }

    #[test]
    fn example1_sound_direction_proved() {
        // Σ*·l ⊆ ε ⊨ (la+lb)*d ⊆ (ε+a+b)d — the upper envelope is sound.
        let (mut ab, set) = setup(&["(a+b+d+l)*.l <= ()"]);
        let c = parse_constraint(&mut ab, "(l.a + l.b)*.d <= (() + a + b).d").unwrap();
        let v = check(&set, &c, &Budget::default());
        assert!(v.is_implied(), "{v:?}");
    }

    #[test]
    fn trivial_regex_implication_without_constraints() {
        let (mut ab, _) = setup(&[]);
        let set = ConstraintSet::new();
        let c = parse_constraint(&mut ab, "a.(b.a)* <= (a.b)*.a").unwrap();
        // pure language inclusion: saturation round 0 suffices…
        // (empty set is all-word-constraints, so the exact route applies)
        let v = check(&set, &c, &Budget::default());
        assert!(v.is_implied());
    }

    #[test]
    fn refuter_finds_simple_noninclusion() {
        let (mut ab, set) = setup(&["a* <= b.c"]); // regex constraint, unrelated
        let c = parse_constraint(&mut ab, "x <= y").unwrap();
        let v = check(&set, &c, &Budget::default());
        match v {
            Verdict::Refuted(Refutation::Instance(w)) => {
                assert!(set.holds_at(&w.instance, w.source));
                assert!(!c.holds_at(&w.instance, w.source));
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn cache_prefix_substitution_family() {
        // l = r (cache) implies l.w = r.w for several w.
        let (mut ab, set) = setup(&["l = (a+b)*.c"]);
        for w in ["a", "a.b", "c.c", "(a.b)"] {
            let c = parse_constraint(&mut ab, &format!("l.{w} = (a+b)*.c.{w}")).unwrap();
            let v = check(&set, &c, &Budget::default());
            assert!(v.is_implied(), "l.{w}: {v:?}");
        }
    }

    #[test]
    fn unknown_on_hard_instances_is_possible() {
        // A constraint the prover cannot confirm and the refuter cannot
        // break within tiny budgets → Unknown (documented behavior).
        let (mut ab, set) = setup(&["(a.b)* <= (b.a)*"]);
        let c = parse_constraint(&mut ab, "(a.a)* <= (b.b)*").unwrap();
        let tiny = Budget {
            saturation_rounds: 0,
            chase_seeds: 0,
            random_tries: 0,
            ..Budget::default()
        };
        let v = check(&set, &c, &tiny);
        assert!(matches!(v, Verdict::Unknown));
    }

    #[test]
    fn equality_constraints_split_into_inclusions() {
        let (mut ab, set) = setup(&["l = m"]);
        let c = parse_constraint(&mut ab, "l.x = m.x").unwrap();
        assert!(check(&set, &c, &Budget::default()).is_implied());
        let c2 = parse_constraint(&mut ab, "l.x = x").unwrap();
        let v = check(&set, &c2, &Budget::default());
        assert!(v.is_refuted(), "{v:?}");
    }

    #[test]
    fn witnesses_always_verify() {
        // Sanity net over several refutations.
        let (mut ab, set) = setup(&["a.a <= a"]);
        for (ps, qs) in [("a", "a.a"), ("a.b", "b.a"), ("b", "a")] {
            let c = parse_constraint(&mut ab, &format!("{ps} <= {qs}")).unwrap();
            if let Verdict::Refuted(Refutation::Instance(w)) = check(&set, &c, &Budget::default()) {
                assert!(set.holds_at(&w.instance, w.source));
                assert!(!c.holds_at(&w.instance, w.source));
            }
        }
        let _ = parse_regex(&mut ab, "a").unwrap();
    }
}
