//! Implication by word constraints — Theorem 4.3.
//!
//! * Part (i): implication of a word constraint by word constraints is
//!   decidable in PTIME — `E ⊨ u ⊆ v` iff `u →*_E v` (Lemma 4.4), decided
//!   through the `RewriteTo(v)` automaton (Lemma 4.5).
//! * Part (ii): implication of a *path* constraint by word constraints is
//!   decidable in PSPACE — `E ⊨ p ⊆ q` iff `L(p) ⊆ RewriteTo(q)`
//!   (Lemmas 4.6 + 4.7), an ordinary regular-language inclusion.
//!
//! Both the antichain-based and the naive fully-determinizing inclusion
//! checks are exposed; bench `t3_path_implication` compares them.

use rpq_automata::ops::{included_antichain, included_naive};
use rpq_automata::{Nfa, Regex, Symbol};

use crate::rewrite::{rewrite_to_nfa, rewrite_to_word_nfa, RewriteSystem};
use crate::types::{ConstraintKind, ConstraintSet, PathConstraint};

/// Outcome of a word-constraint implication check. `Refuted` carries a word
/// `u ∈ L(p)` that does not rewrite into the target — by Lemma 4.4 /
/// Lemma 4.6 completeness, a genuine semantic counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WordImplication {
    /// The implication holds.
    Implied,
    /// A witness word in `L(lhs) \ RewriteTo(rhs)`.
    Refuted(Vec<Symbol>),
}

impl WordImplication {
    /// True when implied.
    pub fn is_implied(&self) -> bool {
        matches!(self, WordImplication::Implied)
    }
}

/// Theorem 4.3(i): does `E ⊨ u ⊆ v` for words `u, v`? PTIME.
pub fn word_implies_word(set: &ConstraintSet, u: &[Symbol], v: &[Symbol]) -> bool {
    let rules = RewriteSystem::from_constraints(set);
    rewrite_to_word_nfa(v, &rules).nfa.accepts(u)
}

/// Theorem 4.3(i) for equalities: `E ⊨ u = v` iff `u →* v` and `v →* u`.
pub fn word_implies_word_eq(set: &ConstraintSet, u: &[Symbol], v: &[Symbol]) -> bool {
    word_implies_word(set, u, v) && word_implies_word(set, v, u)
}

/// Theorem 4.3(ii): does `E ⊨ p ⊆ q`? Decided as `L(p) ⊆ RewriteTo(q)`
/// using the antichain inclusion algorithm.
///
/// **Precondition:** `E` must contain only word constraints (checked;
/// panics otherwise — route general constraints through
/// [`crate::general::check`]).
pub fn word_implies_path(set: &ConstraintSet, p: &Regex, q: &Regex) -> WordImplication {
    assert!(
        set.all_word_constraints(),
        "word_implies_path requires a word-constraint set"
    );
    let rules = RewriteSystem::from_constraints(set);
    let target = Nfa::thompson(q);
    let rewrite = rewrite_to_nfa(&target, &rules);
    match included_antichain(&Nfa::thompson(p), &rewrite.nfa) {
        Ok(()) => WordImplication::Implied,
        Err(w) => WordImplication::Refuted(w),
    }
}

/// The same decision through full determinization (the textbook PSPACE
/// procedure); exists for the bench ablation and cross-checking.
/// `sigma` must cover every symbol of `p`, `q`, and `E`.
pub fn word_implies_path_naive(
    set: &ConstraintSet,
    p: &Regex,
    q: &Regex,
    sigma: usize,
) -> WordImplication {
    assert!(set.all_word_constraints());
    let rules = RewriteSystem::from_constraints(set);
    let target = Nfa::thompson(q);
    let rewrite = rewrite_to_nfa(&target, &rules);
    match included_naive(&Nfa::thompson(p), &rewrite.nfa, sigma) {
        Ok(()) => WordImplication::Implied,
        Err(w) => WordImplication::Refuted(w),
    }
}

/// Full path-constraint check against a word-constraint set: inclusion or
/// equality (two inclusions).
pub fn word_implies_constraint(set: &ConstraintSet, c: &PathConstraint) -> WordImplication {
    match c.kind {
        ConstraintKind::Inclusion => word_implies_path(set, &c.lhs, &c.rhs),
        ConstraintKind::Equality => match word_implies_path(set, &c.lhs, &c.rhs) {
            WordImplication::Implied => word_implies_path(set, &c.rhs, &c.lhs),
            refuted => refuted,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::parse_constraint;
    use rpq_automata::{parse_regex, parse_word, Alphabet};

    fn set(ab: &mut Alphabet, lines: &[&str]) -> ConstraintSet {
        ConstraintSet::parse(ab, lines.iter().copied()).unwrap()
    }

    #[test]
    fn example2_of_section_32() {
        // E = {l·l ⊆ l} ⊨ l* = l + ε   (Example 2, Section 3.2)
        let mut ab = Alphabet::new();
        let e = set(&mut ab, &["l.l <= l"]);
        let p = parse_regex(&mut ab, "l*").unwrap();
        let q = parse_regex(&mut ab, "l + ()").unwrap();
        assert_eq!(word_implies_path(&e, &p, &q), WordImplication::Implied);
        assert_eq!(word_implies_path(&e, &q, &p), WordImplication::Implied);
        // and via the constraint-level API
        let c = parse_constraint(&mut ab, "l* = l + ()").unwrap();
        assert!(word_implies_constraint(&e, &c).is_implied());
    }

    #[test]
    fn without_constraint_l_star_is_not_bounded() {
        let mut ab = Alphabet::new();
        let e = ConstraintSet::new();
        let p = parse_regex(&mut ab, "l*").unwrap();
        let q = parse_regex(&mut ab, "l + ()").unwrap();
        match word_implies_path(&e, &p, &q) {
            WordImplication::Refuted(w) => assert_eq!(w.len(), 2), // ll
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn word_level_decisions() {
        let mut ab = Alphabet::new();
        let e = set(&mut ab, &["a.a <= a"]);
        let u = parse_word(&mut ab, "a.a.a.a").unwrap();
        let v = parse_word(&mut ab, "a").unwrap();
        assert!(word_implies_word(&e, &u, &v));
        assert!(!word_implies_word(&e, &v, &u));
        assert!(!word_implies_word_eq(&e, &u, &v));
        let e2 = set(&mut ab, &["a.a = a"]);
        assert!(word_implies_word_eq(&e2, &u, &v));
    }

    #[test]
    fn naive_and_antichain_agree() {
        let mut ab = Alphabet::new();
        let e = set(&mut ab, &["a.b <= c", "c.c <= c", "b = d"]);
        let sigma = ab.len();
        let cases = [
            ("(a.b)*", "c* + (a.b)*"),
            ("a.b.c", "c.c"),
            ("d", "b"),
            ("a.d", "a.b"),
            ("a.b", "c"),
            ("c", "a.b"),
            ("a*", "a.a*"),
        ];
        for (ps, qs) in cases {
            let p = parse_regex(&mut ab, ps).unwrap();
            let q = parse_regex(&mut ab, qs).unwrap();
            let anti = word_implies_path(&e, &p, &q).is_implied();
            let naive = word_implies_path_naive(&e, &p, &q, sigma).is_implied();
            assert_eq!(anti, naive, "{ps} ⊆ {qs}");
        }
    }

    #[test]
    fn refutation_witness_is_in_lhs() {
        let mut ab = Alphabet::new();
        let e = set(&mut ab, &["a.b <= c"]);
        let p = parse_regex(&mut ab, "a.b + b.a").unwrap();
        let q = parse_regex(&mut ab, "c").unwrap();
        let WordImplication::Refuted(w) = word_implies_path(&e, &p, &q) else {
            panic!("must refute: b.a does not rewrite to c");
        };
        assert!(Nfa::thompson(&p).accepts(&w));
    }

    #[test]
    fn lemma_46_shape_counterexample() {
        // The paper notes p ⊆ q can hold *semantically on one instance*
        // without per-word rewriting (e.g. a ⊆ b+c); implication by an
        // EMPTY set of word constraints must refute it.
        let mut ab = Alphabet::new();
        let e = ConstraintSet::new();
        let p = parse_regex(&mut ab, "a").unwrap();
        let q = parse_regex(&mut ab, "b + c").unwrap();
        assert!(!word_implies_path(&e, &p, &q).is_implied());
    }

    #[test]
    fn cached_query_as_word_rules() {
        // cache edge: l = a.b (word equality). Then l.x ≡ a.b.x.
        let mut ab = Alphabet::new();
        let e = set(&mut ab, &["l = a.b"]);
        let p = parse_regex(&mut ab, "l.x").unwrap();
        let q = parse_regex(&mut ab, "a.b.x").unwrap();
        assert!(word_implies_path(&e, &p, &q).is_implied());
        assert!(word_implies_path(&e, &q, &p).is_implied());
    }

    #[test]
    fn epsilon_target() {
        let mut ab = Alphabet::new();
        // home = ε: home* ≡ ε
        let e = set(&mut ab, &["home = ()"]);
        let p = parse_regex(&mut ab, "home*").unwrap();
        let q = parse_regex(&mut ab, "()").unwrap();
        assert!(word_implies_path(&e, &p, &q).is_implied());
        assert!(word_implies_path(&e, &q, &p).is_implied());
    }

    #[test]
    #[should_panic(expected = "word-constraint set")]
    fn non_word_sets_are_rejected() {
        let mut ab = Alphabet::new();
        let e = set(&mut ab, &["a* <= b"]);
        let p = parse_regex(&mut ab, "a").unwrap();
        let q = parse_regex(&mut ab, "b").unwrap();
        let _ = word_implies_path(&e, &p, &q);
    }
}
