//! Property tests for the Section 4 machinery: the rewrite system, the
//! saturated `RewriteTo` automata, Armstrong spheres, and the boundedness
//! decision, cross-checked against each other and against brute force.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rpq_automata::ops::included_antichain;
use rpq_automata::random::{random_regex, RegexGenConfig};
use rpq_automata::{Alphabet, Nfa, Regex, Symbol};
use rpq_constraints::armstrong::shortest_lex_accepted;
use rpq_constraints::rewrite::{
    rewrite_closure_nfa, rewrite_to_word_nfa, rewrites_to, RewriteSystem,
};
use rpq_constraints::{
    suggested_radius, ArmstrongSphere, ConstraintKind, ConstraintSet, PathConstraint,
};
use rpq_core::eval_product;
use rpq_graph::generators::random_graph;

fn syms2() -> (Alphabet, Vec<Symbol>) {
    let ab = Alphabet::from_names(["a", "b"]);
    let s = ab.symbols().collect();
    (ab, s)
}

fn rand_word(rng: &mut StdRng, syms: &[Symbol], max_len: usize) -> Vec<Symbol> {
    let len = rng.random_range(0..=max_len);
    (0..len)
        .map(|_| syms[rng.random_range(0..syms.len())])
        .collect()
}

fn rand_set(rng: &mut StdRng, syms: &[Symbol], rules: usize, equalities: bool) -> ConstraintSet {
    let mut cs = Vec::new();
    for _ in 0..rules {
        let mut u = rand_word(rng, syms, 3);
        if u.is_empty() {
            u.push(syms[0]);
        }
        let v = rand_word(rng, syms, 3);
        cs.push(PathConstraint {
            lhs: Regex::word(&u),
            rhs: Regex::word(&v),
            kind: if equalities {
                ConstraintKind::Equality
            } else if rng.random_range(0..2) == 0 {
                ConstraintKind::Inclusion
            } else {
                ConstraintKind::Equality
            },
        });
    }
    ConstraintSet::from_constraints(cs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The saturated automaton decision agrees with explicit BFS rewriting
    /// (bounded): if BFS derives u →* v, the automaton accepts u; if the
    /// automaton accepts u, BFS (with a generous budget) finds a chain.
    #[test]
    fn saturation_agrees_with_bfs(seed in 0u64..100_000) {
        let (_, syms) = syms2();
        let mut rng = StdRng::seed_from_u64(seed);
        let set = rand_set(&mut rng, &syms, 2, false);
        let rs = RewriteSystem::from_constraints(&set);
        let u = rand_word(&mut rng, &syms, 4);
        let v = rand_word(&mut rng, &syms, 3);
        let by_auto = rewrites_to(&rs, &u, &v);
        let by_bfs = rs.derive(&u, &v, 20_000).is_some();
        if by_bfs {
            prop_assert!(by_auto, "BFS derived but automaton rejected");
        }
        // The converse (automaton accepts ⇒ a derivation exists) cannot be
        // certified with a bounded BFS when rules grow words (frontiers
        // explode); it is covered by the semantic soundness tests instead
        // (`derived_implications_hold_semantically` in the workspace suite
        // and the canonical-instance exactness test).
    }

    /// →* is reflexive and transitive (sampled).
    #[test]
    fn rewriting_is_a_preorder(seed in 0u64..100_000) {
        let (_, syms) = syms2();
        let mut rng = StdRng::seed_from_u64(seed);
        let set = rand_set(&mut rng, &syms, 2, false);
        let rs = RewriteSystem::from_constraints(&set);
        let u = rand_word(&mut rng, &syms, 3);
        prop_assert!(rewrites_to(&rs, &u, &u), "reflexivity");
        // transitivity via one-step successors
        for mid in rs.step(&u).into_iter().take(3) {
            for w in rs.step(&mid).into_iter().take(3) {
                prop_assert!(rewrites_to(&rs, &u, &w), "transitivity");
            }
        }
    }

    /// Right congruence: u →* v implies u·w →* v·w.
    #[test]
    fn rewriting_is_right_congruent(seed in 0u64..100_000) {
        let (_, syms) = syms2();
        let mut rng = StdRng::seed_from_u64(seed);
        let set = rand_set(&mut rng, &syms, 2, false);
        let rs = RewriteSystem::from_constraints(&set);
        let u = rand_word(&mut rng, &syms, 3);
        let suffix = rand_word(&mut rng, &syms, 2);
        for v in rs.step(&u).into_iter().take(4) {
            let mut uw = u.clone();
            uw.extend(suffix.iter().copied());
            let mut vw = v.clone();
            vw.extend(suffix.iter().copied());
            prop_assert!(rewrites_to(&rs, &uw, &vw));
        }
    }

    /// For equality systems, →* is symmetric, and the Armstrong sphere's
    /// class function is exactly its equivalence (within the sphere).
    #[test]
    fn armstrong_classes_are_congruence_classes(seed in 0u64..100_000) {
        let (_, syms) = syms2();
        let mut rng = StdRng::seed_from_u64(seed);
        let set = rand_set(&mut rng, &syms, 2, true);
        let rs = RewriteSystem::from_constraints(&set);
        let radius = suggested_radius(&set).min(6);
        let Ok(sphere) = ArmstrongSphere::build(&set, &syms, radius, 20_000) else {
            return Ok(()); // budget — skip
        };
        let u = rand_word(&mut rng, &syms, radius.min(3));
        let v = rand_word(&mut rng, &syms, radius.min(3));
        let (Some(cu), Some(cv)) = (sphere.class_of_word(&u), sphere.class_of_word(&v)) else {
            return Ok(());
        };
        prop_assert_eq!(cu == cv, rewrites_to(&rs, &u, &v), "u={:?} v={:?}", u, v);
        // symmetry of →* for equalities
        if rewrites_to(&rs, &u, &v) {
            prop_assert!(rewrites_to(&rs, &v, &u));
        }
    }

    /// Sphere representatives are canonical: shortest-lex members of their
    /// own pre* class, and rep length equals BFS depth.
    #[test]
    fn sphere_reps_are_canonical(seed in 0u64..100_000) {
        let (_, syms) = syms2();
        let mut rng = StdRng::seed_from_u64(seed);
        let set = rand_set(&mut rng, &syms, 2, true);
        let rs = RewriteSystem::from_constraints(&set);
        let Ok(sphere) = ArmstrongSphere::build(&set, &syms, 4, 20_000) else {
            return Ok(());
        };
        for n in 0..sphere.num_nodes().min(12) {
            let rep = &sphere.reps[n];
            prop_assert_eq!(rep.len(), sphere.depth[n]);
            let auto = rewrite_to_word_nfa(rep, &rs).nfa;
            let canon = shortest_lex_accepted(&auto, &syms).unwrap();
            prop_assert_eq!(&canon, rep, "rep not canonical");
        }
    }

    /// `RewriteTo(p)` for regular targets: membership of u iff u rewrites
    /// into *some* word of L(p) (cross-checked by sampling L(p)).
    #[test]
    fn rewrite_to_regular_target_sound(seed in 0u64..100_000) {
        let (_, syms) = syms2();
        let mut rng = StdRng::seed_from_u64(seed);
        let set = rand_set(&mut rng, &syms, 2, false);
        let rs = RewriteSystem::from_constraints(&set);
        // small target language
        let w1 = rand_word(&mut rng, &syms, 2);
        let w2 = rand_word(&mut rng, &syms, 2);
        let target = Regex::word(&w1).or(Regex::word(&w2));
        let auto = rpq_constraints::rewrite_to_nfa(&Nfa::thompson(&target), &rs);
        let u = rand_word(&mut rng, &syms, 3);
        let direct = rewrites_to(&rs, &u, &w1) || rewrites_to(&rs, &u, &w2);
        prop_assert_eq!(auto.nfa.accepts(&u), direct);
    }

    /// Semantic soundness of the generalized closure under union/star-sided
    /// constraint sets: whenever the certification inclusion
    /// `L(q) ⊆ L(closure(r))` holds, every instance satisfying `E` must
    /// satisfy `answers(q) ⊆ answers(r)` — checked against `holds_at` and
    /// direct product evaluation as ground truth. (Guards the REVIEW fix:
    /// existential wiring of multi-word rule rhs certified `a.x ⊆ b.x`
    /// under `{a = b + c}`, which a satisfying instance refutes.)
    #[test]
    fn regex_closure_certification_is_semantically_sound(seed in 0u64..100_000) {
        let (_, syms) = syms2();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RegexGenConfig {
            symbols: syms.clone(),
            max_depth: 2,
            star_weight: 25,
            union_weight: 60,
            fanout: 2,
        };
        let mut cs = Vec::new();
        for _ in 0..rng.random_range(1..=2usize) {
            cs.push(PathConstraint {
                lhs: random_regex(&mut rng, &cfg),
                rhs: random_regex(&mut rng, &cfg),
                kind: if rng.random_range(0..2) == 0 {
                    ConstraintKind::Inclusion
                } else {
                    ConstraintKind::Equality
                },
            });
        }
        let set = ConstraintSet::from_constraints(cs);
        let q = random_regex(&mut rng, &cfg);
        let r = random_regex(&mut rng, &cfg);
        let nq = Nfa::thompson(&q);
        let nr = Nfa::thompson(&r);
        let closure = rewrite_closure_nfa(&set, &nr);
        if included_antichain(&nq, &closure.nfa).is_err() {
            return Ok(()); // not certified — nothing claimed
        }
        for _ in 0..12 {
            let m = rng.random_range(0..10usize);
            let (inst, src) = random_graph(&mut rng, 4, m, &syms);
            if !set.holds_at(&inst, src) {
                continue;
            }
            let aq = eval_product(&nq, &inst, src).answers;
            let ar = eval_product(&nr, &inst, src).answers;
            prop_assert!(
                aq.iter().all(|o| ar.binary_search(o).is_ok()),
                "certified q ⊆ r but a satisfying instance refutes it: E={{{}}} q={:?} r={:?}",
                set.iter().map(|c| format!("{c:?}")).collect::<Vec<_>>().join(", "),
                q,
                r
            );
        }
    }
}

#[test]
fn shortest_lex_is_really_lex_least() {
    let mut ab = Alphabet::new();
    let a = ab.intern("a");
    let b = ab.intern("b");
    // language {bb, ba, ab, aa}: shortest-lex = aa
    let words = [[b, b], [b, a], [a, b], [a, a]];
    let r = Regex::union(words.iter().map(|w| Regex::word(w)).collect());
    let canon = shortest_lex_accepted(&Nfa::thompson(&r), &[a, b]).unwrap();
    assert_eq!(canon, vec![a, a]);
    // mixed lengths: shortest wins over lex
    let r2 = Regex::word(&[b]).or(Regex::word(&[a, a]));
    let canon2 = shortest_lex_accepted(&Nfa::thompson(&r2), &[a, b]).unwrap();
    assert_eq!(canon2, vec![b]);
}

#[test]
fn epsilon_completion_keeps_systems_well_formed() {
    // u ⊆ ε inclusion sets auto-complete, so the Armstrong/Lemma-4.4 edge
    // cases around ε stay consistent with the paper's convention.
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["a.b <= ()", "b <= a"]).unwrap();
    let rs = RewriteSystem::from_constraints(&set);
    let a = ab.get("a").unwrap();
    let b = ab.get("b").unwrap();
    // ab →* ε and ε →* ab (completion)
    assert!(rewrites_to(&rs, &[a, b], &[]));
    assert!(rewrites_to(&rs, &[], &[a, b]));
    // b →* a (rule), so b·x →* a·x
    let x = ab.intern("x");
    assert!(rewrites_to(&rs, &[b, x], &[a, x]));
}
