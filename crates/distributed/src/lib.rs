//! # rpq-distributed
//!
//! The distributed asynchronous evaluation scenario of Section 3.1: objects
//! are sites, a query is evaluated by `subquery`/`answer`/`done`/`akn`
//! messages between sites, subqueries carry the quotient of the query still
//! left to evaluate, duplicate subqueries are answered `done` immediately,
//! and the `done`/`akn` bookkeeping detects global termination.
//!
//! * [`message`] — the four message forms and a byte codec;
//! * [`site`] — the per-site state machine (dedup, quotienting, completion);
//! * [`sim`] — a deterministic seeded event simulator with full tracing
//!   (regenerates the Figure 3 run), message/byte accounting, and the
//!   correctness checks (answers = centralized `p(o, I)`, termination
//!   detected exactly at quiescence);
//! * [`threaded`] — the same state machines on real threads over crossbeam
//!   channels, with [`ThreadedNetwork`] keeping the shards alive across
//!   runs so edge batches are absorbed in place;
//! * [`engines`] — both runners behind the unified `rpq_core::Engine`
//!   calling convention, sites sharded from any `rpq_graph::GraphView`
//!   snapshot (CSR or delta overlay), absorbing `rpq_graph::EdgeDelta`
//!   batches via `apply_delta` without a reshard;
//! * [`batch`] — the threaded multi-source driver: sources partitioned
//!   across worker threads, each running the bit-parallel batch kernel
//!   over the shared immutable snapshot;
//! * [`decomposition`] — the ship-query-once-per-site baseline of the
//!   related work (\[30\]), for protocol comparisons;
//! * [`carrying`] — the Section 5 variant where agents carry accumulated
//!   traversal knowledge and skip known-duplicate spawns;
//! * [`faults`] — drop/duplication injection showing exactly where the
//!   paper's reliability assumption is load-bearing.
//!
//! Constraint-based optimization (Section 3.2) plugs in as a per-site
//! rewrite hook: [`sim::Simulator::with_rewrite`] for the simulator,
//! [`threaded::run_threaded_csr_with_rewrite`] for the concurrent runner
//! (the hook must be `Sync` — one `rpq-optimizer` `RewriteCache` or
//! `PlannedEngine` instance serves every site thread).

#![warn(missing_docs)]

pub mod batch;
pub mod carrying;
pub mod decomposition;
pub mod engines;
pub mod faults;
pub mod message;
pub mod sim;
pub mod site;
pub mod threaded;

pub use batch::PartitionedBatchEngine;
pub use carrying::{run_carrying, CarryingRunResult};
pub use decomposition::{
    run_decomposition, run_decomposition_checked, DecompositionResult, Partition,
};
pub use engines::{SimulatorEngine, ThreadedEngine};
pub use faults::{run_with_faults, FaultPlan, FaultReport};
pub use message::{Message, MessageKind, Mid, SiteId};
pub use sim::{
    render_trace, run_and_check, run_concurrent, ConcurrentRunResult, Delivery, MessageStats,
    QueryOutcome, RunResult, Simulator,
};
pub use site::Site;
pub use threaded::{
    run_threaded, run_threaded_csr, run_threaded_csr_with_rewrite, SyncRewriteHook,
    ThreadedNetwork, ThreadedRunResult,
};
