//! A genuinely concurrent runner for the protocol.
//!
//! The simulator in [`crate::sim`] is deterministic; this runner executes
//! the same per-site state machines on real threads connected by unbounded
//! crossbeam channels, exercising the protocol under true asynchrony (the
//! paper's setting: "a distributed environment with asynchronous
//! communication… we assume that every message eventually reaches its
//! destination"). Termination detection doubles as the shutdown signal:
//! when the initiator receives the root `done`, it broadcasts `Shutdown`.

use std::sync::Arc;
use std::thread;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use rpq_automata::Regex;
use rpq_graph::{CsrGraph, Instance, Oid};

use crate::message::{Message, SiteId};
use crate::site::{no_rewrite, Site};

/// A per-site rewrite hook shareable across the site threads (the
/// Section 3.2 constraint-optimization hook, in its concurrent form). The
/// `Sync` bound is what demands thread-safe hook state — e.g. the memoizing
/// `rpq_optimizer::RewriteCache`, whose memo sits behind a mutex exactly so
/// one cache instance can serve every site thread here.
pub type SyncRewriteHook<'a> = &'a (dyn Fn(SiteId, &Regex) -> Regex + Sync);

enum Envelope {
    Protocol(Message),
    Shutdown,
}

/// Result of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedRunResult {
    /// Sorted answers as received by the client.
    pub answers: Vec<Oid>,
    /// Total protocol messages exchanged.
    pub messages: usize,
}

/// Run `query` from `source` over `instance` with one OS thread per site.
/// Compatibility wrapper over [`run_threaded_csr`] (snapshots the instance
/// first).
pub fn run_threaded(instance: &Instance, source: Oid, query: &Regex) -> ThreadedRunResult {
    run_threaded_csr(&CsrGraph::from(instance), source, query)
}

/// Run `query` from `source` over a label-indexed snapshot with one OS
/// thread per site; each site thread owns its CSR shard (its sorted
/// out-row).
///
/// Panics on protocol errors (e.g. failure to terminate would deadlock the
/// run; a watchdog is deliberately absent — the protocol's own `done`
/// cascade is the only termination source, as in the paper).
pub fn run_threaded_csr(graph: &CsrGraph, source: Oid, query: &Regex) -> ThreadedRunResult {
    run_threaded_csr_with_rewrite(graph, source, query, &no_rewrite)
}

/// [`run_threaded_csr`] with a per-site subquery rewrite hook shared by
/// every site thread — the threaded counterpart of
/// `Simulator::with_rewrite`. Site threads are scoped so the hook (and any
/// state it borrows, e.g. one memoizing rewrite cache for the whole
/// network) needs no `'static` ceremony, only `Sync`.
pub fn run_threaded_csr_with_rewrite(
    graph: &CsrGraph,
    source: Oid,
    query: &Regex,
    rewrite: SyncRewriteHook<'_>,
) -> ThreadedRunResult {
    let n = graph.num_nodes();
    let client: SiteId = n as SiteId;
    let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(n + 1);
    let mut receivers: Vec<Option<Receiver<Envelope>>> = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let senders = Arc::new(senders);
    let message_count = Arc::new(Mutex::new(0usize));

    let mut client_site = Site::new(client, Vec::new());
    let client_rx = receivers[client as usize].take().expect("receiver present");

    thread::scope(|scope| {
        // Object sites, each owning its shard of the snapshot.
        for o in graph.nodes() {
            let rx = receivers[o.index()].take().expect("receiver present");
            let senders = Arc::clone(&senders);
            let counter = Arc::clone(&message_count);
            let shard = Site::from_csr(graph, o);
            scope.spawn(move || {
                let mut site = shard;
                while let Ok(env) = rx.recv() {
                    match env {
                        Envelope::Shutdown => break,
                        Envelope::Protocol(msg) => {
                            for out in site.handle(msg, rewrite) {
                                *counter.lock() += 1;
                                let to = out.receiver() as usize;
                                // send failures mean shutdown already raced past
                                let _ = senders[to].send(Envelope::Protocol(out));
                            }
                        }
                    }
                }
            });
        }

        // Client site (runs on this thread).
        let initial = client_site.initiate(source.0, query.clone());
        *message_count.lock() += 1;
        senders[initial.receiver() as usize]
            .send(Envelope::Protocol(initial))
            .expect("initial send");

        while !client_site.root_done {
            let env = client_rx.recv().expect("client channel open");
            match env {
                Envelope::Shutdown => break,
                Envelope::Protocol(msg) => {
                    for out in client_site.handle(msg, rewrite) {
                        *message_count.lock() += 1;
                        let _ = senders[out.receiver() as usize].send(Envelope::Protocol(out));
                    }
                }
            }
        }

        // Broadcast shutdown; scope exit joins the site threads.
        for (i, tx) in senders.iter().enumerate() {
            if i != client as usize {
                let _ = tx.send(Envelope::Shutdown);
            }
        }
    });

    let mut answers: Vec<Oid> = client_site.answers.iter().map(|&s| Oid(s)).collect();
    answers.sort();
    let messages = *message_count.lock();
    ThreadedRunResult { answers, messages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpq_automata::{parse_regex, Alphabet, Nfa};
    use rpq_core::eval_product;
    use rpq_graph::generators::{fig2_graph, web_graph};

    #[test]
    fn threaded_matches_centralized_on_fig2() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let res = run_threaded(&inst, o1, &q);
        let expected = eval_product(&Nfa::thompson(&q), &inst, o1).answers;
        assert_eq!(res.answers, expected);
        assert!(res.messages >= 4);
    }

    #[test]
    fn threaded_matches_centralized_on_random_web() {
        let mut ab = Alphabet::new();
        let labels: Vec<_> = (0..3).map(|i| ab.intern(&format!("l{i}"))).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let (inst, src) = web_graph(&mut rng, 25, 2, &labels);
        for qs in ["l0*", "l0.(l1+l2)*", "(l0.l1)*.l2"] {
            let q = parse_regex(&mut ab, qs).unwrap();
            let res = run_threaded(&inst, src, &q);
            let expected = eval_product(&Nfa::thompson(&q), &inst, src).answers;
            assert_eq!(res.answers, expected, "{qs}");
        }
    }

    #[test]
    fn threaded_empty_answers() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "zz.zz").unwrap();
        let res = run_threaded(&inst, o1, &q);
        assert!(res.answers.is_empty());
    }
}
