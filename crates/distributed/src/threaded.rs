//! A genuinely concurrent runner for the protocol.
//!
//! The simulator in [`crate::sim`] is deterministic; this runner executes
//! the same per-site state machines on real threads connected by unbounded
//! crossbeam channels, exercising the protocol under true asynchrony (the
//! paper's setting: "a distributed environment with asynchronous
//! communication… we assume that every message eventually reaches its
//! destination"). Termination detection doubles as the shutdown signal:
//! when the initiator receives the root `done`, it broadcasts `Shutdown`.

use std::sync::Arc;
use std::thread;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use rpq_automata::Regex;
use rpq_graph::{CsrGraph, EdgeDelta, GraphView, Instance, Oid};

use crate::message::{Message, SiteId};
use crate::site::{no_rewrite, Site};

/// A per-site rewrite hook shareable across the site threads (the
/// Section 3.2 constraint-optimization hook, in its concurrent form). The
/// `Sync` bound is what demands thread-safe hook state — e.g. the memoizing
/// `rpq_optimizer::RewriteCache`, whose memo sits behind a mutex exactly so
/// one cache instance can serve every site thread here.
pub type SyncRewriteHook<'a> = &'a (dyn Fn(SiteId, &Regex) -> Regex + Sync);

enum Envelope {
    Protocol(Message),
    Shutdown,
}

/// Result of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedRunResult {
    /// Sorted answers as received by the client.
    pub answers: Vec<Oid>,
    /// Total protocol messages exchanged.
    pub messages: usize,
}

/// Run `query` from `source` over `instance` with one OS thread per site.
/// Compatibility wrapper over [`run_threaded_csr`] (snapshots the instance
/// first).
pub fn run_threaded(instance: &Instance, source: Oid, query: &Regex) -> ThreadedRunResult {
    run_threaded_csr(&CsrGraph::from(instance), source, query)
}

/// Run `query` from `source` over a label-indexed snapshot with one OS
/// thread per site; each site thread owns its CSR shard (its sorted
/// out-row).
///
/// Panics on protocol errors (e.g. failure to terminate would deadlock the
/// run; a watchdog is deliberately absent — the protocol's own `done`
/// cascade is the only termination source, as in the paper).
pub fn run_threaded_csr(graph: &CsrGraph, source: Oid, query: &Regex) -> ThreadedRunResult {
    run_threaded_csr_with_rewrite(graph, source, query, &no_rewrite)
}

/// [`run_threaded_csr`] with a per-site subquery rewrite hook shared by
/// every site thread — the threaded counterpart of
/// `Simulator::with_rewrite`. Site threads are scoped so the hook (and any
/// state it borrows, e.g. one memoizing rewrite cache for the whole
/// network) needs no `'static` ceremony, only `Sync`.
pub fn run_threaded_csr_with_rewrite(
    graph: &CsrGraph,
    source: Oid,
    query: &Regex,
    rewrite: SyncRewriteHook<'_>,
) -> ThreadedRunResult {
    ThreadedNetwork::from_view(graph).run_with_rewrite(source, query, rewrite)
}

/// A reusable threaded network: the per-object [`Site`] shards persist
/// across runs, so edge batches are absorbed **in place**
/// ([`ThreadedNetwork::apply_delta`] — sorted-row patches on exactly the
/// touched shards, no reshard) instead of rebuilding one thread-per-site
/// network per snapshot. Each [`ThreadedNetwork::run`] spawns the site
/// threads fresh over the current shards (threads are per-run, shards are
/// persistent).
pub struct ThreadedNetwork {
    sites: Vec<Site>,
}

impl ThreadedNetwork {
    /// Shard **any** [`GraphView`] snapshot (CSR or delta overlay) into
    /// one site per object.
    pub fn from_view<G: GraphView>(graph: &G) -> ThreadedNetwork {
        let sites = (0..graph.num_nodes() as u32)
            .map(|o| Site::from_view(graph, Oid(o)))
            .collect();
        ThreadedNetwork { sites }
    }

    /// Number of object sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Absorb an edge batch without a reshard: each mutation patches its
    /// source's sorted shard in place, and protocol state is reset (the
    /// dedup tables refer to the pre-delta graph). Endpoints must be
    /// existing sites. Returns the number of mutations that took effect.
    pub fn apply_delta(&mut self, delta: &EdgeDelta) -> usize {
        let n = self.sites.len() as u32;
        crate::site::apply_delta_to_sites(&mut self.sites, delta, n)
    }

    /// Run `query` from `source` with one OS thread per site over the
    /// current shards. Protocol state is reset first, so repeated runs
    /// (with or without deltas in between) evaluate from scratch.
    pub fn run(&mut self, source: Oid, query: &Regex) -> ThreadedRunResult {
        self.run_with_rewrite(source, query, &no_rewrite)
    }

    /// [`ThreadedNetwork::run`] with a per-site subquery rewrite hook
    /// shared by every site thread.
    pub fn run_with_rewrite(
        &mut self,
        source: Oid,
        query: &Regex,
        rewrite: SyncRewriteHook<'_>,
    ) -> ThreadedRunResult {
        let n = self.sites.len();
        let client: SiteId = n as SiteId;
        let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(n + 1);
        let mut receivers: Vec<Option<Receiver<Envelope>>> = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let senders = Arc::new(senders);
        let message_count = Arc::new(Mutex::new(0usize));

        let mut client_site = Site::new(client, Vec::new());
        let client_rx = receivers[client as usize].take().expect("receiver present");

        thread::scope(|scope| {
            // Object sites, each owning its (persistent) shard.
            for site in self.sites.iter_mut() {
                site.reset_protocol();
                let rx = receivers[site.id as usize]
                    .take()
                    .expect("receiver present");
                let senders = Arc::clone(&senders);
                let counter = Arc::clone(&message_count);
                scope.spawn(move || {
                    while let Ok(env) = rx.recv() {
                        match env {
                            Envelope::Shutdown => break,
                            Envelope::Protocol(msg) => {
                                for out in site.handle(msg, rewrite) {
                                    *counter.lock() += 1;
                                    let to = out.receiver() as usize;
                                    // send failures mean shutdown already raced past
                                    let _ = senders[to].send(Envelope::Protocol(out));
                                }
                            }
                        }
                    }
                });
            }

            // Client site (runs on this thread).
            let initial = client_site.initiate(source.0, query.clone());
            *message_count.lock() += 1;
            senders[initial.receiver() as usize]
                .send(Envelope::Protocol(initial))
                .expect("initial send");

            while !client_site.root_done {
                let env = client_rx.recv().expect("client channel open");
                match env {
                    Envelope::Shutdown => break,
                    Envelope::Protocol(msg) => {
                        for out in client_site.handle(msg, rewrite) {
                            *message_count.lock() += 1;
                            let _ = senders[out.receiver() as usize].send(Envelope::Protocol(out));
                        }
                    }
                }
            }

            // Broadcast shutdown; scope exit joins the site threads.
            for (i, tx) in senders.iter().enumerate() {
                if i != client as usize {
                    let _ = tx.send(Envelope::Shutdown);
                }
            }
        });

        let mut answers: Vec<Oid> = client_site.answers.iter().map(|&s| Oid(s)).collect();
        answers.sort();
        let messages = *message_count.lock();
        ThreadedRunResult { answers, messages }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpq_automata::{parse_regex, Alphabet, Nfa};
    use rpq_core::eval_product;
    use rpq_graph::generators::{fig2_graph, web_graph};

    #[test]
    fn threaded_matches_centralized_on_fig2() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let res = run_threaded(&inst, o1, &q);
        let expected = eval_product(&Nfa::thompson(&q), &inst, o1).answers;
        assert_eq!(res.answers, expected);
        assert!(res.messages >= 4);
    }

    #[test]
    fn threaded_matches_centralized_on_random_web() {
        let mut ab = Alphabet::new();
        let labels: Vec<_> = (0..3).map(|i| ab.intern(&format!("l{i}"))).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let (inst, src) = web_graph(&mut rng, 25, 2, &labels);
        for qs in ["l0*", "l0.(l1+l2)*", "(l0.l1)*.l2"] {
            let q = parse_regex(&mut ab, qs).unwrap();
            let res = run_threaded(&inst, src, &q);
            let expected = eval_product(&Nfa::thompson(&q), &inst, src).answers;
            assert_eq!(res.answers, expected, "{qs}");
        }
    }

    #[test]
    fn threaded_network_absorbs_deltas_across_runs() {
        use rpq_graph::{CsrGraph, DeltaGraph, EdgeDelta};

        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let b = ab.get("b").unwrap();
        let a = ab.get("a").unwrap();

        let mut dg = DeltaGraph::from_instance(&inst);
        let mut net = ThreadedNetwork::from_view(&CsrGraph::from(&inst));
        assert_eq!(net.num_sites(), inst.num_nodes());

        let first = net.run(o1, &q);
        let expected = eval_product(&Nfa::thompson(&q), &inst, o1).answers;
        assert_eq!(first.answers, expected);

        // absorb a batch in place, mirror it in the delta view, rerun
        let o2 = inst.node_by_name("o2").unwrap();
        let o3 = inst.node_by_name("o3").unwrap();
        let mut delta = EdgeDelta::new();
        delta.del(o2, b, o3).add(o3, a, o1);
        assert_eq!(net.apply_delta(&delta), dg.apply_delta(&delta));

        let second = net.run(o1, &q);
        let centralized = rpq_core::eval_product_csr(&Nfa::thompson(&q), &dg, o1);
        assert_eq!(second.answers, centralized.answers);
        assert_ne!(second.answers, first.answers);

        // repeated runs over unchanged shards agree (protocol state resets)
        assert_eq!(net.run(o1, &q).answers, second.answers);
    }

    #[test]
    fn threaded_empty_answers() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "zz.zz").unwrap();
        let res = run_threaded(&inst, o1, &q);
        assert!(res.answers.is_empty());
    }
}
