//! Protocol messages (Section 3.1) and their wire encoding.
//!
//! "Communications between nodes consist in messages of the form:
//! `subquery(mid, sender, receiver, destination, q)`, `done(mid, sender,
//! receiver)`, `answer(mid, sender, receiver)`, `akn(mid, sender,
//! receiver)`." Message ids are unique per issuing site; subqueries carry
//! the *quotient* of the original query still left to evaluate, as a
//! normalized regular expression (so that sites can deduplicate subqueries
//! structurally). The [`codec`] gives a compact byte encoding used only for
//! realistic message-size accounting in the benches.

use rpq_automata::{Alphabet, Regex};
use serde::{Deserialize, Serialize};

/// Site identity (the client site and every object are sites).
pub type SiteId = u32;

/// A globally unique message id: (issuing site, per-site counter).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Mid(pub SiteId, pub u32);

impl std::fmt::Display for Mid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "*{}_{}", self.0, self.1)
    }
}

/// A protocol message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Evaluate `query` at `receiver`; report answers to `destination`;
    /// send `done(mid)` back to `sender` when complete.
    Subquery {
        /// Unique id of this task.
        mid: Mid,
        /// The spawning site.
        sender: SiteId,
        /// The site asked to evaluate.
        receiver: SiteId,
        /// Where answers must be sent.
        destination: SiteId,
        /// The subquery still left to evaluate (a quotient of the original).
        query: Regex,
    },
    /// `sender` reports itself as an answer to `receiver` (the destination).
    Answer {
        /// Id to be acknowledged.
        mid: Mid,
        /// The answering site.
        sender: SiteId,
        /// The destination site.
        receiver: SiteId,
    },
    /// Subquery `mid` has been completed.
    Done {
        /// The id of the completed subquery.
        mid: Mid,
        /// The completing site.
        sender: SiteId,
        /// The site that spawned the subquery.
        receiver: SiteId,
    },
    /// Acknowledgment of answer `mid` (the paper's `akn`).
    Ack {
        /// The id of the acknowledged answer.
        mid: Mid,
        /// The acknowledging destination.
        sender: SiteId,
        /// The site that sent the answer.
        receiver: SiteId,
    },
}

impl Message {
    /// The site this message must be delivered to.
    pub fn receiver(&self) -> SiteId {
        match self {
            Message::Subquery { receiver, .. }
            | Message::Answer { receiver, .. }
            | Message::Done { receiver, .. }
            | Message::Ack { receiver, .. } => *receiver,
        }
    }

    /// Message kind as a short tag (for stats and traces).
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Subquery { .. } => MessageKind::Subquery,
            Message::Answer { .. } => MessageKind::Answer,
            Message::Done { .. } => MessageKind::Done,
            Message::Ack { .. } => MessageKind::Ack,
        }
    }

    /// Render like the paper's traces (Figure 3).
    pub fn render(&self, alphabet: &Alphabet, site_name: &dyn Fn(SiteId) -> String) -> String {
        match self {
            Message::Subquery {
                mid,
                sender,
                receiver,
                destination,
                query,
            } => format!(
                "subquery({mid}, {}, {}, {}, {})",
                site_name(*sender),
                site_name(*receiver),
                site_name(*destination),
                query.display(alphabet)
            ),
            Message::Answer {
                mid,
                sender,
                receiver,
            } => format!(
                "answer({mid}, {}, {})",
                site_name(*sender),
                site_name(*receiver)
            ),
            Message::Done {
                mid,
                sender,
                receiver,
            } => format!(
                "done({mid}, {}, {})",
                site_name(*sender),
                site_name(*receiver)
            ),
            Message::Ack {
                mid,
                sender,
                receiver,
            } => format!(
                "akn({mid}, {}, {})",
                site_name(*sender),
                site_name(*receiver)
            ),
        }
    }
}

/// Message kinds, for accounting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// `subquery(…)`.
    Subquery,
    /// `answer(…)`.
    Answer,
    /// `done(…)`.
    Done,
    /// `akn(…)`.
    Ack,
}

/// Wire encoding (byte accounting for the benches; lossless round trip).
pub mod codec {
    use super::*;
    use bytes::{Buf, BufMut, Bytes, BytesMut};

    fn put_mid(buf: &mut BytesMut, mid: Mid) {
        buf.put_u32(mid.0);
        buf.put_u32(mid.1);
    }

    fn get_mid(buf: &mut Bytes) -> Mid {
        Mid(buf.get_u32(), buf.get_u32())
    }

    /// Encode a message; the regex payload is carried as its normalized
    /// rendering against `alphabet`.
    pub fn encode(msg: &Message, alphabet: &Alphabet) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match msg {
            Message::Subquery {
                mid,
                sender,
                receiver,
                destination,
                query,
            } => {
                buf.put_u8(0);
                put_mid(&mut buf, *mid);
                buf.put_u32(*sender);
                buf.put_u32(*receiver);
                buf.put_u32(*destination);
                let q = format!("{}", query.display(alphabet));
                buf.put_u32(q.len() as u32);
                buf.put_slice(q.as_bytes());
            }
            Message::Answer {
                mid,
                sender,
                receiver,
            } => {
                buf.put_u8(1);
                put_mid(&mut buf, *mid);
                buf.put_u32(*sender);
                buf.put_u32(*receiver);
            }
            Message::Done {
                mid,
                sender,
                receiver,
            } => {
                buf.put_u8(2);
                put_mid(&mut buf, *mid);
                buf.put_u32(*sender);
                buf.put_u32(*receiver);
            }
            Message::Ack {
                mid,
                sender,
                receiver,
            } => {
                buf.put_u8(3);
                put_mid(&mut buf, *mid);
                buf.put_u32(*sender);
                buf.put_u32(*receiver);
            }
        }
        buf.freeze()
    }

    /// Decode a message (the regex is re-parsed against `alphabet`).
    pub fn decode(mut bytes: Bytes, alphabet: &mut Alphabet) -> Option<Message> {
        if bytes.remaining() < 1 {
            return None;
        }
        let tag = bytes.get_u8();
        let mid = get_mid(&mut bytes);
        let sender = bytes.get_u32();
        let receiver = bytes.get_u32();
        Some(match tag {
            0 => {
                let destination = bytes.get_u32();
                let len = bytes.get_u32() as usize;
                let q = std::str::from_utf8(&bytes.chunk()[..len]).ok()?.to_owned();
                let query = rpq_automata::parse_regex(alphabet, &q).ok()?;
                Message::Subquery {
                    mid,
                    sender,
                    receiver,
                    destination,
                    query,
                }
            }
            1 => Message::Answer {
                mid,
                sender,
                receiver,
            },
            2 => Message::Done {
                mid,
                sender,
                receiver,
            },
            3 => Message::Ack {
                mid,
                sender,
                receiver,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::parse_regex;

    #[test]
    fn codec_round_trips() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "a.b* + c").unwrap();
        let msgs = vec![
            Message::Subquery {
                mid: Mid(3, 7),
                sender: 3,
                receiver: 5,
                destination: 0,
                query: q,
            },
            Message::Answer {
                mid: Mid(5, 1),
                sender: 5,
                receiver: 0,
            },
            Message::Done {
                mid: Mid(3, 7),
                sender: 5,
                receiver: 3,
            },
            Message::Ack {
                mid: Mid(5, 1),
                sender: 0,
                receiver: 5,
            },
        ];
        for m in msgs {
            let b = codec::encode(&m, &ab);
            let back = codec::decode(b, &mut ab).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn render_matches_paper_shape() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let m = Message::Subquery {
            mid: Mid(0, 1),
            sender: 0,
            receiver: 1,
            destination: 0,
            query: q,
        };
        let name = |s: SiteId| if s == 0 { "d".into() } else { format!("o{s}") };
        let r = m.render(&ab, &name);
        assert!(r.starts_with("subquery("));
        assert!(r.contains("d, o1, d"));
        assert!(r.contains("a.b*"));
    }

    #[test]
    fn kinds_and_receivers() {
        let m = Message::Done {
            mid: Mid(1, 1),
            sender: 2,
            receiver: 9,
        };
        assert_eq!(m.kind(), MessageKind::Done);
        assert_eq!(m.receiver(), 9);
    }
}
