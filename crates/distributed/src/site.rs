//! Per-site protocol state machine (Section 3.1).
//!
//! Each site keeps "a list of the subqueries it has been asked to perform".
//! On `subquery(m, s, r, d, q)`:
//!
//! * if `(d, q)` is already being processed or was processed, reply
//!   `done(m)` immediately (the dedup that guarantees termination);
//! * otherwise: if `ε ∈ L(q)`, send `answer` to `d` (awaiting its `akn`);
//!   for every outgoing edge `(r, l, r')` with a non-empty quotient `q/l`,
//!   spawn `subquery(q/l)` at `r'` (awaiting its `done`); when everything
//!   awaited has arrived, reply `done(m)` to `s`.
//!
//! Subqueries are deduplicated *structurally*: quotients are Brzozowski
//! derivatives of the normalized query regex, so equal subqueries compare
//! equal across different senders — exactly why `o2` can instantly answer
//! `o3`'s duplicate `b*` request in Figure 3.
//!
//! Each site holds its shard of the label-indexed [`rpq_graph::CsrGraph`]:
//! its out-row, sorted by `(Symbol, SiteId)`. Subquery fan-out walks the
//! row by *label group*, computing the quotient `q/l` once per distinct
//! label instead of once per edge — the site-local analogue of the
//! centralized engines' label-indexed step.

use std::collections::HashMap;

use rpq_automata::derivative::derivative;
use rpq_automata::{Regex, Symbol};
use rpq_graph::{CsrGraph, EdgeDelta, GraphView, Oid};

use crate::message::{Message, Mid, SiteId};

/// A site's view of one registered subquery task.
#[derive(Clone, Debug)]
struct Task {
    /// Who asked first (we owe them a `done`), unless this is the root task.
    parent: Option<(Mid, SiteId)>,
    /// Message ids we are still awaiting (`done`s of spawned subqueries and
    /// `akn`s of our answers).
    waiting: Vec<Mid>,
    /// Completed (the `done` has been sent)?
    finished: bool,
}

/// The state machine of a single site.
#[derive(Debug)]
pub struct Site {
    /// This site's id.
    pub id: SiteId,
    /// Outgoing labeled edges (the site's page description) — this site's
    /// CSR shard, kept sorted by `(Symbol, SiteId)` so label groups are
    /// contiguous.
    pub edges: Vec<(Symbol, SiteId)>,
    /// Registered tasks keyed by (destination, subquery).
    tasks: HashMap<(SiteId, Regex), Task>,
    /// Which task each awaited mid belongs to.
    waiting_index: HashMap<Mid, (SiteId, Regex)>,
    /// Per-site message id counter.
    counter: u32,
    /// Answers received (meaningful on destination sites).
    pub answers: Vec<SiteId>,
    /// Set when the root task's `done` arrives (initiator only).
    pub root_done: bool,
    /// Root mid, when this site initiated a query.
    root_mid: Option<Mid>,
}

impl Site {
    /// A site with the given outgoing edges (sorted into label groups).
    pub fn new(id: SiteId, mut edges: Vec<(Symbol, SiteId)>) -> Site {
        edges.sort_unstable();
        Site {
            id,
            edges,
            tasks: HashMap::new(),
            waiting_index: HashMap::new(),
            counter: 0,
            answers: Vec::new(),
            root_done: false,
            root_mid: None,
        }
    }

    /// A site holding node `o`'s shard of a [`CsrGraph`] snapshot.
    pub fn from_csr(graph: &CsrGraph, o: Oid) -> Site {
        // rows are already sorted by (Symbol, Oid), so this is the shard
        let edges = graph.out_pairs(o).map(|(l, t)| (l, t.0)).collect();
        Site::new(o.0, edges)
    }

    /// A site holding node `o`'s shard of **any** [`GraphView`] snapshot —
    /// e.g. a `rpq_graph::DeltaGraph` overlay, so a network can be stood up
    /// without first compacting to a CSR. Groups arrive label-ascending
    /// with ascending targets, so the shard is born sorted.
    pub fn from_view<G: GraphView>(graph: &G, o: Oid) -> Site {
        let edges = graph
            .out_groups(o)
            .flat_map(|(l, ts)| ts.map(move |t| (l, t.0)))
            .collect();
        Site::new(o.0, edges)
    }

    /// Absorb an edge batch into this site's shard **in place** — the
    /// site-local half of the runners' `apply_delta` (no resharding, no
    /// row rebuild: sorted-row inserts and removals only). Returns the
    /// number of mutations that took effect.
    ///
    /// Protocol state (registered tasks, answers) refers to the *old*
    /// graph; callers that reuse the network for further queries should
    /// also call [`Site::reset_protocol`], as the runners' `apply_delta`
    /// does.
    pub fn apply_delta(&mut self, adds: &[(Symbol, SiteId)], dels: &[(Symbol, SiteId)]) -> usize {
        let mut applied = 0;
        for &(l, t) in dels {
            if let Ok(pos) = self.edges.binary_search(&(l, t)) {
                self.edges.remove(pos);
                applied += 1;
            }
        }
        for &(l, t) in adds {
            if let Err(pos) = self.edges.binary_search(&(l, t)) {
                self.edges.insert(pos, (l, t));
                applied += 1;
            }
        }
        applied
    }

    /// Forget all protocol state (registered tasks, pending waits, answers,
    /// root bookkeeping) while keeping the edge shard: the dedup table keys
    /// `(destination, subquery)` against the graph the tasks ran over, so
    /// it must be dropped when the shard mutates or when a network is
    /// reused for a fresh run.
    pub fn reset_protocol(&mut self) {
        self.tasks.clear();
        self.waiting_index.clear();
        self.answers.clear();
        self.root_done = false;
        self.root_mid = None;
    }

    fn fresh_mid(&mut self) -> Mid {
        self.counter += 1;
        Mid(self.id, self.counter)
    }

    /// Initiate the evaluation of `query` at `target`, answers to self.
    /// Returns the message to send.
    pub fn initiate(&mut self, target: SiteId, query: Regex) -> Message {
        let mid = self.fresh_mid();
        self.root_mid = Some(mid);
        Message::Subquery {
            mid,
            sender: self.id,
            receiver: target,
            destination: self.id,
            query,
        }
    }

    /// Handle an incoming message, producing outgoing messages.
    pub fn handle(
        &mut self,
        msg: Message,
        rewrite: &dyn Fn(SiteId, &Regex) -> Regex,
    ) -> Vec<Message> {
        match msg {
            Message::Subquery {
                mid,
                sender,
                destination,
                query,
                ..
            } => self.on_subquery(mid, sender, destination, query, rewrite),
            Message::Answer { mid, sender, .. } => {
                // record and acknowledge
                if !self.answers.contains(&sender) {
                    self.answers.push(sender);
                }
                vec![Message::Ack {
                    mid,
                    sender: self.id,
                    receiver: sender,
                }]
            }
            Message::Done { mid, .. } => {
                if self.root_mid == Some(mid) {
                    self.root_done = true;
                    return Vec::new();
                }
                self.resolve(mid)
            }
            Message::Ack { mid, .. } => self.resolve(mid),
        }
    }

    fn on_subquery(
        &mut self,
        mid: Mid,
        sender: SiteId,
        destination: SiteId,
        query: Regex,
        rewrite: &dyn Fn(SiteId, &Regex) -> Regex,
    ) -> Vec<Message> {
        // Local optimization hook (Section 3.2): replace the subquery by an
        // equivalent one using constraints that hold at this site.
        let query = rewrite(self.id, &query);
        let key = (destination, query.clone());
        if self.tasks.contains_key(&key) {
            // already processing or processed: immediate done
            return vec![Message::Done {
                mid,
                sender: self.id,
                receiver: sender,
            }];
        }

        let mut out = Vec::new();
        let mut waiting = Vec::new();

        if query.nullable() {
            let amid = self.fresh_mid();
            out.push(Message::Answer {
                mid: amid,
                sender: self.id,
                receiver: destination,
            });
            waiting.push(amid);
            self.waiting_index.insert(amid, key.clone());
        }

        // spawn quotient subqueries along distinct (label, neighbor) pairs;
        // the row is sorted, so each label group pays for one derivative.
        // Groups are walked by index — `fresh_mid` and the waiting-index
        // inserts mutate `self`, so a borrowed iterator over `self.edges`
        // would force a per-message clone of the shard.
        let mut lo = 0;
        while lo < self.edges.len() {
            let sym = self.edges[lo].0;
            let mut hi = lo + 1;
            while hi < self.edges.len() && self.edges[hi].0 == sym {
                hi += 1;
            }
            let quotient = derivative(&query, sym);
            if quotient != Regex::Empty {
                for idx in lo..hi {
                    let neighbor = self.edges[idx].1;
                    let smid = self.fresh_mid();
                    out.push(Message::Subquery {
                        mid: smid,
                        sender: self.id,
                        receiver: neighbor,
                        destination,
                        query: quotient.clone(),
                    });
                    waiting.push(smid);
                    self.waiting_index.insert(smid, key.clone());
                }
            }
            lo = hi;
        }

        if waiting.is_empty() {
            // nothing to do: immediately done
            self.tasks.insert(
                key,
                Task {
                    parent: None,
                    waiting,
                    finished: true,
                },
            );
            out.push(Message::Done {
                mid,
                sender: self.id,
                receiver: sender,
            });
        } else {
            self.tasks.insert(
                key,
                Task {
                    parent: Some((mid, sender)),
                    waiting,
                    finished: false,
                },
            );
        }
        out
    }

    /// A `done` or `akn` for `mid` arrived: clear it and complete the task
    /// if nothing else is awaited.
    fn resolve(&mut self, mid: Mid) -> Vec<Message> {
        let Some(key) = self.waiting_index.remove(&mid) else {
            return Vec::new(); // duplicate/stray
        };
        let Some(task) = self.tasks.get_mut(&key) else {
            return Vec::new();
        };
        task.waiting.retain(|&m| m != mid);
        if task.waiting.is_empty() && !task.finished {
            task.finished = true;
            if let Some((pmid, parent)) = task.parent {
                return vec![Message::Done {
                    mid: pmid,
                    sender: self.id,
                    receiver: parent,
                }];
            }
        }
        Vec::new()
    }

    /// Number of registered tasks (dedup effectiveness metric).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Are all registered tasks finished?
    pub fn all_finished(&self) -> bool {
        self.tasks.values().all(|t| t.finished)
    }
}

/// Apply an [`EdgeDelta`] across a network's sites **without a reshard**:
/// each mutation is dispatched to its source's shard ([`Site::apply_delta`],
/// dels first, then adds), and every site's protocol state is reset (the
/// subquery dedup tables refer to the pre-delta graph). Endpoints must be
/// existing object sites (`id < num_object_sites`) — a batch introducing
/// new nodes requires rebuilding the network. Shared by the simulator's
/// and the threaded runner's `apply_delta`. Returns the number of
/// mutations that took effect.
pub(crate) fn apply_delta_to_sites(
    sites: &mut [Site],
    delta: &EdgeDelta,
    num_object_sites: u32,
) -> usize {
    let mut applied = 0;
    for &(s, l, t) in &delta.dels {
        assert!(
            s.0 < num_object_sites && t.0 < num_object_sites,
            "unknown site"
        );
        applied += sites[s.index()].apply_delta(&[], &[(l, t.0)]);
    }
    for &(s, l, t) in &delta.adds {
        assert!(
            s.0 < num_object_sites && t.0 < num_object_sites,
            "unknown site"
        );
        applied += sites[s.index()].apply_delta(&[(l, t.0)], &[]);
    }
    for site in sites {
        site.reset_protocol();
    }
    applied
}

/// The identity rewrite hook (no local optimization).
pub fn no_rewrite(_site: SiteId, q: &Regex) -> Regex {
    q.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{parse_regex, Alphabet};

    #[test]
    fn duplicate_subquery_gets_immediate_done() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "b*").unwrap();
        let b = ab.get("b").unwrap();
        let mut site = Site::new(2, vec![(b, 3)]);
        let m1 = Message::Subquery {
            mid: Mid(1, 1),
            sender: 1,
            receiver: 2,
            destination: 0,
            query: q.clone(),
        };
        let out1 = site.handle(m1, &no_rewrite);
        // spawns an answer (b* is nullable) and a subquery to 3
        assert_eq!(out1.len(), 2);
        let m2 = Message::Subquery {
            mid: Mid(3, 9),
            sender: 3,
            receiver: 2,
            destination: 0,
            query: q,
        };
        let out2 = site.handle(m2, &no_rewrite);
        assert_eq!(out2.len(), 1);
        assert!(matches!(out2[0], Message::Done { mid: Mid(3, 9), .. }));
    }

    #[test]
    fn done_flows_up_after_all_children() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "b*").unwrap();
        let b = ab.get("b").unwrap();
        let mut site = Site::new(2, vec![(b, 3)]);
        let out = site.handle(
            Message::Subquery {
                mid: Mid(1, 1),
                sender: 1,
                receiver: 2,
                destination: 0,
                query: q,
            },
            &no_rewrite,
        );
        let amid = out
            .iter()
            .find_map(|m| match m {
                Message::Answer { mid, .. } => Some(*mid),
                _ => None,
            })
            .unwrap();
        let smid = out
            .iter()
            .find_map(|m| match m {
                Message::Subquery { mid, .. } => Some(*mid),
                _ => None,
            })
            .unwrap();
        // ack alone is not enough
        let o1 = site.handle(
            Message::Ack {
                mid: amid,
                sender: 0,
                receiver: 2,
            },
            &no_rewrite,
        );
        assert!(o1.is_empty());
        // child done completes the task
        let o2 = site.handle(
            Message::Done {
                mid: smid,
                sender: 3,
                receiver: 2,
            },
            &no_rewrite,
        );
        assert_eq!(o2.len(), 1);
        assert!(matches!(
            o2[0],
            Message::Done {
                mid: Mid(1, 1),
                receiver: 1,
                ..
            }
        ));
        assert!(site.all_finished());
    }

    #[test]
    fn dead_query_is_done_immediately() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "z").unwrap(); // no z edges anywhere
        let b = ab.intern("b");
        let mut site = Site::new(2, vec![(b, 3)]);
        let out = site.handle(
            Message::Subquery {
                mid: Mid(1, 4),
                sender: 1,
                receiver: 2,
                destination: 0,
                query: q,
            },
            &no_rewrite,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Message::Done { mid: Mid(1, 4), .. }));
    }

    #[test]
    fn answers_are_acked_and_deduped() {
        let mut site = Site::new(0, vec![]);
        let out = site.handle(
            Message::Answer {
                mid: Mid(5, 1),
                sender: 5,
                receiver: 0,
            },
            &no_rewrite,
        );
        assert!(matches!(
            out[0],
            Message::Ack {
                mid: Mid(5, 1),
                receiver: 5,
                ..
            }
        ));
        site.handle(
            Message::Answer {
                mid: Mid(5, 2),
                sender: 5,
                receiver: 0,
            },
            &no_rewrite,
        );
        assert_eq!(site.answers, vec![5]);
    }

    #[test]
    fn apply_delta_patches_the_shard_in_place() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let mut site = Site::new(1, vec![(a, 2), (b, 3)]);
        let applied = site.apply_delta(&[(a, 9), (a, 2)], &[(b, 3), (b, 7)]);
        assert_eq!(applied, 2, "duplicate add and missing del are no-ops");
        assert_eq!(site.edges, vec![(a, 2), (a, 9)]);
        assert!(site.edges.is_sorted());
    }

    #[test]
    fn reset_protocol_clears_dedup_but_keeps_the_shard() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "b*").unwrap();
        let b = ab.get("b").unwrap();
        let mut site = Site::new(2, vec![(b, 3)]);
        let msg = Message::Subquery {
            mid: Mid(1, 1),
            sender: 1,
            receiver: 2,
            destination: 0,
            query: q.clone(),
        };
        site.handle(msg.clone(), &no_rewrite);
        assert_eq!(site.task_count(), 1);
        site.reset_protocol();
        assert_eq!(site.task_count(), 0);
        assert_eq!(site.edges, vec![(b, 3)]);
        // the same subquery is processed afresh, not answered from dedup
        let out = site.handle(msg, &no_rewrite);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn rewrite_hook_is_applied() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "a.a").unwrap();
        let simpler = parse_regex(&mut ab, "b").unwrap();
        let b = ab.get("b").unwrap();
        let mut site = Site::new(1, vec![(b, 2)]);
        let hook = move |_s: SiteId, incoming: &Regex| -> Regex {
            let _ = incoming;
            simpler.clone()
        };
        let out = site.handle(
            Message::Subquery {
                mid: Mid(0, 1),
                sender: 0,
                receiver: 1,
                destination: 0,
                query: q,
            },
            &hook,
        );
        // rewritten to `b`, which matches the b-edge: one subquery spawned
        assert!(out
            .iter()
            .any(|m| matches!(m, Message::Subquery { query, .. } if query == &Regex::Epsilon)));
    }
}
