//! Deterministic event-driven network simulator.
//!
//! Delivers messages between [`Site`]s with configurable (seeded) latency,
//! records a full trace (regenerating the Figure 3 run), accounts messages
//! and bytes, and checks the two correctness properties the paper claims:
//! the distributed answers equal the centralized `p(o, I)`, and the
//! protocol *detects its own termination* — the initiator's `done(m₀)`
//! arrives exactly when the network quiesces.

use std::collections::BinaryHeap;

use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq_automata::{Alphabet, Regex};
use rpq_graph::{CsrGraph, EdgeDelta, GraphView, Instance, Oid};

use crate::message::{codec, Message, MessageKind, SiteId};
use crate::site::{no_rewrite, Site};

/// Message delivery policy.
#[derive(Clone, Debug)]
pub enum Delivery {
    /// FIFO: deliver in send order (latency 1 per hop).
    Fifo,
    /// Random per-message latency in `1..=max_latency`, seeded.
    Random {
        /// RNG seed.
        seed: u64,
        /// Maximum latency.
        max_latency: u64,
    },
}

/// Per-kind message and byte accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// `subquery` count.
    pub subqueries: usize,
    /// `answer` count.
    pub answers: usize,
    /// `done` count.
    pub dones: usize,
    /// `akn` count.
    pub acks: usize,
    /// Total encoded bytes on the wire.
    pub bytes: usize,
}

impl MessageStats {
    /// Total messages.
    pub fn total(&self) -> usize {
        self.subqueries + self.answers + self.dones + self.acks
    }

    fn record(&mut self, kind: MessageKind, bytes: usize) {
        match kind {
            MessageKind::Subquery => self.subqueries += 1,
            MessageKind::Answer => self.answers += 1,
            MessageKind::Done => self.dones += 1,
            MessageKind::Ack => self.acks += 1,
        }
        self.bytes += bytes;
    }
}

/// One delivered message, with its virtual delivery time.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Virtual delivery time.
    pub time: u64,
    /// The message as delivered.
    pub message: Message,
}

/// Result of a simulated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Sorted answer oids (as reported to the initiator).
    pub answers: Vec<Oid>,
    /// Did the initiator's root `done` arrive?
    pub termination_detected: bool,
    /// Accounting.
    pub stats: MessageStats,
    /// Full delivery trace.
    pub trace: Vec<TraceEvent>,
    /// Number of subquery tasks registered across all object sites.
    pub tasks_registered: usize,
}

#[derive(PartialEq, Eq)]
struct QueueEntry {
    time: u64,
    seq: u64,
    message_idx: usize,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap: reverse on (time, seq)
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulator: object sites from an [`Instance`] plus one client site.
pub struct Simulator<'a> {
    alphabet: &'a Alphabet,
    sites: Vec<Site>,
    /// The client site id (== `instance.num_nodes()`).
    pub client: SiteId,
    delivery: Delivery,
    /// Optional per-site subquery rewriting (Section 3.2 hook).
    rewrite: RewriteHook<'a>,
}

/// A per-site subquery rewriting hook (Section 3.2): given the receiving
/// site and the incoming subquery, return the query to actually run.
pub type RewriteHook<'a> = Box<dyn Fn(SiteId, &Regex) -> Regex + 'a>;

impl<'a> Simulator<'a> {
    /// Build a simulator over `instance`; one site per object plus a client.
    /// Compatibility wrapper over [`Simulator::from_csr`] (snapshots the
    /// instance first).
    pub fn new(instance: &Instance, alphabet: &'a Alphabet, delivery: Delivery) -> Simulator<'a> {
        Simulator::from_csr(&CsrGraph::from(instance), alphabet, delivery)
    }

    /// Build a simulator over a label-indexed snapshot: each object site
    /// holds its CSR shard (its sorted out-row), plus one client site.
    pub fn from_csr(graph: &CsrGraph, alphabet: &'a Alphabet, delivery: Delivery) -> Simulator<'a> {
        Simulator::from_view(graph, alphabet, delivery)
    }

    /// Build a simulator over **any** [`GraphView`] snapshot (e.g. a
    /// `rpq_graph::DeltaGraph` absorbing writes): each object site holds
    /// its shard of the view's current state, plus one client site.
    pub fn from_view<G: GraphView>(
        graph: &G,
        alphabet: &'a Alphabet,
        delivery: Delivery,
    ) -> Simulator<'a> {
        let n = graph.num_nodes();
        let mut sites: Vec<Site> = (0..n as u32)
            .map(|o| Site::from_view(graph, Oid(o)))
            .collect();
        let client = n as SiteId;
        sites.push(Site::new(client, Vec::new()));
        Simulator {
            alphabet,
            sites,
            client,
            delivery,
            rewrite: Box::new(no_rewrite),
        }
    }

    /// Absorb an edge batch **without a full reshard**: each mutation is a
    /// sorted-row insert/remove on exactly its source's shard, and every
    /// site's protocol state is reset (the subquery dedup tables refer to
    /// the pre-delta graph). Endpoints must be existing object sites — a
    /// batch introducing new nodes requires rebuilding the network.
    /// Returns the number of mutations that took effect.
    pub fn apply_delta(&mut self, delta: &EdgeDelta) -> usize {
        crate::site::apply_delta_to_sites(&mut self.sites, delta, self.client)
    }

    /// Install a per-site subquery rewriting hook (constraint optimization).
    pub fn with_rewrite<F>(mut self, f: F) -> Simulator<'a>
    where
        F: Fn(SiteId, &Regex) -> Regex + 'a,
    {
        self.rewrite = Box::new(f);
        self
    }

    /// Run `query` from `source`, asked by the client site. Panics if the
    /// protocol fails to detect termination by quiescence (a protocol bug).
    pub fn run(&mut self, source: Oid, query: &Regex) -> RunResult {
        let mut rng = match self.delivery {
            Delivery::Fifo => None,
            Delivery::Random { seed, .. } => Some(StdRng::seed_from_u64(seed)),
        };
        let mut stats = MessageStats::default();
        let mut trace: Vec<TraceEvent> = Vec::new();
        let mut messages: Vec<Message> = Vec::new();
        let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
        let mut seq = 0u64;

        let initial = self.sites[self.client as usize].initiate(source.0, query.clone());
        let delivery = self.delivery.clone();
        let alphabet = self.alphabet;
        let mut send = |msg: Message,
                        now: u64,
                        heap: &mut BinaryHeap<QueueEntry>,
                        messages: &mut Vec<Message>,
                        stats: &mut MessageStats,
                        rng: &mut Option<StdRng>| {
            let latency = match (&delivery, rng) {
                (Delivery::Fifo, _) => 1,
                (Delivery::Random { max_latency, .. }, Some(r)) => r.random_range(1..=*max_latency),
                _ => 1,
            };
            stats.record(msg.kind(), codec::encode(&msg, alphabet).len());
            seq += 1;
            messages.push(msg);
            heap.push(QueueEntry {
                time: now + latency,
                seq,
                message_idx: messages.len() - 1,
            });
        };

        send(initial, 0, &mut heap, &mut messages, &mut stats, &mut rng);

        while let Some(QueueEntry {
            time, message_idx, ..
        }) = heap.pop()
        {
            let msg = messages[message_idx].clone();
            trace.push(TraceEvent {
                time,
                message: msg.clone(),
            });
            let receiver = msg.receiver() as usize;
            let produced = self.sites[receiver].handle(msg, &self.rewrite);
            for m in produced {
                send(m, time, &mut heap, &mut messages, &mut stats, &mut rng);
            }
        }

        let client_site = &self.sites[self.client as usize];
        let termination_detected = client_site.root_done;
        assert!(
            termination_detected,
            "protocol failed to detect termination at quiescence"
        );
        let mut answers: Vec<Oid> = client_site.answers.iter().map(|&s| Oid(s)).collect();
        answers.sort();
        let tasks_registered = self
            .sites
            .iter()
            .filter(|s| s.id != self.client)
            .map(Site::task_count)
            .sum();
        RunResult {
            answers,
            termination_detected,
            stats,
            trace,
            tasks_registered,
        }
    }
}

/// Per-query outcome of a concurrent run (see [`run_concurrent`]).
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Sorted answers delivered to this query's client.
    pub answers: Vec<Oid>,
    /// This query's root `done` arrived.
    pub termination_detected: bool,
}

/// Result of a concurrent multi-query run.
#[derive(Clone, Debug)]
pub struct ConcurrentRunResult {
    /// One outcome per input query, in order.
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregate message accounting across all queries.
    pub stats: MessageStats,
}

/// Evaluate several queries **concurrently** over one network.
///
/// Section 3.1: "We also assume that a single query is evaluated at a
/// time. (Many queries may be treated by appending a global query
/// identifier to all messages.)" The identifier is realized here by the
/// `destination` field every message already carries: each query gets its
/// own client site, so the per-site dedup key `(destination, subquery)`
/// never collides across queries. The flip side — measured by the tests —
/// is that identical queries from different clients do *not* share work;
/// sharing would need dedup on the subquery alone plus per-task
/// destination lists, which the paper does not specify.
pub fn run_concurrent(
    instance: &Instance,
    alphabet: &Alphabet,
    queries: &[(Oid, Regex)],
    delivery: Delivery,
) -> ConcurrentRunResult {
    let graph = CsrGraph::from(instance);
    let mut sites: Vec<Site> = graph.nodes().map(|o| Site::from_csr(&graph, o)).collect();
    let first_client = instance.num_nodes() as SiteId;
    for i in 0..queries.len() {
        sites.push(Site::new(first_client + i as SiteId, Vec::new()));
    }

    let mut rng = match delivery {
        Delivery::Fifo => None,
        Delivery::Random { seed, .. } => Some(StdRng::seed_from_u64(seed)),
    };
    let mut stats = MessageStats::default();
    let mut messages: Vec<Message> = Vec::new();
    let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut send = |msg: Message,
                    now: u64,
                    heap: &mut BinaryHeap<QueueEntry>,
                    messages: &mut Vec<Message>,
                    stats: &mut MessageStats,
                    rng: &mut Option<StdRng>| {
        let latency = match (&delivery, rng) {
            (Delivery::Fifo, _) => 1,
            (Delivery::Random { max_latency, .. }, Some(r)) => r.random_range(1..=*max_latency),
            _ => 1,
        };
        stats.record(msg.kind(), codec::encode(&msg, alphabet).len());
        seq += 1;
        messages.push(msg);
        heap.push(QueueEntry {
            time: now + latency,
            seq,
            message_idx: messages.len() - 1,
        });
    };

    for (i, (source, query)) in queries.iter().enumerate() {
        let client = (first_client + i as SiteId) as usize;
        let initial = sites[client].initiate(source.0, query.clone());
        send(initial, 0, &mut heap, &mut messages, &mut stats, &mut rng);
    }

    while let Some(QueueEntry {
        time, message_idx, ..
    }) = heap.pop()
    {
        let msg = messages[message_idx].clone();
        let receiver = msg.receiver() as usize;
        let produced = sites[receiver].handle(msg, &no_rewrite);
        for m in produced {
            send(m, time, &mut heap, &mut messages, &mut stats, &mut rng);
        }
    }

    let outcomes = (0..queries.len())
        .map(|i| {
            let client = &sites[first_client as usize + i];
            let mut answers: Vec<Oid> = client.answers.iter().map(|&s| Oid(s)).collect();
            answers.sort();
            QueryOutcome {
                answers,
                termination_detected: client.root_done,
            }
        })
        .collect();
    ConcurrentRunResult { outcomes, stats }
}

/// Render a trace in the style of Figure 3.
pub fn render_trace(
    trace: &[TraceEvent],
    alphabet: &Alphabet,
    instance: &Instance,
    client: SiteId,
) -> String {
    let name = |s: SiteId| -> String {
        if s == client {
            "d".to_owned()
        } else {
            instance.node_name(Oid(s))
        }
    };
    let mut out = String::new();
    for ev in trace {
        out.push_str(&format!(
            "t={:<4} {}\n",
            ev.time,
            ev.message.render(alphabet, &name)
        ));
    }
    out
}

/// Convenience: evaluate distributedly and compare against the centralized
/// product-automaton engine; returns the run result after asserting
/// equality. Used by the integration tests and the correctness property in
/// the benches.
pub fn run_and_check(
    instance: &Instance,
    alphabet: &Alphabet,
    source: Oid,
    query: &Regex,
    delivery: Delivery,
) -> RunResult {
    let mut sim = Simulator::new(instance, alphabet, delivery);
    let result = sim.run(source, query);
    let centralized =
        rpq_core::eval_product(&rpq_automata::Nfa::thompson(query), instance, source).answers;
    assert_eq!(
        result.answers, centralized,
        "distributed answers differ from centralized evaluation"
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::parse_regex;
    use rpq_graph::generators::fig2_graph;
    use rpq_graph::InstanceBuilder;

    #[test]
    fn fig3_run_on_fig2_graph() {
        let mut ab = Alphabet::new();
        let (inst, _d, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let res = run_and_check(&inst, &ab, o1, &q, Delivery::Fifo);
        // answers = {o2, o3}
        assert_eq!(res.answers.len(), 2);
        assert!(res.termination_detected);
        // the trace starts with the client's subquery(ab*) to o1
        let first = &res.trace[0].message;
        assert!(matches!(first, Message::Subquery { .. }));
        // o2 receives b* twice (from o1's quotient and from o3's cycle) but
        // registers it once: dedup produced an immediate done
        assert!(res.tasks_registered <= 4);
        // message accounting is self-consistent
        assert_eq!(
            res.stats.total(),
            res.trace.len(),
            "every sent message is delivered exactly once"
        );
        // every answer was acknowledged
        assert_eq!(res.stats.answers, res.stats.acks);
    }

    #[test]
    fn random_delivery_same_answers() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let fifo = run_and_check(&inst, &ab, o1, &q, Delivery::Fifo);
        for seed in 0..10 {
            let rnd = run_and_check(
                &inst,
                &ab,
                o1,
                &q,
                Delivery::Random {
                    seed,
                    max_latency: 7,
                },
            );
            assert_eq!(rnd.answers, fifo.answers, "seed {seed}");
            assert!(rnd.termination_detected);
        }
    }

    #[test]
    fn empty_answer_set_still_terminates() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "c.c").unwrap();
        let res = run_and_check(&inst, &ab, o1, &q, Delivery::Fifo);
        assert!(res.answers.is_empty());
        assert!(res.termination_detected);
        assert_eq!(res.stats.answers, 0);
    }

    #[test]
    fn epsilon_query_answers_source() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "()").unwrap();
        let res = run_and_check(&inst, &ab, o1, &q, Delivery::Fifo);
        assert_eq!(res.answers, vec![o1]);
    }

    #[test]
    fn cyclic_graph_star_query_terminates() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("x", "a", "y");
        b.edge("y", "a", "z");
        b.edge("z", "a", "x");
        let (inst, names) = b.finish();
        let q = parse_regex(&mut ab, "a*").unwrap();
        let res = run_and_check(&inst, &ab, names["x"], &q, Delivery::Fifo);
        assert_eq!(res.answers.len(), 3);
    }

    #[test]
    fn trace_renders_like_fig3() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo);
        let client = sim.client;
        let res = sim.run(o1, &q);
        let rendered = render_trace(&res.trace, &ab, &inst, client);
        assert!(rendered.contains("subquery("));
        assert!(rendered.contains("answer("));
        assert!(rendered.contains("done("));
        assert!(rendered.contains("akn("));
        assert!(rendered.contains("d, o1, d"));
    }

    #[test]
    fn rewrite_hook_reduces_messages() {
        // a site-local cache: the query (a.b)* is materialized as l-edges
        // from o1; the hook rewrites (a.b)* → l + () at o1 only.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o1", "a", "o2");
        b.edge("o2", "b", "o3");
        b.edge("o3", "a", "o4");
        b.edge("o4", "b", "o5");
        // cache edges for (a.b)* at o1: answers are o1 (ε), o3, o5
        b.edge("o1", "l", "o3");
        b.edge("o1", "l", "o5");
        let (inst, names) = b.finish();
        let o1 = names["o1"];
        let q = parse_regex(&mut ab, "(a.b)*").unwrap();
        let rewritten = parse_regex(&mut ab, "l + ()").unwrap();

        let plain = run_and_check(&inst, &ab, o1, &q, Delivery::Fifo);

        let q2 = q.clone();
        let hook = move |site: SiteId, incoming: &Regex| -> Regex {
            if site == o1.0 && incoming == &q2 {
                rewritten.clone()
            } else {
                incoming.clone()
            }
        };
        let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo).with_rewrite(hook);
        let optimized = sim.run(o1, &q);
        assert_eq!(optimized.answers, plain.answers);
        assert!(
            optimized.stats.total() < plain.stats.total(),
            "optimized {} vs plain {}",
            optimized.stats.total(),
            plain.stats.total()
        );
    }
    #[test]
    fn apply_delta_absorbs_a_batch_without_resharding() {
        use rpq_graph::DeltaGraph;

        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();

        // mirror the mutation in a DeltaGraph so the expected answers come
        // from the centralized view of the *same* post-delta graph
        let mut dg = DeltaGraph::from_instance(&inst);
        let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo);
        let before = sim.run(o1, &q);

        let o2 = inst.node_by_name("o2").unwrap();
        let o3 = inst.node_by_name("o3").unwrap();
        let mut delta = rpq_graph::EdgeDelta::new();
        delta.del(o2, b, o3).add(o3, a, o1);
        let applied_sim = sim.apply_delta(&delta);
        let applied_dg = dg.apply_delta(&delta);
        assert_eq!(applied_sim, applied_dg);

        let after = sim.run(o1, &q);
        let expected = rpq_core::eval_product_csr(&rpq_automata::Nfa::thompson(&q), &dg, o1);
        assert_eq!(after.answers, expected.answers);
        assert!(after.termination_detected);
        // the delta genuinely changed the answer set (o1 lost its a-edge)
        assert_ne!(after.answers, before.answers);
    }

    #[test]
    fn concurrent_queries_do_not_interfere() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q1 = parse_regex(&mut ab, "a.b*").unwrap();
        let q2 = parse_regex(&mut ab, "a").unwrap();
        let q3 = parse_regex(&mut ab, "b*").unwrap();
        let queries = vec![(o1, q1.clone()), (o1, q2.clone()), (o1, q3.clone())];
        let res = run_concurrent(&inst, &ab, &queries, Delivery::Fifo);
        assert_eq!(res.outcomes.len(), 3);
        for ((src, q), outcome) in queries.iter().zip(&res.outcomes) {
            assert!(outcome.termination_detected);
            let solo = rpq_core::eval_product(&rpq_automata::Nfa::thompson(q), &inst, *src);
            assert_eq!(outcome.answers, solo.answers, "{}", q.display(&ab));
        }
    }

    #[test]
    fn concurrent_identical_queries_duplicate_work() {
        // The destination field is the paper's "global query identifier":
        // two clients asking the same query are fully isolated, so the
        // aggregate message count equals the sum of solo runs.
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let solo = run_and_check(&inst, &ab, o1, &q, Delivery::Fifo);
        let both = run_concurrent(
            &inst,
            &ab,
            &[(o1, q.clone()), (o1, q.clone())],
            Delivery::Fifo,
        );
        assert_eq!(both.outcomes[0].answers, both.outcomes[1].answers);
        assert_eq!(both.stats.total(), 2 * solo.stats.total());
    }

    #[test]
    fn concurrent_under_random_delivery() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q1 = parse_regex(&mut ab, "a.b*").unwrap();
        let q2 = parse_regex(&mut ab, "(a+b)*").unwrap();
        for seed in 0..5 {
            let res = run_concurrent(
                &inst,
                &ab,
                &[(o1, q1.clone()), (o1, q2.clone())],
                Delivery::Random {
                    seed,
                    max_latency: 5,
                },
            );
            for outcome in &res.outcomes {
                assert!(outcome.termination_detected, "seed {seed}");
            }
            assert_eq!(res.outcomes[0].answers.len(), 2);
        }
    }
    #[test]
    fn simplify_hook_preserves_answers_and_shrinks_payloads() {
        // The unconditional algebraic simplifier is a valid per-site
        // rewrite hook (sound without any constraints); payload bytes can
        // only shrink because simplify never grows the expression.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..6 {
            b.edge(&format!("n{i}"), "a", &format!("n{}", i + 1));
            b.edge(&format!("n{i}"), "b", &format!("n{}", i + 1));
        }
        let (inst, names) = b.finish();
        let n0 = names["n0"];
        // a deliberately redundant query: (ε + a·a*)·(a+b)* = a*·(a+b)*…
        let q = parse_regex(&mut ab, "(() + a.a*).(a+b)*").unwrap();
        let plain = run_and_check(&inst, &ab, n0, &q, Delivery::Fifo);
        let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo)
            .with_rewrite(|_site, incoming| rpq_automata::simplify::simplify(incoming));
        let simplified = sim.run(n0, &q);
        assert_eq!(plain.answers, simplified.answers);
        assert!(
            simplified.stats.bytes <= plain.stats.bytes,
            "simplified {} vs plain {}",
            simplified.stats.bytes,
            plain.stats.bytes
        );
    }
}
