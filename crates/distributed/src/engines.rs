//! The distributed evaluation strategies behind the unified
//! [`rpq_core::Engine`] calling convention.
//!
//! Both engines shard the [`CsrGraph`] snapshot across per-object sites
//! (each site holds its sorted out-row) and run the Section 3.1
//! subquery/answer/done/akn protocol to quiescence.
//!
//! [`EvalStats`] mapping: `pairs_visited` = subquery tasks registered
//! across object sites (the distributed pair-space analogue),
//! `edges_scanned` = protocol messages delivered (the work the network
//! pays), `classes_materialized` = 0 (quotients live in message payloads,
//! not in a table).

use rpq_core::{Engine, EvalResult, EvalStats, Query};
use rpq_graph::{CsrGraph, Oid};

use crate::sim::{Delivery, Simulator};
use crate::threaded::run_threaded_csr;

/// The deterministic event-driven simulator as an [`Engine`].
#[derive(Clone, Debug)]
pub struct SimulatorEngine {
    /// Message delivery policy for the simulated network.
    pub delivery: Delivery,
}

impl Default for SimulatorEngine {
    fn default() -> Self {
        SimulatorEngine {
            delivery: Delivery::Fifo,
        }
    }
}

impl Engine for SimulatorEngine {
    fn name(&self) -> &'static str {
        "distributed-sim"
    }

    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult {
        let mut sim = Simulator::from_csr(graph, query.alphabet(), self.delivery.clone());
        let run = sim.run(source, query.regex());
        let stats = EvalStats {
            pairs_visited: run.tasks_registered,
            edges_scanned: run.stats.total(),
            answers: run.answers.len(),
            ..EvalStats::default()
        };
        EvalResult {
            answers: run.answers,
            stats,
        }
    }
}

/// The genuinely concurrent runner (one OS thread per site) as an
/// [`Engine`]. Message totals vary run to run under true asynchrony; the
/// answer set does not.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadedEngine;

impl Engine for ThreadedEngine {
    fn name(&self) -> &'static str {
        "distributed-threaded"
    }

    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult {
        let run = run_threaded_csr(graph, source, query.regex());
        let stats = EvalStats {
            edges_scanned: run.messages,
            answers: run.answers.len(),
            ..EvalStats::default()
        };
        EvalResult {
            answers: run.answers,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::Alphabet;
    use rpq_core::ProductEngine;
    use rpq_graph::generators::fig2_graph;

    #[test]
    fn distributed_engines_agree_with_product_through_the_trait() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let csr = CsrGraph::from(&inst);
        for qs in ["a.b*", "(a+b)*", "c.c"] {
            let query = Query::parse(&mut ab, qs).unwrap();
            let expected = ProductEngine.eval(&query, &csr, o1).answers;
            let sim = SimulatorEngine::default().eval(&query, &csr, o1);
            assert_eq!(sim.answers, expected, "simulator on {qs}");
            let thr = ThreadedEngine.eval(&query, &csr, o1);
            assert_eq!(thr.answers, expected, "threaded on {qs}");
            assert!(sim.stats.edges_scanned >= 1);
        }
    }
}
