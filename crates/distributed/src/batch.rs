//! A threaded driver for batched multi-source evaluation.
//!
//! Unlike the Section 3.1 protocol runners (one site per *object*, message
//! passing between them), this driver parallelizes over the *source set*:
//! the sources are partitioned into contiguous chunks, each worker thread
//! runs the bit-parallel batched product BFS
//! ([`rpq_core::eval_product_batch_csr`]) over its chunk against the shared
//! immutable [`CsrGraph`] snapshot, and the per-chunk [`BatchResult`]s are
//! stitched back together in source order. Results are ferried back over
//! the vendored crossbeam channels, so the driver composes with the same
//! plumbing as the protocol runners.
//!
//! This is the shape the all-pairs / view-materialization workloads need:
//! an embarrassingly parallel outer loop around a set-at-a-time inner
//! kernel, with no shared mutable state beyond the snapshot.

use std::sync::Arc;
use std::thread;

use crossbeam::channel::unbounded;

use rpq_automata::Nfa;
use rpq_core::{
    eval_product_batch_csr_with, eval_product_to_batch_csr_with, run_default, BatchResult, Engine,
    EvalRequest, EvalResponse, EvalResult, EvalStats, ProductEngine, Query, ScratchPool,
    SourceSpec,
};
use rpq_graph::{CsrGraph, Oid};

/// Batched multi-source evaluation partitioned across worker threads.
///
/// `eval` delegates to the single-source product BFS; `eval_batch` fans the
/// source set out over `workers` threads, each running the bit-parallel
/// batch kernel on its chunk of the (shared, immutable) snapshot;
/// `eval_to_batch` does the same with *target* lanes over the reversed NFA
/// and reverse adjacency. Every worker draws its arenas from a shared
/// [`ScratchPool`], so steady-state batches allocate no frontier memory.
#[derive(Clone, Debug)]
pub struct PartitionedBatchEngine {
    /// Number of worker threads to partition the source set across.
    pub workers: usize,
    pool: Arc<ScratchPool>,
}

impl PartitionedBatchEngine {
    /// A driver over `workers` threads with a fresh scratch pool.
    pub fn new(workers: usize) -> PartitionedBatchEngine {
        PartitionedBatchEngine {
            workers,
            pool: Arc::new(ScratchPool::new()),
        }
    }

    /// The scratch pool shared by this driver's workers (cloned engines
    /// share the same pool).
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.pool
    }

    /// Fan `items` out over the workers, run `kernel` on each chunk with a
    /// pooled scratch, and stitch the per-chunk results back in order.
    fn run_partitioned<K>(&self, items: &[Oid], kernel: K) -> BatchResult
    where
        K: Fn(&[Oid], &mut rpq_core::EvalScratch) -> BatchResult + Sync,
    {
        let workers = self.workers.max(1);
        if items.is_empty() || workers == 1 {
            let mut scratch = self.pool.checkout();
            return kernel(items, &mut scratch);
        }
        // Contiguous chunks, one per worker (last workers may be idle when
        // there are fewer items than threads).
        let chunk_len = items.len().div_ceil(workers);
        let (tx, rx) = unbounded::<(usize, BatchResult)>();
        let (pool, kernel) = (&self.pool, &kernel);
        thread::scope(|scope| {
            for (idx, chunk) in items.chunks(chunk_len).enumerate() {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut scratch = pool.checkout();
                    let res = kernel(chunk, &mut scratch);
                    tx.send((idx, res)).expect("result channel open");
                });
            }
        });
        drop(tx);

        let mut chunks: Vec<Option<BatchResult>> = Vec::new();
        for (idx, res) in rx.iter() {
            if chunks.len() <= idx {
                chunks.resize(idx + 1, None);
            }
            chunks[idx] = Some(res);
        }
        let mut stats = EvalStats::default();
        let mut classes_max = 0usize;
        let mut per_source: Vec<Vec<Oid>> = Vec::with_capacity(items.len());
        for chunk in chunks {
            let chunk = chunk.expect("every chunk reports");
            stats.merge(&chunk.stats);
            classes_max = classes_max.max(chunk.stats.classes_materialized);
            per_source.extend(
                chunk
                    .per_source()
                    .expect("batch kernel partitions")
                    .to_vec(),
            );
        }
        // Summing distinct-states-touched across chunks would count the
        // same NFA state once per worker; report the max instead — a lower
        // bound on the batch-wide distinct count, on the same scale as the
        // single-threaded kernel's number.
        stats.classes_materialized = classes_max;
        BatchResult::from_per_source(per_source, stats)
    }
}

impl Default for PartitionedBatchEngine {
    fn default() -> Self {
        PartitionedBatchEngine::new(4)
    }
}

impl Engine for PartitionedBatchEngine {
    fn name(&self) -> &'static str {
        "batch-partitioned"
    }

    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult {
        ProductEngine.eval(query, graph, source)
    }

    /// Specializes the uncontrolled multi-source and multi-target arms by
    /// fanning the item set out over the worker threads, each running the
    /// bit-parallel wave kernel on its chunk (one reversal of the query's
    /// NFA serves every worker on the target side). Everything else falls
    /// back to [`run_default`].
    fn run(&self, query: &Query, graph: &CsrGraph, req: &EvalRequest) -> EvalResponse {
        if !req.is_controlled() {
            match &req.spec {
                SourceSpec::Sources(sources) => {
                    return EvalResponse::from_batch(self.run_partitioned(
                        sources,
                        |chunk, scratch| {
                            eval_product_batch_csr_with(query.nfa(), graph, chunk, scratch)
                        },
                    ));
                }
                SourceSpec::Targets(targets) => {
                    let reversed: Nfa = query.nfa().reverse();
                    return EvalResponse::from_batch(self.run_partitioned(
                        targets,
                        |chunk, scratch| {
                            eval_product_to_batch_csr_with(&reversed, graph, chunk, scratch)
                        },
                    ));
                }
                _ => {}
            }
        }
        run_default(self, query, graph, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpq_automata::Alphabet;
    use rpq_graph::generators::web_graph;

    #[test]
    fn partitioned_batch_matches_per_source_loop() {
        let mut ab = Alphabet::new();
        let labels: Vec<_> = (0..3).map(|i| ab.intern(&format!("l{i}"))).collect();
        let mut rng = StdRng::seed_from_u64(99);
        let (inst, _) = web_graph(&mut rng, 60, 3, &labels);
        let csr = CsrGraph::from(&inst);
        let sources: Vec<Oid> = (0..30).map(|i| Oid(i as u32)).collect();
        for qs in ["l0.(l1+l2)*", "(l0+l1+l2)*", "l2.l2"] {
            let query = Query::parse(&mut ab, qs).unwrap();
            for workers in [1usize, 3, 8, 64] {
                let engine = PartitionedBatchEngine::new(workers);
                let batch = engine.eval_batch(&query, &csr, &sources);
                let per = batch.per_source().unwrap();
                assert_eq!(per.len(), sources.len());
                for (i, &s) in sources.iter().enumerate() {
                    let single = ProductEngine.eval(&query, &csr, s);
                    assert_eq!(per[i], single.answers, "{qs} workers={workers} src={i}");
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut ab = Alphabet::new();
        let labels: Vec<_> = (0..2).map(|i| ab.intern(&format!("l{i}"))).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let (inst, _) = web_graph(&mut rng, 10, 2, &labels);
        let csr = CsrGraph::from(&inst);
        let query = Query::parse(&mut ab, "l0*").unwrap();
        let batch = PartitionedBatchEngine::default().eval_batch(&query, &csr, &[]);
        assert!(batch.union().is_empty());
    }
}
