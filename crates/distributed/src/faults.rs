//! Fault injection: what breaks when Section 3.1's assumptions fail.
//!
//! The paper is explicit about its fault model: "here we ignore node or
//! network failures. In particular, we assume that every message
//! eventually reaches its destination." This module makes that assumption
//! *testable* by injecting message **drops** and **duplications** into the
//! simulator and reporting which protocol guarantees survive:
//!
//! * **Drops** break termination detection: a lost `done`/`akn` leaves the
//!   parent waiting forever, and a lost `answer` loses results. The
//!   protocol (correctly, per its fault model) never recovers — the report
//!   shows `terminated = false`.
//! * **Duplications** are *mostly* harmless — `answer`s are deduplicated at
//!   the destination, stray `done`/`akn` resolutions are ignored — with one
//!   genuinely interesting exception: a duplicated `subquery` hits the
//!   receiver's dedup table and triggers an **immediate `done` carrying the
//!   original task's mid**, which the parent interprets as completion of a
//!   subtree that is still running. Termination can then be declared while
//!   answers are in flight — visible in the report as
//!   `premature_termination` (root `done` delivered before the last
//!   `answer`). Answers still all arrive by quiescence in the simulator,
//!   but a real initiator that stops listening at `done` would lose them.
//!
//! The tests pin down each behavior with seeds, and
//! `EXPERIMENTS.md` records the sweep: the paper's reliability assumption
//! is load-bearing exactly where its termination-detection argument uses
//! "when it has received the ack … and the done" (Section 3.1).

use std::collections::BinaryHeap;

use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq_automata::{Alphabet, Nfa, Regex};
use rpq_graph::{Instance, Oid};

use crate::message::{Message, MessageKind, SiteId};
use crate::site::{no_rewrite, Site};

/// Which messages the fault injector may affect.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability (0–100) of duplicating a message.
    pub duplicate_percent: u32,
    /// Probability (0–100) of dropping a message.
    pub drop_percent: u32,
    /// Restrict faults to one message kind (`None` = all kinds).
    pub only_kind: Option<MessageKind>,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

/// Observed outcome of a faulty run.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Answers the initiator had at quiescence (sorted).
    pub answers: Vec<Oid>,
    /// Does that equal the centralized evaluation?
    pub answers_complete: bool,
    /// Was the root `done` delivered at all?
    pub terminated: bool,
    /// Virtual time of the root `done` (when terminated).
    pub root_done_time: Option<u64>,
    /// Virtual time of the last `answer` delivery.
    pub last_answer_time: Option<u64>,
    /// Termination was declared while answers were still in flight.
    pub premature_termination: bool,
    /// Messages dropped / duplicated by the injector.
    pub dropped: usize,
    /// Messages duplicated by the injector.
    pub duplicated: usize,
}

/// Run `query` from `source` under a fault plan. Unlike
/// [`crate::sim::Simulator::run`], this never panics on protocol-level
/// anomalies — they are what the report is for.
pub fn run_with_faults(
    instance: &Instance,
    alphabet: &Alphabet,
    source: Oid,
    query: &Regex,
    plan: &FaultPlan,
) -> FaultReport {
    let _ = alphabet; // parity with the other runners; faults don't re-encode
    let mut sites: Vec<Site> = instance
        .nodes()
        .map(|o| {
            Site::new(
                o.0,
                instance
                    .out_edges(o)
                    .iter()
                    .map(|&(l, t)| (l, t.0))
                    .collect(),
            )
        })
        .collect();
    let client = instance.num_nodes() as SiteId;
    sites.push(Site::new(client, Vec::new()));

    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut payloads: Vec<Message> = Vec::new();
    let mut seq = 0u64;
    let mut dropped = 0usize;
    let mut duplicated = 0usize;

    let affected =
        |m: &Message, plan: &FaultPlan| -> bool { plan.only_kind.is_none_or(|k| m.kind() == k) };

    let initial = sites[client as usize].initiate(source.0, query.clone());
    let mut send = |msg: Message,
                    now: u64,
                    heap: &mut BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
                    payloads: &mut Vec<Message>,
                    rng: &mut StdRng,
                    dropped: &mut usize,
                    duplicated: &mut usize| {
        let can_fault = affected(&msg, plan);
        if can_fault && rng.random_range(0..100) < plan.drop_percent {
            *dropped += 1;
            return;
        }
        let copies = if can_fault && rng.random_range(0..100) < plan.duplicate_percent {
            *duplicated += 1;
            2
        } else {
            1
        };
        for c in 0..copies {
            seq += 1;
            payloads.push(msg.clone());
            heap.push(std::cmp::Reverse((now + 1 + c, seq)));
            // seq doubles as the payload index because pushes are in order
            debug_assert_eq!(seq as usize, payloads.len());
        }
    };
    send(
        initial,
        0,
        &mut heap,
        &mut payloads,
        &mut rng,
        &mut dropped,
        &mut duplicated,
    );

    let mut root_done_time: Option<u64> = None;
    let mut last_answer_time: Option<u64> = None;
    while let Some(std::cmp::Reverse((time, seq_idx))) = heap.pop() {
        let msg = payloads[seq_idx as usize - 1].clone();
        if matches!(msg.kind(), MessageKind::Answer) && msg.receiver() == client {
            last_answer_time = Some(time);
        }
        let receiver = msg.receiver() as usize;
        let produced = sites[receiver].handle(msg, &no_rewrite);
        if sites[client as usize].root_done && root_done_time.is_none() {
            root_done_time = Some(time);
        }
        for m in produced {
            send(
                m,
                time,
                &mut heap,
                &mut payloads,
                &mut rng,
                &mut dropped,
                &mut duplicated,
            );
        }
    }

    let client_site = &sites[client as usize];
    let mut answers: Vec<Oid> = client_site.answers.iter().map(|&s| Oid(s)).collect();
    answers.sort();
    let centralized = rpq_core::eval_product(&Nfa::thompson(query), instance, source).answers;
    let premature = match (root_done_time, last_answer_time) {
        (Some(d), Some(a)) => d < a,
        _ => false,
    };
    FaultReport {
        answers_complete: answers == centralized,
        answers,
        terminated: client_site.root_done,
        root_done_time,
        last_answer_time,
        premature_termination: premature,
        dropped,
        duplicated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::parse_regex;
    use rpq_graph::generators::fig2_graph;
    use rpq_graph::InstanceBuilder;

    fn backbone(ab: &mut Alphabet, depth: usize) -> (Instance, Oid) {
        let mut b = InstanceBuilder::new(ab);
        for i in 0..depth {
            b.edge(&format!("n{i}"), "a", &format!("n{}", i + 1));
        }
        b.edge(&format!("n{depth}"), "b", "n0");
        let (inst, names) = b.finish();
        let n0 = names["n0"];
        (inst, n0)
    }

    #[test]
    fn no_faults_is_the_base_protocol() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let report = run_with_faults(&inst, &ab, o1, &q, &FaultPlan::default());
        assert!(report.terminated);
        assert!(report.answers_complete);
        assert!(!report.premature_termination);
        assert_eq!(report.dropped + report.duplicated, 0);
    }

    #[test]
    fn drops_break_termination_detection() {
        // Dropping any done reliably hangs the protocol: the reliability
        // assumption is load-bearing.
        let mut ab = Alphabet::new();
        let (inst, n0) = backbone(&mut ab, 8);
        let q = parse_regex(&mut ab, "a*").unwrap();
        let mut hung = 0;
        for seed in 0..20 {
            let plan = FaultPlan {
                drop_percent: 30,
                only_kind: Some(MessageKind::Done),
                seed,
                ..FaultPlan::default()
            };
            let report = run_with_faults(&inst, &ab, n0, &q, &plan);
            if report.dropped > 0 && !report.terminated {
                hung += 1;
            }
        }
        assert!(hung >= 15, "expected most runs to hang, got {hung}/20");
    }

    #[test]
    fn dropped_answers_lose_results_and_hang() {
        let mut ab = Alphabet::new();
        let (inst, n0) = backbone(&mut ab, 6);
        let q = parse_regex(&mut ab, "a*").unwrap();
        let mut incomplete = 0;
        for seed in 0..20 {
            let plan = FaultPlan {
                drop_percent: 50,
                only_kind: Some(MessageKind::Answer),
                seed,
                ..FaultPlan::default()
            };
            let report = run_with_faults(&inst, &ab, n0, &q, &plan);
            if report.dropped > 0 {
                assert!(
                    !report.terminated,
                    "a dropped answer leaves its ack pending"
                );
                if !report.answers_complete {
                    incomplete += 1;
                }
            }
        }
        assert!(
            incomplete >= 10,
            "answers should go missing: {incomplete}/20"
        );
    }

    #[test]
    fn duplicate_answers_and_acks_are_harmless() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        for seed in 0..20 {
            for kind in [MessageKind::Answer, MessageKind::Ack, MessageKind::Done] {
                let plan = FaultPlan {
                    duplicate_percent: 60,
                    only_kind: Some(kind),
                    seed,
                    ..FaultPlan::default()
                };
                let report = run_with_faults(&inst, &ab, o1, &q, &plan);
                assert!(report.terminated, "{kind:?} seed {seed}");
                assert!(report.answers_complete, "{kind:?} seed {seed}");
            }
        }
    }

    #[test]
    fn duplicate_subqueries_can_declare_termination_early() {
        // The one real duplication hazard: the duplicate subquery is
        // answered `done(mid)` by the dedup rule with the ORIGINAL mid,
        // releasing the parent early. Scan seeds for an occurrence.
        let mut ab = Alphabet::new();
        let (inst, n0) = backbone(&mut ab, 10);
        let q = parse_regex(&mut ab, "a*").unwrap();
        let mut premature = 0;
        let mut all_terminated_runs = 0;
        for seed in 0..60 {
            let plan = FaultPlan {
                duplicate_percent: 70,
                only_kind: Some(MessageKind::Subquery),
                seed,
                ..FaultPlan::default()
            };
            let report = run_with_faults(&inst, &ab, n0, &q, &plan);
            if report.terminated {
                all_terminated_runs += 1;
                // answers all arrive by quiescence in the simulator …
                assert!(report.answers_complete, "seed {seed}");
                if report.premature_termination {
                    premature += 1;
                }
            }
        }
        assert!(all_terminated_runs > 0);
        assert!(
            premature > 0,
            "expected at least one premature-termination occurrence in the sweep"
        );
    }
}
