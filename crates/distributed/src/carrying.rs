//! Agents that carry accumulated traversal knowledge — a Section 5 variant.
//!
//! The paper's conclusion lists "allowing software agents to carry along
//! information accumulated during their traversal of the graph" among the
//! problems its techniques should help with. This module implements the
//! natural version of that idea on top of the Section 3.1 protocol:
//! every `subquery` message additionally carries the set of
//! `(site, destination, subquery)` registrations its sender knows about.
//! A site merges the carried knowledge into its own, and — the payoff —
//! **skips spawning** a subquery whose target registration is already
//! known, instead of spawning it and letting the target's dedup answer
//! `done`.
//!
//! Every skipped spawn saves two messages (the `subquery` and its
//! immediate `done`) at the price of larger subquery payloads: the classic
//! messages-versus-bytes trade, quantified by bench
//! `t9_protocol_comparison`. Correctness is unaffected: a registration is
//! carried only after the corresponding subquery was actually spawned
//! somewhere, the destination site receives every answer exactly as in the
//! base protocol, and the done/ack bookkeeping is untouched (skipped
//! spawns are simply never awaited). The tests check answers and
//! termination against the base protocol on the same graphs, and that the
//! message count never increases.

use std::collections::{HashMap, HashSet};

use rpq_automata::derivative::derivative;
use rpq_automata::{Alphabet, Regex};
use rpq_graph::{Instance, Oid};

use crate::message::{codec, Message, MessageKind, Mid, SiteId};
use crate::sim::MessageStats;

/// A registration the agent knows about: this `(site, destination, query)`
/// triple has been asked already.
pub type Registration = (SiteId, SiteId, Regex);

/// One carried message: the base protocol message plus (for subqueries)
/// the knowledge set.
#[derive(Clone, Debug)]
struct CarriedMessage {
    message: Message,
    carried: Vec<Registration>,
}

/// Result of a run of the carrying protocol.
#[derive(Clone, Debug)]
pub struct CarryingRunResult {
    /// Sorted answers at the initiator.
    pub answers: Vec<Oid>,
    /// Message accounting: `bytes` includes the carried payloads
    /// (12 bytes per registration plus the rendered query, mirroring the
    /// codec's field sizes).
    pub stats: MessageStats,
    /// Spawns skipped thanks to carried knowledge (each saves a
    /// subquery + done pair versus the base protocol).
    pub skipped_spawns: usize,
    /// Largest carried set on any message (payload growth measure).
    pub max_carried: usize,
}

struct CarrySite {
    id: SiteId,
    edges: Vec<(rpq_automata::Symbol, SiteId)>,
    /// Local registrations (same dedup as the base protocol).
    tasks: HashMap<(SiteId, Regex), Task>,
    waiting_index: HashMap<Mid, (SiteId, Regex)>,
    /// Everything this site knows to be registered somewhere.
    known: HashSet<Registration>,
    counter: u32,
    answers: Vec<SiteId>,
    root_done: bool,
    root_mid: Option<Mid>,
}

struct Task {
    parent: Option<(Mid, SiteId)>,
    waiting: Vec<Mid>,
    finished: bool,
}

impl CarrySite {
    fn new(id: SiteId, edges: Vec<(rpq_automata::Symbol, SiteId)>) -> CarrySite {
        CarrySite {
            id,
            edges,
            tasks: HashMap::new(),
            waiting_index: HashMap::new(),
            known: HashSet::new(),
            counter: 0,
            answers: Vec::new(),
            root_done: false,
            root_mid: None,
        }
    }

    fn fresh_mid(&mut self) -> Mid {
        self.counter += 1;
        Mid(self.id, self.counter)
    }

    fn handle(&mut self, msg: CarriedMessage, skipped: &mut usize) -> Vec<CarriedMessage> {
        match msg.message {
            Message::Subquery {
                mid,
                sender,
                destination,
                query,
                ..
            } => {
                self.known.extend(msg.carried.iter().cloned());
                self.on_subquery(mid, sender, destination, query, skipped)
            }
            Message::Answer { mid, sender, .. } => {
                if !self.answers.contains(&sender) {
                    self.answers.push(sender);
                }
                vec![CarriedMessage {
                    message: Message::Ack {
                        mid,
                        sender: self.id,
                        receiver: sender,
                    },
                    carried: Vec::new(),
                }]
            }
            Message::Done { mid, .. } => {
                if self.root_mid == Some(mid) {
                    self.root_done = true;
                    return Vec::new();
                }
                self.resolve(mid)
            }
            Message::Ack { mid, .. } => self.resolve(mid),
        }
    }

    fn on_subquery(
        &mut self,
        mid: Mid,
        sender: SiteId,
        destination: SiteId,
        query: Regex,
        skipped: &mut usize,
    ) -> Vec<CarriedMessage> {
        let key = (destination, query.clone());
        self.known.insert((self.id, destination, query.clone()));
        if self.tasks.contains_key(&key) {
            return vec![CarriedMessage {
                message: Message::Done {
                    mid,
                    sender: self.id,
                    receiver: sender,
                },
                carried: Vec::new(),
            }];
        }

        let mut out = Vec::new();
        let mut waiting = Vec::new();

        if query.nullable() {
            let amid = self.fresh_mid();
            out.push(CarriedMessage {
                message: Message::Answer {
                    mid: amid,
                    sender: self.id,
                    receiver: destination,
                },
                carried: Vec::new(),
            });
            waiting.push(amid);
            self.waiting_index.insert(amid, key.clone());
        }

        for (label, neighbor) in self.edges.clone() {
            let quotient = derivative(&query, label);
            if quotient == Regex::Empty {
                continue;
            }
            let registration = (neighbor, destination, quotient.clone());
            if self.known.contains(&registration) {
                // The payoff: the target already has (or will get) this
                // registration — its reply would be an immediate done.
                *skipped += 1;
                continue;
            }
            self.known.insert(registration);
            let smid = self.fresh_mid();
            let carried: Vec<Registration> = self.known.iter().cloned().collect();
            out.push(CarriedMessage {
                message: Message::Subquery {
                    mid: smid,
                    sender: self.id,
                    receiver: neighbor,
                    destination,
                    query: quotient,
                },
                carried,
            });
            waiting.push(smid);
            self.waiting_index.insert(smid, key.clone());
        }

        if waiting.is_empty() {
            self.tasks.insert(
                key,
                Task {
                    parent: None,
                    waiting,
                    finished: true,
                },
            );
            out.push(CarriedMessage {
                message: Message::Done {
                    mid,
                    sender: self.id,
                    receiver: sender,
                },
                carried: Vec::new(),
            });
        } else {
            self.tasks.insert(
                key,
                Task {
                    parent: Some((mid, sender)),
                    waiting,
                    finished: false,
                },
            );
        }
        out
    }

    fn resolve(&mut self, mid: Mid) -> Vec<CarriedMessage> {
        let Some(key) = self.waiting_index.remove(&mid) else {
            return Vec::new();
        };
        let Some(task) = self.tasks.get_mut(&key) else {
            return Vec::new();
        };
        task.waiting.retain(|&m| m != mid);
        if task.waiting.is_empty() && !task.finished {
            task.finished = true;
            if let Some((pmid, parent)) = task.parent {
                return vec![CarriedMessage {
                    message: Message::Done {
                        mid: pmid,
                        sender: self.id,
                        receiver: parent,
                    },
                    carried: Vec::new(),
                }];
            }
        }
        Vec::new()
    }
}

/// Run the carrying protocol (FIFO delivery), asserting answers against
/// the centralized evaluation and termination at quiescence.
pub fn run_carrying(
    instance: &Instance,
    alphabet: &Alphabet,
    source: Oid,
    query: &Regex,
) -> CarryingRunResult {
    let mut sites: Vec<CarrySite> = instance
        .nodes()
        .map(|o| {
            CarrySite::new(
                o.0,
                instance
                    .out_edges(o)
                    .iter()
                    .map(|&(l, t)| (l, t.0))
                    .collect(),
            )
        })
        .collect();
    let client = instance.num_nodes() as SiteId;
    sites.push(CarrySite::new(client, Vec::new()));

    let mid = {
        let c = &mut sites[client as usize];
        let m = c.fresh_mid();
        c.root_mid = Some(m);
        m
    };
    let initial = CarriedMessage {
        message: Message::Subquery {
            mid,
            sender: client,
            receiver: source.0,
            destination: client,
            query: query.clone(),
        },
        carried: vec![(source.0, client, query.clone())],
    };

    let mut stats = MessageStats::default();
    let mut skipped = 0usize;
    let mut max_carried = 0usize;
    let mut queue: std::collections::VecDeque<CarriedMessage> = std::collections::VecDeque::new();
    let account = |m: &CarriedMessage, stats: &mut MessageStats, max_carried: &mut usize| {
        let base = codec::encode(&m.message, alphabet).len();
        let carried_bytes: usize = m
            .carried
            .iter()
            .map(|(_, _, q)| 12 + format!("{}", q.display(alphabet)).len())
            .sum();
        *max_carried = (*max_carried).max(m.carried.len());
        // record() is private to sim; mirror its bookkeeping here
        match m.message.kind() {
            MessageKind::Subquery => stats.subqueries += 1,
            MessageKind::Answer => stats.answers += 1,
            MessageKind::Done => stats.dones += 1,
            MessageKind::Ack => stats.acks += 1,
        }
        stats.bytes += base + carried_bytes;
    };
    account(&initial, &mut stats, &mut max_carried);
    queue.push_back(initial);

    while let Some(msg) = queue.pop_front() {
        let receiver = msg.message.receiver() as usize;
        for m in sites[receiver].handle(msg, &mut skipped) {
            account(&m, &mut stats, &mut max_carried);
            queue.push_back(m);
        }
    }

    let client_site = &sites[client as usize];
    assert!(
        client_site.root_done,
        "carrying protocol failed to detect termination"
    );
    let mut answers: Vec<Oid> = client_site.answers.iter().map(|&s| Oid(s)).collect();
    answers.sort();
    let centralized =
        rpq_core::eval_product(&rpq_automata::Nfa::thompson(query), instance, source).answers;
    assert_eq!(
        answers, centralized,
        "carrying protocol answers differ from centralized evaluation"
    );
    CarryingRunResult {
        answers,
        stats,
        skipped_spawns: skipped,
        max_carried,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_and_check, Delivery};
    use rpq_automata::parse_regex;
    use rpq_graph::generators::fig2_graph;
    use rpq_graph::InstanceBuilder;

    #[test]
    fn fig2_answers_match_base_protocol() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let base = run_and_check(&inst, &ab, o1, &q, Delivery::Fifo);
        let carrying = run_carrying(&inst, &ab, o1, &q);
        assert_eq!(carrying.answers, base.answers);
    }

    #[test]
    fn skips_save_messages_on_cycles() {
        // Figure 2's b-cycle: the base protocol sends o3 → o2 a duplicate
        // b* subquery answered by an immediate done; carrying skips it.
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let base = run_and_check(&inst, &ab, o1, &q, Delivery::Fifo);
        let carrying = run_carrying(&inst, &ab, o1, &q);
        assert!(carrying.skipped_spawns >= 1);
        assert!(
            carrying.stats.total() < base.stats.total(),
            "carrying {} vs base {}",
            carrying.stats.total(),
            base.stats.total()
        );
    }

    #[test]
    fn message_count_never_increases() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        // dense-ish graph with shared suffixes
        for i in 0..8 {
            b.edge(&format!("n{i}"), "a", &format!("n{}", (i + 1) % 8));
            b.edge(&format!("n{i}"), "b", &format!("n{}", (i + 3) % 8));
        }
        let (inst, names) = b.finish();
        let n0 = names["n0"];
        for query in ["(a+b)*", "a.b*", "a*.b"] {
            let q = parse_regex(&mut ab, query).unwrap();
            let base = run_and_check(&inst, &ab, n0, &q, Delivery::Fifo);
            let carrying = run_carrying(&inst, &ab, n0, &q);
            assert_eq!(carrying.answers, base.answers, "{query}");
            assert!(
                carrying.stats.total() <= base.stats.total(),
                "{query}: carrying {} vs base {}",
                carrying.stats.total(),
                base.stats.total()
            );
        }
    }

    #[test]
    fn bytes_grow_with_carried_knowledge() {
        // On a cycle-heavy run the payloads grow even as message count
        // shrinks — the documented trade.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..6 {
            b.edge(&format!("c{i}"), "a", &format!("c{}", (i + 1) % 6));
        }
        let (inst, names) = b.finish();
        let q = parse_regex(&mut ab, "a*").unwrap();
        let carrying = run_carrying(&inst, &ab, names["c0"], &q);
        assert!(carrying.max_carried >= 2);
        assert!(carrying.stats.bytes > 0);
    }

    #[test]
    fn terminates_with_empty_answers() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "z.z").unwrap();
        let res = run_carrying(&inst, &ab, o1, &q);
        assert!(res.answers.is_empty());
    }
}
