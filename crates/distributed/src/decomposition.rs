//! The query-decomposition baseline: ship the query once per site.
//!
//! The paper's related-work section describes the alternative strategy of
//! Suciu \[30\] for UnQL: "queries can be evaluated by shipping the query
//! exactly once to every site, returning the local results to the client
//! site, and assembling the final result at the client site." This module
//! implements that baseline for regular path queries so the agent-style
//! protocol of Section 3.1 can be compared against it (bench
//! `t9_protocol_comparison`):
//!
//! * **Round 1** — the client sends the full query automaton to each of
//!   the `k` sites (`k` messages).
//! * **Local work** — each site computes a *partial-run table*: for every
//!   possible entry pair (border node `n`, automaton state `s`), the set
//!   of cross-site pairs `(n', s')` its internal edges can reach, plus the
//!   local answers produced along the way. Sites cannot know which entry
//!   pairs will actually be demanded, so they compute **all** of them —
//!   the wasted work this baseline trades for its fixed message count.
//! * **Round 2** — each site returns its table (`k` messages); the client
//!   chases pairs across tables from `(source, start state)`.
//!
//! The trade against Section 3.1's agents is exactly the one the paper's
//! distributed scenario motivates: `2k` messages with potentially large,
//! partially wasted payloads versus answers-driven navigation whose
//! message count tracks the *reached* portion of the graph.
//!
//! Objects are grouped into sites by a [`Partition`] (the Section 3.1
//! protocol is the `singletons` special case where every object is its
//! own site).

use std::collections::{HashMap, HashSet, VecDeque};

use rpq_automata::{Nfa, Regex, StateId};
use rpq_graph::{Instance, Oid};

/// An assignment of objects to sites.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `site_of[oid] = site index`.
    pub site_of: Vec<usize>,
    /// Number of sites.
    pub num_sites: usize,
}

impl Partition {
    /// Every object is its own site (the Section 3.1 setting).
    pub fn singletons(instance: &Instance) -> Partition {
        Partition {
            site_of: (0..instance.num_nodes()).collect(),
            num_sites: instance.num_nodes(),
        }
    }

    /// Contiguous blocks of `block_size` object ids per site.
    pub fn blocks(instance: &Instance, block_size: usize) -> Partition {
        let block_size = block_size.max(1);
        let n = instance.num_nodes();
        Partition {
            site_of: (0..n).map(|o| o / block_size).collect(),
            num_sites: n.div_ceil(block_size),
        }
    }

    /// An explicit assignment (checked for contiguity of site indexes).
    pub fn from_map(site_of: Vec<usize>) -> Partition {
        let num_sites = site_of.iter().copied().max().map_or(0, |m| m + 1);
        Partition { site_of, num_sites }
    }

    /// The site of an object.
    pub fn site(&self, o: Oid) -> usize {
        self.site_of[o.0 as usize]
    }
}

/// One site's partial-run table.
#[derive(Clone, Debug, Default)]
struct SiteTable {
    /// `(entry node, state) → cross-site continuations (node, state)`.
    crossings: HashMap<(u32, StateId), Vec<(u32, StateId)>>,
    /// `(entry node, state) → local answers`.
    answers: HashMap<(u32, StateId), Vec<u32>>,
    /// Number of (entry, state) pairs computed (work/size measure).
    entries: usize,
}

/// Result of a decomposition run, with message accounting comparable to
/// [`crate::sim::MessageStats`].
#[derive(Clone, Debug)]
pub struct DecompositionResult {
    /// Sorted answers; equal to the centralized evaluation (asserted by
    /// [`run_decomposition_checked`]).
    pub answers: Vec<Oid>,
    /// Total messages (2 per site: query shipment + table return).
    pub messages: usize,
    /// Estimated bytes on the wire (query encoding per site + 12 bytes per
    /// table row, mirroring the codec's per-field sizes).
    pub bytes: usize,
    /// Total table rows computed across sites (local-work measure).
    pub table_entries: usize,
    /// Table rows the client's assembly actually consumed.
    pub table_entries_used: usize,
    /// Communication rounds (always 2).
    pub rounds: usize,
}

/// Run the decomposition strategy. The query is evaluated exactly; message
/// and byte counts model the two-round protocol described in the module
/// docs.
pub fn run_decomposition(
    instance: &Instance,
    alphabet: &rpq_automata::Alphabet,
    partition: &Partition,
    source: Oid,
    query: &Regex,
) -> DecompositionResult {
    let nfa = Nfa::thompson(query);
    let query_bytes = format!("{}", query.display(alphabet)).len() + 17; // header like codec

    // --- Round 1 + local work: build each site's table. -------------------
    // Entry nodes of a site: nodes with an in-edge from another site, plus
    // the source node (the client enters there).
    let mut entry_nodes: Vec<HashSet<u32>> = vec![HashSet::new(); partition.num_sites];
    entry_nodes[partition.site(source)].insert(source.0);
    for (a, _, b) in instance.edges() {
        if partition.site(a) != partition.site(b) {
            entry_nodes[partition.site(b)].insert(b.0);
        }
    }

    let mut tables: Vec<SiteTable> = vec![SiteTable::default(); partition.num_sites];
    for site in 0..partition.num_sites {
        let table = &mut tables[site];
        for &entry in &entry_nodes[site] {
            // All states are possible entry states — the site cannot know
            // which the run will demand; this is the baseline's waste.
            for state in 0..nfa.num_states() as StateId {
                let key = (entry, state);
                table.entries += 1;
                // BFS over (node, state-set) within the site.
                let start_set = nfa.eps_closure(&[state]);
                let mut seen: HashSet<(u32, Vec<StateId>)> = HashSet::new();
                let mut queue: VecDeque<(u32, Vec<StateId>)> = VecDeque::new();
                seen.insert((entry, start_set.clone()));
                queue.push_back((entry, start_set));
                let mut crossings: Vec<(u32, StateId)> = Vec::new();
                let mut answers: Vec<u32> = Vec::new();
                while let Some((node, set)) = queue.pop_front() {
                    if nfa.set_accepts(&set) && !answers.contains(&node) {
                        answers.push(node);
                    }
                    for &(label, target) in instance.out_edges(Oid(node)) {
                        let stepped = nfa.step(&set, label);
                        if stepped.is_empty() {
                            continue;
                        }
                        if partition.site(target) == site {
                            let item = (target.0, stepped);
                            if !seen.contains(&item) {
                                seen.insert(item.clone());
                                queue.push_back(item);
                            }
                        } else {
                            for &s in &stepped {
                                if !crossings.contains(&(target.0, s)) {
                                    crossings.push((target.0, s));
                                }
                            }
                        }
                    }
                }
                if !crossings.is_empty() {
                    table.crossings.insert(key, crossings);
                }
                if !answers.is_empty() {
                    table.answers.insert(key, answers);
                }
            }
        }
    }

    // --- Round 2: client assembly. ----------------------------------------
    // Chase (node, state) pairs across site tables. The NFA's start is an
    // ε-closed *set*; tables are keyed per single state, so expand.
    let mut answers: HashSet<u32> = HashSet::new();
    let mut used: HashSet<(u32, StateId)> = HashSet::new();
    let mut queue: VecDeque<(u32, StateId)> = VecDeque::new();
    for s in nfa.start_set() {
        // per-state closure is applied inside the site computation
        if used.insert((source.0, s)) {
            queue.push_back((source.0, s));
        }
    }
    while let Some((node, state)) = queue.pop_front() {
        let table = &tables[partition.site(Oid(node))];
        if let Some(local) = table.answers.get(&(node, state)) {
            answers.extend(local.iter().copied());
        }
        if let Some(crossings) = table.crossings.get(&(node, state)) {
            for &(n, s) in crossings {
                if used.insert((n, s)) {
                    queue.push_back((n, s));
                }
            }
        }
    }

    let table_entries: usize = tables.iter().map(|t| t.entries).sum();
    let table_rows: usize = tables
        .iter()
        .map(|t| {
            t.crossings.values().map(Vec::len).sum::<usize>()
                + t.answers.values().map(Vec::len).sum::<usize>()
        })
        .sum();
    let mut sorted: Vec<Oid> = answers.into_iter().map(Oid).collect();
    sorted.sort();
    DecompositionResult {
        answers: sorted,
        messages: 2 * partition.num_sites,
        bytes: partition.num_sites * query_bytes + table_rows * 12,
        table_entries,
        table_entries_used: used.len(),
        rounds: 2,
    }
}

/// [`run_decomposition`] plus the correctness assertion against the
/// centralized product-automaton engine.
pub fn run_decomposition_checked(
    instance: &Instance,
    alphabet: &rpq_automata::Alphabet,
    partition: &Partition,
    source: Oid,
    query: &Regex,
) -> DecompositionResult {
    let result = run_decomposition(instance, alphabet, partition, source, query);
    let centralized = rpq_core::eval_product(&Nfa::thompson(query), instance, source).answers;
    assert_eq!(
        result.answers, centralized,
        "decomposition answers differ from centralized evaluation"
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_and_check, Delivery};
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::generators::fig2_graph;
    use rpq_graph::InstanceBuilder;

    #[test]
    fn fig2_all_partitions_agree() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        for block in [1, 2, 3, 10] {
            let part = Partition::blocks(&inst, block);
            let res = run_decomposition_checked(&inst, &ab, &part, o1, &q);
            assert_eq!(res.answers.len(), 2, "block size {block}");
            assert_eq!(res.rounds, 2);
            assert_eq!(res.messages, 2 * part.num_sites);
        }
    }

    #[test]
    fn chain_with_cycles_and_unions() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("u", "a", "v");
        b.edge("v", "b", "w");
        b.edge("w", "b", "v");
        b.edge("v", "c", "x");
        b.edge("x", "a", "u");
        let (inst, names) = b.finish();
        let u = names["u"];
        for query in ["a.b*", "(a+b)*", "a.(b.b)*.c", "c"] {
            let q = parse_regex(&mut ab, query).unwrap();
            for block in [1, 2, 5] {
                let part = Partition::blocks(&inst, block);
                run_decomposition_checked(&inst, &ab, &part, u, &q);
            }
        }
    }

    #[test]
    fn message_count_is_fixed_by_partition_not_by_reach() {
        // A long backbone: the agent protocol's messages grow with depth,
        // decomposition's stay 2k.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..30 {
            b.edge(&format!("n{i}"), "a", &format!("n{}", i + 1));
        }
        let (inst, names) = b.finish();
        let n0 = names["n0"];
        let q = parse_regex(&mut ab, "a*").unwrap();

        let part = Partition::blocks(&inst, 8);
        let dec = run_decomposition_checked(&inst, &ab, &part, n0, &q);
        assert_eq!(dec.messages, 2 * part.num_sites);

        let agent = run_and_check(&inst, &ab, n0, &q, Delivery::Fifo);
        assert!(
            agent.stats.total() > dec.messages,
            "agents: {}, decomposition: {}",
            agent.stats.total(),
            dec.messages
        );
    }

    #[test]
    fn wasted_work_is_visible() {
        // Two components; the query only reaches one. Decomposition still
        // computes tables for both — entries ≫ entries_used.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..6 {
            b.edge(&format!("x{i}"), "a", &format!("x{}", i + 1));
            b.edge(&format!("y{i}"), "a", &format!("y{}", i + 1));
        }
        b.edge("x6", "b", "x0");
        b.edge("y6", "b", "y0");
        let (inst, names) = b.finish();
        let q = parse_regex(&mut ab, "a.a").unwrap();
        let part = Partition::blocks(&inst, 2);
        let res = run_decomposition_checked(&inst, &ab, &part, names["x0"], &q);
        assert!(
            res.table_entries > res.table_entries_used,
            "entries {} used {}",
            res.table_entries,
            res.table_entries_used
        );
    }

    #[test]
    fn singleton_partition_matches_agent_answers() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let part = Partition::singletons(&inst);
        let dec = run_decomposition_checked(&inst, &ab, &part, o1, &q);
        let agent = run_and_check(&inst, &ab, o1, &q, Delivery::Fifo);
        assert_eq!(dec.answers, agent.answers);
    }

    #[test]
    fn empty_language_and_epsilon_queries() {
        let mut ab = Alphabet::new();
        let (inst, _, o1) = fig2_graph(&mut ab);
        let part = Partition::blocks(&inst, 2);
        let eps = parse_regex(&mut ab, "()").unwrap();
        let res = run_decomposition_checked(&inst, &ab, &part, o1, &eps);
        assert_eq!(res.answers, vec![o1]);
        let dead = parse_regex(&mut ab, "z.z").unwrap();
        let res = run_decomposition_checked(&inst, &ab, &part, o1, &dead);
        assert!(res.answers.is_empty());
    }
}
