//! The distributed runners accepting the optimizer's thread-safe machinery:
//! one memoizing `RewriteCache` shared as the per-site hook by the
//! deterministic simulator *and* every thread of the concurrent runner, and
//! a `PlannedEngine` wrapping the simulator, the threaded runner, and the
//! partitioned batch driver through the unified `Engine` trait.

use rpq_automata::{Alphabet, Nfa, Regex};
use rpq_constraints::general::Budget;
use rpq_constraints::ConstraintSet;
use rpq_core::{eval_product_csr, Engine, ProductEngine, Query};
use rpq_distributed::{
    run_threaded_csr, run_threaded_csr_with_rewrite, Delivery, PartitionedBatchEngine, Simulator,
    SimulatorEngine, ThreadedEngine,
};
use rpq_graph::{CsrGraph, Instance, Oid};
use rpq_optimizer::{PlannedEngine, RewriteCache};

/// The shared T5 cached workload (`rpq_bench::distributed_workload`): an
/// a·b backbone with trap branches, the cache label `l` wired from `v0`
/// to every (a.b)*-reachable node, so `l = (a.b)*` holds at `v0`.
fn cached_workload(depth: usize) -> (Alphabet, ConstraintSet, Instance, Oid) {
    let w = rpq_bench::distributed_workload(depth);
    assert!(w.constraints.holds_at(&w.instance, w.source));
    (w.alphabet, w.constraints, w.instance, w.source)
}

#[test]
fn one_rewrite_cache_serves_simulator_and_threaded_runner() {
    let (mut ab, set, inst, v0) = cached_workload(6);
    let graph = CsrGraph::from(&inst);
    let query = rpq_automata::parse_regex(&mut ab, "(a.b)*").unwrap();
    let expected = eval_product_csr(&Nfa::thompson(&query), &graph, v0).answers;

    let cache = RewriteCache::new(&set, &ab, Budget::default()).with_stats(graph.stats().clone());

    // Deterministic simulator: the memoized hook must preserve answers and
    // reduce protocol traffic versus the unoptimized run.
    let plain = Simulator::from_csr(&graph, &ab, Delivery::Fifo).run(v0, &query);
    let mut sim = Simulator::from_csr(&graph, &ab, Delivery::Fifo)
        .with_rewrite(|_site, q: &Regex| cache.rewrite(q));
    let optimized = sim.run(v0, &query);
    assert_eq!(optimized.answers, expected);
    assert!(
        optimized.stats.total() < plain.stats.total(),
        "rewrite must cut messages: {} vs {}",
        optimized.stats.total(),
        plain.stats.total()
    );
    assert!(!cache.is_empty(), "sites hit the shared cache");
    let after_sim = cache.len();

    // Threaded runner: *the same cache instance* is the hook for every
    // site thread — this is what the Mutex-backed memo buys.
    let threaded =
        run_threaded_csr_with_rewrite(&graph, v0, &query, &|_site, q: &Regex| cache.rewrite(q));
    assert_eq!(threaded.answers, expected);
    assert_eq!(
        cache.len(),
        after_sim,
        "the threaded run re-used the memo entries the simulator populated"
    );

    // hook-free runner still agrees
    assert_eq!(run_threaded_csr(&graph, v0, &query).answers, expected);
}

#[test]
fn planned_engine_wraps_all_distributed_runners() {
    let (mut ab, set, inst, v0) = cached_workload(5);
    let graph = CsrGraph::from(&inst);
    let query = Query::parse(&mut ab, "(a.b)*").unwrap();
    let expected = ProductEngine.eval(&query, &graph, v0).answers;

    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(PlannedEngine::new(
            SimulatorEngine::default(),
            set.clone(),
            ab.clone(),
        )),
        Box::new(PlannedEngine::new(ThreadedEngine, set.clone(), ab.clone())),
        Box::new(PlannedEngine::new(
            PartitionedBatchEngine::new(3),
            set.clone(),
            ab.clone(),
        )),
    ];
    for engine in &engines {
        let got = engine.eval(&query, &graph, v0);
        assert_eq!(got.answers, expected, "planned({})", engine.name());
    }
}

#[test]
fn analysis_facts_flow_through_the_distributed_wrappers() {
    let (mut ab, set, inst, v0) = cached_workload(4);
    let graph = CsrGraph::from(&inst);
    let planned = PlannedEngine::new(PartitionedBatchEngine::new(2), set, ab.clone());
    let query = Query::parse(&mut ab, "(a.b)*").unwrap();

    // The cache substitution fires, certifies against the constraint
    // closure, and its finite winner is recorded in the stats every
    // distributed entry point reports.
    let res = planned.eval(&query, &graph, v0);
    assert_eq!(res.stats.rewrites_certified, 1);
    assert_eq!(res.stats.rewrites_rejected, 0);
    assert!(res.stats.finite_language);
    assert!(res.stats.analysis_ns > 0);

    // A query forced through a zero-edge label short-circuits before any
    // worker thread spawns: no edges scanned across the whole fan-out.
    let ghost = Query::parse(&mut ab, "a.ghost").unwrap();
    let sources: Vec<Oid> = graph.nodes().collect();
    let batch = planned.eval_batch(&ghost, &graph, &sources);
    assert_eq!(batch.per_source().unwrap().len(), sources.len());
    assert!(batch.union().is_empty());
    assert_eq!(batch.stats.edges_scanned, 0);
    assert_eq!(batch.stats.symbols_pruned, 1);
}

#[test]
fn partitioned_batch_workers_share_one_plan() {
    let (mut ab, set, inst, v0) = cached_workload(5);
    let graph = CsrGraph::from(&inst);
    let query = Query::parse(&mut ab, "(a.b)*").unwrap();
    let planned = PlannedEngine::new(PartitionedBatchEngine::new(4), set, ab.clone());

    // every node is a source: the fan-out re-uses the single memoized plan
    let sources: Vec<Oid> = graph.nodes().collect();
    let batch = planned.eval_batch(&query, &graph, &sources);
    assert_eq!(
        planned.plans_cached(),
        1,
        "one rewrite + compile served all {} workers",
        4
    );
    let per = batch
        .per_source()
        .expect("partitioned engine reports per-source");
    assert_eq!(
        per[v0.index()],
        ProductEngine.eval(&query, &graph, v0).answers
    );
    for (i, &s) in sources.iter().enumerate() {
        // spot-check against the unwrapped engine on the rewritten query's
        // equivalence guarantee: answers must match the *original* query
        // wherever the constraints hold (they hold at v0; elsewhere the
        // plain product engine on the original query is the oracle only if
        // the rewrite did not change semantics at that source, so compare
        // against the planned single-source path instead).
        let single = planned.eval(&query, &graph, s);
        assert_eq!(per[i], single.answers, "source {i}");
    }
}
