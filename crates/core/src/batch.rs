//! Batched multi-source evaluation — bit-parallel frontiers.
//!
//! Real workloads ask the same query from *many* sources (figure
//! reproductions, the distributed runners, all-pairs materialization).
//! Looping a single-source engine re-walks the same CSR rows once per
//! source; the batched engines here walk them once per *batch*.
//!
//! Two bit-parallel representations, both over [`rpq_graph::bitset`]:
//!
//! * **Lane mode** ([`eval_product_batch_csr`],
//!   [`eval_quotient_dfa_batch_csr`]): sources are processed in waves of up
//!   to 64; cell `(q, v)` of a `LaneMatrix` holds a `u64` mask of which
//!   wave sources have reached node `v` in automaton state (or quotient
//!   class) `q`. One pass over a CSR label row ORs the whole mask into
//!   every target — one scan advances every pending source — and the lane
//!   partition recovers per-source answer sets at the end.
//! * **Union mode** ([`eval_product_batch_union_csr`]): when callers only
//!   need `⋃ᵢ p(oᵢ, I)`, a single shared frontier — one [`NodeBitset`] per
//!   NFA state ([`FrontierArena`]) — runs the whole batch as one BFS,
//!   independent of the number of sources.
//!
//! Both run the level-synchronous product BFS of
//! [`crate::product::eval_product_csr`] (ε-closure within a level, one
//! graph edge per level step). `edges_scanned` counts each row pass once
//! regardless of how many source lanes ride it — that is the measured win
//! over the per-source loop (bench `t1_eval_scaling`, multi-source series).

use rpq_automata::{Nfa, StateId};
use rpq_graph::bitset::{FrontierArena, NodeBitset};
use rpq_graph::{GraphView, Oid};

use crate::quotient::SubsetInterner;
use crate::scratch::EvalScratch;
use crate::stats::EvalStats;

/// Result of a batched evaluation over a source set.
///
/// Always carries the union `⋃ᵢ p(oᵢ, I)` and the *aggregated*
/// [`EvalStats`] (per-source counters are merged, not discarded — see
/// [`EvalStats::merge`]). Engines that partition by source also report the
/// per-source answer sets; union-only engines (e.g. semi-naive Datalog
/// seeded with every source at once) report `per_source() == None`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchResult {
    per_source: Option<Vec<Vec<Oid>>>,
    union: Vec<Oid>,
    /// Aggregated work counters for the whole batch.
    pub stats: EvalStats,
}

impl BatchResult {
    /// Build from per-source answer sets (each sorted); computes the union.
    pub fn from_per_source(per_source: Vec<Vec<Oid>>, stats: EvalStats) -> BatchResult {
        let mut union: Vec<Oid> = per_source.iter().flatten().copied().collect();
        union.sort_unstable();
        union.dedup();
        BatchResult {
            per_source: Some(per_source),
            union,
            stats,
        }
    }

    /// Build from a union-only computation (`union` need not be sorted).
    pub fn union_only(mut union: Vec<Oid>, stats: EvalStats) -> BatchResult {
        union.sort_unstable();
        union.dedup();
        BatchResult {
            per_source: None,
            union,
            stats,
        }
    }

    /// The union of all per-source answer sets, sorted.
    pub fn union(&self) -> &[Oid] {
        &self.union
    }

    /// Per-source answer sets aligned with the `sources` argument, if the
    /// engine partitioned by source (`None` for union-only engines).
    pub fn per_source(&self) -> Option<&[Vec<Oid>]> {
        self.per_source.as_deref()
    }
}

/// Answers for one wave: turn per-node lane masks into sorted per-source
/// answer lists, appended to `out` in lane order.
pub(crate) fn collect_wave_answers(answer_masks: &[u64], wave_len: usize, out: &mut Vec<Vec<Oid>>) {
    let base = out.len();
    for _ in 0..wave_len {
        out.push(Vec::new()); // alloc-ok: per-source result vectors are the return value
    }
    for (v, &mask) in answer_masks.iter().enumerate() {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            out[base + lane].push(Oid(v as u32));
        }
    }
    // node order is increasing, so each per-source list is already sorted
}

/// Bit-parallel batched product BFS: evaluate `L(nfa)` from every source in
/// `sources` at once, in waves of up to 64 source lanes.
///
/// One `u64` lane mask per `(NFA state, node)` cell; a CSR label row is
/// scanned once per cell activation, advancing every lane that reached the
/// cell this level together. Per-source answers are recovered from the
/// lane partition. `stats` are aggregated over waves; `answers` counts the
/// per-source total (matching the default loop-over-`eval` aggregation).
pub fn eval_product_batch_csr<G: GraphView>(nfa: &Nfa, graph: &G, sources: &[Oid]) -> BatchResult {
    let mut scratch = EvalScratch::new();
    eval_product_batch_csr_with(nfa, graph, sources, &mut scratch)
}

/// [`eval_product_batch_csr`] with a caller-provided [`EvalScratch`] — the
/// pooled hot-path form: a warm scratch whose lane capacity covers
/// `|Q|·|V|` runs the whole batch without allocating arenas.
pub fn eval_product_batch_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    scratch: &mut EvalScratch,
) -> BatchResult {
    batch_wave_kernel(nfa, graph, sources, false, scratch)
}

/// Bit-parallel batched *backward* product BFS: for each target in
/// `targets`, compute `{o | target ∈ p(o, I)}` — all objects that reach the
/// target spelling a word of `L(p)`.
///
/// Takes the *already-reversed* automaton ([`Nfa::reverse`]) and runs the
/// same lane kernel as [`eval_product_batch_csr`] over the *reverse*
/// adjacency, with targets as the wave lanes: one reverse-row pass advances
/// every pending target at once, replacing the one-backward-BFS-per-target
/// loop of the default `Engine::eval_to_batch`. Per-target answer sets ride
/// the lane partition exactly as per-source sets do forward.
pub fn eval_product_to_batch_csr<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    targets: &[Oid],
) -> BatchResult {
    let mut scratch = EvalScratch::new();
    eval_product_to_batch_csr_with(reversed, graph, targets, &mut scratch)
}

/// [`eval_product_to_batch_csr`] with a caller-provided [`EvalScratch`]
/// (see [`eval_product_batch_csr_with`]).
pub fn eval_product_to_batch_csr_with<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    targets: &[Oid],
    scratch: &mut EvalScratch,
) -> BatchResult {
    batch_wave_kernel(reversed, graph, targets, true, scratch)
}

/// The shared wave kernel behind the forward and backward batched product
/// engines: waves of up to 64 lanes, one [`rpq_graph::bitset::LaneMatrix`]
/// cell per (state, node), adjacency direction selected by `reverse_adj`
/// (the automaton is taken as given — backward callers pass the reversed
/// NFA). All arenas come from `scratch`'s lane section.
fn batch_wave_kernel<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    reverse_adj: bool,
    scratch: &mut EvalScratch,
) -> BatchResult {
    let mut per_source: Vec<Vec<Oid>> = Vec::with_capacity(sources.len()); // alloc-ok: result value
    let mut stats = batch_wave_kernel_sink(
        nfa,
        graph,
        sources,
        reverse_adj,
        scratch,
        &mut |masks, _wave_start, wave_len| {
            collect_wave_answers(masks, wave_len, &mut per_source);
        },
    );
    stats.answers = per_source.iter().map(Vec::len).sum();
    BatchResult::from_per_source(per_source, stats)
}

/// The wave kernel proper, decoupled from the answer representation: after
/// each completed wave, `on_wave` receives the per-node lane masks (`masks[v]`
/// bit `l` set ⟺ wave source `wave_start + l` answers `v`), the wave's
/// starting index into `sources`, and the wave length. [`batch_wave_kernel`]
/// collects per-source answer lists; the matrix pass fills
/// [`MatrixResult`] rows directly from the same masks, and the set-valued
/// pair kernels ([`crate::pairset`]) turn them into (source, target)
/// bindings. The returned stats leave `answers` at 0 — the caller sets it
/// from its own representation.
pub(crate) fn batch_wave_kernel_sink<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    reverse_adj: bool,
    scratch: &mut EvalScratch,
    on_wave: &mut dyn FnMut(&[u64], usize, usize),
) -> EvalStats {
    let nq = nfa.num_states();
    let nv = graph.num_nodes();
    let covered = scratch.begin_batch(nq, nv);
    let gen = scratch.generation();
    let mut stats = EvalStats {
        scratch_reused: usize::from(covered),
        ..EvalStats::default()
    };
    let mut classes = 0usize;

    // Lane arenas from the scratch's batch section; the dense frontier
    // arenas double as the active/next-active cell sets.
    let reached = &mut scratch.reached;
    let frontier = &mut scratch.lanes_cur;
    let next = &mut scratch.lanes_next;
    let active = &mut scratch.dense;
    let next_active = &mut scratch.dense_b;
    let worklist = &mut scratch.worklist;

    for (wi, wave) in sources.chunks(64).enumerate() {
        reached.clear();
        frontier.clear();
        next.clear();
        active.clear();
        next_active.clear();
        scratch.answer_masks.fill(0);

        for (lane, &s) in wave.iter().enumerate() {
            let bit = 1u64 << lane;
            reached.or(nfa.start() as usize, s.index(), bit);
            frontier.or(nfa.start() as usize, s.index(), bit);
            active.state_mut(nfa.start() as usize).insert(s.index());
        }

        while !active.is_empty() {
            stats.frontier_peak = stats.frontier_peak.max(active.count());
            // ε-closure within the level: propagate new lane bits across
            // ε-edges until fixpoint (ε consumes no graph edge, so the
            // closure stays in the same BFS level).
            worklist.clear();
            for q in 0..nq {
                for v in active.state(q).iter_ones() {
                    worklist.push((q as StateId, v));
                }
            }
            while let Some((q, v)) = worklist.pop() {
                let m = frontier.get(q as usize, v);
                for &q2 in nfa.eps_transitions(q) {
                    let newbits = reached.or(q2 as usize, v, m);
                    if newbits != 0 {
                        frontier.or(q2 as usize, v, newbits);
                        active.state_mut(q2 as usize).insert(v);
                        worklist.push((q2, v));
                    }
                }
            }

            // Consume one graph edge per active cell: a row pass costs its
            // length once, no matter how many lanes ride the mask.
            for q in 0..nq {
                if active.state(q).is_empty() {
                    continue;
                }
                if scratch.state_marks[q] != gen {
                    scratch.state_marks[q] = gen;
                    classes += 1;
                }
                let accepting = nfa.is_accepting(q as StateId);
                for v in active.state(q).iter_ones() {
                    let m = frontier.take(q, v);
                    debug_assert_ne!(m, 0);
                    stats.pairs_visited += 1;
                    if accepting {
                        scratch.answer_masks[v] |= m;
                    }
                    for &(sym, q2) in nfa.transitions(q as StateId) {
                        let targets = if reverse_adj {
                            graph.rev(Oid(v as u32), sym)
                        } else {
                            graph.out(Oid(v as u32), sym)
                        };
                        stats.edges_scanned += targets.len();
                        for v2 in targets {
                            let newbits = reached.or(q2 as usize, v2.index(), m);
                            if newbits != 0 {
                                next.or(q2 as usize, v2.index(), newbits);
                                next_active.state_mut(q2 as usize).insert(v2.index());
                            }
                        }
                    }
                }
            }
            stats.push_levels += 1;

            // `frontier` is all-zero here: every nonzero cell was in
            // `active` and the edge step take()s each one, so the swap
            // alone leaves `next` ready for reuse — no O(states × nodes)
            // refill per level.
            frontier.swap_contents(next);
            active.swap(next_active);
            next_active.clear();
        }

        on_wave(&scratch.answer_masks[..nv], wi * 64, wave.len());
    }

    stats.classes_materialized = classes;
    stats
}

/// Bit-packed N×M reachability matrix: `reachable(i, j)` answers
/// `targets[j] ∈ p(sources[i], I)`. Produced in one bit-parallel pass by
/// the same wave kernel as [`eval_product_batch_csr`] — rows are filled
/// straight from the per-node lane masks, so the matrix costs no more than
/// the batched source evaluation plus one mask probe per (wave, target).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixResult {
    sources: Vec<Oid>,
    targets: Vec<Oid>,
    words_per_row: usize,
    bits: Vec<u64>,
    /// Aggregated work counters (`answers` counts set matrix cells).
    pub stats: EvalStats,
}

impl MatrixResult {
    /// An all-unreachable matrix over the given axes — the starting point
    /// for incremental fills (the controlled matrix path marks cells per
    /// completed source) and the zero-work result for statically empty
    /// queries.
    pub fn new(sources: Vec<Oid>, targets: Vec<Oid>) -> MatrixResult {
        let words_per_row = targets.len().div_ceil(64);
        let bits = vec![0u64; sources.len() * words_per_row]; // alloc-ok: result value
        MatrixResult {
            sources,
            targets,
            words_per_row,
            bits,
            stats: EvalStats::default(),
        }
    }

    /// Mark `(sources[i], targets[j])` reachable.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize) {
        self.bits[i * self.words_per_row + j / 64] |= 1u64 << (j % 64);
    }

    /// Does a path from `sources[i]` to `targets[j]` spell a query word?
    #[inline]
    pub fn reachable(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.words_per_row + j / 64] & (1u64 << (j % 64)) != 0
    }

    /// The row objects (path starts), in request order.
    pub fn sources(&self) -> &[Oid] {
        &self.sources
    }

    /// The column objects (path ends), in request order.
    pub fn targets(&self) -> &[Oid] {
        &self.targets
    }

    /// Number of reachable `(source, target)` cells.
    pub fn reachable_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The transposed matrix (`sources` and `targets` swap roles) — used
    /// by planners that run the reversed automaton from the smaller side
    /// and flip the result back.
    pub fn transposed(&self) -> MatrixResult {
        let mut t = MatrixResult::new(self.targets.clone(), self.sources.clone());
        for i in 0..self.sources.len() {
            for j in 0..self.targets.len() {
                if self.reachable(i, j) {
                    t.set(j, i);
                }
            }
        }
        t.stats = self.stats.clone();
        t
    }
}

/// N-source × M-target reachability matrix in one bit-parallel pass: runs
/// the lane wave kernel forward from `sources` and, after each wave, reads
/// each target's lane mask once — cell `(i, j)` is set iff lane `i` of its
/// wave answered `targets[j]`. Equivalent to M pair queries per source but
/// sharing every CSR row pass across the whole wave.
pub fn eval_product_matrix_csr<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    targets: &[Oid],
) -> MatrixResult {
    let mut scratch = EvalScratch::new();
    eval_product_matrix_csr_with(nfa, graph, sources, targets, &mut scratch)
}

/// [`eval_product_matrix_csr`] with a caller-provided [`EvalScratch`] — the
/// pooled hot-path form.
pub fn eval_product_matrix_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    targets: &[Oid],
    scratch: &mut EvalScratch,
) -> MatrixResult {
    let mut matrix = MatrixResult::new(sources.to_vec(), targets.to_vec()); // alloc-ok: result value
    let mut stats = batch_wave_kernel_sink(
        nfa,
        graph,
        sources,
        false,
        scratch,
        &mut |masks, wave_start, wave_len| {
            for (j, &t) in matrix.targets.iter().enumerate() {
                let mask = masks.get(t.index()).copied().unwrap_or(0);
                let mut m = mask & lane_mask(wave_len);
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    matrix.bits[(wave_start + lane) * matrix.words_per_row + j / 64] |=
                        1u64 << (j % 64);
                }
            }
        },
    );
    stats.answers = matrix.reachable_count();
    matrix.stats = stats;
    matrix
}

/// Mask covering the first `wave_len` lanes (`wave_len ≤ 64`).
#[inline]
pub(crate) fn lane_mask(wave_len: usize) -> u64 {
    if wave_len >= 64 {
        u64::MAX
    } else {
        (1u64 << wave_len) - 1
    }
}

/// Union-mode batched product BFS: one shared frontier — a [`NodeBitset`]
/// per NFA state — seeded with *all* sources, for callers that only need
/// `⋃ᵢ p(oᵢ, I)`. Work is that of a single BFS regardless of batch size.
pub fn eval_product_batch_union_csr<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
) -> BatchResult {
    let nq = nfa.num_states();
    let nv = graph.num_nodes();
    let mut stats = EvalStats::default();
    let mut state_touched = vec![false; nq]; // alloc-ok: union-mode arena, not pooled

    let mut reached = FrontierArena::new(nq, nv); // alloc-ok: union-mode arenas, not pooled
    let mut frontier = FrontierArena::new(nq, nv);
    let mut next = FrontierArena::new(nq, nv);
    let mut answer = NodeBitset::new(nv);

    for &s in sources {
        if reached.state_mut(nfa.start() as usize).insert(s.index()) {
            frontier.state_mut(nfa.start() as usize).insert(s.index());
        }
    }

    while !frontier.is_empty() {
        // ε-closure within the level.
        let mut worklist: Vec<(StateId, usize)> = Vec::new(); // alloc-ok: union-mode worklist
        for q in 0..nq {
            for v in frontier.state(q).iter_ones() {
                worklist.push((q as StateId, v));
            }
        }
        while let Some((q, v)) = worklist.pop() {
            for &q2 in nfa.eps_transitions(q) {
                if reached.state_mut(q2 as usize).insert(v) {
                    frontier.state_mut(q2 as usize).insert(v);
                    worklist.push((q2, v));
                }
            }
        }

        for (q, touched) in state_touched.iter_mut().enumerate() {
            if frontier.state(q).is_empty() {
                continue;
            }
            *touched = true;
            let accepting = nfa.is_accepting(q as StateId);
            for v in frontier.state(q).iter_ones() {
                stats.pairs_visited += 1;
                if accepting {
                    answer.insert(v);
                }
                for &(sym, q2) in nfa.transitions(q as StateId) {
                    let targets = graph.out(Oid(v as u32), sym);
                    stats.edges_scanned += targets.len();
                    for v2 in targets {
                        if reached.state_mut(q2 as usize).insert(v2.index()) {
                            next.state_mut(q2 as usize).insert(v2.index());
                        }
                    }
                }
            }
        }

        frontier.swap(&mut next);
        next.clear();
    }

    stats.classes_materialized = state_touched.iter().filter(|&&t| t).count();
    let union: Vec<Oid> = answer.iter_ones().map(|v| Oid(v as u32)).collect();
    stats.answers = union.len();
    BatchResult::union_only(union, stats)
}

/// Bit-parallel batched quotient-DFA search: the same lane-mask scheme as
/// [`eval_product_batch_csr`], but cells are `(quotient class, node)` with
/// classes lazily determinized through the subset interner shared with
/// [`crate::eval_quotient_dfa_csr`] (one subset step + memo probe per
/// distinct `(class, label)` for the whole batch, not per source).
pub fn eval_quotient_dfa_batch_csr<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
) -> BatchResult {
    let nv = graph.num_nodes();
    let mut stats = EvalStats::default();
    let mut interner = SubsetInterner::new(nfa);
    let mut per_source: Vec<Vec<Oid>> = Vec::with_capacity(sources.len());
    let mut classes_seen = 0usize;

    for wave in sources.chunks(64) {
        // Masks grow per class as lazy determinization discovers classes.
        let mut reached: Vec<Vec<u64>> = vec![vec![0; nv]]; // alloc-ok: lazily determinized class table
        let mut pending: Vec<Vec<u64>> = vec![vec![0; nv]]; // alloc-ok: lazily determinized class table
        let mut answer_masks = vec![0u64; nv]; // alloc-ok: quotient batch, not pooled
        let mut worklist: Vec<(usize, usize)> = Vec::new(); // alloc-ok: quotient batch worklist

        for (lane, &s) in wave.iter().enumerate() {
            let bit = 1u64 << lane;
            if reached[0][s.index()] & bit == 0 {
                reached[0][s.index()] |= bit;
                pending[0][s.index()] |= bit;
                worklist.push((0, s.index()));
            }
        }

        while let Some((c, v)) = worklist.pop() {
            let m = std::mem::take(&mut pending[c][v]);
            if m == 0 {
                continue; // already drained by an earlier pop
            }
            stats.pairs_visited += 1;
            if interner.accepting(c) {
                answer_masks[v] |= m;
            }
            for (label, targets) in graph.out_groups(Oid(v as u32)) {
                stats.edges_scanned += targets.len();
                let c2 = interner.step(c, label);
                if interner.is_dead(c2) {
                    continue;
                }
                while reached.len() < interner.len() {
                    reached.push(vec![0; nv]); // alloc-ok: class discovery grows the table
                    pending.push(vec![0; nv]); // alloc-ok: class discovery grows the table
                }
                for v2 in targets {
                    let newbits = m & !reached[c2][v2.index()];
                    if newbits != 0 {
                        reached[c2][v2.index()] |= newbits;
                        let was_idle = pending[c2][v2.index()] == 0;
                        pending[c2][v2.index()] |= newbits;
                        if was_idle {
                            worklist.push((c2, v2.index()));
                        }
                    }
                }
            }
        }

        collect_wave_answers(&answer_masks, wave.len(), &mut per_source);
        classes_seen = interner.len();
    }

    stats.classes_materialized = classes_seen;
    stats.answers = per_source.iter().map(Vec::len).sum();
    BatchResult::from_per_source(per_source, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, ProductEngine, Query};
    use rpq_automata::Alphabet;
    use rpq_graph::{CsrGraph, InstanceBuilder};

    fn diamond() -> (Alphabet, CsrGraph, Vec<Oid>) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s0", "a", "m");
        b.edge("s1", "a", "m");
        b.edge("s2", "a", "m");
        b.edge("m", "b", "t1");
        b.edge("t1", "b", "t2");
        b.edge("t2", "b", "t1");
        let (inst, names) = b.finish();
        let sources = vec![names["s0"], names["s1"], names["s2"], names["m"]];
        (ab, CsrGraph::from(&inst), sources)
    }

    #[test]
    fn batch_matches_per_source_loop() {
        let (mut ab, csr, sources) = diamond();
        for qs in ["a.b*", "b*", "(a+b)*", "a.b.b", "()", "[]"] {
            let query = Query::parse(&mut ab, qs).unwrap();
            let batch = eval_product_batch_csr(query.nfa(), &csr, &sources);
            let per = batch.per_source().unwrap();
            assert_eq!(per.len(), sources.len());
            for (i, &s) in sources.iter().enumerate() {
                let single = ProductEngine.eval(&query, &csr, s);
                assert_eq!(per[i], single.answers, "{qs} source {i}");
            }
        }
    }

    #[test]
    fn quotient_batch_matches_per_source_loop() {
        let (mut ab, csr, sources) = diamond();
        for qs in ["a.b*", "(a+b)*", "a.b.b", "()"] {
            let query = Query::parse(&mut ab, qs).unwrap();
            let batch = eval_quotient_dfa_batch_csr(query.nfa(), &csr, &sources);
            let per = batch.per_source().unwrap();
            for (i, &s) in sources.iter().enumerate() {
                let single = ProductEngine.eval(&query, &csr, s);
                assert_eq!(per[i], single.answers, "{qs} source {i}");
            }
        }
    }

    #[test]
    fn union_mode_matches_union_of_singles() {
        let (mut ab, csr, sources) = diamond();
        for qs in ["a.b*", "(a+b)*", "b.b"] {
            let query = Query::parse(&mut ab, qs).unwrap();
            let batch = eval_product_batch_union_csr(query.nfa(), &csr, &sources);
            assert!(batch.per_source().is_none());
            let mut expected: Vec<Oid> = sources
                .iter()
                .flat_map(|&s| ProductEngine.eval(&query, &csr, s).answers)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(batch.union(), &expected[..], "{qs}");
        }
    }

    #[test]
    fn shared_suffix_scans_fewer_edges_than_loop() {
        // N entry nodes funnel into one chain: the batch walks the chain
        // once, the loop N times.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        let n = 20;
        for i in 0..n {
            b.edge(&format!("e{i}"), "c", "x0");
        }
        for i in 0..30 {
            b.edge(&format!("x{i}"), "c", &format!("x{}", i + 1));
        }
        let (inst, names) = b.finish();
        let csr = CsrGraph::from(&inst);
        let sources: Vec<Oid> = (0..n).map(|i| names[format!("e{i}").as_str()]).collect();
        let query = Query::parse(&mut ab, "c*").unwrap();

        let batch = eval_product_batch_csr(query.nfa(), &csr, &sources);
        let loop_edges: usize = sources
            .iter()
            .map(|&s| ProductEngine.eval(&query, &csr, s).stats.edges_scanned)
            .sum();
        assert!(
            batch.stats.edges_scanned < loop_edges,
            "batch {} vs loop {}",
            batch.stats.edges_scanned,
            loop_edges
        );
        // every source sees the whole chain plus itself
        for per in batch.per_source().unwrap() {
            assert_eq!(per.len(), 32);
        }
    }

    #[test]
    fn more_than_64_sources_run_in_waves() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..70 {
            b.edge(&format!("s{i}"), "a", "hub");
        }
        b.edge("hub", "b", "t");
        let (inst, names) = b.finish();
        let csr = CsrGraph::from(&inst);
        let sources: Vec<Oid> = (0..70).map(|i| names[format!("s{i}").as_str()]).collect();
        let query = Query::parse(&mut ab, "a.b").unwrap();
        let batch = eval_product_batch_csr(query.nfa(), &csr, &sources);
        let t = names["t"];
        for per in batch.per_source().unwrap() {
            assert_eq!(per, &vec![t]);
        }
        assert_eq!(batch.union(), &[t]);
        assert_eq!(batch.stats.answers, 70);
    }

    #[test]
    fn empty_source_set_is_empty() {
        let (mut ab, csr, _) = diamond();
        let query = Query::parse(&mut ab, "a*").unwrap();
        let batch = eval_product_batch_csr(query.nfa(), &csr, &[]);
        assert!(batch.union().is_empty());
        assert_eq!(batch.per_source(), Some(&[][..]));
        let ub = eval_product_batch_union_csr(query.nfa(), &csr, &[]);
        assert!(ub.union().is_empty());
    }

    #[test]
    fn duplicate_sources_each_get_a_lane() {
        let (mut ab, csr, sources) = diamond();
        let query = Query::parse(&mut ab, "a.b*").unwrap();
        let dup = vec![sources[0], sources[0], sources[1]];
        let batch = eval_product_batch_csr(query.nfa(), &csr, &dup);
        let per = batch.per_source().unwrap();
        assert_eq!(per[0], per[1]);
    }
}
