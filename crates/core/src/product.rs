//! The product-automaton evaluation algorithm (Section 2.2).
//!
//! "A more economical approach is to construct the nfsa for p and carry
//! along the set of states of the nfsa corresponding to the path traveled so
//! far (basically, this constructs a portion of the product of the nfsa for
//! p and the instance I). The resulting algorithm has polynomial-time
//! combined data and query complexity and nlogspace data complexity."
//!
//! We track individual NFA states rather than state *sets*: a BFS over
//! reachable pairs `(q, v)` of automaton state × graph node. A node `v` is
//! an answer as soon as some reachable pair `(q, v)` has `q` accepting.
//! The pair space is `O(|Q| · |V|)` — the NLOGSPACE/NC bound's certificate.

use rpq_automata::{Nfa, StateId};
use rpq_graph::{Instance, Oid};

use crate::stats::EvalStats;

/// Result of an evaluation: sorted answers plus work counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalResult {
    /// The set `p(o, I)`, sorted by oid.
    pub answers: Vec<Oid>,
    /// Work counters.
    pub stats: EvalStats,
}

/// Evaluate `L(nfa)` from `source` over `instance` by product-automaton BFS.
pub fn eval_product(nfa: &Nfa, instance: &Instance, source: Oid) -> EvalResult {
    let nq = nfa.num_states();
    let nv = instance.num_nodes();
    let mut seen = vec![false; nq * nv];
    let mut answer = vec![false; nv];
    let mut state_touched = vec![false; nq];
    let mut stats = EvalStats::default();

    let mut queue: Vec<(StateId, Oid)> = Vec::new();
    let push = |q: StateId, v: Oid, seen: &mut Vec<bool>, queue: &mut Vec<(StateId, Oid)>| {
        let idx = q as usize * nv + v.index();
        if !seen[idx] {
            seen[idx] = true;
            queue.push((q, v));
        }
    };

    push(nfa.start(), source, &mut seen, &mut queue);
    while let Some((q, v)) = queue.pop() {
        stats.pairs_visited += 1;
        if !state_touched[q as usize] {
            state_touched[q as usize] = true;
        }
        if nfa.is_accepting(q) {
            answer[v.index()] = true;
        }
        // ε-moves advance the automaton without consuming an edge.
        for &q2 in nfa.eps_transitions(q) {
            push(q2, v, &mut seen, &mut queue);
        }
        for &(sym, q2) in nfa.transitions(q) {
            for &(label, v2) in instance.out_edges(v) {
                stats.edges_scanned += 1;
                if label == sym {
                    push(q2, v2, &mut seen, &mut queue);
                }
            }
        }
    }

    let answers: Vec<Oid> = instance.nodes().filter(|o| answer[o.index()]).collect();
    stats.answers = answers.len();
    stats.classes_materialized = state_touched.iter().filter(|&&t| t).count();
    EvalResult { answers, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::InstanceBuilder;

    fn eval(query: &str, edges: &[(&str, &str, &str)], src: &str) -> (Vec<String>, EvalStats) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for &(f, l, t) in edges {
            b.edge(f, l, t);
        }
        let (inst, names) = b.finish();
        let r = parse_regex(&mut ab, query).unwrap();
        let res = eval_product(&Nfa::thompson(&r), &inst, names[src]);
        let mut out: Vec<String> = res.answers.iter().map(|&o| inst.node_name(o)).collect();
        out.sort();
        (out, res.stats)
    }

    #[test]
    fn fig2_query_ab_star() {
        let edges = [("o1", "a", "o2"), ("o2", "b", "o3"), ("o3", "b", "o2")];
        let (ans, stats) = eval("a.b*", &edges, "o1");
        assert_eq!(ans, vec!["o2", "o3"]);
        assert_eq!(stats.answers, 2);
    }

    #[test]
    fn epsilon_query_returns_source() {
        let edges = [("s", "a", "x")];
        let (ans, _) = eval("()", &edges, "s");
        assert_eq!(ans, vec!["s"]);
        let (ans, _) = eval("a*", &edges, "s");
        assert_eq!(ans, vec!["s", "x"]);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let edges = [("s", "a", "x")];
        let (ans, _) = eval("[]", &edges, "s");
        assert!(ans.is_empty());
    }

    #[test]
    fn union_and_concat() {
        let edges = [
            ("s", "a", "x"),
            ("s", "b", "y"),
            ("x", "c", "z"),
            ("y", "c", "w"),
        ];
        let (ans, _) = eval("(a+b).c", &edges, "s");
        assert_eq!(ans, vec!["w", "z"]);
    }

    #[test]
    fn cycles_terminate() {
        let edges = [("s", "a", "s")];
        let (ans, stats) = eval("a*", &edges, "s");
        assert_eq!(ans, vec!["s"]);
        // pair space is finite even though the language is infinite
        assert!(stats.pairs_visited < 20);
    }

    #[test]
    fn unreachable_labels_are_ignored() {
        let edges = [("s", "a", "x"), ("q", "b", "r")];
        let (ans, _) = eval("a.b", &edges, "s");
        assert!(ans.is_empty());
        let (ans, _) = eval("a", &edges, "s");
        assert_eq!(ans, vec!["x"]);
    }

    #[test]
    fn diamond_dedups_answers() {
        let edges = [
            ("s", "a", "x"),
            ("s", "a", "y"),
            ("x", "b", "t"),
            ("y", "b", "t"),
        ];
        let (ans, _) = eval("a.b", &edges, "s");
        assert_eq!(ans, vec!["t"]);
    }

    #[test]
    fn nested_stars() {
        let edges = [
            ("s", "a", "x"),
            ("x", "b", "s"),
            ("x", "c", "t"),
        ];
        let (ans, _) = eval("(a.b)*.a.c", &edges, "s");
        assert_eq!(ans, vec!["t"]);
        let (ans, _) = eval("(a.b)*", &edges, "s");
        assert_eq!(ans, vec!["s"]);
    }
}
