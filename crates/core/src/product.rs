//! The product-automaton evaluation algorithm (Section 2.2).
//!
//! "A more economical approach is to construct the nfsa for p and carry
//! along the set of states of the nfsa corresponding to the path traveled so
//! far (basically, this constructs a portion of the product of the nfsa for
//! p and the instance I). The resulting algorithm has polynomial-time
//! combined data and query complexity and nlogspace data complexity."
//!
//! We track individual NFA states rather than state *sets*: a breadth-first
//! search over reachable pairs `(q, v)` of automaton state × graph node,
//! processed level by level (ε-moves stay within a level, since they consume
//! no edge). A node `v` is an answer as soon as some reachable pair `(q, v)`
//! has `q` accepting. The pair space is `O(|Q| · |V|)` — the NLOGSPACE/NC
//! bound's certificate.
//!
//! [`eval_product_csr`] is the primary entry point: it steps pairs through
//! the label-indexed [`CsrGraph`] (`graph.out(v, sym)` is a contiguous slice
//! of exactly the matching edges), so per-pair work is proportional to
//! *matching* edges rather than `outdegree × fanout`. [`eval_product`] is a
//! thin compatibility wrapper that snapshots an [`Instance`] first, and
//! [`eval_product_scan`] preserves the original scan-and-filter loop as the
//! measurable baseline (bench `t1_eval_scaling`, skewed workload).
//!
//! # Direction-optimizing expansion
//!
//! The paper fixes the *pair space*; how each BFS level sweeps it is ours
//! to optimize. Every level is expanded one of two ways
//! (Beamer-style direction-optimizing BFS, selected per level by
//! [`FrontierMode`]):
//!
//! * **push** (sparse): for each frontier pair `(q, v)` and transition
//!   `(sym, q2)`, scan the matching adjacency row — cost is exactly the sum
//!   of the frontier's row lengths;
//! * **pull** (dense): for each *unreached* pair `(q2, v2)`, merge-join the
//!   candidate node's opposite-direction label groups against the reversed
//!   transition table and probe the dense frontier bitmap, stopping at the
//!   first hit — cost is bounded by one probe per (edge, matching reverse
//!   transition), independent of frontier fan-out.
//!
//! Both strategies produce the identical next level (level k = pairs first
//! reached spelling k letters), so [`FrontierMode::Hybrid`] compares the
//! *exact* push cost (row lengths from the label index — no edge is
//! scanned to price a level) against a sound, monotonically shrinking pull
//! bound: it starts at Σ over labeled transitions of the label's edge
//! count and is debited by each newly reached pair's matching in-edge
//! count — a pull sweep only probes edges entering *unreached* pairs, so
//! the remainder always upper-bounds the probes. The chosen sweep's actual
//! scans never exceed the push price of the same level, hence hybrid never
//! scans more edges than forced sparse, and strictly fewer whenever a
//! high-fanout level re-scans rows whose targets are mostly reached (bench
//! `t15_hot_path`). All working memory comes from an [`EvalScratch`] arena
//! (generation-stamped marks, reusable frontiers) so repeated queries
//! allocate nothing after warm-up — see [`crate::scratch`].

use rpq_automata::{Nfa, StateId, Symbol};
use rpq_graph::{CsrGraph, GraphView, Instance, Oid};

use crate::request::{EvalControl, Termination};
use crate::scratch::EvalScratch;
use crate::stats::EvalStats;

/// How `product_search_with` expands each BFS level.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum FrontierMode {
    /// Choose push or pull per level from measured costs (the default),
    /// pricing the dense sweep with the calibrated
    /// [`PULL_SWEEP_DISCOUNT`].
    #[default]
    Hybrid,
    /// [`FrontierMode::Hybrid`] with an explicit pull-sweep discount
    /// divisor — the `rpq_optimizer::PlannerConfig::pull_sweep_discount`
    /// knob threaded down to the level pricer. Built with
    /// [`FrontierMode::hybrid_with_discount`].
    HybridTuned {
        /// Divisor for the dense sweep's O(|Q|·|V|) mark-table price
        /// (clamped to ≥ 1); larger values make pull sweeps fire earlier.
        pull_discount: usize,
    },
    /// Always sparse push expansion — the pre-optimization behavior, kept
    /// as the baseline the hybrid is asserted against (bench
    /// `t15_hot_path`).
    ForcedSparse,
    /// Always dense pull expansion — exercised by tests to pin that both
    /// sweeps answer identically.
    ForcedDense,
}

impl FrontierMode {
    /// Hybrid expansion with an explicit pull-sweep discount divisor.
    /// `hybrid_with_discount(PULL_SWEEP_DISCOUNT)` prices levels exactly
    /// like [`FrontierMode::Hybrid`].
    pub fn hybrid_with_discount(pull_discount: usize) -> FrontierMode {
        FrontierMode::HybridTuned {
            pull_discount: pull_discount.max(1),
        }
    }

    /// The pull-sweep discount divisor this mode prices dense sweeps with
    /// (the calibrated [`PULL_SWEEP_DISCOUNT`] unless tuned).
    pub fn pull_discount(self) -> usize {
        match self {
            FrontierMode::HybridTuned { pull_discount } => pull_discount.max(1),
            _ => PULL_SWEEP_DISCOUNT,
        }
    }
}

/// Divisor discounting the pull sweep's O(|Q|·|V|) mark-table reads against
/// edge probes when pricing a level: a contiguous `u32` read is far cheaper
/// than a label-group probe, but not free.
///
/// The default is *calibrated* against the per-class `push_levels` /
/// `pull_levels` telemetry the server's `Metrics` aggregate (see
/// `rpq_server::Metrics::suggest_pull_discount`): on the T15 saturating
/// workloads a divisor of 16 makes the switch fire on every
/// mostly-reached level while never pricing a sparse early level as
/// dense. Tune per deployment via
/// `rpq_optimizer::PlannerConfig::pull_sweep_discount`.
pub const PULL_SWEEP_DISCOUNT: usize = 16;

/// Result of an evaluation: sorted answers plus work counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalResult {
    /// The set `p(o, I)`, sorted by oid.
    pub answers: Vec<Oid>,
    /// Work counters.
    pub stats: EvalStats,
}

/// Shared finalization for bitmap-based engines (product, both quotient
/// variants): turn the answer bitmap into the sorted oid list and fill the
/// derived counters in one place.
pub(crate) fn finish_eval(
    answer: &[bool],
    classes_materialized: usize,
    mut stats: EvalStats,
) -> EvalResult {
    let answers: Vec<Oid> = answer
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(i, _)| Oid(i as u32))
        .collect();
    stats.answers = answers.len();
    stats.classes_materialized = classes_materialized;
    EvalResult { answers, stats }
}

/// Mark `(q, v)` seen (generation-stamped) and append it to `level` if it
/// was not already seen this generation. Returns whether the pair was
/// newly marked (first reach — the moment it stops being a pull
/// candidate).
#[inline]
fn push_sparse(
    q: StateId,
    v: Oid,
    nv: usize,
    gen: u32,
    seen: &mut [u32],
    level: &mut Vec<(StateId, Oid)>,
) -> bool {
    let idx = q as usize * nv + v.index();
    if seen[idx] != gen {
        seen[idx] = gen;
        level.push((q, v));
        true
    } else {
        false
    }
}

/// The shrinking upper bound on a pull sweep's probes: starts at Σ over
/// labeled transitions of the label's edge count and is debited by each
/// newly reached pair's [`pair_pull_probes`] — a pull level only probes
/// edges entering *unreached* pairs, so `remaining` always dominates its
/// actual scans.
pub(crate) struct PullBound {
    /// Tracking enabled — any mode that may run a pull sweep.
    pub(crate) active: bool,
    /// Probes remaining over unreached pairs.
    pub(crate) remaining: usize,
}

impl PullBound {
    #[inline]
    pub(crate) fn debit(&mut self, probes: usize) {
        if self.active {
            self.remaining = self.remaining.saturating_sub(probes);
        }
    }
}

/// The probes a pull sweep would spend on the unreached pair `(q, v)`: one
/// per (incoming edge under the expansion adjacency, matching reverse
/// transition). Priced from label-index row lengths — no edge is scanned.
#[inline]
pub(crate) fn pair_pull_probes<G: GraphView>(
    graph: &G,
    reverse_adj: bool,
    rev_trans: &[(Symbol, StateId)],
    rev_trans_off: &[usize],
    q: StateId,
    v: Oid,
) -> usize {
    let (lo, hi) = (rev_trans_off[q as usize], rev_trans_off[q as usize + 1]);
    let mut probes = 0usize;
    for &(sym, _) in &rev_trans[lo..hi] {
        let row = if reverse_adj {
            graph.out(v, sym)
        } else {
            graph.rev(v, sym)
        };
        probes += row.len();
    }
    probes
}

/// Sparse *push* expansion of one (ε-closed) level: scan each frontier
/// pair's matching adjacency rows and mark/enqueue unseen targets.
///
/// With a `budget`, the check runs *before* each row scan, so
/// `stats.edges_scanned` never exceeds the budget; returns `true` when the
/// budget tripped (the level is then partially expanded and the caller
/// terminates the search).
#[allow(clippy::too_many_arguments)]
fn push_level<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    reverse_adj: bool,
    nv: usize,
    gen: u32,
    scratch: &mut EvalScratch,
    stats: &mut EvalStats,
    bound: &mut PullBound,
    budget: Option<usize>,
) -> bool {
    for &(q, v) in &scratch.frontier {
        for &(sym, q2) in nfa.transitions(q) {
            let targets = if reverse_adj {
                graph.rev(v, sym)
            } else {
                graph.out(v, sym)
            };
            if budget.is_some_and(|b| stats.edges_scanned + targets.len() > b) {
                return true;
            }
            stats.edges_scanned += targets.len();
            for v2 in targets {
                if push_sparse(q2, v2, nv, gen, &mut scratch.seen, &mut scratch.next)
                    && bound.active
                {
                    bound.debit(pair_pull_probes(
                        graph,
                        reverse_adj,
                        &scratch.rev_trans,
                        &scratch.rev_trans_off,
                        q2,
                        v2,
                    ));
                }
            }
        }
    }
    false
}

/// Dense *pull* expansion of one (ε-closed) level: for every unreached
/// pair `(q2, v2)`, merge-join the candidate's opposite-direction label
/// groups against the reversed transition table and probe the densified
/// frontier, stopping at the first hit. Produces exactly the same next
/// level as [`push_level`]; `edges_scanned` counts probed endpoints only.
///
/// With a `budget`, every probe is pre-checked so `stats.edges_scanned`
/// never exceeds it; returns `true` when the budget tripped (the dense
/// arena is still left clean for the next search).
#[allow(clippy::too_many_arguments)]
fn pull_level<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    reverse_adj: bool,
    nv: usize,
    gen: u32,
    scratch: &mut EvalScratch,
    stats: &mut EvalStats,
    bound: &mut PullBound,
    budget: Option<usize>,
) -> bool {
    let nq = nfa.num_states();
    let mut tripped = false;
    // Densify the current frontier for O(1) membership probes.
    for &(q, v) in &scratch.frontier {
        scratch.dense.state_mut(q as usize).insert(v.index());
    }
    'sweep: for q2 in 0..nq {
        let (lo, hi) = (scratch.rev_trans_off[q2], scratch.rev_trans_off[q2 + 1]);
        if lo == hi {
            continue; // no labeled transition enters q2
        }
        let seg = &scratch.rev_trans[lo..hi];
        for vi in 0..nv {
            if scratch.seen[q2 * nv + vi] == gen {
                continue;
            }
            let candidate = Oid(vi as u32);
            // The candidate's in-edges under the expansion adjacency — the
            // *opposite* orientation of the push step.
            let groups = if reverse_adj {
                graph.out_groups(candidate)
            } else {
                graph.rev_groups(candidate)
            };
            let mut si = 0usize;
            'probe: for (sym, edges) in groups {
                while si < seg.len() && seg[si].0 < sym {
                    si += 1;
                }
                if si == seg.len() {
                    break;
                }
                let mut sj = si;
                while sj < seg.len() && seg[sj].0 == sym {
                    sj += 1;
                }
                if sj == si {
                    continue;
                }
                for u in edges {
                    for &(_, qsrc) in &seg[si..sj] {
                        if budget.is_some_and(|b| stats.edges_scanned >= b) {
                            tripped = true;
                            break 'sweep;
                        }
                        stats.edges_scanned += 1;
                        if scratch.dense.state(qsrc as usize).contains(u.index()) {
                            scratch.seen[q2 * nv + vi] = gen;
                            scratch.next.push((q2 as StateId, candidate));
                            bound.debit(pair_pull_probes(
                                graph,
                                reverse_adj,
                                &scratch.rev_trans,
                                &scratch.rev_trans_off,
                                q2 as StateId,
                                candidate,
                            ));
                            break 'probe;
                        }
                    }
                }
            }
        }
    }
    // Leave the dense arena clean for the next level / next search (O(1)
    // per untouched state thanks to the maintained bit counts).
    scratch.dense.clear();
    tripped
}

/// The level-synchronous product BFS shared by the forward, backward, and
/// early-exit pair entry points, generic over any [`GraphView`] (the
/// immutable CSR snapshot or the delta overlay). `reverse_adj` selects
/// which adjacency each labeled step traverses ([`GraphView::out`] vs
/// [`GraphView::rev`]); the automaton is taken as given, so backward
/// callers pass the *reversed* NFA. With `stop_at`, the search returns as
/// soon as that node becomes an answer (the answer list is then partial —
/// pair callers consume only the flag and the stats). With `depth_cap`, BFS
/// levels beyond the cap are never expanded: sound and complete whenever
/// the cap is at least the length of the automaton's longest accepted word
/// (level k holds exactly the pairs first reached by spelling k letters),
/// which is how the planner evaluates finite-language queries without
/// paying for graph cycles the automaton cannot follow to acceptance.
///
/// `mode` selects the per-level expansion strategy (see [`FrontierMode`]);
/// all working memory comes from `scratch`, which is resized/invalidated
/// here and can be reused across calls of any `(|Q|, |V|)` shape.
///
/// `control` carries the serving-layer execution controls: the
/// cancellation flag is checked once per BFS level, and the
/// `edges_scanned` budget is enforced *before* every row scan / probe
/// inside the level sweeps, so the returned stats always satisfy
/// `edges_scanned ≤ budget`. Answers collected before an early
/// termination are a sound subset (a node is only reported once an
/// accepting pair is actually reached); the third return value says
/// whether the search ran to exhaustion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn product_search_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    reverse_adj: bool,
    stop_at: Option<Oid>,
    depth_cap: Option<usize>,
    mode: FrontierMode,
    control: &EvalControl,
    scratch: &mut EvalScratch,
) -> (EvalResult, bool, Termination) {
    let nq = nfa.num_states();
    let nv = graph.num_nodes();
    debug_assert!(source.index() < nv.max(1), "source must be a graph node");
    let covered = scratch.begin(nq, nv);
    let mut stats = EvalStats {
        scratch_reused: usize::from(covered),
        ..EvalStats::default()
    };
    let gen = scratch.generation();
    let mut found = false;
    let mut termination = Termination::Complete;
    let mut classes = 0usize;

    // Pull machinery: the reversed transition table, plus the shrinking
    // probe bound — each graph edge labeled `sym` is tested at most once
    // per reverse transition carrying `sym` *and only while its target
    // pair is unreached*, so the bound starts at Σ over labeled
    // transitions of edge_count(label) and is debited as pairs are
    // reached. The O(|Q|·|V|) unreached-candidate sweep is priced
    // separately (discounted: contiguous mark reads, not edge probes).
    let mut bound = PullBound {
        active: mode != FrontierMode::ForcedSparse,
        remaining: 0,
    };
    let sweep_cost = (nq * nv) / mode.pull_discount();
    if bound.active {
        scratch.build_rev_trans(nfa);
        let gstats = graph.stats();
        let mut total = 0usize;
        for q in 0..nq {
            for &(sym, _) in nfa.transitions(q as StateId) {
                total = total.saturating_add(gstats.edge_count(sym));
            }
        }
        bound.remaining = total;
    }

    if nv > 0
        && push_sparse(
            nfa.start(),
            source,
            nv,
            gen,
            &mut scratch.seen,
            &mut scratch.frontier,
        )
        && bound.active
    {
        bound.debit(pair_pull_probes(
            graph,
            reverse_adj,
            &scratch.rev_trans,
            &scratch.rev_trans_off,
            nfa.start(),
            source,
        ));
    }

    let mut depth = 0usize;
    'bfs: while !scratch.frontier.is_empty() {
        // Cooperative cancellation: one relaxed flag read per BFS level.
        if control.cancelled() {
            termination = Termination::Cancelled;
            break 'bfs;
        }
        // ε-closure inside the level: ε-moves advance the automaton without
        // consuming an edge, so their targets belong to the same BFS level.
        let mut i = 0;
        while i < scratch.frontier.len() {
            let (q, v) = scratch.frontier[i];
            i += 1;
            for &q2 in nfa.eps_transitions(q) {
                if push_sparse(q2, v, nv, gen, &mut scratch.seen, &mut scratch.frontier)
                    && bound.active
                {
                    bound.debit(pair_pull_probes(
                        graph,
                        reverse_adj,
                        &scratch.rev_trans,
                        &scratch.rev_trans_off,
                        q2,
                        v,
                    ));
                }
            }
        }
        stats.frontier_peak = stats.frontier_peak.max(scratch.frontier.len());

        // Answer/accept pass over the closed level.
        for &(q, v) in &scratch.frontier {
            stats.pairs_visited += 1;
            if scratch.state_marks[q as usize] != gen {
                scratch.state_marks[q as usize] = gen;
                classes += 1;
            }
            if nfa.is_accepting(q) && scratch.answer_marks[v.index()] != gen {
                scratch.answer_marks[v.index()] = gen;
                scratch.answers.push(v);
                if stop_at == Some(v) {
                    found = true;
                    break 'bfs;
                }
            }
        }

        // Level `depth` holds pairs first reachable by spelling `depth`
        // letters; at the cap no longer word can be accepted, so the pairs
        // are answer-checked above but never expanded — graph edges beyond
        // the cap are not even scanned.
        if depth_cap.is_some_and(|cap| depth >= cap) {
            break 'bfs;
        }

        // Consume one graph edge per pair: both sweeps produce exactly the
        // pairs first reachable by spelling `depth + 1` letters.
        let use_pull = match mode {
            FrontierMode::ForcedSparse => false,
            FrontierMode::ForcedDense => true,
            FrontierMode::Hybrid | FrontierMode::HybridTuned { .. } => {
                // Exact cost push would pay for this level: row lengths
                // from the label index — no edge is scanned to price it.
                let mut push_cost = 0usize;
                for &(q, v) in &scratch.frontier {
                    for &(sym, _) in nfa.transitions(q) {
                        let row = if reverse_adj {
                            graph.rev(v, sym)
                        } else {
                            graph.out(v, sym)
                        };
                        push_cost = push_cost.saturating_add(row.len());
                    }
                }
                // Pull's probes are bounded by the remaining unreached
                // mass; both sweeps produce the same level, so taking the
                // cheaper one keeps hybrid ≤ forced-sparse everywhere.
                sweep_cost.saturating_add(bound.remaining) < push_cost
            }
        };
        let tripped = if use_pull {
            stats.pull_levels += 1;
            pull_level(
                nfa,
                graph,
                reverse_adj,
                nv,
                gen,
                scratch,
                &mut stats,
                &mut bound,
                control.budget,
            )
        } else {
            stats.push_levels += 1;
            push_level(
                nfa,
                graph,
                reverse_adj,
                nv,
                gen,
                scratch,
                &mut stats,
                &mut bound,
                control.budget,
            )
        };
        if tripped {
            // The level is partially expanded; everything already answered
            // stays sound, the rest of the search is abandoned.
            termination = Termination::BudgetExhausted;
            scratch.next.clear();
            break 'bfs;
        }

        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        scratch.next.clear();
        depth += 1;
    }

    // Answers were collected sparsely during the BFS — sort instead of
    // sweeping all |V| nodes.
    scratch.answers.sort_unstable();
    stats.answers = scratch.answers.len();
    stats.classes_materialized = classes;
    let answers = std::mem::take(&mut scratch.answers);
    (EvalResult { answers, stats }, found, termination)
}

/// `product_search_with` with a fresh arena, the default hybrid mode, and
/// no execution controls — the form used by the one-shot entry points
/// below (pooled callers pass their own warm scratch).
pub(crate) fn product_search<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    reverse_adj: bool,
    stop_at: Option<Oid>,
    depth_cap: Option<usize>,
) -> (EvalResult, bool) {
    let mut scratch = EvalScratch::new();
    let (res, found, _) = product_search_with(
        nfa,
        graph,
        source,
        reverse_adj,
        stop_at,
        depth_cap,
        FrontierMode::Hybrid,
        &EvalControl::UNLIMITED,
        &mut scratch,
    );
    (res, found)
}

/// Evaluate `L(nfa)` from `source` over a label-indexed snapshot by
/// frontier-based product BFS. `stats.edges_scanned` counts only the edges
/// actually delivered by the label index — on label-skewed graphs this is a
/// small fraction of what the scan-and-filter baseline touches.
///
/// Generic over any [`GraphView`]: the `_csr` suffix names the canonical
/// snapshot form, but the same search runs unchanged over a
/// `rpq_graph::DeltaGraph` overlay.
pub fn eval_product_csr<G: GraphView>(nfa: &Nfa, graph: &G, source: Oid) -> EvalResult {
    product_search(nfa, graph, source, false, None, None).0
}

/// [`eval_product_csr`] with an explicit [`FrontierMode`] and a
/// caller-provided [`EvalScratch`] — the pooled hot-path form: a warm
/// scratch whose capacity covers `|Q|·|V|` makes the whole evaluation
/// allocation-free (reported via `stats.scratch_reused`).
pub fn eval_product_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    mode: FrontierMode,
    scratch: &mut EvalScratch,
) -> EvalResult {
    product_search_with(
        nfa,
        graph,
        source,
        false,
        None,
        None,
        mode,
        &EvalControl::UNLIMITED,
        scratch,
    )
    .0
}

/// [`eval_product_csr_with`] under serving-layer execution controls: an
/// `edges_scanned` budget and a cooperative cancellation flag
/// ([`EvalControl`]), plus an optional BFS depth cap. Returns the (sound,
/// possibly partial) answer set together with how the search ended — the
/// kernel behind controlled [`crate::EvalRequest`]s.
pub fn eval_product_controlled_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    depth_cap: Option<usize>,
    mode: FrontierMode,
    control: &EvalControl,
    scratch: &mut EvalScratch,
) -> (EvalResult, Termination) {
    let (res, _, term) = product_search_with(
        nfa, graph, source, false, None, depth_cap, mode, control, scratch,
    );
    (res, term)
}

/// The backward (already-reversed automaton, reverse adjacency) form of
/// [`eval_product_controlled_csr_with`] — the controlled kernel for
/// target-bound requests.
pub fn eval_product_backward_controlled_reversed_csr_with<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    target: Oid,
    depth_cap: Option<usize>,
    mode: FrontierMode,
    control: &EvalControl,
    scratch: &mut EvalScratch,
) -> (EvalResult, Termination) {
    let (res, _, term) = product_search_with(
        reversed, graph, target, true, None, depth_cap, mode, control, scratch,
    );
    (res, term)
}

/// [`eval_product_csr`] with a BFS depth cap: levels beyond `depth_cap`
/// are never expanded (their graph edges are not even scanned). Sound and
/// complete whenever `depth_cap ≥` the length of the longest word of
/// `L(nfa)` ([`rpq_automata::Nfa::longest_accepted_len`]) — the planner's
/// finite-language fast path: a finite query on a cyclic graph stops at
/// its exact word-length bound instead of saturating the pair space.
pub fn eval_product_bounded_csr<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    depth_cap: usize,
) -> EvalResult {
    product_search(nfa, graph, source, false, None, Some(depth_cap)).0
}

/// [`eval_product_bounded_csr`] with an explicit mode and caller-provided
/// scratch (see [`eval_product_csr_with`]).
pub fn eval_product_bounded_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    depth_cap: usize,
    mode: FrontierMode,
    scratch: &mut EvalScratch,
) -> EvalResult {
    product_search_with(
        nfa,
        graph,
        source,
        false,
        None,
        Some(depth_cap),
        mode,
        &EvalControl::UNLIMITED,
        scratch,
    )
    .0
}

/// The backward ([`eval_product_backward_reversed_csr`]) form of
/// [`eval_product_bounded_csr`]: already-reversed automaton, reverse
/// adjacency, capped depth.
pub fn eval_product_bounded_backward_reversed_csr<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    target: Oid,
    depth_cap: usize,
) -> EvalResult {
    product_search(reversed, graph, target, true, None, Some(depth_cap)).0
}

/// [`eval_product_bounded_backward_reversed_csr`] with an explicit mode and
/// caller-provided scratch (see [`eval_product_csr_with`]).
pub fn eval_product_bounded_backward_reversed_csr_with<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    target: Oid,
    depth_cap: usize,
    mode: FrontierMode,
    scratch: &mut EvalScratch,
) -> EvalResult {
    product_search_with(
        reversed,
        graph,
        target,
        true,
        None,
        Some(depth_cap),
        mode,
        &EvalControl::UNLIMITED,
        scratch,
    )
    .0
}

/// The target-bound evaluation `{o | target ∈ p(o, I)}`: all objects that
/// reach `target` by a path spelling a word of `L(nfa)`.
///
/// Runs the same frontier BFS as [`eval_product_csr`], but with the
/// *reversed* automaton ([`Nfa::reverse`]) over the *reverse* CSR adjacency
/// ([`CsrGraph::rev`]): a path `o →…→ target` spells `w ∈ L(p)` exactly
/// when the transposed path `target →…→ o` spells `reverse(w) ∈
/// L(reverse(p))`. Work is therefore proportional to edges matching the
/// query's *last* label groups first — on graphs where those are rare this
/// beats enumerating forward from every candidate source by orders of
/// magnitude (bench `t12_direction_choice`).
pub fn eval_product_backward_csr<G: GraphView>(nfa: &Nfa, graph: &G, target: Oid) -> EvalResult {
    eval_product_backward_reversed_csr(&nfa.reverse(), graph, target)
}

/// As [`eval_product_backward_csr`], but taking the *already-reversed*
/// automaton — for callers that cache [`Nfa::reverse`] across repeated
/// backward evaluations (e.g. the planner's compiled plans).
pub fn eval_product_backward_reversed_csr<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    target: Oid,
) -> EvalResult {
    product_search(reversed, graph, target, true, None, None).0
}

/// [`eval_product_backward_reversed_csr`] with an explicit mode and
/// caller-provided scratch (see [`eval_product_csr_with`]).
pub fn eval_product_backward_reversed_csr_with<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    target: Oid,
    mode: FrontierMode,
    scratch: &mut EvalScratch,
) -> EvalResult {
    product_search_with(
        reversed,
        graph,
        target,
        true,
        None,
        None,
        mode,
        &EvalControl::UNLIMITED,
        scratch,
    )
    .0
}

/// Evaluate `L(nfa)` from `source` over `instance`.
///
/// Compatibility wrapper: snapshots the instance into a [`CsrGraph`] and
/// runs [`eval_product_csr`]. Callers evaluating many queries over one
/// graph should build the snapshot once and use the CSR entry point (or the
/// `Engine` trait) directly.
pub fn eval_product(nfa: &Nfa, instance: &Instance, source: Oid) -> EvalResult {
    eval_product_csr(nfa, &CsrGraph::from(instance), source)
}

/// The original scan-and-filter product search, kept as the baseline the
/// label index is measured against: for every pair and every automaton
/// transition it scans the node's *entire* out-edge list and filters by
/// label, so `stats.edges_scanned` grows with `outdegree × fanout`.
pub fn eval_product_scan(nfa: &Nfa, instance: &Instance, source: Oid) -> EvalResult {
    fn push_scan(
        q: StateId,
        v: Oid,
        nv: usize,
        seen: &mut [bool],
        queue: &mut Vec<(StateId, Oid)>,
    ) {
        let idx = q as usize * nv + v.index();
        if !seen[idx] {
            seen[idx] = true;
            queue.push((q, v));
        }
    }

    let nq = nfa.num_states();
    let nv = instance.num_nodes();
    let mut seen = vec![false; nq * nv]; // alloc-ok: scan baseline, measured against — not a hot path
    let mut answer = vec![false; nv]; // alloc-ok: scan baseline
    let mut state_touched = vec![false; nq]; // alloc-ok: scan baseline
    let mut stats = EvalStats::default();

    let mut queue: Vec<(StateId, Oid)> = Vec::new(); // alloc-ok: scan baseline
    push_scan(nfa.start(), source, nv, &mut seen, &mut queue);
    while let Some((q, v)) = queue.pop() {
        stats.pairs_visited += 1;
        state_touched[q as usize] = true;
        if nfa.is_accepting(q) {
            answer[v.index()] = true;
        }
        for &q2 in nfa.eps_transitions(q) {
            push_scan(q2, v, nv, &mut seen, &mut queue);
        }
        for &(sym, q2) in nfa.transitions(q) {
            for &(label, v2) in instance.out_edges(v) {
                stats.edges_scanned += 1;
                if label == sym {
                    push_scan(q2, v2, nv, &mut seen, &mut queue);
                }
            }
        }
    }

    let classes = state_touched.iter().filter(|&&t| t).count();
    finish_eval(&answer, classes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::InstanceBuilder;

    fn eval(query: &str, edges: &[(&str, &str, &str)], src: &str) -> (Vec<String>, EvalStats) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for &(f, l, t) in edges {
            b.edge(f, l, t);
        }
        let (inst, names) = b.finish();
        let r = parse_regex(&mut ab, query).unwrap();
        let res = eval_product(&Nfa::thompson(&r), &inst, names[src]);
        let scan = eval_product_scan(&Nfa::thompson(&r), &inst, names[src]);
        assert_eq!(res.answers, scan.answers, "csr vs scan baseline on {query}");
        let mut out: Vec<String> = res.answers.iter().map(|&o| inst.node_name(o)).collect();
        out.sort();
        (out, res.stats)
    }

    #[test]
    fn fig2_query_ab_star() {
        let edges = [("o1", "a", "o2"), ("o2", "b", "o3"), ("o3", "b", "o2")];
        let (ans, stats) = eval("a.b*", &edges, "o1");
        assert_eq!(ans, vec!["o2", "o3"]);
        assert_eq!(stats.answers, 2);
    }

    #[test]
    fn epsilon_query_returns_source() {
        let edges = [("s", "a", "x")];
        let (ans, _) = eval("()", &edges, "s");
        assert_eq!(ans, vec!["s"]);
        let (ans, _) = eval("a*", &edges, "s");
        assert_eq!(ans, vec!["s", "x"]);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let edges = [("s", "a", "x")];
        let (ans, _) = eval("[]", &edges, "s");
        assert!(ans.is_empty());
    }

    #[test]
    fn union_and_concat() {
        let edges = [
            ("s", "a", "x"),
            ("s", "b", "y"),
            ("x", "c", "z"),
            ("y", "c", "w"),
        ];
        let (ans, _) = eval("(a+b).c", &edges, "s");
        assert_eq!(ans, vec!["w", "z"]);
    }

    #[test]
    fn cycles_terminate() {
        let edges = [("s", "a", "s")];
        let (ans, stats) = eval("a*", &edges, "s");
        assert_eq!(ans, vec!["s"]);
        // pair space is finite even though the language is infinite
        assert!(stats.pairs_visited < 20);
    }

    #[test]
    fn unreachable_labels_are_ignored() {
        let edges = [("s", "a", "x"), ("q", "b", "r")];
        let (ans, _) = eval("a.b", &edges, "s");
        assert!(ans.is_empty());
        let (ans, _) = eval("a", &edges, "s");
        assert_eq!(ans, vec!["x"]);
    }

    #[test]
    fn diamond_dedups_answers() {
        let edges = [
            ("s", "a", "x"),
            ("s", "a", "y"),
            ("x", "b", "t"),
            ("y", "b", "t"),
        ];
        let (ans, _) = eval("a.b", &edges, "s");
        assert_eq!(ans, vec!["t"]);
    }

    #[test]
    fn nested_stars() {
        let edges = [("s", "a", "x"), ("x", "b", "s"), ("x", "c", "t")];
        let (ans, _) = eval("(a.b)*.a.c", &edges, "s");
        assert_eq!(ans, vec!["t"]);
        let (ans, _) = eval("(a.b)*", &edges, "s");
        assert_eq!(ans, vec!["s"]);
    }

    #[test]
    fn bfs_levels_are_word_lengths() {
        // a chain: the pair (state, n_k) is first reached at level k, so
        // pairs_visited equals the number of distinct reachable pairs and
        // every node is answered despite the single pass per level.
        let edges = [
            ("n0", "a", "n1"),
            ("n1", "a", "n2"),
            ("n2", "a", "n3"),
            ("n3", "a", "n4"),
        ];
        let (ans, _) = eval("a*", &edges, "n0");
        assert_eq!(ans, vec!["n0", "n1", "n2", "n3", "n4"]);
    }

    #[test]
    fn backward_is_the_transpose_of_forward() {
        // t ∈ p(s, I)  ⟺  s ∈ backward(t): check the full relation on a
        // graph with cycles, a diamond, and an ε-accepting query.
        let edges = [
            ("o1", "a", "o2"),
            ("o2", "b", "o3"),
            ("o3", "b", "o2"),
            ("o1", "b", "o3"),
            ("o3", "a", "o1"),
        ];
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for &(f, l, t) in &edges {
            b.edge(f, l, t);
        }
        let (inst, _) = b.finish();
        let csr = CsrGraph::from(&inst);
        for qs in ["a.b*", "(a+b)*", "b.b", "()", "[]", "(a.b)*.a"] {
            let r = parse_regex(&mut ab, qs).unwrap();
            let nfa = Nfa::thompson(&r);
            let forward: Vec<Vec<Oid>> = csr
                .nodes()
                .map(|s| eval_product_csr(&nfa, &csr, s).answers)
                .collect();
            for t in csr.nodes() {
                let backward = eval_product_backward_csr(&nfa, &csr, t).answers;
                for s in csr.nodes() {
                    assert_eq!(
                        forward[s.index()].contains(&t),
                        backward.contains(&s),
                        "{qs}: {s:?} -> {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn backward_scans_fewer_edges_when_last_label_is_rare() {
        // hub fans out 50 hot edges; exactly one cold edge enters t. The
        // query hot.cold evaluated backward from t starts on the rare label.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..50 {
            b.edge("hub", "hot", &format!("h{i}"));
        }
        b.edge("h0", "cold", "t");
        let (inst, names) = b.finish();
        let csr = CsrGraph::from(&inst);
        let q = parse_regex(&mut ab, "hot.cold").unwrap();
        let nfa = Nfa::thompson(&q);
        let fwd = eval_product_csr(&nfa, &csr, names["hub"]);
        let bwd = eval_product_backward_csr(&nfa, &csr, names["t"]);
        assert_eq!(fwd.answers, vec![names["t"]]);
        assert_eq!(bwd.answers, vec![names["hub"]]);
        assert!(
            bwd.stats.edges_scanned * 10 < fwd.stats.edges_scanned,
            "backward {} vs forward {}",
            bwd.stats.edges_scanned,
            fwd.stats.edges_scanned
        );
    }

    #[test]
    fn bounded_search_is_exact_at_the_word_length_cap() {
        // cyclic graph, finite query a.a + a.b (longest word: 2). The cap
        // stops the BFS at depth 2 without losing answers, and scans
        // strictly fewer edges than the uncapped search on the cycle.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "x");
        b.edge("x", "a", "s");
        b.edge("x", "b", "t");
        b.edge("t", "a", "s");
        let (inst, names) = b.finish();
        let csr = CsrGraph::from(&inst);
        let r = parse_regex(&mut ab, "a.a + a.b").unwrap();
        let nfa = Nfa::thompson(&r);
        assert_eq!(nfa.longest_accepted_len(), Some(2));
        let full = eval_product_csr(&nfa, &csr, names["s"]);
        let capped = eval_product_bounded_csr(&nfa, &csr, names["s"], 2);
        assert_eq!(capped.answers, full.answers);
        // a cap below the longest word is allowed but incomplete — the
        // planner never does this; documented here as the contract edge
        let short = eval_product_bounded_csr(&nfa, &csr, names["s"], 1);
        assert!(short.answers.len() <= full.answers.len());
        // backward form agrees with the uncapped backward search
        let rev = nfa.reverse();
        let bwd_full = eval_product_backward_reversed_csr(&rev, &csr, names["t"]);
        let bwd_capped = eval_product_bounded_backward_reversed_csr(&rev, &csr, names["t"], 2);
        assert_eq!(bwd_capped.answers, bwd_full.answers);
    }

    #[test]
    fn label_index_scans_fewer_edges_on_skew() {
        // one hub with many hot-label edges; the query follows the cold label
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..50 {
            b.edge("hub", "hot", &format!("h{i}"));
        }
        b.edge("hub", "cold", "t");
        let (inst, names) = b.finish();
        let q = parse_regex(&mut ab, "cold").unwrap();
        let nfa = Nfa::thompson(&q);
        let csr = eval_product_csr(&nfa, &CsrGraph::from(&inst), names["hub"]);
        let scan = eval_product_scan(&nfa, &inst, names["hub"]);
        assert_eq!(csr.answers, scan.answers);
        assert!(
            csr.stats.edges_scanned * 10 < scan.stats.edges_scanned,
            "label index {} vs scan {}",
            csr.stats.edges_scanned,
            scan.stats.edges_scanned
        );
    }
}
