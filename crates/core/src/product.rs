//! The product-automaton evaluation algorithm (Section 2.2).
//!
//! "A more economical approach is to construct the nfsa for p and carry
//! along the set of states of the nfsa corresponding to the path traveled so
//! far (basically, this constructs a portion of the product of the nfsa for
//! p and the instance I). The resulting algorithm has polynomial-time
//! combined data and query complexity and nlogspace data complexity."
//!
//! We track individual NFA states rather than state *sets*: a breadth-first
//! search over reachable pairs `(q, v)` of automaton state × graph node,
//! processed level by level (ε-moves stay within a level, since they consume
//! no edge). A node `v` is an answer as soon as some reachable pair `(q, v)`
//! has `q` accepting. The pair space is `O(|Q| · |V|)` — the NLOGSPACE/NC
//! bound's certificate.
//!
//! [`eval_product_csr`] is the primary entry point: it steps pairs through
//! the label-indexed [`CsrGraph`] (`graph.out(v, sym)` is a contiguous slice
//! of exactly the matching edges), so per-pair work is proportional to
//! *matching* edges rather than `outdegree × fanout`. [`eval_product`] is a
//! thin compatibility wrapper that snapshots an [`Instance`] first, and
//! [`eval_product_scan`] preserves the original scan-and-filter loop as the
//! measurable baseline (bench `t1_eval_scaling`, skewed workload).

use rpq_automata::{Nfa, StateId};
use rpq_graph::{CsrGraph, GraphView, Instance, Oid};

use crate::stats::EvalStats;

/// Result of an evaluation: sorted answers plus work counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalResult {
    /// The set `p(o, I)`, sorted by oid.
    pub answers: Vec<Oid>,
    /// Work counters.
    pub stats: EvalStats,
}

/// Shared finalization for bitmap-based engines (product, both quotient
/// variants): turn the answer bitmap into the sorted oid list and fill the
/// derived counters in one place.
pub(crate) fn finish_eval(
    answer: &[bool],
    classes_materialized: usize,
    mut stats: EvalStats,
) -> EvalResult {
    let answers: Vec<Oid> = answer
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(i, _)| Oid(i as u32))
        .collect();
    stats.answers = answers.len();
    stats.classes_materialized = classes_materialized;
    EvalResult { answers, stats }
}

fn push(q: StateId, v: Oid, nv: usize, seen: &mut [bool], level: &mut Vec<(StateId, Oid)>) {
    let idx = q as usize * nv + v.index();
    if !seen[idx] {
        seen[idx] = true;
        level.push((q, v));
    }
}

/// The level-synchronous product BFS shared by the forward, backward, and
/// early-exit pair entry points, generic over any [`GraphView`] (the
/// immutable CSR snapshot or the delta overlay). `reverse_adj` selects
/// which adjacency each labeled step traverses ([`GraphView::out`] vs
/// [`GraphView::rev`]); the automaton is taken as given, so backward
/// callers pass the *reversed* NFA. With `stop_at`, the search returns as
/// soon as that node becomes an answer (the answer bitmap is then partial —
/// pair callers consume only the flag and the stats). With `depth_cap`, BFS
/// levels beyond the cap are never expanded: sound and complete whenever
/// the cap is at least the length of the automaton's longest accepted word
/// (level k holds exactly the pairs first reached by spelling k letters),
/// which is how the planner evaluates finite-language queries without
/// paying for graph cycles the automaton cannot follow to acceptance.
pub(crate) fn product_search<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    reverse_adj: bool,
    stop_at: Option<Oid>,
    depth_cap: Option<usize>,
) -> (EvalResult, bool) {
    let nq = nfa.num_states();
    let nv = graph.num_nodes();
    let mut seen = vec![false; nq * nv];
    let mut answer = vec![false; nv];
    let mut state_touched = vec![false; nq];
    let mut stats = EvalStats::default();
    let mut found = false;

    let mut frontier: Vec<(StateId, Oid)> = Vec::new();
    let mut next: Vec<(StateId, Oid)> = Vec::new();
    push(nfa.start(), source, nv, &mut seen, &mut frontier);

    let mut depth = 0usize;
    'bfs: while !frontier.is_empty() {
        // ε-closure inside the level: ε-moves advance the automaton without
        // consuming an edge, so their targets belong to the same BFS level.
        let mut i = 0;
        while i < frontier.len() {
            let (q, v) = frontier[i];
            i += 1;
            for &q2 in nfa.eps_transitions(q) {
                push(q2, v, nv, &mut seen, &mut frontier);
            }
        }
        // Consume one graph edge per pair: level k holds exactly the pairs
        // first reachable by spelling k letters.
        for &(q, v) in &frontier {
            stats.pairs_visited += 1;
            state_touched[q as usize] = true;
            if nfa.is_accepting(q) {
                answer[v.index()] = true;
                if stop_at == Some(v) {
                    found = true;
                    break 'bfs;
                }
            }
            // Level `depth` holds pairs first reachable by spelling `depth`
            // letters; at the cap no longer word can be accepted, so the
            // pairs are answer-checked above but never expanded — graph
            // edges beyond the cap are not even scanned.
            if depth_cap.is_some_and(|cap| depth >= cap) {
                continue;
            }
            for &(sym, q2) in nfa.transitions(q) {
                let targets = if reverse_adj {
                    graph.rev(v, sym)
                } else {
                    graph.out(v, sym)
                };
                stats.edges_scanned += targets.len();
                for v2 in targets {
                    push(q2, v2, nv, &mut seen, &mut next);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
        depth += 1;
    }

    let classes = state_touched.iter().filter(|&&t| t).count();
    (finish_eval(&answer, classes, stats), found)
}

/// Evaluate `L(nfa)` from `source` over a label-indexed snapshot by
/// frontier-based product BFS. `stats.edges_scanned` counts only the edges
/// actually delivered by the label index — on label-skewed graphs this is a
/// small fraction of what the scan-and-filter baseline touches.
///
/// Generic over any [`GraphView`]: the `_csr` suffix names the canonical
/// snapshot form, but the same search runs unchanged over a
/// `rpq_graph::DeltaGraph` overlay.
pub fn eval_product_csr<G: GraphView>(nfa: &Nfa, graph: &G, source: Oid) -> EvalResult {
    product_search(nfa, graph, source, false, None, None).0
}

/// [`eval_product_csr`] with a BFS depth cap: levels beyond `depth_cap`
/// are never expanded (their graph edges are not even scanned). Sound and
/// complete whenever `depth_cap ≥` the length of the longest word of
/// `L(nfa)` ([`rpq_automata::Nfa::longest_accepted_len`]) — the planner's
/// finite-language fast path: a finite query on a cyclic graph stops at
/// its exact word-length bound instead of saturating the pair space.
pub fn eval_product_bounded_csr<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    depth_cap: usize,
) -> EvalResult {
    product_search(nfa, graph, source, false, None, Some(depth_cap)).0
}

/// The backward ([`eval_product_backward_reversed_csr`]) form of
/// [`eval_product_bounded_csr`]: already-reversed automaton, reverse
/// adjacency, capped depth.
pub fn eval_product_bounded_backward_reversed_csr<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    target: Oid,
    depth_cap: usize,
) -> EvalResult {
    product_search(reversed, graph, target, true, None, Some(depth_cap)).0
}

/// The target-bound evaluation `{o | target ∈ p(o, I)}`: all objects that
/// reach `target` by a path spelling a word of `L(nfa)`.
///
/// Runs the same frontier BFS as [`eval_product_csr`], but with the
/// *reversed* automaton ([`Nfa::reverse`]) over the *reverse* CSR adjacency
/// ([`CsrGraph::rev`]): a path `o →…→ target` spells `w ∈ L(p)` exactly
/// when the transposed path `target →…→ o` spells `reverse(w) ∈
/// L(reverse(p))`. Work is therefore proportional to edges matching the
/// query's *last* label groups first — on graphs where those are rare this
/// beats enumerating forward from every candidate source by orders of
/// magnitude (bench `t12_direction_choice`).
pub fn eval_product_backward_csr<G: GraphView>(nfa: &Nfa, graph: &G, target: Oid) -> EvalResult {
    eval_product_backward_reversed_csr(&nfa.reverse(), graph, target)
}

/// As [`eval_product_backward_csr`], but taking the *already-reversed*
/// automaton — for callers that cache [`Nfa::reverse`] across repeated
/// backward evaluations (e.g. the planner's compiled plans).
pub fn eval_product_backward_reversed_csr<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    target: Oid,
) -> EvalResult {
    product_search(reversed, graph, target, true, None, None).0
}

/// Evaluate `L(nfa)` from `source` over `instance`.
///
/// Compatibility wrapper: snapshots the instance into a [`CsrGraph`] and
/// runs [`eval_product_csr`]. Callers evaluating many queries over one
/// graph should build the snapshot once and use the CSR entry point (or the
/// `Engine` trait) directly.
pub fn eval_product(nfa: &Nfa, instance: &Instance, source: Oid) -> EvalResult {
    eval_product_csr(nfa, &CsrGraph::from(instance), source)
}

/// The original scan-and-filter product search, kept as the baseline the
/// label index is measured against: for every pair and every automaton
/// transition it scans the node's *entire* out-edge list and filters by
/// label, so `stats.edges_scanned` grows with `outdegree × fanout`.
pub fn eval_product_scan(nfa: &Nfa, instance: &Instance, source: Oid) -> EvalResult {
    let nq = nfa.num_states();
    let nv = instance.num_nodes();
    let mut seen = vec![false; nq * nv];
    let mut answer = vec![false; nv];
    let mut state_touched = vec![false; nq];
    let mut stats = EvalStats::default();

    let mut queue: Vec<(StateId, Oid)> = Vec::new();
    push(nfa.start(), source, nv, &mut seen, &mut queue);
    while let Some((q, v)) = queue.pop() {
        stats.pairs_visited += 1;
        state_touched[q as usize] = true;
        if nfa.is_accepting(q) {
            answer[v.index()] = true;
        }
        for &q2 in nfa.eps_transitions(q) {
            push(q2, v, nv, &mut seen, &mut queue);
        }
        for &(sym, q2) in nfa.transitions(q) {
            for &(label, v2) in instance.out_edges(v) {
                stats.edges_scanned += 1;
                if label == sym {
                    push(q2, v2, nv, &mut seen, &mut queue);
                }
            }
        }
    }

    let classes = state_touched.iter().filter(|&&t| t).count();
    finish_eval(&answer, classes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::InstanceBuilder;

    fn eval(query: &str, edges: &[(&str, &str, &str)], src: &str) -> (Vec<String>, EvalStats) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for &(f, l, t) in edges {
            b.edge(f, l, t);
        }
        let (inst, names) = b.finish();
        let r = parse_regex(&mut ab, query).unwrap();
        let res = eval_product(&Nfa::thompson(&r), &inst, names[src]);
        let scan = eval_product_scan(&Nfa::thompson(&r), &inst, names[src]);
        assert_eq!(res.answers, scan.answers, "csr vs scan baseline on {query}");
        let mut out: Vec<String> = res.answers.iter().map(|&o| inst.node_name(o)).collect();
        out.sort();
        (out, res.stats)
    }

    #[test]
    fn fig2_query_ab_star() {
        let edges = [("o1", "a", "o2"), ("o2", "b", "o3"), ("o3", "b", "o2")];
        let (ans, stats) = eval("a.b*", &edges, "o1");
        assert_eq!(ans, vec!["o2", "o3"]);
        assert_eq!(stats.answers, 2);
    }

    #[test]
    fn epsilon_query_returns_source() {
        let edges = [("s", "a", "x")];
        let (ans, _) = eval("()", &edges, "s");
        assert_eq!(ans, vec!["s"]);
        let (ans, _) = eval("a*", &edges, "s");
        assert_eq!(ans, vec!["s", "x"]);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let edges = [("s", "a", "x")];
        let (ans, _) = eval("[]", &edges, "s");
        assert!(ans.is_empty());
    }

    #[test]
    fn union_and_concat() {
        let edges = [
            ("s", "a", "x"),
            ("s", "b", "y"),
            ("x", "c", "z"),
            ("y", "c", "w"),
        ];
        let (ans, _) = eval("(a+b).c", &edges, "s");
        assert_eq!(ans, vec!["w", "z"]);
    }

    #[test]
    fn cycles_terminate() {
        let edges = [("s", "a", "s")];
        let (ans, stats) = eval("a*", &edges, "s");
        assert_eq!(ans, vec!["s"]);
        // pair space is finite even though the language is infinite
        assert!(stats.pairs_visited < 20);
    }

    #[test]
    fn unreachable_labels_are_ignored() {
        let edges = [("s", "a", "x"), ("q", "b", "r")];
        let (ans, _) = eval("a.b", &edges, "s");
        assert!(ans.is_empty());
        let (ans, _) = eval("a", &edges, "s");
        assert_eq!(ans, vec!["x"]);
    }

    #[test]
    fn diamond_dedups_answers() {
        let edges = [
            ("s", "a", "x"),
            ("s", "a", "y"),
            ("x", "b", "t"),
            ("y", "b", "t"),
        ];
        let (ans, _) = eval("a.b", &edges, "s");
        assert_eq!(ans, vec!["t"]);
    }

    #[test]
    fn nested_stars() {
        let edges = [("s", "a", "x"), ("x", "b", "s"), ("x", "c", "t")];
        let (ans, _) = eval("(a.b)*.a.c", &edges, "s");
        assert_eq!(ans, vec!["t"]);
        let (ans, _) = eval("(a.b)*", &edges, "s");
        assert_eq!(ans, vec!["s"]);
    }

    #[test]
    fn bfs_levels_are_word_lengths() {
        // a chain: the pair (state, n_k) is first reached at level k, so
        // pairs_visited equals the number of distinct reachable pairs and
        // every node is answered despite the single pass per level.
        let edges = [
            ("n0", "a", "n1"),
            ("n1", "a", "n2"),
            ("n2", "a", "n3"),
            ("n3", "a", "n4"),
        ];
        let (ans, _) = eval("a*", &edges, "n0");
        assert_eq!(ans, vec!["n0", "n1", "n2", "n3", "n4"]);
    }

    #[test]
    fn backward_is_the_transpose_of_forward() {
        // t ∈ p(s, I)  ⟺  s ∈ backward(t): check the full relation on a
        // graph with cycles, a diamond, and an ε-accepting query.
        let edges = [
            ("o1", "a", "o2"),
            ("o2", "b", "o3"),
            ("o3", "b", "o2"),
            ("o1", "b", "o3"),
            ("o3", "a", "o1"),
        ];
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for &(f, l, t) in &edges {
            b.edge(f, l, t);
        }
        let (inst, _) = b.finish();
        let csr = CsrGraph::from(&inst);
        for qs in ["a.b*", "(a+b)*", "b.b", "()", "[]", "(a.b)*.a"] {
            let r = parse_regex(&mut ab, qs).unwrap();
            let nfa = Nfa::thompson(&r);
            let forward: Vec<Vec<Oid>> = csr
                .nodes()
                .map(|s| eval_product_csr(&nfa, &csr, s).answers)
                .collect();
            for t in csr.nodes() {
                let backward = eval_product_backward_csr(&nfa, &csr, t).answers;
                for s in csr.nodes() {
                    assert_eq!(
                        forward[s.index()].contains(&t),
                        backward.contains(&s),
                        "{qs}: {s:?} -> {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn backward_scans_fewer_edges_when_last_label_is_rare() {
        // hub fans out 50 hot edges; exactly one cold edge enters t. The
        // query hot.cold evaluated backward from t starts on the rare label.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..50 {
            b.edge("hub", "hot", &format!("h{i}"));
        }
        b.edge("h0", "cold", "t");
        let (inst, names) = b.finish();
        let csr = CsrGraph::from(&inst);
        let q = parse_regex(&mut ab, "hot.cold").unwrap();
        let nfa = Nfa::thompson(&q);
        let fwd = eval_product_csr(&nfa, &csr, names["hub"]);
        let bwd = eval_product_backward_csr(&nfa, &csr, names["t"]);
        assert_eq!(fwd.answers, vec![names["t"]]);
        assert_eq!(bwd.answers, vec![names["hub"]]);
        assert!(
            bwd.stats.edges_scanned * 10 < fwd.stats.edges_scanned,
            "backward {} vs forward {}",
            bwd.stats.edges_scanned,
            fwd.stats.edges_scanned
        );
    }

    #[test]
    fn bounded_search_is_exact_at_the_word_length_cap() {
        // cyclic graph, finite query a.a + a.b (longest word: 2). The cap
        // stops the BFS at depth 2 without losing answers, and scans
        // strictly fewer edges than the uncapped search on the cycle.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "x");
        b.edge("x", "a", "s");
        b.edge("x", "b", "t");
        b.edge("t", "a", "s");
        let (inst, names) = b.finish();
        let csr = CsrGraph::from(&inst);
        let r = parse_regex(&mut ab, "a.a + a.b").unwrap();
        let nfa = Nfa::thompson(&r);
        assert_eq!(nfa.longest_accepted_len(), Some(2));
        let full = eval_product_csr(&nfa, &csr, names["s"]);
        let capped = eval_product_bounded_csr(&nfa, &csr, names["s"], 2);
        assert_eq!(capped.answers, full.answers);
        // a cap below the longest word is allowed but incomplete — the
        // planner never does this; documented here as the contract edge
        let short = eval_product_bounded_csr(&nfa, &csr, names["s"], 1);
        assert!(short.answers.len() <= full.answers.len());
        // backward form agrees with the uncapped backward search
        let rev = nfa.reverse();
        let bwd_full = eval_product_backward_reversed_csr(&rev, &csr, names["t"]);
        let bwd_capped = eval_product_bounded_backward_reversed_csr(&rev, &csr, names["t"], 2);
        assert_eq!(bwd_capped.answers, bwd_full.answers);
    }

    #[test]
    fn label_index_scans_fewer_edges_on_skew() {
        // one hub with many hot-label edges; the query follows the cold label
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..50 {
            b.edge("hub", "hot", &format!("h{i}"));
        }
        b.edge("hub", "cold", "t");
        let (inst, names) = b.finish();
        let q = parse_regex(&mut ab, "cold").unwrap();
        let nfa = Nfa::thompson(&q);
        let csr = eval_product_csr(&nfa, &CsrGraph::from(&inst), names["hub"]);
        let scan = eval_product_scan(&nfa, &inst, names["hub"]);
        assert_eq!(csr.answers, scan.answers);
        assert!(
            csr.stats.edges_scanned * 10 < scan.stats.edges_scanned,
            "label index {} vs scan {}",
            csr.stats.edges_scanned,
            scan.stats.edges_scanned
        );
    }
}
