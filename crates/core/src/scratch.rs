//! Reusable evaluation scratch: generation-stamped mark tables, frontier
//! buffers, and a checkout pool — the zero-allocation backbone of the
//! serving hot path.
//!
//! Every product-BFS entry point needs an O(|Q|·|V|) `seen` table, an
//! O(|V|) answer table, and a handful of frontier buffers. Allocating and
//! zeroing them per query dominates small queries on the million-query
//! serving workload, so this module factors all of it into one
//! [`EvalScratch`] arena that is
//!
//! * **generation-stamped** — the mark tables store a `u32` generation
//!   instead of a `bool`, so "reset everything" is one counter bump
//!   (`EvalScratch::begin`) rather than an `O(|Q|·|V|)` `fill(false)`;
//! * **capacity-retaining** — buffers only ever grow, so a warm scratch
//!   serves any query whose `(|Q|, |V|)` shape fits without touching the
//!   allocator;
//! * **poolable** — a [`ScratchPool`] hands out warm arenas across threads
//!   (`rpq_optimizer::PlannedEngine` and the distributed batch engine both
//!   keep one), returning them on drop of the [`PooledScratch`] guard.
//!
//! The `EvalStats::scratch_reused` counter reports, per evaluation, whether
//! the arena's capacity already covered the query shape (1) or had to grow
//! (0) — the observable currency of the "zero allocations after warm-up"
//! claim, asserted by bench `t15_hot_path`.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use parking_lot::Mutex;
use rpq_automata::{Nfa, StateId, Symbol};
use rpq_graph::{FrontierArena, LaneMatrix, Oid};

/// Default upper bound on arenas parked in a [`ScratchPool`]; checkouts
/// beyond the bound under contention allocate fresh arenas that are dropped
/// on return. Engines configured for intra-query parallelism scale the
/// bound up with [`ScratchPool::with_capacity`] — a pool smaller than
/// `workers × concurrent queries` thrashes (every checkout past the bound
/// is a cold alloc).
const MAX_POOLED: usize = 8;

/// Reusable per-evaluation working memory for the product-BFS family
/// (single-source/target search, pair search, and the bit-parallel batch
/// kernels). See the module docs for the design; obtain one with
/// [`EvalScratch::new`] or from a [`ScratchPool`].
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Current mark generation; a mark-table cell is "set" iff it equals
    /// this. Bumped once per `EvalScratch::begin`.
    gen: u32,
    /// (state, node) seen marks, indexed `q * nv + v` with the *current*
    /// query's `nv` (stale marks from other geometries are just stale
    /// generations).
    pub(crate) seen: Vec<u32>,
    /// Per-node answer marks (generation-stamped).
    pub(crate) answer_marks: Vec<u32>,
    /// Per-state touched marks (generation-stamped) — feeds
    /// `classes_materialized`.
    pub(crate) state_marks: Vec<u32>,
    /// Sparse frontier of the current BFS level.
    pub(crate) frontier: Vec<(StateId, Oid)>,
    /// Sparse frontier of the next BFS level.
    pub(crate) next: Vec<(StateId, Oid)>,
    /// Second sparse frontier — the backward side of the pair search.
    pub(crate) frontier_b: Vec<(StateId, Oid)>,
    /// Answers collected sparsely during the BFS (sorted at finish), so no
    /// O(|V|) sweep is needed to produce the result.
    pub(crate) answers: Vec<Oid>,
    /// Dense per-state node sets: the pull step's frontier bitmap, the pair
    /// search's forward seen set, and the batch kernel's active set.
    pub(crate) dense: FrontierArena,
    /// Second dense arena: the pair search's backward seen set and the
    /// batch kernel's next-active set.
    pub(crate) dense_b: FrontierArena,
    /// Reversed-NFA transition table for the pull step, flattened: segment
    /// `rev_trans_off[q2]..rev_trans_off[q2 + 1]` lists the `(symbol,
    /// source-state)` pairs with a `source --symbol--> q2` transition,
    /// sorted by symbol for the merge-join against a node's label groups.
    pub(crate) rev_trans: Vec<(Symbol, StateId)>,
    /// Segment offsets into `rev_trans`, length `nq + 1`.
    pub(crate) rev_trans_off: Vec<usize>,
    /// Cursor buffer for the counting-sort build of `rev_trans`.
    rev_cursor: Vec<usize>,
    /// Batch kernel: lanes reached per (state, node).
    pub(crate) reached: LaneMatrix,
    /// Batch kernel: current-level lane frontier.
    pub(crate) lanes_cur: LaneMatrix,
    /// Batch kernel: next-level lane frontier.
    pub(crate) lanes_next: LaneMatrix,
    /// Batch kernel: per-node accepted-lane masks for the current wave.
    pub(crate) answer_masks: Vec<u64>,
    /// Batch kernel: ε-closure worklist of (state, node-index) cells.
    pub(crate) worklist: Vec<(StateId, usize)>,
    /// Atomic (state, node) seen marks for the frontier-parallel product
    /// search, indexed `q * nv + v` like `seen`. Generation-stamped with
    /// the *same* generation counter; a worker claims a pair with one
    /// `swap(gen)` — first marker wins, losers see their own gen back.
    /// Sized lazily by [`EvalScratch::begin_parallel`]; empty for
    /// sequential-only arenas.
    pub(crate) par_seen: Vec<AtomicU32>,
    /// Parallel-section capacity (the atomic seen table).
    par_nq: usize,
    /// Parallel-section capacity (the atomic seen table).
    par_nv: usize,
    /// Core-section capacity (mark tables, dense arenas).
    cap_nq: usize,
    /// Core-section capacity (mark tables, dense arenas).
    cap_nv: usize,
    /// Lane-section capacity (the three lane matrices + answer masks).
    lane_nq: usize,
    /// Lane-section capacity (the three lane matrices + answer masks).
    lane_nv: usize,
}

impl EvalScratch {
    /// An empty arena; the first `EvalScratch::begin` sizes it.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }

    /// Does the core capacity already cover a `(states, nodes)` query
    /// shape? When true, `EvalScratch::begin` for that shape performs no
    /// allocation.
    pub fn covers(&self, nq: usize, nv: usize) -> bool {
        nq <= self.cap_nq && nv <= self.cap_nv
    }

    /// Does the lane capacity (batch kernels) also cover the shape?
    pub fn covers_lanes(&self, nq: usize, nv: usize) -> bool {
        nq <= self.lane_nq && nv <= self.lane_nv
    }

    /// The current mark generation (valid between `begin` and the next
    /// `begin`).
    #[inline]
    pub(crate) fn generation(&self) -> u32 {
        self.gen
    }

    /// Start a fresh single-search evaluation over a `(nq, nv)` shape:
    /// grow the core buffers if needed, invalidate all marks by bumping the
    /// generation, and clear the sparse buffers. Returns `true` when the
    /// existing capacity already covered the shape — i.e. this call touched
    /// no allocator (the `scratch_reused` signal).
    pub(crate) fn begin(&mut self, nq: usize, nv: usize) -> bool {
        let covered = self.covers(nq, nv);
        if !covered {
            self.grow_core(nq, nv);
        }
        self.bump_gen();
        self.frontier.clear();
        self.next.clear();
        self.frontier_b.clear();
        self.answers.clear();
        // The dense arenas are cleared by their users after each level, so
        // these are O(states) no-ops unless a search was abandoned mid-way.
        self.dense.clear();
        self.dense_b.clear();
        covered
    }

    /// `EvalScratch::begin` for the bit-parallel batch kernels, which
    /// additionally need the lane matrices sized. The lane matrices are
    /// *not* cleared here — the kernel clears them per 64-lane wave.
    pub(crate) fn begin_batch(&mut self, nq: usize, nv: usize) -> bool {
        let covered = self.begin(nq, nv) & self.covers_lanes(nq, nv);
        if !self.covers_lanes(nq, nv) {
            let new_nq = nq.max(self.lane_nq);
            let new_nv = nv.max(self.lane_nv);
            self.reached = LaneMatrix::new(new_nq, new_nv);
            self.lanes_cur = LaneMatrix::new(new_nq, new_nv);
            self.lanes_next = LaneMatrix::new(new_nq, new_nv);
            self.answer_masks.resize(new_nv, 0);
            self.lane_nq = new_nq;
            self.lane_nv = new_nv;
        }
        self.worklist.clear();
        covered
    }

    /// `EvalScratch::begin` for the frontier-parallel product search, which
    /// additionally needs the atomic `par_seen` table sized. Returns `true`
    /// when no allocation was needed (core *and* parallel capacity both
    /// covered the shape).
    pub(crate) fn begin_parallel(&mut self, nq: usize, nv: usize) -> bool {
        let par_covered = nq <= self.par_nq && nv <= self.par_nv;
        let covered = self.begin(nq, nv) & par_covered;
        if !par_covered {
            let new_nq = nq.max(self.par_nq);
            let new_nv = nv.max(self.par_nv);
            self.par_seen.clear();
            // Fresh cells hold 0: never "set", the generation is >= 1.
            self.par_seen
                .resize_with(new_nq * new_nv, || AtomicU32::new(0));
            self.par_nq = new_nq;
            self.par_nv = new_nv;
        }
        covered
    }

    fn grow_core(&mut self, nq: usize, nv: usize) {
        let new_nq = nq.max(self.cap_nq);
        let new_nv = nv.max(self.cap_nv);
        // Fresh tables start at generation 0 with all marks 0: never "set",
        // because the generation is bumped to >= 1 before any use.
        self.seen.clear();
        self.seen.resize(new_nq * new_nv, 0);
        self.answer_marks.clear();
        self.answer_marks.resize(new_nv, 0);
        self.state_marks.clear();
        self.state_marks.resize(new_nq, 0);
        self.dense = FrontierArena::new(new_nq, new_nv);
        self.dense_b = FrontierArena::new(new_nq, new_nv);
        self.gen = 0;
        self.cap_nq = new_nq;
        self.cap_nv = new_nv;
    }

    fn bump_gen(&mut self) {
        if self.gen == u32::MAX {
            // Generation wrap (once per 2^32 - 1 evaluations): zero every
            // mark so stale cells cannot collide with the restarted counter.
            self.seen.fill(0);
            self.answer_marks.fill(0);
            self.state_marks.fill(0);
            for cell in &self.par_seen {
                cell.store(0, Ordering::Relaxed);
            }
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// Build the reversed transition table for `nfa` into
    /// `rev_trans`/`rev_trans_off` (counting sort, then an in-place
    /// per-segment sort by symbol). Allocation-free once the buffers are
    /// warm.
    pub(crate) fn build_rev_trans(&mut self, nfa: &Nfa) {
        let nq = nfa.num_states();
        self.rev_trans_off.clear();
        self.rev_trans_off.resize(nq + 1, 0);
        for q in 0..nq {
            for &(_, q2) in nfa.transitions(q as StateId) {
                self.rev_trans_off[q2 as usize + 1] += 1;
            }
        }
        for i in 0..nq {
            self.rev_trans_off[i + 1] += self.rev_trans_off[i];
        }
        self.rev_trans.clear();
        self.rev_trans
            .resize(self.rev_trans_off[nq], (Symbol::from_index(0), 0));
        self.rev_cursor.clear();
        self.rev_cursor.extend_from_slice(&self.rev_trans_off[..nq]);
        for q in 0..nq {
            for &(sym, q2) in nfa.transitions(q as StateId) {
                let slot = self.rev_cursor[q2 as usize];
                self.rev_trans[slot] = (sym, q as StateId);
                self.rev_cursor[q2 as usize] += 1;
            }
        }
        for q2 in 0..nq {
            let (lo, hi) = (self.rev_trans_off[q2], self.rev_trans_off[q2 + 1]);
            self.rev_trans[lo..hi].sort_unstable_by_key(|&(sym, _)| sym);
        }
    }
}

/// A thread-safe pool of warm [`EvalScratch`] arenas. Engines that serve
/// repeated queries ([`crate::Engine`] implementors with a hot path) check
/// an arena out per evaluation and return it on drop; after warm-up every
/// checkout reuses retained capacity, so the BFS inner loops never touch
/// the allocator.
#[derive(Debug)]
pub struct ScratchPool {
    pool: Mutex<Vec<EvalScratch>>,
    max_pooled: usize,
    reuses: AtomicUsize,
    allocs: AtomicUsize,
}

impl Default for ScratchPool {
    fn default() -> ScratchPool {
        ScratchPool::with_capacity(MAX_POOLED)
    }
}

impl ScratchPool {
    /// An empty pool with the default parking bound.
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// An empty pool that parks up to `capacity` warm arenas. Engines
    /// running the frontier-parallel kernels size this as
    /// `workers × expected concurrency` (never below the default bound):
    /// every parallel worker checks out its own arena, so a pool sized for
    /// sequential serving thrashes the moment big queries fan out.
    pub fn with_capacity(capacity: usize) -> ScratchPool {
        ScratchPool {
            pool: Mutex::new(Vec::new()),
            max_pooled: capacity.max(1),
            reuses: AtomicUsize::new(0),
            allocs: AtomicUsize::new(0),
        }
    }

    /// The most arenas this pool will park.
    pub fn capacity(&self) -> usize {
        self.max_pooled
    }

    /// Check out an arena: a warm one if the pool has any, a fresh empty
    /// one otherwise. The returned guard derefs to [`EvalScratch`] and
    /// returns the arena to the pool when dropped.
    pub fn checkout(&self) -> PooledScratch<'_> {
        let warm = self.pool.lock().pop();
        match warm {
            Some(inner) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                PooledScratch { inner, pool: self }
            }
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                PooledScratch {
                    inner: EvalScratch::new(),
                    pool: self,
                }
            }
        }
    }

    /// Checkouts that popped a warm arena.
    pub fn reuses(&self) -> usize {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Checkouts that had to construct a fresh arena (pool empty).
    pub fn allocs(&self) -> usize {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Arenas currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.pool.lock().len()
    }

    fn put(&self, scratch: EvalScratch) {
        let mut pool = self.pool.lock();
        if pool.len() < self.max_pooled {
            pool.push(scratch);
        }
    }
}

/// Checkout guard for a pooled [`EvalScratch`]; derefs to the arena and
/// returns it to the [`ScratchPool`] on drop.
#[derive(Debug)]
pub struct PooledScratch<'a> {
    inner: EvalScratch,
    pool: &'a ScratchPool,
}

impl Deref for PooledScratch<'_> {
    type Target = EvalScratch;

    fn deref(&self) -> &EvalScratch {
        &self.inner
    }
}

impl DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut EvalScratch {
        &mut self.inner
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        self.pool.put(std::mem::take(&mut self.inner));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_reports_reuse_only_when_capacity_covers() {
        let mut s = EvalScratch::new();
        assert!(!s.begin(3, 10), "cold scratch must grow");
        assert!(s.begin(3, 10), "warm scratch with the same shape reuses");
        assert!(s.begin(2, 4), "smaller shapes fit in retained capacity");
        assert!(!s.begin(5, 10), "more states than capacity must grow");
        assert!(s.begin(5, 10));
        assert!(s.covers(4, 10) && !s.covers(6, 10));
    }

    #[test]
    fn generations_invalidate_marks_without_clearing() {
        let mut s = EvalScratch::new();
        s.begin(2, 8);
        let g = s.generation();
        s.seen[3] = g;
        s.begin(2, 8);
        assert_ne!(s.seen[3], s.generation(), "old marks are stale, not set");
    }

    #[test]
    fn generation_wrap_rezeros_marks() {
        let mut s = EvalScratch::new();
        s.begin(1, 4);
        s.gen = u32::MAX - 1;
        s.bump_gen();
        s.seen[0] = s.generation();
        s.bump_gen(); // wraps: marks zeroed, gen restarts at 1
        assert_eq!(s.generation(), 1);
        assert_eq!(s.seen[0], 0);
    }

    #[test]
    fn pool_round_trips_and_counts() {
        let pool = ScratchPool::new();
        {
            let mut a = pool.checkout();
            a.begin(4, 16);
        }
        assert_eq!(pool.allocs(), 1);
        assert_eq!(pool.idle(), 1);
        {
            let b = pool.checkout();
            assert!(b.covers(4, 16), "the warm arena came back");
        }
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn rev_trans_segments_are_sorted_by_symbol() {
        use rpq_automata::{parse_regex, Alphabet};
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "(a+b).c").unwrap();
        let nfa = Nfa::thompson(&r);
        let mut s = EvalScratch::new();
        s.build_rev_trans(&nfa);
        let nq = nfa.num_states();
        assert_eq!(s.rev_trans_off.len(), nq + 1);
        let total: usize = (0..nq).map(|q| nfa.transitions(q as StateId).len()).sum();
        assert_eq!(s.rev_trans.len(), total);
        // every segment sorted by symbol, and every entry mirrors a real
        // forward transition
        for q2 in 0..nq {
            let seg = &s.rev_trans[s.rev_trans_off[q2]..s.rev_trans_off[q2 + 1]];
            assert!(seg.windows(2).all(|w| w[0].0 <= w[1].0), "segment sorted");
            for &(sym, q) in seg {
                assert!(nfa.transitions(q).contains(&(sym, q2 as StateId)));
            }
        }
    }
}
