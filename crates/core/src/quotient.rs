//! Quotient-based evaluation — the paper's recursive procedure (✳).
//!
//! Section 2.2 derives the identity
//!
//! ```text
//! p(o, I) = [o | ε ∈ L(p)] ∪ ⋃ { (p/l)(o', I) | Ref(o, l, o') }      (✳)
//! ```
//!
//! and notes two implementations: constructing the quotients *explicitly*
//! ("this may be exponential in p, since it requires constructing the fsa
//! for p") versus carrying NFA state sets. This module provides both
//! explicit variants:
//!
//! * [`eval_quotient_dfa_csr`] — quotients as canonical NFA state *sets*
//!   (lazily determinized subset construction product with the graph);
//! * [`eval_derivative_csr`] — quotients as *syntactic* Brzozowski
//!   derivatives with ACI-normalized regexes, exactly the paper's
//!   presentation of the set `P` of "still-left" subqueries.
//!
//! Both walk the label-indexed [`CsrGraph`] by *label group*
//! ([`CsrGraph::out_groups`]): the quotient `q/l` — a subset step or a
//! derivative plus a memo probe — is computed once per distinct label
//! leaving the node, then applied to the whole contiguous target slice.
//! ([`eval_quotient_dfa`] / [`eval_derivative`] are compatibility wrappers
//! that snapshot an [`Instance`] first.)
//!
//! Both agree with [`crate::product::eval_product`] on every input (tested,
//! and property-tested in the workspace integration suite); the benches
//! measure the constant-factor and blow-up differences.

use std::collections::HashMap;

use rpq_automata::derivative::derivative;
use rpq_automata::{Nfa, Regex, StateId, Symbol};
use rpq_graph::{CsrGraph, GraphView, Instance, Oid};

use crate::product::{finish_eval, EvalResult};
use crate::stats::EvalStats;

/// Interner for quotient classes as canonical NFA state sets, with the
/// per-(class, label) subset-step memo. Shared between the single-source
/// search below and the bit-parallel batched variant in [`crate::batch`].
///
/// Owns a [`Nfa::trim`]med copy of the automaton: dead states dragged
/// along inside subset sets split otherwise-equal classes, so trimming
/// before lazy determinization can only shrink the class universe (the
/// same argument as pre-trimming in `rpq_automata::Dfa::from_nfa`).
pub(crate) struct SubsetInterner {
    nfa: Nfa,
    index: HashMap<Vec<StateId>, usize>,
    classes: Vec<Vec<StateId>>,
    accepting: Vec<bool>,
    trans_memo: HashMap<(usize, Symbol), usize>,
}

impl SubsetInterner {
    /// Start from the ε-closure of the trimmed NFA's start state (class 0).
    pub(crate) fn new(nfa: &Nfa) -> SubsetInterner {
        let mut s = SubsetInterner {
            nfa: nfa.trim(),
            index: HashMap::new(),
            classes: Vec::new(),
            accepting: Vec::new(),
            trans_memo: HashMap::new(),
        };
        let start = s.nfa.start_set();
        s.intern(start);
        s
    }

    fn intern(&mut self, set: Vec<StateId>) -> usize {
        if let Some(&i) = self.index.get(&set) {
            return i;
        }
        let i = self.classes.len();
        self.accepting.push(self.nfa.set_accepts(&set));
        self.index.insert(set.clone(), i);
        self.classes.push(set);
        i
    }

    /// The quotient `class/label` — one subset step + memo probe per
    /// distinct `(class, label)`, not per edge.
    pub(crate) fn step(&mut self, class: usize, label: Symbol) -> usize {
        if let Some(&c2) = self.trans_memo.get(&(class, label)) {
            return c2;
        }
        let stepped = self.nfa.step(&self.classes[class], label);
        let c2 = self.intern(stepped);
        self.trans_memo.insert((class, label), c2);
        c2
    }

    /// True if `class` contains an accepting NFA state.
    pub(crate) fn accepting(&self, class: usize) -> bool {
        self.accepting[class]
    }

    /// True if `class` is the dead ∅ quotient.
    pub(crate) fn is_dead(&self, class: usize) -> bool {
        self.classes[class].is_empty()
    }

    /// Number of classes materialized so far.
    pub(crate) fn len(&self) -> usize {
        self.classes.len()
    }
}

/// Evaluate by lazily determinizing the query NFA against the graph:
/// worklist over (quotient-class, node) where classes are canonical state
/// sets. This mirrors "constructing the needed quotients explicitly".
pub fn eval_quotient_dfa_csr<G: GraphView>(nfa: &Nfa, graph: &G, source: Oid) -> EvalResult {
    let nv = graph.num_nodes();
    let mut stats = EvalStats::default();
    let mut interner = SubsetInterner::new(nfa);
    let start_class = 0;

    let mut seen: HashMap<(usize, Oid), ()> = HashMap::new();
    let mut answer = vec![false; nv];
    let mut queue: Vec<(usize, Oid)> = vec![(start_class, source)];
    seen.insert((start_class, source), ());

    while let Some((c, v)) = queue.pop() {
        stats.pairs_visited += 1;
        if interner.accepting(c) {
            answer[v.index()] = true;
        }
        for (label, targets) in graph.out_groups(v) {
            stats.edges_scanned += targets.len();
            let c2 = interner.step(c, label);
            if interner.is_dead(c2) {
                continue; // dead quotient: ∅ subquery
            }
            for v2 in targets {
                if seen.insert((c2, v2), ()).is_none() {
                    queue.push((c2, v2));
                }
            }
        }
    }

    finish_eval(&answer, interner.len(), stats)
}

/// Compatibility wrapper over [`eval_quotient_dfa_csr`]: snapshots the
/// instance first. Build the [`CsrGraph`] once when evaluating many queries.
pub fn eval_quotient_dfa(nfa: &Nfa, instance: &Instance, source: Oid) -> EvalResult {
    eval_quotient_dfa_csr(nfa, &CsrGraph::from(instance), source)
}

/// Evaluate with *syntactic* quotients: memoized Brzozowski derivatives of
/// the (normalized) query regex — the faithful rendering of the paper's
/// `still-left_q` bookkeeping.
pub fn eval_derivative_csr<G: GraphView>(query: &Regex, graph: &G, source: Oid) -> EvalResult {
    let nv = graph.num_nodes();
    let mut stats = EvalStats::default();

    let mut class_index: HashMap<Regex, usize> = HashMap::new();
    let mut classes: Vec<Regex> = Vec::new();
    let mut nullable: Vec<bool> = Vec::new();
    let intern = |r: Regex,
                  classes: &mut Vec<Regex>,
                  nullable: &mut Vec<bool>,
                  class_index: &mut HashMap<Regex, usize>|
     -> usize {
        if let Some(&i) = class_index.get(&r) {
            return i;
        }
        let i = classes.len();
        nullable.push(r.nullable());
        class_index.insert(r.clone(), i);
        classes.push(r);
        i
    };

    let start = intern(query.clone(), &mut classes, &mut nullable, &mut class_index);

    let mut trans_memo: HashMap<(usize, Symbol), usize> = HashMap::new();
    let mut seen: HashMap<(usize, Oid), ()> = HashMap::new();
    let mut answer = vec![false; nv];
    let mut queue = vec![(start, source)];
    seen.insert((start, source), ());

    while let Some((c, v)) = queue.pop() {
        stats.pairs_visited += 1;
        if nullable[c] {
            answer[v.index()] = true;
        }
        // one derivative + memo probe per distinct label, not per edge
        for (label, targets) in graph.out_groups(v) {
            stats.edges_scanned += targets.len();
            let c2 = match trans_memo.get(&(c, label)) {
                Some(&c2) => c2,
                None => {
                    let d = derivative(&classes[c], label);
                    let c2 = intern(d, &mut classes, &mut nullable, &mut class_index);
                    trans_memo.insert((c, label), c2);
                    c2
                }
            };
            if classes[c2] == Regex::Empty {
                continue;
            }
            for v2 in targets {
                if seen.insert((c2, v2), ()).is_none() {
                    queue.push((c2, v2));
                }
            }
        }
    }

    finish_eval(&answer, classes.len(), stats)
}

/// Compatibility wrapper over [`eval_derivative_csr`]: snapshots the
/// instance first. Build the [`CsrGraph`] once when evaluating many queries.
pub fn eval_derivative(query: &Regex, instance: &Instance, source: Oid) -> EvalResult {
    eval_derivative_csr(query, &CsrGraph::from(instance), source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::eval_product;
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::InstanceBuilder;

    fn setup(edges: &[(&str, &str, &str)], query: &str, src: &str) -> (Regex, Nfa, Instance, Oid) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for &(f, l, t) in edges {
            b.edge(f, l, t);
        }
        let (inst, names) = b.finish();
        let r = parse_regex(&mut ab, query).unwrap();
        let nfa = Nfa::thompson(&r);
        let s = names[src];
        (r, nfa, inst, s)
    }

    const GRAPH: &[(&str, &str, &str)] = &[
        ("s", "a", "x"),
        ("x", "b", "y"),
        ("y", "b", "x"),
        ("x", "c", "z"),
        ("z", "a", "s"),
        ("s", "b", "z"),
    ];

    #[test]
    fn engines_agree_on_query_suite() {
        let queries = [
            "a.b*",
            "(a+b).c*",
            "(a.b)*",
            "a.(b.b)*.c",
            "()",
            "[]",
            "(a+b+c)*",
            "c",
            "a.b.b.c.a",
        ];
        for q in queries {
            let (r, nfa, inst, s) = setup(GRAPH, q, "s");
            let p = eval_product(&nfa, &inst, s);
            let qd = eval_quotient_dfa(&nfa, &inst, s);
            let dv = eval_derivative(&r, &inst, s);
            assert_eq!(p.answers, qd.answers, "product vs quotient on {q}");
            assert_eq!(p.answers, dv.answers, "product vs derivative on {q}");
        }
    }

    #[test]
    fn quotient_classes_bounded_by_dfa_size() {
        let (_, nfa, inst, s) = setup(GRAPH, "(a+b)*.c", "s");
        let res = eval_quotient_dfa(&nfa, &inst, s);
        // (a+b)*c has a small DFA; class count must be small
        assert!(res.stats.classes_materialized <= 4);

        // Dead states must not inflate the determinized universe: graft a
        // dead a-labeled branch onto the start state (the parser simplifies
        // dead regex arms away, so build it directly). The interner trims
        // before subset construction, so the class count must not regress.
        let mut dirty = nfa.clone();
        let a = {
            let mut ab = Alphabet::new();
            ab.intern("a")
        };
        let d1 = dirty.add_state(false);
        let d2 = dirty.add_state(false);
        dirty.add_transition(dirty.start(), a, d1);
        dirty.add_transition(d1, a, d2);
        assert!(dirty.num_states() > nfa.num_states());
        let dirty_res = eval_quotient_dfa(&dirty, &inst, s);
        assert_eq!(dirty_res.answers, res.answers);
        assert!(
            dirty_res.stats.classes_materialized <= res.stats.classes_materialized,
            "trimmed subset construction must not materialize more classes: {} vs {}",
            dirty_res.stats.classes_materialized,
            res.stats.classes_materialized
        );
    }

    #[test]
    fn derivative_classes_match_closure() {
        let (r, _, inst, s) = setup(GRAPH, "(a.b)*", "s");
        let res = eval_derivative(&r, &inst, s);
        // classes: (ab)*, b(ab)*, ∅  (only those reachable via graph labels)
        assert!(res.stats.classes_materialized <= 3);
        // (a.b)* from s reaches s (ε) and y (via a.b: s→x→y)
        let y = inst.node_by_name("y").unwrap();
        assert_eq!(res.answers, vec![s, y]);
    }

    #[test]
    fn dead_quotients_prune_search() {
        // from s, label c leads nowhere under query a.b — quotient ∅
        let (_, nfa, inst, s) = setup(GRAPH, "a.b", "s");
        let res = eval_quotient_dfa(&nfa, &inst, s);
        let y = inst.node_by_name("y").unwrap();
        assert_eq!(res.answers, vec![y]);
        // pruning keeps visited pairs below the full product
        assert!(res.stats.pairs_visited <= inst.num_nodes() * 3);
    }

    #[test]
    fn csr_entry_points_match_wrappers() {
        for q in ["a.b*", "(a+b+c)*", "a.(b.b)*.c"] {
            let (r, nfa, inst, s) = setup(GRAPH, q, "s");
            let csr = rpq_graph::CsrGraph::from(&inst);
            assert_eq!(
                eval_quotient_dfa(&nfa, &inst, s).answers,
                eval_quotient_dfa_csr(&nfa, &csr, s).answers,
                "{q}"
            );
            assert_eq!(
                eval_derivative(&r, &inst, s).answers,
                eval_derivative_csr(&r, &csr, s).answers,
                "{q}"
            );
        }
    }
}
