//! A brute-force evaluation oracle for testing.
//!
//! Evaluates `p(o, I)` as the paper *defines* it — "the set of all objects
//! o' reachable from o by some path whose labels spell a word in p" — by
//! enumerating accepted words up to a pumping bound and following each word
//! through the graph. Exponential; only for small instances in tests, where
//! it anchors the property tests asserting that all real engines agree with
//! the definition.

use rpq_automata::Nfa;
use rpq_graph::{Instance, Oid};

/// Evaluate by word enumeration. `max_word_len` defaults (when `None`) to
/// the product pumping bound `|Q| · |V|`: any answer reachable at all is
/// reachable by an accepted word no longer than the number of distinct
/// (state, node) pairs.
pub fn eval_oracle(
    nfa: &Nfa,
    instance: &Instance,
    source: Oid,
    max_word_len: Option<usize>,
) -> Vec<Oid> {
    let bound = max_word_len.unwrap_or(nfa.num_states() * instance.num_nodes());
    let mut answers: Vec<Oid> = Vec::new();
    // Enumerate with a generous cap; tiny test inputs only.
    let words = nfa.enumerate_words(bound, 1_000_000);
    for w in words {
        for t in instance.word_targets(source, &w) {
            if !answers.contains(&t) {
                answers.push(t);
            }
        }
    }
    answers.sort();
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::eval_product;
    use crate::quotient::{eval_derivative, eval_quotient_dfa};
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::InstanceBuilder;

    #[test]
    fn oracle_matches_engines_on_small_graph() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "x");
        b.edge("x", "b", "s");
        b.edge("x", "a", "y");
        b.edge("y", "c", "z");
        let (inst, names) = b.finish();
        let s = names["s"];
        for q in ["a.(b.a)*", "(a.b)*.a.a.c", "a*.c", "(a+b+c)*"] {
            let r = parse_regex(&mut ab, q).unwrap();
            let nfa = Nfa::thompson(&r);
            let oracle = eval_oracle(&nfa, &inst, s, Some(8));
            assert_eq!(eval_product(&nfa, &inst, s).answers, oracle, "{q}");
            assert_eq!(eval_quotient_dfa(&nfa, &inst, s).answers, oracle, "{q}");
            assert_eq!(eval_derivative(&r, &inst, s).answers, oracle, "{q}");
        }
    }

    #[test]
    fn default_bound_is_sufficient() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        // long chain: answer only reachable with a length-5 word
        b.edge("n0", "a", "n1");
        b.edge("n1", "a", "n2");
        b.edge("n2", "a", "n3");
        b.edge("n3", "a", "n4");
        b.edge("n4", "a", "n5");
        let (inst, names) = b.finish();
        let r = parse_regex(&mut ab, "a*").unwrap();
        let nfa = Nfa::thompson(&r);
        let ans = eval_oracle(&nfa, &inst, names["n0"], None);
        assert_eq!(ans.len(), 6);
    }
}
