//! Content-based selection (end of Section 2.4).
//!
//! "A vertex o with 'content' w can be modeled by having an edge labeled
//! `content=w` outgoing from o and pointing to o itself. Content-based
//! selections can then be specified using general path expressions", e.g.
//! retrieving all reachable vertices containing the word SGML with
//!
//! ```text
//! ("(.)*")* "content=(.)*SGML(.)*"
//! ```

use rpq_automata::{Alphabet, Symbol};
use rpq_graph::{Instance, Oid};

use crate::general::{eval_general, GeneralPathQuery};

/// Attach textual content to a node as a `content=<text>` self-loop.
pub fn set_content(
    instance: &mut Instance,
    alphabet: &mut Alphabet,
    node: Oid,
    text: &str,
) -> Symbol {
    let label = alphabet.intern(&format!("content={text}"));
    instance.add_edge(node, label, node);
    label
}

/// Escape a literal string for embedding in a character pattern.
pub fn escape_pattern_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if "()[]|*+?.\\^\"".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Escape a char-pattern source for embedding inside a double-quoted atom
/// of a path query (the path lexer itself processes `\` escapes).
pub fn quote_for_path(pattern_source: &str) -> String {
    pattern_source.replace('\\', "\\\\").replace('"', "\\\"")
}

/// All vertices reachable from `source` whose content contains `needle`
/// as a substring — the paper's SGML example, parameterized.
pub fn find_by_content(
    instance: &Instance,
    source: Oid,
    alphabet: &Alphabet,
    needle: &str,
) -> Vec<Oid> {
    let pat = format!(
        r#"("(.)*")* "content=(.)*{}(.)*""#,
        quote_for_path(&escape_pattern_literal(needle))
    );
    // The pattern is generated from an escaped literal, so it always
    // parses; degrade to "no matches" rather than panicking if the
    // escaping ever regresses.
    let Ok(q) = GeneralPathQuery::parse(&pat) else {
        debug_assert!(false, "generated content pattern failed to parse: {pat}");
        return Vec::new();
    };
    eval_general(&q, instance, source, alphabet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::InstanceBuilder;

    #[test]
    fn content_selection_finds_sgml_pages() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("home", "link", "p1");
        b.edge("home", "link", "p2");
        b.edge("p1", "link", "p3");
        let (mut inst, names) = b.finish();
        let home = names["home"];
        set_content(&mut inst, &mut ab, names["p1"], "an intro to SGML parsing");
        set_content(&mut inst, &mut ab, names["p2"], "all about XML");
        set_content(&mut inst, &mut ab, names["p3"], "SGML again");
        let hits = find_by_content(&inst, home, &ab, "SGML");
        let mut hit_names: Vec<String> = hits.iter().map(|&o| inst.node_name(o)).collect();
        hit_names.sort();
        assert_eq!(hit_names, ["p1", "p3"]);
    }

    #[test]
    fn content_with_metacharacters_is_escaped() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("home", "link", "p1");
        let (mut inst, names) = b.finish();
        let home = names["home"];
        set_content(&mut inst, &mut ab, names["p1"], "price (USD) 4.99");
        let hits = find_by_content(&inst, home, &ab, "(USD) 4.99");
        assert_eq!(hits.len(), 1);
        let misses = find_by_content(&inst, home, &ab, "(EUR)");
        assert!(misses.is_empty());
    }

    #[test]
    fn source_itself_can_match() {
        let mut ab = Alphabet::new();
        let mut inst = Instance::new();
        let o = inst.add_named_node("o");
        set_content(&mut inst, &mut ab, o, "contains SGML");
        let hits = find_by_content(&inst, o, &ab, "SGML");
        assert_eq!(hits, vec![o]);
    }
}
