//! Set-valued pair answers: `{(s, t) | t ∈ p(s, I)}` restricted to bound
//! source/target sets — the per-atom machinery conjunctive queries (CRPQs)
//! are joined from.
//!
//! [`crate::pair`] answers the *boolean* pair question for one (source,
//! target). A conjunctive atom `x -[p]-> y` instead needs the *set* of
//! bindings its regex induces between candidate `x` values and candidate
//! `y` values. [`PairSetResult`] carries that binding set, and the
//! kernels here produce it three ways — mirroring the pair module's
//! forward / backward / both-bound strategies, all on the bit-parallel
//! lane machinery of [`crate::batch`]:
//!
//! * [`eval_pairs_from_sources_csr_with`] — **forward**: wave the sources
//!   through the product BFS in 64-lane chunks; every accepting lane mask
//!   bit at node `v` is a binding `(source, v)`. Use when the atom's
//!   source variable is bound and the target variable is free.
//! * [`eval_pairs_to_targets_csr_with`] — **backward**: the same kernel
//!   over the *reversed* automaton and reverse adjacency with targets as
//!   lanes; masks yield bindings `(v, target)`. Use when only the target
//!   variable is bound.
//! * [`eval_pairs_bound_csr_with`] — **both bound** (the semijoin form):
//!   forward lanes, but masks are probed only at the bound target nodes —
//!   the N×M matrix kernel's cost profile with bindings instead of bits.
//!
//! When *neither* variable is bound, [`seed_candidates`] prunes the seed
//! set to nodes that can take at least one step of the query (or every
//! node, when the query accepts ε) before the forward kernel runs.
//!
//! The `*_controlled_csr_with` forms thread the serving layer's
//! [`EvalControl`] through every seed: one shared `edges_scanned` budget,
//! per-level cancellation, and the uniform soundness contract — bindings
//! collected before an early termination are true bindings, seeds not
//! reached before exhaustion simply contribute none
//! ([`PairSetResult::termination`] says which case occurred). All working
//! memory comes from the caller's [`EvalScratch`], so warm serving
//! queries stay allocation-free apart from the result vector.

use rpq_automata::{Nfa, Symbol};
use rpq_graph::{GraphView, Oid};

use crate::batch::{batch_wave_kernel_sink, lane_mask};
use crate::product::{
    eval_product_backward_controlled_reversed_csr_with, eval_product_controlled_csr_with,
    FrontierMode,
};
use crate::request::{EvalControl, Termination};
use crate::scratch::EvalScratch;
use crate::stats::EvalStats;

/// Result of a set-valued pair evaluation: the (source, target) bindings a
/// path query induces between the requested endpoint sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairSetResult {
    /// The bindings, sorted lexicographically and deduplicated.
    pub pairs: Vec<(Oid, Oid)>,
    /// Work counters (`answers` counts bindings).
    pub stats: EvalStats,
    /// Exact ([`Termination::Complete`]) or sound-subset termination.
    pub termination: Termination,
}

impl PairSetResult {
    /// An empty binding set with the given counters.
    pub fn empty(stats: EvalStats, termination: Termination) -> PairSetResult {
        PairSetResult {
            pairs: Vec::new(), // alloc-ok: result value
            stats,
            termination,
        }
    }

    /// The distinct left-hand (source) endpoints, sorted.
    pub fn distinct_sources(&self) -> Vec<Oid> {
        let mut out: Vec<Oid> = self.pairs.iter().map(|&(s, _)| s).collect(); // alloc-ok: result value
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The distinct right-hand (target) endpoints, sorted.
    pub fn distinct_targets(&self) -> Vec<Oid> {
        let mut out: Vec<Oid> = self.pairs.iter().map(|&(_, t)| t).collect(); // alloc-ok: result value
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Finalize a binding list: lexicographic order, dedup (duplicate seeds
/// each get a lane, so their bindings repeat), answer count.
pub(crate) fn finish_pairs(
    mut pairs: Vec<(Oid, Oid)>,
    mut stats: EvalStats,
    termination: Termination,
) -> PairSetResult {
    pairs.sort_unstable();
    pairs.dedup();
    stats.answers = pairs.len();
    PairSetResult {
        pairs,
        stats,
        termination,
    }
}

/// Forward set-valued pair evaluation: all bindings `(s, t)` with
/// `s ∈ sources` and `t ∈ p(s, I)`, by the bit-parallel lane kernel (one
/// CSR row pass advances every pending source in the wave).
pub fn eval_pairs_from_sources_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    scratch: &mut EvalScratch,
) -> PairSetResult {
    let mut pairs: Vec<(Oid, Oid)> = Vec::new(); // alloc-ok: result value
    let stats = batch_wave_kernel_sink(
        nfa,
        graph,
        sources,
        false,
        scratch,
        &mut |masks, wave_start, wave_len| {
            collect_mask_pairs(masks, wave_start, wave_len, sources, false, &mut pairs);
        },
    );
    finish_pairs(pairs, stats, Termination::Complete)
}

/// Backward set-valued pair evaluation: all bindings `(s, t)` with
/// `t ∈ targets` and `t ∈ p(s, I)`, by the lane kernel over the
/// *already-reversed* automaton ([`Nfa::reverse`]) and reverse adjacency
/// (targets ride the lanes; discovered sources fill the masks).
pub fn eval_pairs_to_targets_csr_with<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    targets: &[Oid],
    scratch: &mut EvalScratch,
) -> PairSetResult {
    let mut pairs: Vec<(Oid, Oid)> = Vec::new(); // alloc-ok: result value
    let stats = batch_wave_kernel_sink(
        reversed,
        graph,
        targets,
        true,
        scratch,
        &mut |masks, wave_start, wave_len| {
            collect_mask_pairs(masks, wave_start, wave_len, targets, true, &mut pairs);
        },
    );
    finish_pairs(pairs, stats, Termination::Complete)
}

/// Both-bound set-valued pair evaluation (the semijoin form): bindings
/// `(s, t)` with `s ∈ sources`, `t ∈ targets`, `t ∈ p(s, I)`. Runs the
/// forward lane kernel and probes each wave's masks only at the bound
/// target nodes — the N×M matrix kernel's cost profile
/// ([`crate::eval_product_matrix_csr_with`]) with bindings instead of a
/// bit matrix.
pub fn eval_pairs_bound_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    targets: &[Oid],
    scratch: &mut EvalScratch,
) -> PairSetResult {
    let mut pairs: Vec<(Oid, Oid)> = Vec::new(); // alloc-ok: result value
    let stats = batch_wave_kernel_sink(
        nfa,
        graph,
        sources,
        false,
        scratch,
        &mut |masks, wave_start, wave_len| {
            for &t in targets {
                let mask = masks.get(t.index()).copied().unwrap_or(0);
                let mut m = mask & lane_mask(wave_len);
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    pairs.push((sources[wave_start + lane], t));
                }
            }
        },
    );
    finish_pairs(pairs, stats, Termination::Complete)
}

/// Turn one wave's accepting masks into bindings. Forward waves
/// (`lanes_are_targets == false`) emit `(seed, v)`; backward waves emit
/// `(v, seed)`.
pub(crate) fn collect_mask_pairs(
    masks: &[u64],
    wave_start: usize,
    wave_len: usize,
    seeds: &[Oid],
    lanes_are_targets: bool,
    out: &mut Vec<(Oid, Oid)>,
) {
    let live = lane_mask(wave_len);
    for (v, &mask) in masks.iter().enumerate() {
        let mut m = mask & live;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let seed = seeds[wave_start + lane];
            if lanes_are_targets {
                out.push((Oid(v as u32), seed));
            } else {
                out.push((seed, Oid(v as u32)));
            }
        }
    }
}

/// [`eval_pairs_from_sources_csr_with`] under serving-layer execution
/// controls: one `edges_scanned` budget shared across every seed (each
/// seed's search gets whatever the budget has left), cancellation checked
/// per BFS level. Stops at the first non-complete termination; seeds not
/// yet explored contribute no bindings — still a sound subset.
pub fn eval_pairs_from_sources_controlled_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    mode: FrontierMode,
    control: &EvalControl,
    scratch: &mut EvalScratch,
) -> PairSetResult {
    controlled_seed_loop(graph, sources, control, scratch, &mut |g, s, c, scr| {
        eval_product_controlled_csr_with(nfa, g, s, None, mode, c, scr)
    })
}

/// [`eval_pairs_to_targets_csr_with`] under serving-layer execution
/// controls (already-reversed automaton; see
/// [`eval_pairs_from_sources_controlled_csr_with`] for the budget
/// contract).
pub fn eval_pairs_to_targets_controlled_csr_with<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    targets: &[Oid],
    mode: FrontierMode,
    control: &EvalControl,
    scratch: &mut EvalScratch,
) -> PairSetResult {
    let res = controlled_seed_loop(graph, targets, control, scratch, &mut |g, t, c, scr| {
        eval_product_backward_controlled_reversed_csr_with(reversed, g, t, None, mode, c, scr)
    });
    // The seed loop emits (seed, answer); backward bindings are (answer,
    // seed), so flip before finalizing.
    let flipped: Vec<(Oid, Oid)> = res.pairs.iter().map(|&(t, s)| (s, t)).collect(); // alloc-ok: result value
    finish_pairs(flipped, res.stats, res.termination)
}

/// [`eval_pairs_bound_csr_with`] under serving-layer execution controls:
/// the per-seed controlled loop with each seed's answers filtered to the
/// bound target set.
pub fn eval_pairs_bound_controlled_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    targets: &[Oid],
    mode: FrontierMode,
    control: &EvalControl,
    scratch: &mut EvalScratch,
) -> PairSetResult {
    let mut bound: Vec<Oid> = targets.to_vec(); // alloc-ok: sorted probe copy, result-sized
    bound.sort_unstable();
    bound.dedup();
    let res = controlled_seed_loop(graph, sources, control, scratch, &mut |g, s, c, scr| {
        eval_product_controlled_csr_with(nfa, g, s, None, mode, c, scr)
    });
    let filtered: Vec<(Oid, Oid)> = res
        .pairs
        .iter()
        .copied()
        .filter(|(_, t)| bound.binary_search(t).is_ok())
        .collect(); // alloc-ok: result value
    finish_pairs(filtered, res.stats, res.termination)
}

/// A controlled single-seed kernel: `(graph, seed, remaining control,
/// scratch) → (per-seed result, termination)`.
type SeedKernel<'k, G> = dyn FnMut(&G, Oid, &EvalControl, &mut EvalScratch) -> (crate::product::EvalResult, Termination)
    + 'k;

/// The shared controlled loop: run `kernel` once per seed with whatever
/// the request budget has left, merging stats and collecting `(seed,
/// answer)` bindings. Stops at the first non-complete termination.
fn controlled_seed_loop<G: GraphView>(
    graph: &G,
    seeds: &[Oid],
    control: &EvalControl,
    scratch: &mut EvalScratch,
    kernel: &mut SeedKernel<'_, G>,
) -> PairSetResult {
    let mut pairs: Vec<(Oid, Oid)> = Vec::new(); // alloc-ok: result value
    let mut stats = EvalStats::default();
    let mut term = Termination::Complete;
    for &seed in seeds {
        let per_seed = EvalControl {
            budget: control
                .budget
                .map(|b| b.saturating_sub(stats.edges_scanned)),
            cancel: control.cancel,
        };
        let (r, t) = kernel(graph, seed, &per_seed, scratch);
        stats.merge(&r.stats);
        for &a in &r.answers {
            pairs.push((seed, a));
        }
        if !t.is_complete() {
            term = t;
            break;
        }
    }
    finish_pairs(pairs, stats, term)
}

/// Candidate seeds for an atom whose source variable is unbound: if the
/// query accepts ε every node is a candidate (it at least binds `(v, v)`);
/// otherwise only nodes with at least one out-edge labeled by a symbol
/// leaving the start state's ε-closure can bind anything, and the rest are
/// pruned before the forward kernel runs.
pub fn seed_candidates<G: GraphView>(nfa: &Nfa, graph: &G, scratch: &mut EvalScratch) -> Vec<Oid> {
    // ε-closure of the start state, via the scratch worklist (no
    // allocation on warm scratches).
    let nq = nfa.num_states();
    scratch.begin(nq.max(1), 0);
    let gen = scratch.generation();
    scratch.worklist.clear();
    let start = nfa.start();
    scratch.state_marks[start as usize] = gen;
    scratch.worklist.push((start, 0));
    let mut accepts_epsilon = nfa.is_accepting(start);
    let mut first_syms: Vec<Symbol> = Vec::new(); // alloc-ok: tiny per-query symbol set
    let mut i = 0;
    while i < scratch.worklist.len() {
        let (q, _) = scratch.worklist[i];
        i += 1;
        for &(sym, _) in nfa.transitions(q) {
            first_syms.push(sym);
        }
        for &q2 in nfa.eps_transitions(q) {
            if scratch.state_marks[q2 as usize] != gen {
                scratch.state_marks[q2 as usize] = gen;
                accepts_epsilon |= nfa.is_accepting(q2);
                scratch.worklist.push((q2, 0));
            }
        }
    }
    first_syms.sort_unstable();
    first_syms.dedup();

    let mut out: Vec<Oid> = Vec::new(); // alloc-ok: result value
    for v in (0..graph.num_nodes() as u32).map(Oid) {
        if accepts_epsilon {
            out.push(v);
            continue;
        }
        let mut si = 0usize;
        'node: for (sym, edges) in graph.out_groups(v) {
            while si < first_syms.len() && first_syms[si] < sym {
                si += 1;
            }
            if si == first_syms.len() {
                break;
            }
            if first_syms[si] == sym && !edges.is_empty() {
                out.push(v);
                break 'node;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Query;
    use crate::product::eval_product_csr;
    use rpq_automata::Alphabet;
    use rpq_graph::{CsrGraph, InstanceBuilder};
    use std::sync::atomic::AtomicBool;

    fn fig2ish() -> (Alphabet, CsrGraph) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o1", "a", "o2");
        b.edge("o2", "b", "o3");
        b.edge("o3", "b", "o2");
        b.edge("o1", "b", "o3");
        b.edge("o3", "a", "o1");
        let (inst, _) = b.finish();
        (ab, CsrGraph::from(&inst))
    }

    fn oracle_pairs(q: &Query, csr: &CsrGraph, sources: &[Oid]) -> Vec<(Oid, Oid)> {
        let mut out: Vec<(Oid, Oid)> = sources
            .iter()
            .flat_map(|&s| {
                eval_product_csr(q.nfa(), csr, s)
                    .answers
                    .into_iter()
                    .map(move |t| (s, t))
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn forward_pairs_match_per_source_oracle() {
        let (mut ab, csr) = fig2ish();
        let all: Vec<Oid> = csr.nodes().collect();
        let mut scratch = EvalScratch::new();
        for qs in ["a.b*", "(a+b)*", "b.b", "()", "[]"] {
            let q = Query::parse(&mut ab, qs).unwrap();
            let res = eval_pairs_from_sources_csr_with(q.nfa(), &csr, &all, &mut scratch);
            assert_eq!(res.pairs, oracle_pairs(&q, &csr, &all), "{qs}");
            assert_eq!(res.stats.answers, res.pairs.len());
            assert_eq!(res.termination, Termination::Complete);
        }
    }

    #[test]
    fn backward_pairs_match_forward_pairs() {
        let (mut ab, csr) = fig2ish();
        let all: Vec<Oid> = csr.nodes().collect();
        let mut scratch = EvalScratch::new();
        for qs in ["a.b*", "(a+b)*", "b.b", "()"] {
            let q = Query::parse(&mut ab, qs).unwrap();
            let fwd = eval_pairs_from_sources_csr_with(q.nfa(), &csr, &all, &mut scratch);
            let rev = q.nfa().reverse();
            let bwd = eval_pairs_to_targets_csr_with(&rev, &csr, &all, &mut scratch);
            assert_eq!(fwd.pairs, bwd.pairs, "{qs}");
        }
    }

    #[test]
    fn bound_pairs_are_the_restricted_relation() {
        let (mut ab, csr) = fig2ish();
        let all: Vec<Oid> = csr.nodes().collect();
        let mut scratch = EvalScratch::new();
        let q = Query::parse(&mut ab, "(a+b)*").unwrap();
        let sources = vec![all[0], all[2]];
        let targets = vec![all[1]];
        let res = eval_pairs_bound_csr_with(q.nfa(), &csr, &sources, &targets, &mut scratch);
        let expect: Vec<(Oid, Oid)> = oracle_pairs(&q, &csr, &sources)
            .into_iter()
            .filter(|(_, t)| targets.contains(t))
            .collect();
        assert_eq!(res.pairs, expect);
    }

    #[test]
    fn controlled_pairs_are_a_sound_subset_within_budget() {
        let (mut ab, csr) = fig2ish();
        let all: Vec<Oid> = csr.nodes().collect();
        let mut scratch = EvalScratch::new();
        let q = Query::parse(&mut ab, "(a+b)*").unwrap();
        let full = oracle_pairs(&q, &csr, &all);
        for budget in 0..12 {
            let control = EvalControl {
                budget: Some(budget),
                cancel: None,
            };
            let res = eval_pairs_from_sources_controlled_csr_with(
                q.nfa(),
                &csr,
                &all,
                FrontierMode::Hybrid,
                &control,
                &mut scratch,
            );
            assert!(res.stats.edges_scanned <= budget, "budget {budget}");
            for p in &res.pairs {
                assert!(full.contains(p), "unsound binding {p:?}");
            }
            if res.termination.is_complete() {
                assert_eq!(res.pairs, full);
            }
        }
    }

    #[test]
    fn pre_set_cancel_yields_sound_subset() {
        let (mut ab, csr) = fig2ish();
        let all: Vec<Oid> = csr.nodes().collect();
        let mut scratch = EvalScratch::new();
        let q = Query::parse(&mut ab, "(a+b)*").unwrap();
        let flag = AtomicBool::new(true);
        let control = EvalControl {
            budget: None,
            cancel: Some(&flag),
        };
        let res = eval_pairs_from_sources_controlled_csr_with(
            q.nfa(),
            &csr,
            &all,
            FrontierMode::Hybrid,
            &control,
            &mut scratch,
        );
        assert_eq!(res.termination, Termination::Cancelled);
        let full = oracle_pairs(&q, &csr, &all);
        for p in &res.pairs {
            assert!(full.contains(p));
        }
    }

    #[test]
    fn seed_candidates_prune_dead_sources() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "x");
        b.edge("x", "b", "t");
        b.edge("dead", "c", "s");
        let (inst, names) = b.finish();
        let csr = CsrGraph::from(&inst);
        let mut scratch = EvalScratch::new();
        let q = Query::parse(&mut ab, "a.b").unwrap();
        let seeds = seed_candidates(q.nfa(), &csr, &mut scratch);
        assert_eq!(seeds, vec![names["s"]], "only s has an out-edge on 'a'");
        // ε-accepting query: every node is a candidate
        let q = Query::parse(&mut ab, "a*").unwrap();
        let seeds = seed_candidates(q.nfa(), &csr, &mut scratch);
        assert_eq!(seeds.len(), csr.num_nodes());
    }

    #[test]
    fn duplicate_seeds_dedup_in_the_binding_set() {
        let (mut ab, csr) = fig2ish();
        let mut scratch = EvalScratch::new();
        let q = Query::parse(&mut ab, "a.b*").unwrap();
        let dup = vec![Oid(0), Oid(0), Oid(2)];
        let res = eval_pairs_from_sources_csr_with(q.nfa(), &csr, &dup, &mut scratch);
        let uniq = eval_pairs_from_sources_csr_with(q.nfa(), &csr, &[Oid(0), Oid(2)], &mut scratch);
        assert_eq!(res.pairs, uniq.pairs);
    }
}
