//! Streaming ("eventually computable") evaluation over possibly-infinite
//! graphs — Remark 2.1.
//!
//! On an infinite Web, path queries are *eventually computable*: evaluation
//! over increasing finite portions produces every answer eventually, but
//! termination is only guaranteed when the set of nodes reachable by
//! prefixes of query words is finite. [`StreamingEval`] is a pull-based
//! product-automaton BFS over a [`GraphSource`]: each call to
//! [`StreamingEval::next_answer`] advances the frontier until the next new
//! answer appears, the frontier empties (termination), or the node budget is
//! exhausted (the "exhaustive exploration penalty" made observable).

use std::collections::{HashMap, HashSet, VecDeque};

use rpq_automata::{Nfa, StateId};
use rpq_graph::{GraphSource, NodeId};

/// Why [`StreamingEval::next_answer`] returned `None`.
///
/// The budget bounds **distinct node fetches** (`source.out_edges` calls):
/// revisiting a node whose edges are already in the cache is free and never
/// flips the status. The invariants, pinned by the regression tests below:
///
/// * `Terminated` is reported iff the reachable pair space was fully
///   explored — the answer set is complete, even when the budget is
///   exactly consumed on the way;
/// * `BudgetExhausted` is reported iff an *unfetched* node was required
///   after the budget was spent; the blocking pair is parked at the queue
///   front so [`StreamingEval::add_budget`] resumes exactly there;
/// * [`StreamingEval::nodes_expanded`] never exceeds the budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StreamStatus {
    /// Frontier still non-empty and budget remains — more answers may come.
    InProgress,
    /// The reachable prefix set was exhausted: the answer set is complete.
    Terminated,
    /// The node-expansion budget ran out: the query would keep exploring
    /// (on an infinite source this is the nonterminating case).
    BudgetExhausted,
}

/// Pull-based evaluator over a graph source.
pub struct StreamingEval<'a, G: GraphSource> {
    nfa: &'a Nfa,
    source: &'a G,
    queue: VecDeque<(StateId, NodeId)>,
    seen: HashSet<(StateId, NodeId)>,
    answered: HashSet<NodeId>,
    edges_cache: HashMap<NodeId, Vec<(rpq_automata::Symbol, NodeId)>>,
    nodes_expanded: usize,
    edges_fetched: usize,
    budget: usize,
    status: StreamStatus,
}

impl<'a, G: GraphSource> StreamingEval<'a, G> {
    /// Start evaluating `L(nfa)` from `start` with a node-expansion budget.
    pub fn new(nfa: &'a Nfa, source: &'a G, start: NodeId, budget: usize) -> Self {
        let mut s = StreamingEval {
            nfa,
            source,
            queue: VecDeque::new(),
            seen: HashSet::new(),
            answered: HashSet::new(),
            edges_cache: HashMap::new(),
            nodes_expanded: 0,
            edges_fetched: 0,
            budget,
            status: StreamStatus::InProgress,
        };
        s.push(nfa.start(), start);
        s
    }

    fn push(&mut self, q: StateId, v: NodeId) {
        if self.seen.insert((q, v)) {
            self.queue.push_back((q, v));
        }
    }

    fn edges_of(&mut self, v: NodeId) -> Vec<(rpq_automata::Symbol, NodeId)> {
        if let Some(e) = self.edges_cache.get(&v) {
            return e.clone();
        }
        self.nodes_expanded += 1;
        let e = self.source.out_edges(v);
        self.edges_fetched += e.len();
        self.edges_cache.insert(v, e.clone());
        e
    }

    /// Advance until the next previously-unseen answer, or `None` with a
    /// meaningful [`StreamingEval::status`].
    pub fn next_answer(&mut self) -> Option<NodeId> {
        while let Some((q, v)) = self.queue.pop_front() {
            let mut fresh_answer = None;
            if self.nfa.is_accepting(q) && self.answered.insert(v) {
                fresh_answer = Some(v);
            }
            for &q2 in self.nfa.eps_transitions(q) {
                self.push(q2, v);
            }
            // Only expand the node if some labeled transition leaves q.
            if !self.nfa.transitions(q).is_empty() {
                if self.nodes_expanded >= self.budget && !self.edges_cache.contains_key(&v) {
                    self.status = StreamStatus::BudgetExhausted;
                    // Park the pair at the queue front so callers can
                    // resume with more budget. It stays in `seen`: dedup
                    // only gates `push`, so re-queueing directly cannot
                    // lose the pair, while *removing* it from `seen` would
                    // let a later expansion enqueue a duplicate (the pair
                    // would then be processed twice and `pairs_discovered`
                    // would undercount while it is parked).
                    self.queue.push_front((q, v));
                    return fresh_answer;
                }
                let edges = self.edges_of(v);
                let trans: Vec<_> = self.nfa.transitions(q).to_vec();
                for (sym, q2) in trans {
                    for &(label, v2) in &edges {
                        if label == sym {
                            self.push(q2, v2);
                        }
                    }
                }
            }
            if let Some(a) = fresh_answer {
                return Some(a);
            }
        }
        if self.status == StreamStatus::InProgress {
            self.status = StreamStatus::Terminated;
        }
        None
    }

    /// Drain all remaining answers (until termination or budget).
    pub fn collect_all(&mut self) -> Vec<NodeId> {
        let mut out = Vec::new();
        while let Some(a) = self.next_answer() {
            out.push(a);
        }
        out.sort_unstable();
        out
    }

    /// Current status (meaningful after `next_answer` returned `None`).
    pub fn status(&self) -> StreamStatus {
        self.status
    }

    /// Number of distinct nodes whose descriptions were fetched.
    pub fn nodes_expanded(&self) -> usize {
        self.nodes_expanded
    }

    /// Total edges fetched across all expanded nodes.
    pub fn edges_fetched(&self) -> usize {
        self.edges_fetched
    }

    /// Number of distinct `(state, node)` pairs discovered so far.
    pub fn pairs_discovered(&self) -> usize {
        self.seen.len()
    }

    /// Grant additional budget (the "keep browsing" operation).
    pub fn add_budget(&mut self, extra: usize) {
        self.budget += extra;
        if self.status == StreamStatus::BudgetExhausted {
            self.status = StreamStatus::InProgress;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::{InfiniteComb, InfiniteTree, LassoLine};

    #[test]
    fn terminates_on_bounded_query_over_infinite_tree() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a.b").unwrap();
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let tree = InfiniteTree { labels: vec![a, b] };
        let nfa = Nfa::thompson(&r);
        let mut ev = StreamingEval::new(&nfa, &tree, 0, 1_000);
        let answers = ev.collect_all();
        assert_eq!(answers.len(), 1);
        assert_eq!(ev.status(), StreamStatus::Terminated);
        assert!(ev.nodes_expanded() <= 4);
    }

    #[test]
    fn budget_exhausts_on_unbounded_query() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a*").unwrap();
        let a = ab.get("a").unwrap();
        let b = ab.intern("b");
        let tree = InfiniteTree { labels: vec![a, b] };
        let nfa = Nfa::thompson(&r);
        let mut ev = StreamingEval::new(&nfa, &tree, 0, 50);
        let answers = ev.collect_all();
        assert_eq!(ev.status(), StreamStatus::BudgetExhausted);
        assert!(!answers.is_empty(), "answers stream before exhaustion");
    }

    #[test]
    fn resume_after_budget_extension_finds_more() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "next*.tooth").unwrap();
        let next = ab.get("next").unwrap();
        let tooth = ab.get("tooth").unwrap();
        let comb = InfiniteComb { next, tooth };
        let nfa = Nfa::thompson(&r);
        let mut ev = StreamingEval::new(&nfa, &comb, 0, 10);
        let first = ev.collect_all();
        assert_eq!(ev.status(), StreamStatus::BudgetExhausted);
        ev.add_budget(20);
        let more = ev.collect_all();
        assert!(!more.is_empty(), "extension must surface new answers");
        for a in &more {
            assert!(!first.contains(a), "answers must not repeat");
        }
    }

    #[test]
    fn lasso_terminates_despite_star() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a*").unwrap();
        let a = ab.get("a").unwrap();
        let lasso = LassoLine {
            label: a,
            prefix_len: 3,
            cycle_len: 4,
        };
        let nfa = Nfa::thompson(&r);
        let mut ev = StreamingEval::new(&nfa, &lasso, 0, 10_000);
        let answers = ev.collect_all();
        assert_eq!(answers.len(), 7);
        assert_eq!(ev.status(), StreamStatus::Terminated);
    }

    #[test]
    fn cached_revisits_are_free_and_never_flip_the_status() {
        // A lasso: 3-node tail into a 4-node cycle, 7 distinct nodes. The
        // query a* revisits cycle nodes in later automaton states, but all
        // edges are cached by then: a budget of exactly 7 fetches must
        // complete with Terminated and the full answer set — revisit order
        // must not turn an exactly-sufficient budget into BudgetExhausted.
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a*").unwrap();
        let a = ab.get("a").unwrap();
        let lasso = LassoLine {
            label: a,
            prefix_len: 3,
            cycle_len: 4,
        };
        let nfa = Nfa::thompson(&r);
        let mut ev = StreamingEval::new(&nfa, &lasso, 0, 7);
        let answers = ev.collect_all();
        assert_eq!(answers.len(), 7);
        assert_eq!(ev.status(), StreamStatus::Terminated);
        assert_eq!(ev.nodes_expanded(), 7);
    }

    #[test]
    fn budget_is_never_exceeded_and_statuses_partition_runs() {
        // Sweep every budget on a finite source: each run must end in
        // exactly one of Terminated (complete answers) or BudgetExhausted
        // (a strict prefix), and nodes_expanded must never exceed the
        // budget. The full answer set needs 7 fetches.
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a*").unwrap();
        let a = ab.get("a").unwrap();
        let lasso = LassoLine {
            label: a,
            prefix_len: 3,
            cycle_len: 4,
        };
        let nfa = Nfa::thompson(&r);
        for budget in 0..10 {
            let mut ev = StreamingEval::new(&nfa, &lasso, 0, budget);
            let answers = ev.collect_all();
            assert!(ev.nodes_expanded() <= budget, "budget {budget} exceeded");
            match ev.status() {
                StreamStatus::Terminated => {
                    assert_eq!(answers.len(), 7, "complete at budget {budget}")
                }
                StreamStatus::BudgetExhausted => {
                    assert!(budget < 7, "budget {budget} suffices for this source");
                    assert!(answers.len() < 7);
                }
                StreamStatus::InProgress => panic!("drained run cannot be InProgress"),
            }
        }
    }

    #[test]
    fn parked_pair_is_not_reprocessed_after_resume() {
        // Exhaust the budget so a pair parks at the queue front, then
        // resume: the pair must stay deduplicated (pairs_discovered is
        // monotone and counts each pair once) and every remaining answer
        // must arrive exactly once.
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "next*").unwrap();
        let next = ab.get("next").unwrap();
        let tooth = ab.intern("tooth");
        let comb = InfiniteComb { next, tooth };
        let nfa = Nfa::thompson(&r);
        let mut ev = StreamingEval::new(&nfa, &comb, 0, 5);
        let first = ev.collect_all();
        assert_eq!(ev.status(), StreamStatus::BudgetExhausted);
        let discovered_at_park = ev.pairs_discovered();
        ev.add_budget(5);
        let more = ev.collect_all();
        assert!(ev.pairs_discovered() >= discovered_at_park, "monotone");
        let mut all: Vec<_> = first.iter().chain(more.iter()).collect();
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "an answer was delivered twice");
    }

    #[test]
    fn answers_arrive_in_nondecreasing_discovery_order() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "next*").unwrap();
        let next = ab.get("next").unwrap();
        let tooth = ab.intern("tooth");
        let comb = InfiniteComb { next, tooth };
        let nfa = Nfa::thompson(&r);
        let mut ev = StreamingEval::new(&nfa, &comb, 0, 12);
        let mut prev = None;
        while let Some(a) = ev.next_answer() {
            if let Some(p) = prev {
                assert!(a > p, "BFS discovers spine nodes in order");
            }
            prev = Some(a);
        }
    }
}
