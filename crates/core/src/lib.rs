//! # rpq-core
//!
//! Regular path query evaluation — Section 2 of *Abiteboul & Vianu,
//! "Regular Path Queries with Constraints"*.
//!
//! A path query `p` is a regular expression over edge labels; its answer
//! `p(o, I)` is the set of objects reachable from `o` by a path spelling a
//! word of `L(p)`. This crate implements every evaluation strategy the
//! paper discusses, plus the Section 2.4 extensions:
//!
//! * [`eval_product`] — the "more economical" product-automaton BFS
//!   (PTIME combined complexity, NLOGSPACE data complexity);
//! * [`eval_quotient_dfa`] — explicit quotients as lazily determinized
//!   state sets (the possibly-exponential construction the paper warns
//!   about);
//! * [`eval_derivative`] — syntactic quotients via Brzozowski derivatives,
//!   the faithful rendering of recursion (✳);
//! * [`eval_oracle`] — definitional word-enumeration oracle for testing;
//! * [`StreamingEval`] — pull-based, budgeted evaluation over possibly
//!   infinite [`rpq_graph::GraphSource`]s ("eventually computable" queries,
//!   Remark 2.1);
//! * [`general`] — general path queries with character-level label patterns
//!   and the `μ` translation (Proposition 2.2, Example 2.1 / Figure 1);
//! * [`content`] — content-based selection via `content=w` self-loops.
//!
//! ## Example
//!
//! ```
//! use rpq_automata::{parse_regex, Alphabet, Nfa};
//! use rpq_graph::InstanceBuilder;
//! use rpq_core::eval_product;
//!
//! let mut ab = Alphabet::new();
//! let mut b = InstanceBuilder::new(&mut ab);
//! b.edge("o1", "a", "o2");
//! b.edge("o2", "b", "o3");
//! b.edge("o3", "b", "o2");
//! let (inst, names) = b.finish();
//!
//! let p = parse_regex(&mut ab, "a.b*").unwrap();
//! let res = eval_product(&Nfa::thompson(&p), &inst, names["o1"]);
//! assert_eq!(res.answers.len(), 2); // {o2, o3}
//! ```

#![warn(missing_docs)]

pub mod content;
pub mod general;
pub mod oracle;
pub mod product;
pub mod quotient;
pub mod stats;
pub mod streaming;

pub use oracle::eval_oracle;
pub use product::{eval_product, EvalResult};
pub use quotient::{eval_derivative, eval_quotient_dfa};
pub use stats::EvalStats;
pub use streaming::{StreamStatus, StreamingEval};
