//! # rpq-core
//!
//! Regular path query evaluation — Section 2 of *Abiteboul & Vianu,
//! "Regular Path Queries with Constraints"*.
//!
//! A path query `p` is a regular expression over edge labels; its answer
//! `p(o, I)` is the set of objects reachable from `o` by a path spelling a
//! word of `L(p)`. This crate implements every evaluation strategy the
//! paper discusses, plus the Section 2.4 extensions, all behind one
//! calling convention:
//!
//! * [`Engine`] — the unified trait: `eval(&self, &Query, &CsrGraph, Oid)`
//!   over the label-indexed [`rpq_graph::CsrGraph`] snapshot, with shared
//!   [`EvalStats`] work counters ([`Query`] packages regex + NFA +
//!   alphabet once), plus batched multi-source evaluation via
//!   [`Engine::eval_batch`] (default: loop + stats aggregation);
//! * [`request`] — the unified request/response convention:
//!   [`Engine::run`] dispatches an [`EvalRequest`] (any question shape —
//!   single source, batch, target-bound, pair, N×M matrix — plus uniform
//!   budget/cancellation controls) to an [`EvalResponse`]; the legacy
//!   per-shape `Engine` methods are thin wrappers over it;
//! * [`batch`] — bit-parallel batched evaluation: the lane-partitioned
//!   product BFS ([`eval_product_batch_csr`]), its union-mode shared
//!   frontier ([`eval_product_batch_union_csr`]), and the batched
//!   quotient-DFA search ([`eval_quotient_dfa_batch_csr`]), all returning
//!   [`BatchResult`];
//! * [`ProductEngine`] / [`eval_product_csr`] — the "more economical"
//!   product-automaton BFS (PTIME combined complexity, NLOGSPACE data
//!   complexity), frontier-based and label-indexed;
//! * [`eval_product_backward_csr`] / [`pair`] — direction-aware variants:
//!   the target-bound backward BFS (reversed NFA over the reverse CSR
//!   adjacency) and the (source, target) pair scenario with forward,
//!   backward, and meet-in-the-middle strategies ([`eval_pair`],
//!   [`eval_to`]); `rpq-optimizer`'s `PlannedEngine` picks among them from
//!   per-label statistics;
//! * [`parallel`] — intra-query parallelism: the frontier-parallel
//!   product BFS ([`eval_product_parallel_csr_with`]) that chunks push
//!   levels and slab-partitions pull sweeps across `std::thread::scope`
//!   workers with budget-lease soundness, governed by a shared
//!   [`WorkerPool`];
//! * [`pairset`] — *set-valued* pair answers: the (source, target) binding
//!   sets a conjunctive-query atom induces between bound endpoint sets,
//!   computed on the bit-parallel lane kernels with forward / backward /
//!   both-bound strategies ([`eval_pairs_from_sources_csr_with`] and
//!   friends) — the per-atom machinery `rpq-optimizer`'s join planner
//!   composes;
//! * [`QuotientDfaEngine`] / [`eval_quotient_dfa_csr`] — explicit quotients
//!   as lazily determinized state sets (the possibly-exponential
//!   construction the paper warns about);
//! * [`DerivativeEngine`] / [`eval_derivative_csr`] — syntactic quotients
//!   via Brzozowski derivatives, the faithful rendering of recursion (✳);
//! * [`OracleEngine`] / [`eval_oracle`] — definitional word-enumeration
//!   oracle for testing;
//! * [`StreamingEngine`] / [`StreamingEval`] — pull-based, budgeted
//!   evaluation over possibly infinite [`rpq_graph::GraphSource`]s
//!   ("eventually computable" queries, Remark 2.1);
//! * [`general`] — general path queries with character-level label patterns
//!   and the `μ` translation (Proposition 2.2, Example 2.1 / Figure 1);
//! * [`content`] — content-based selection via `content=w` self-loops.
//!
//! The historical free functions ([`eval_product`], [`eval_quotient_dfa`],
//! [`eval_derivative`]) remain as thin wrappers that snapshot the
//! [`rpq_graph::Instance`] per call; prefer building the [`CsrGraph`] once.
//!
//! ## Example
//!
//! ```
//! use rpq_automata::Alphabet;
//! use rpq_graph::{CsrGraph, InstanceBuilder};
//! use rpq_core::{Engine, ProductEngine, Query};
//!
//! let mut ab = Alphabet::new();
//! let mut b = InstanceBuilder::new(&mut ab);
//! b.edge("o1", "a", "o2");
//! b.edge("o2", "b", "o3");
//! b.edge("o3", "b", "o2");
//! let (inst, names) = b.finish();
//! let graph = CsrGraph::from(&inst); // immutable query-time snapshot
//!
//! let q = Query::parse(&mut ab, "a.b*").unwrap();
//! let res = ProductEngine.eval(&q, &graph, names["o1"]);
//! assert_eq!(res.answers.len(), 2); // {o2, o3}
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod content;
pub mod engine;
pub mod general;
pub mod oracle;
pub mod pair;
pub mod pairset;
pub mod parallel;
pub mod product;
pub mod quotient;
pub mod request;
pub mod scratch;
pub mod stats;
pub mod streaming;

pub use batch::{
    eval_product_batch_csr, eval_product_batch_csr_with, eval_product_batch_union_csr,
    eval_product_matrix_csr, eval_product_matrix_csr_with, eval_product_to_batch_csr,
    eval_product_to_batch_csr_with, eval_quotient_dfa_batch_csr, BatchResult, MatrixResult,
};
pub use engine::{
    DerivativeEngine, Engine, OracleEngine, ProductEngine, Query, QuotientDfaEngine,
    StreamingEngine,
};
pub use oracle::eval_oracle;
pub use pair::{
    eval_pair, eval_product_pair_backward_csr, eval_product_pair_backward_reversed_csr,
    eval_product_pair_backward_reversed_csr_with, eval_product_pair_controlled_csr_with,
    eval_product_pair_csr, eval_product_pair_csr_with, eval_product_pair_forward_csr,
    eval_product_pair_forward_csr_with, eval_product_pair_reversed_csr_with, eval_to, PairResult,
};
pub use pairset::{
    eval_pairs_bound_controlled_csr_with, eval_pairs_bound_csr_with,
    eval_pairs_from_sources_controlled_csr_with, eval_pairs_from_sources_csr_with,
    eval_pairs_to_targets_controlled_csr_with, eval_pairs_to_targets_csr_with, seed_candidates,
    PairSetResult,
};
pub use parallel::{
    eval_pairs_bound_parallel_csr_with, eval_pairs_from_sources_parallel_csr_with,
    eval_pairs_to_targets_parallel_csr_with, eval_product_backward_parallel_reversed_csr_with,
    eval_product_batch_parallel_csr_with, eval_product_parallel_csr_with,
    eval_product_to_batch_parallel_csr_with, WorkerLease, WorkerPool, PAR_LEVEL_THRESHOLD,
};
pub use product::{
    eval_product, eval_product_backward_controlled_reversed_csr_with, eval_product_backward_csr,
    eval_product_backward_reversed_csr, eval_product_backward_reversed_csr_with,
    eval_product_bounded_backward_reversed_csr, eval_product_bounded_backward_reversed_csr_with,
    eval_product_bounded_csr, eval_product_bounded_csr_with, eval_product_controlled_csr_with,
    eval_product_csr, eval_product_csr_with, eval_product_scan, EvalResult, FrontierMode,
    PULL_SWEEP_DISCOUNT,
};
pub use quotient::{
    eval_derivative, eval_derivative_csr, eval_quotient_dfa, eval_quotient_dfa_csr,
};
pub use request::{
    run_default, Answers, EvalControl, EvalRequest, EvalResponse, SourceSpec, Termination,
};
pub use rpq_graph::CsrGraph;
pub use scratch::{EvalScratch, PooledScratch, ScratchPool};
pub use stats::{AtomStats, Direction, EvalStats};
pub use streaming::{StreamStatus, StreamingEval};
