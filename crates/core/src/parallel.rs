//! Frontier-parallel product BFS: one query on all cores.
//!
//! The sequential kernel in [`crate::product`] is level-synchronous: every
//! BFS level is a pure expansion step whose inputs (the ε-closed frontier,
//! the generation-stamped `seen` table, the label index) are fixed for the
//! duration of the sweep. That makes each level embarrassingly parallel,
//! and this module exploits it without changing any observable semantics:
//!
//! * **push levels** chunk the frontier across `std::thread::scope`
//!   workers. Workers claim fixed-size chunks from a shared atomic cursor
//!   (claims beyond a worker's static fair share are counted as *steals* —
//!   the same rebalancing a work-stealing deque buys, without one), mark
//!   newly reached pairs in an atomic generation-stamped table
//!   ([`EvalScratch`]'s `par_seen`: one `swap(gen)` per candidate, first
//!   marker wins), and append them to a per-worker next buffer taken from
//!   a pooled [`EvalScratch`]; the buffers are concatenated at the level
//!   barrier.
//! * **pull levels** partition the node range into contiguous slabs. Each
//!   `(state, node)` candidate is owned by exactly one worker, so the
//!   merge-join probe loop runs contention-free against the (read-only)
//!   densified frontier; per-worker pull-bound debits are summed at the
//!   barrier, keeping the shrinking bound accounting exact.
//!
//! Both sweeps produce the *set* of pairs first reached at the next level
//! — identical to the sequential kernel's — so the per-level push/pull
//! pricing sees identical inputs and fires identically, the hybrid ≤
//! forced-sparse edge invariant survives, and sorted answers are
//! deterministic (only the unobserved frontier *order* varies).
//!
//! **Budgets stay sound** via leases against one shared spent counter:
//! push workers reserve each adjacency row's exact length before scanning
//! it (the sequential kernel's pre-scan check, atomically); pull workers
//! draw small probe leases and return the unspent remainder, so the
//! counter equals the probes actually performed. Reservations never exceed
//! the budget, hence `edges_scanned ≤ budget` always, and a truncated
//! answer set is a sound subset exactly as in the sequential kernel.
//! Cancellation is checked at level boundaries, as before.
//!
//! Levels cheaper than [`PAR_LEVEL_THRESHOLD`] run the same worker
//! function inline on the calling thread (one code path, no spawn cost),
//! so small queries keep their sequential latency; `DoP ≤ 1` bypasses this
//! module entirely and delegates to the unchanged sequential kernel.
//!
//! [`WorkerPool`] is the *governor*: a counter of spawnable extra workers
//! shared by every query an engine serves concurrently. A query leases up
//! to `DoP − 1` permits for its lifetime (returned on drop), so total
//! fan-out never exceeds the configured parallelism no matter how many big
//! closures arrive at once — and a query granted nothing simply runs
//! sequentially.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

use rpq_automata::{Nfa, StateId, Symbol};
use rpq_graph::{FrontierArena, GraphView, Oid};

use crate::batch::{batch_wave_kernel_sink, collect_wave_answers, lane_mask, BatchResult};
use crate::pairset::{collect_mask_pairs, finish_pairs, PairSetResult};
use crate::product::{pair_pull_probes, product_search_with, EvalResult, FrontierMode, PullBound};
use crate::request::{EvalControl, Termination};
use crate::scratch::{EvalScratch, PooledScratch, ScratchPool};
use crate::stats::EvalStats;

/// Minimum priced level cost (edge scans) before a level fans out to
/// worker threads; cheaper levels run inline on the calling thread.
pub const PAR_LEVEL_THRESHOLD: usize = 1 << 14;

/// Frontier pairs per shared-cursor claim in a parallel push sweep.
const PUSH_CHUNK: usize = 64;

/// Contiguous nodes per shared-cursor slab in a parallel pull sweep.
const PULL_SLAB: usize = 512;

/// Probes drawn per budget lease in a parallel pull sweep: small enough
/// that a worker parks little unspent budget (a stranded lease can trip
/// the search at most `workers × BUDGET_LEASE` probes early — never late),
/// large enough to keep the shared counter off the hot path.
const BUDGET_LEASE: usize = 64;

/// Shared governor for intra-query parallelism: a pool of "extra worker"
/// permits sized by the configured parallelism. Queries lease permits for
/// their lifetime via [`WorkerPool::lease`]; the lease's
/// [`WorkerLease::dop`] is the degree of parallelism actually granted
/// (always ≥ 1 — a query denied permits runs sequentially, it is never
/// blocked).
#[derive(Debug)]
pub struct WorkerPool {
    /// Extra-worker permits currently available.
    extra: AtomicUsize,
    /// Configured total parallelism (1 = sequential only).
    parallelism: usize,
}

impl WorkerPool {
    /// A pool allowing `parallelism` total threads across all concurrent
    /// queries (each query's own thread counts as one, so
    /// `parallelism − 1` extra-worker permits are available).
    pub fn new(parallelism: usize) -> WorkerPool {
        let parallelism = parallelism.max(1);
        WorkerPool {
            extra: AtomicUsize::new(parallelism - 1),
            parallelism,
        }
    }

    /// The configured total parallelism.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Extra-worker permits currently unleased.
    pub fn available(&self) -> usize {
        self.extra.load(Ordering::Relaxed)
    }

    /// Lease up to `target_dop − 1` extra-worker permits (whatever is
    /// available, possibly none). The permits return to the pool when the
    /// lease drops.
    pub fn lease(&self, target_dop: usize) -> WorkerLease<'_> {
        let want = target_dop.max(1) - 1;
        let mut granted = 0usize;
        let _ = self
            .extra
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |avail| {
                granted = want.min(avail);
                Some(avail - granted)
            });
        WorkerLease {
            pool: self,
            granted,
        }
    }
}

/// A query-lifetime grant of extra-worker permits from a [`WorkerPool`];
/// permits are returned on drop.
#[derive(Debug)]
pub struct WorkerLease<'a> {
    pool: &'a WorkerPool,
    granted: usize,
}

impl WorkerLease<'_> {
    /// The degree of parallelism this lease allows: the leased extra
    /// workers plus the query's own thread.
    pub fn dop(&self) -> usize {
        self.granted + 1
    }
}

impl Drop for WorkerLease<'_> {
    fn drop(&mut self) {
        self.pool.extra.fetch_add(self.granted, Ordering::Release);
    }
}

/// Per-worker accumulators, summed at each level barrier. Keeping these
/// local (one shared-counter touch per *level*, not per edge) is what
/// makes the barrier merge exact without contending on every probe.
#[derive(Default)]
struct WorkerOut {
    /// Edges scanned / probes performed by this worker.
    edges: usize,
    /// Pull-bound debits owed for pairs this worker newly reached.
    debits: usize,
    /// Cursor claims made after the worker had already processed its
    /// static fair share — the work-stealing telemetry.
    steals: usize,
}

impl WorkerOut {
    fn absorb(&mut self, other: WorkerOut) {
        self.edges += other.edges;
        self.debits += other.debits;
        self.steals += other.steals;
    }
}

/// Everything a level sweep's workers share, borrowed immutably for the
/// duration of one `std::thread::scope`.
struct LevelCtx<'a, G> {
    nfa: &'a Nfa,
    graph: &'a G,
    reverse_adj: bool,
    nq: usize,
    nv: usize,
    gen: u32,
    bound_active: bool,
    par_seen: &'a [AtomicU32],
    rev_trans: &'a [(Symbol, StateId)],
    rev_trans_off: &'a [usize],
    frontier: &'a [(StateId, Oid)],
    dense: &'a FrontierArena,
    /// Shared claim cursor (frontier index for push, node index for pull).
    cursor: &'a AtomicUsize,
    /// Shared budget spent counter (reservations, see module docs).
    spent: &'a AtomicUsize,
    /// Raised by the first worker that cannot reserve budget.
    tripped: &'a AtomicBool,
    budget: Option<usize>,
    /// Static fair share of claimable items per worker, for steal
    /// accounting.
    fair: usize,
}

/// Mark `(q, v)` in the atomic seen table; `true` when this call was the
/// first to reach the pair this generation (first marker wins).
#[inline]
fn mark_atomic(par_seen: &[AtomicU32], gen: u32, nv: usize, q: StateId, v: Oid) -> bool {
    par_seen[q as usize * nv + v.index()].swap(gen, Ordering::Relaxed) != gen
}

/// One push worker: claim frontier chunks from the shared cursor, scan
/// each pair's matching adjacency rows (reserving row lengths against the
/// shared budget first), and mark/enqueue unseen targets into this
/// worker's `next` buffer.
fn push_worker<G: GraphView + Sync>(
    ctx: &LevelCtx<'_, G>,
    next: &mut Vec<(StateId, Oid)>,
) -> WorkerOut {
    let mut out = WorkerOut::default();
    let total = ctx.frontier.len();
    let mut claimed = 0usize;
    loop {
        if ctx.tripped.load(Ordering::Relaxed) {
            break;
        }
        let start = ctx.cursor.fetch_add(PUSH_CHUNK, Ordering::Relaxed);
        if start >= total {
            break;
        }
        if claimed >= ctx.fair {
            out.steals += 1;
        }
        let end = (start + PUSH_CHUNK).min(total);
        claimed += end - start;
        for &(q, v) in &ctx.frontier[start..end] {
            for &(sym, q2) in ctx.nfa.transitions(q) {
                let targets = if ctx.reverse_adj {
                    ctx.graph.rev(v, sym)
                } else {
                    ctx.graph.out(v, sym)
                };
                if let Some(b) = ctx.budget {
                    // Reserve the whole row before scanning it — the
                    // sequential kernel's pre-scan check, done atomically
                    // so concurrent reservations never oversubscribe.
                    let row = targets.len();
                    let reserved =
                        ctx.spent
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                                (s + row <= b).then_some(s + row)
                            });
                    if reserved.is_err() {
                        ctx.tripped.store(true, Ordering::Relaxed);
                        return out;
                    }
                }
                out.edges += targets.len();
                for v2 in targets {
                    if mark_atomic(ctx.par_seen, ctx.gen, ctx.nv, q2, v2) {
                        next.push((q2, v2));
                        if ctx.bound_active {
                            out.debits += pair_pull_probes(
                                ctx.graph,
                                ctx.reverse_adj,
                                ctx.rev_trans,
                                ctx.rev_trans_off,
                                q2,
                                v2,
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

/// One pull worker: claim contiguous node slabs from the shared cursor and
/// run the sequential kernel's merge-join probe loop over every unreached
/// `(q2, v)` candidate in the slab. Slab ownership means no two workers
/// ever race on a candidate, so the mark store needs no read-modify-write.
fn pull_worker<G: GraphView + Sync>(
    ctx: &LevelCtx<'_, G>,
    next: &mut Vec<(StateId, Oid)>,
) -> WorkerOut {
    let mut out = WorkerOut::default();
    let (nq, nv) = (ctx.nq, ctx.nv);
    let mut claimed = 0usize;
    // Probes pre-paid against the shared budget but not yet performed.
    let mut lease = 0usize;
    'slabs: loop {
        if ctx.tripped.load(Ordering::Relaxed) {
            break;
        }
        let start = ctx.cursor.fetch_add(PULL_SLAB, Ordering::Relaxed);
        if start >= nv {
            break;
        }
        if claimed >= ctx.fair {
            out.steals += 1;
        }
        let end = (start + PULL_SLAB).min(nv);
        claimed += end - start;
        for q2 in 0..nq {
            let (lo, hi) = (ctx.rev_trans_off[q2], ctx.rev_trans_off[q2 + 1]);
            if lo == hi {
                continue; // no labeled transition enters q2
            }
            let seg = &ctx.rev_trans[lo..hi];
            for vi in start..end {
                if ctx.par_seen[q2 * nv + vi].load(Ordering::Relaxed) == ctx.gen {
                    continue;
                }
                let candidate = Oid(vi as u32);
                let groups = if ctx.reverse_adj {
                    ctx.graph.out_groups(candidate)
                } else {
                    ctx.graph.rev_groups(candidate)
                };
                let mut si = 0usize;
                'probe: for (sym, edges) in groups {
                    while si < seg.len() && seg[si].0 < sym {
                        si += 1;
                    }
                    if si == seg.len() {
                        break;
                    }
                    let mut sj = si;
                    while sj < seg.len() && seg[sj].0 == sym {
                        sj += 1;
                    }
                    if sj == si {
                        continue;
                    }
                    for u in edges {
                        for &(_, qsrc) in &seg[si..sj] {
                            if ctx.budget.is_some() && lease == 0 {
                                lease = acquire_lease(ctx.spent, ctx.budget);
                                if lease == 0 {
                                    ctx.tripped.store(true, Ordering::Relaxed);
                                    break 'slabs;
                                }
                            }
                            if ctx.budget.is_some() {
                                lease -= 1;
                            }
                            out.edges += 1;
                            if ctx.dense.state(qsrc as usize).contains(u.index()) {
                                ctx.par_seen[q2 * nv + vi].store(ctx.gen, Ordering::Relaxed);
                                next.push((q2 as StateId, candidate));
                                out.debits += pair_pull_probes(
                                    ctx.graph,
                                    ctx.reverse_adj,
                                    ctx.rev_trans,
                                    ctx.rev_trans_off,
                                    q2 as StateId,
                                    candidate,
                                );
                                break 'probe;
                            }
                        }
                    }
                }
            }
        }
    }
    // Return the unspent remainder so the shared counter equals the probes
    // actually performed (`edges_scanned` stays exact, not just bounded).
    if lease > 0 {
        ctx.spent.fetch_sub(lease, Ordering::Relaxed);
    }
    out
}

/// Draw up to [`BUDGET_LEASE`] probes from the shared budget; 0 when the
/// budget is exhausted.
fn acquire_lease(spent: &AtomicUsize, budget: Option<usize>) -> usize {
    let Some(b) = budget else {
        return usize::MAX;
    };
    match spent.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
        (s < b).then(|| (s + BUDGET_LEASE).min(b))
    }) {
        Ok(prev) => (prev + BUDGET_LEASE).min(b) - prev,
        Err(_) => 0,
    }
}

/// Run one level sweep with `threads` workers (`threads == 1` runs the
/// worker function inline — same code path, no spawn). Worker `next`
/// buffers live in `worker_scratch` (plus the caller's own `next`); the
/// caller merges them afterwards.
#[allow(clippy::too_many_arguments)]
fn run_level<G: GraphView + Sync>(
    ctx: &LevelCtx<'_, G>,
    pull: bool,
    threads: usize,
    worker_scratch: &mut [PooledScratch<'_>],
    own_next: &mut Vec<(StateId, Oid)>,
) -> WorkerOut {
    let worker = if pull {
        pull_worker::<G>
    } else {
        push_worker::<G>
    };
    let mut out = WorkerOut::default();
    if threads <= 1 {
        out.absorb(worker(ctx, own_next));
        return out;
    }
    let extras = &mut worker_scratch[..threads - 1];
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(extras.len()); // alloc-ok: one tiny vec per parallel level, not per edge
        for w in extras.iter_mut() {
            handles.push(s.spawn(move || worker(ctx, &mut w.next)));
        }
        out.absorb(worker(ctx, own_next));
        for h in handles {
            match h.join() {
                Ok(part) => out.absorb(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// The frontier-parallel sibling of
/// [`crate::product::product_search_with`]: identical level-synchronous
/// semantics (ε-closure, answer pass, hybrid pricing, depth cap, budget,
/// cancellation), with each level's expansion fanned across up to `dop`
/// threads when its priced cost clears [`PAR_LEVEL_THRESHOLD`]. `dop ≤ 1`
/// delegates to the sequential kernel unchanged.
#[allow(clippy::too_many_arguments)]
fn product_search_parallel<G: GraphView + Sync>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    reverse_adj: bool,
    depth_cap: Option<usize>,
    mode: FrontierMode,
    control: &EvalControl,
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
) -> (EvalResult, Termination) {
    if dop <= 1 {
        let (res, _, term) = product_search_with(
            nfa,
            graph,
            source,
            reverse_adj,
            None,
            depth_cap,
            mode,
            control,
            scratch,
        );
        return (res, term);
    }

    let nq = nfa.num_states();
    let nv = graph.num_nodes();
    debug_assert!(source.index() < nv.max(1), "source must be a graph node");
    let covered = scratch.begin_parallel(nq, nv);
    let mut stats = EvalStats {
        scratch_reused: usize::from(covered),
        threads_used: 1,
        ..EvalStats::default()
    };
    let gen = scratch.generation();
    let mut termination = Termination::Complete;
    let mut classes = 0usize;

    // Same pull machinery as the sequential kernel (see product.rs): the
    // reversed transition table plus the shrinking probe bound, debited at
    // each level barrier by the summed per-worker debits.
    let mut bound = PullBound {
        active: mode != FrontierMode::ForcedSparse,
        remaining: 0,
    };
    let sweep_cost = (nq * nv) / mode.pull_discount();
    if bound.active {
        scratch.build_rev_trans(nfa);
        let gstats = graph.stats();
        let mut total = 0usize;
        for q in 0..nq {
            for &(sym, _) in nfa.transitions(q as StateId) {
                total = total.saturating_add(gstats.edge_count(sym));
            }
        }
        bound.remaining = total;
    }

    // Per-worker arenas: their `next` buffers receive each level's newly
    // reached pairs, merged at the barrier. Checked out once per search.
    let mut workers: Vec<PooledScratch<'_>> = (0..dop - 1).map(|_| pool.checkout()).collect(); // alloc-ok: one checkout vec per search
    for w in workers.iter_mut() {
        w.next.clear();
    }

    // Shared budget state, cumulative across levels.
    let spent = AtomicUsize::new(0);
    let tripped = AtomicBool::new(false);

    if nv > 0 && mark_atomic(&scratch.par_seen, gen, nv, nfa.start(), source) {
        scratch.frontier.push((nfa.start(), source));
        if bound.active {
            bound.debit(pair_pull_probes(
                graph,
                reverse_adj,
                &scratch.rev_trans,
                &scratch.rev_trans_off,
                nfa.start(),
                source,
            ));
        }
    }

    let mut depth = 0usize;
    'bfs: while !scratch.frontier.is_empty() {
        // Cooperative cancellation: one relaxed flag read per BFS level.
        if control.cancelled() {
            termination = Termination::Cancelled;
            break 'bfs;
        }
        // ε-closure inside the level (sequential: ε-fanout is tiny and the
        // in-place frontier extension wants single ownership).
        let mut i = 0;
        while i < scratch.frontier.len() {
            let (q, v) = scratch.frontier[i];
            i += 1;
            for &q2 in nfa.eps_transitions(q) {
                if mark_atomic(&scratch.par_seen, gen, nv, q2, v) {
                    scratch.frontier.push((q2, v));
                    if bound.active {
                        bound.debit(pair_pull_probes(
                            graph,
                            reverse_adj,
                            &scratch.rev_trans,
                            &scratch.rev_trans_off,
                            q2,
                            v,
                        ));
                    }
                }
            }
        }
        stats.frontier_peak = stats.frontier_peak.max(scratch.frontier.len());

        // Answer/accept pass over the closed level (sequential, main
        // thread — the non-atomic answer/state marks stay private).
        for &(q, v) in &scratch.frontier {
            stats.pairs_visited += 1;
            if scratch.state_marks[q as usize] != gen {
                scratch.state_marks[q as usize] = gen;
                classes += 1;
            }
            if nfa.is_accepting(q) && scratch.answer_marks[v.index()] != gen {
                scratch.answer_marks[v.index()] = gen;
                scratch.answers.push(v);
            }
        }

        if depth_cap.is_some_and(|cap| depth >= cap) {
            break 'bfs;
        }

        // Exact push price of this level — needed for the hybrid pricing
        // *and* the parallelize-or-inline gate.
        let mut push_cost = 0usize;
        for &(q, v) in &scratch.frontier {
            for &(sym, _) in nfa.transitions(q) {
                let row = if reverse_adj {
                    graph.rev(v, sym)
                } else {
                    graph.out(v, sym)
                };
                push_cost = push_cost.saturating_add(row.len());
            }
        }
        let use_pull = match mode {
            FrontierMode::ForcedSparse => false,
            FrontierMode::ForcedDense => true,
            FrontierMode::Hybrid | FrontierMode::HybridTuned { .. } => {
                sweep_cost.saturating_add(bound.remaining) < push_cost
            }
        };

        if use_pull {
            // Densify the current frontier for O(1) membership probes;
            // read-only for the duration of the sweep.
            for &(q, v) in &scratch.frontier {
                scratch.dense.state_mut(q as usize).insert(v.index());
            }
        }
        let level_cost = if use_pull {
            sweep_cost.saturating_add(bound.remaining)
        } else {
            push_cost
        };
        let threads = if level_cost >= PAR_LEVEL_THRESHOLD {
            dop
        } else {
            1
        };
        if threads > 1 {
            stats.parallel_levels += 1;
            stats.threads_used = stats.threads_used.max(threads);
        }
        if use_pull {
            stats.pull_levels += 1;
        } else {
            stats.push_levels += 1;
        }

        let cursor = AtomicUsize::new(0);
        let claimable = if use_pull { nv } else { scratch.frontier.len() };
        let out = {
            // Disjoint field borrows: the sweep reads the frontier, marks,
            // and transition tables, while `next` (and the worker arenas)
            // collect the produced level.
            let ctx = LevelCtx {
                nfa,
                graph,
                reverse_adj,
                nq,
                nv,
                gen,
                bound_active: bound.active,
                par_seen: &scratch.par_seen,
                rev_trans: &scratch.rev_trans,
                rev_trans_off: &scratch.rev_trans_off,
                frontier: &scratch.frontier,
                dense: &scratch.dense,
                cursor: &cursor,
                spent: &spent,
                tripped: &tripped,
                budget: control.budget,
                fair: claimable.div_ceil(threads),
            };
            run_level(&ctx, use_pull, threads, &mut workers, &mut scratch.next)
        };
        stats.edges_scanned += out.edges;
        stats.steal_count += out.steals;
        bound.debit(out.debits);
        if use_pull {
            // Leave the dense arena clean for the next level / search.
            scratch.dense.clear();
        }

        if tripped.load(Ordering::Relaxed) {
            // The level is partially expanded; everything already answered
            // stays sound, the rest of the search is abandoned.
            termination = Termination::BudgetExhausted;
            scratch.next.clear();
            for w in workers.iter_mut() {
                w.next.clear();
            }
            break 'bfs;
        }

        // Level barrier: concatenate the per-worker buffers into the next
        // frontier (set identical to the sequential kernel's; order is
        // claim-dependent and unobserved).
        for w in workers.iter_mut() {
            scratch.next.append(&mut w.next);
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        scratch.next.clear();
        depth += 1;
    }

    scratch.answers.sort_unstable();
    stats.answers = scratch.answers.len();
    stats.classes_materialized = classes;
    let answers = std::mem::take(&mut scratch.answers);
    (EvalResult { answers, stats }, termination)
}

/// Frontier-parallel forward product evaluation — the parallel sibling of
/// [`crate::eval_product_controlled_csr_with`]. `dop` is the granted
/// degree of parallelism (from a [`WorkerPool`] lease); `pool` supplies
/// the per-worker arenas. `dop ≤ 1` is exactly the sequential kernel.
#[allow(clippy::too_many_arguments)]
pub fn eval_product_parallel_csr_with<G: GraphView + Sync>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    depth_cap: Option<usize>,
    mode: FrontierMode,
    control: &EvalControl,
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
) -> (EvalResult, Termination) {
    product_search_parallel(
        nfa, graph, source, false, depth_cap, mode, control, dop, pool, scratch,
    )
}

/// The backward (already-reversed automaton, reverse adjacency) form of
/// [`eval_product_parallel_csr_with`] — the parallel sibling of
/// [`crate::eval_product_backward_controlled_reversed_csr_with`].
#[allow(clippy::too_many_arguments)]
pub fn eval_product_backward_parallel_reversed_csr_with<G: GraphView + Sync>(
    reversed: &Nfa,
    graph: &G,
    target: Oid,
    depth_cap: Option<usize>,
    mode: FrontierMode,
    control: &EvalControl,
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
) -> (EvalResult, Termination) {
    product_search_parallel(
        reversed, graph, target, true, depth_cap, mode, control, dop, pool, scratch,
    )
}

/// Fan the bit-parallel wave kernel's independent 64-lane waves across up
/// to `dop` workers: wave indices are claimed from a shared cursor (claims
/// past a worker's fair share count as steals), each worker runs the
/// unchanged sequential kernel on its claimed wave with a pooled
/// [`EvalScratch`], and `per_wave` turns each wave's accepting masks into a
/// representation-specific payload. Payloads are re-assembled in wave
/// order, so every caller sees exactly the sequential kernel's output.
/// `dop ≤ 1` (or a single wave) runs the sink inline on `scratch`.
#[allow(clippy::too_many_arguments)]
fn wave_fanout<G, T, F>(
    nfa: &Nfa,
    graph: &G,
    seeds: &[Oid],
    reverse_adj: bool,
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
    per_wave: F,
) -> (Vec<T>, EvalStats)
where
    G: GraphView + Sync,
    T: Send,
    F: Fn(&[u64], usize, usize) -> T + Sync,
{
    let n_waves = seeds.len().div_ceil(64);
    let threads = dop.min(n_waves.max(1));
    if threads <= 1 {
        let mut waves: Vec<T> = Vec::with_capacity(n_waves); // alloc-ok: result value
        let stats = batch_wave_kernel_sink(
            nfa,
            graph,
            seeds,
            reverse_adj,
            scratch,
            &mut |masks, wave_start, wave_len| {
                waves.push(per_wave(masks, wave_start, wave_len));
            },
        );
        return (waves, stats);
    }

    let cursor = AtomicUsize::new(0);
    let fair = n_waves.div_ceil(threads);
    // One worker body shared by the spawned threads and the calling
    // thread; all captures are immutable, so the closure is `Fn` + `Sync`.
    let work = |scr: &mut EvalScratch| -> (Vec<(usize, T)>, EvalStats, usize) {
        let mut outs: Vec<(usize, T)> = Vec::new(); // alloc-ok: per-worker result collection
        let mut wstats = EvalStats::default();
        let mut steals = 0usize;
        let mut claimed = 0usize;
        loop {
            let wi = cursor.fetch_add(1, Ordering::Relaxed);
            if wi >= n_waves {
                break;
            }
            if claimed >= fair {
                steals += 1;
            }
            claimed += 1;
            let start = wi * 64;
            let end = (start + 64).min(seeds.len());
            let s = batch_wave_kernel_sink(
                nfa,
                graph,
                &seeds[start..end],
                reverse_adj,
                scr,
                &mut |masks, _local_start, wave_len| {
                    // The sub-slice's wave starts at 0; re-anchor to the
                    // wave's global seed index for the payload builder.
                    outs.push((wi, per_wave(masks, start, wave_len)));
                },
            );
            wstats.merge(&s);
        }
        (outs, wstats, steals)
    };

    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n_waves); // alloc-ok: result assembly
    let mut stats = EvalStats::default();
    let mut steals_total = 0usize;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads - 1); // alloc-ok: one tiny vec per fan-out, not per edge
        for _ in 0..threads - 1 {
            handles.push(s.spawn(|| {
                let mut scr = pool.checkout();
                work(&mut scr)
            }));
        }
        let (outs, wstats, steals) = work(scratch);
        tagged.extend(outs);
        stats.merge(&wstats);
        steals_total += steals;
        for h in handles {
            let (outs, wstats, steals) = match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            tagged.extend(outs);
            stats.merge(&wstats);
            steals_total += steals;
        }
    });
    tagged.sort_unstable_by_key(|&(wi, _)| wi);
    stats.threads_used = stats.threads_used.max(threads);
    stats.steal_count += steals_total;
    stats.parallel_levels += 1;
    (tagged.into_iter().map(|(_, t)| t).collect(), stats)
}

/// Wave-parallel sibling of [`crate::eval_product_batch_csr_with`]: the
/// forward bit-parallel batch kernel with independent source waves fanned
/// across up to `dop` pooled workers. Identical per-source answers.
pub fn eval_product_batch_parallel_csr_with<G: GraphView + Sync>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
) -> BatchResult {
    let (waves, mut stats) = wave_fanout(
        nfa,
        graph,
        sources,
        false,
        dop,
        pool,
        scratch,
        |masks, _start, wave_len| {
            let mut per: Vec<Vec<Oid>> = Vec::new(); // alloc-ok: result value
            collect_wave_answers(masks, wave_len, &mut per);
            per
        },
    );
    let mut per_source: Vec<Vec<Oid>> = Vec::with_capacity(sources.len()); // alloc-ok: result value
    for mut w in waves {
        per_source.append(&mut w);
    }
    stats.answers = per_source.iter().map(Vec::len).sum();
    BatchResult::from_per_source(per_source, stats)
}

/// Wave-parallel sibling of [`crate::eval_product_to_batch_csr_with`]:
/// the backward batch kernel (already-reversed automaton, reverse
/// adjacency) with target waves fanned across up to `dop` workers.
pub fn eval_product_to_batch_parallel_csr_with<G: GraphView + Sync>(
    reversed: &Nfa,
    graph: &G,
    targets: &[Oid],
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
) -> BatchResult {
    let (waves, mut stats) = wave_fanout(
        reversed,
        graph,
        targets,
        true,
        dop,
        pool,
        scratch,
        |masks, _start, wave_len| {
            let mut per: Vec<Vec<Oid>> = Vec::new(); // alloc-ok: result value
            collect_wave_answers(masks, wave_len, &mut per);
            per
        },
    );
    let mut per_target: Vec<Vec<Oid>> = Vec::with_capacity(targets.len()); // alloc-ok: result value
    for mut w in waves {
        per_target.append(&mut w);
    }
    stats.answers = per_target.iter().map(Vec::len).sum();
    BatchResult::from_per_source(per_target, stats)
}

/// Wave-parallel sibling of [`crate::eval_pairs_from_sources_csr_with`]:
/// set-valued forward pair bindings with source waves fanned across up to
/// `dop` workers. The finalize step sorts and dedups, so the binding set is
/// identical to the sequential kernel's.
pub fn eval_pairs_from_sources_parallel_csr_with<G: GraphView + Sync>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
) -> PairSetResult {
    let (waves, stats) = wave_fanout(
        nfa,
        graph,
        sources,
        false,
        dop,
        pool,
        scratch,
        |masks, start, wave_len| {
            let mut out: Vec<(Oid, Oid)> = Vec::new(); // alloc-ok: result value
            collect_mask_pairs(masks, start, wave_len, sources, false, &mut out);
            out
        },
    );
    finish_pairs(
        waves.into_iter().flatten().collect(),
        stats,
        Termination::Complete,
    )
}

/// Wave-parallel sibling of [`crate::eval_pairs_to_targets_csr_with`]:
/// set-valued backward pair bindings (already-reversed automaton) with
/// target waves fanned across up to `dop` workers.
pub fn eval_pairs_to_targets_parallel_csr_with<G: GraphView + Sync>(
    reversed: &Nfa,
    graph: &G,
    targets: &[Oid],
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
) -> PairSetResult {
    let (waves, stats) = wave_fanout(
        reversed,
        graph,
        targets,
        true,
        dop,
        pool,
        scratch,
        |masks, start, wave_len| {
            let mut out: Vec<(Oid, Oid)> = Vec::new(); // alloc-ok: result value
            collect_mask_pairs(masks, start, wave_len, targets, true, &mut out);
            out
        },
    );
    finish_pairs(
        waves.into_iter().flatten().collect(),
        stats,
        Termination::Complete,
    )
}

/// Wave-parallel sibling of [`crate::eval_pairs_bound_csr_with`]: the
/// both-bound semijoin form, probing each wave's masks at the bound target
/// nodes, with source waves fanned across up to `dop` workers.
pub fn eval_pairs_bound_parallel_csr_with<G: GraphView + Sync>(
    nfa: &Nfa,
    graph: &G,
    sources: &[Oid],
    targets: &[Oid],
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
) -> PairSetResult {
    let (waves, stats) = wave_fanout(
        nfa,
        graph,
        sources,
        false,
        dop,
        pool,
        scratch,
        |masks, start, wave_len| {
            let mut out: Vec<(Oid, Oid)> = Vec::new(); // alloc-ok: result value
            for &t in targets {
                let mask = masks.get(t.index()).copied().unwrap_or(0);
                let mut m = mask & lane_mask(wave_len);
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    out.push((sources[start + lane], t));
                }
            }
            out
        },
    );
    finish_pairs(
        waves.into_iter().flatten().collect(),
        stats,
        Termination::Complete,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::{eval_product_controlled_csr_with, eval_product_csr};
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::{CsrGraph, InstanceBuilder};

    fn web(n: usize) -> (Alphabet, CsrGraph, Oid, Nfa) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..n {
            b.edge(&format!("n{i}"), "a", &format!("n{}", (i * 7 + 1) % n));
            b.edge(&format!("n{i}"), "b", &format!("n{}", (i * 13 + 5) % n));
            if i % 3 == 0 {
                b.edge(&format!("n{i}"), "c", &format!("n{}", (i * 31 + 2) % n));
            }
        }
        let (inst, names) = b.finish();
        let r = parse_regex(&mut ab, "(a+b+c)*").unwrap();
        let nfa = Nfa::thompson(&r);
        let src = names["n0"];
        (ab, CsrGraph::from(&inst), src, nfa)
    }

    #[test]
    fn parallel_agrees_with_sequential_on_broad_closure() {
        let (_ab, graph, src, nfa) = web(400);
        let seq = eval_product_csr(&nfa, &graph, src);
        for dop in [1, 2, 4] {
            let pool = ScratchPool::new();
            let mut scratch = EvalScratch::new();
            let (res, term) = eval_product_parallel_csr_with(
                &nfa,
                &graph,
                src,
                None,
                FrontierMode::Hybrid,
                &EvalControl::UNLIMITED,
                dop,
                &pool,
                &mut scratch,
            );
            assert_eq!(term, Termination::Complete);
            assert_eq!(res.answers, seq.answers, "dop={dop}");
            assert_eq!(
                res.stats.edges_scanned, seq.stats.edges_scanned,
                "dop={dop}"
            );
        }
    }

    #[test]
    fn parallel_budget_is_a_sound_subset() {
        let (_ab, graph, src, nfa) = web(200);
        let full = eval_product_csr(&nfa, &graph, src);
        for budget in [0usize, 1, 17, 150, 100_000] {
            let pool = ScratchPool::new();
            let mut scratch = EvalScratch::new();
            let control = EvalControl {
                budget: Some(budget),
                cancel: None,
            };
            let (res, term) = eval_product_parallel_csr_with(
                &nfa,
                &graph,
                src,
                None,
                FrontierMode::Hybrid,
                &control,
                4,
                &pool,
                &mut scratch,
            );
            assert!(res.stats.edges_scanned <= budget, "budget={budget}");
            for o in &res.answers {
                assert!(full.answers.binary_search(o).is_ok(), "unsound answer");
            }
            if term == Termination::Complete {
                assert_eq!(res.answers, full.answers);
            }
            // sequential kernel under the same budget also stays within it
            let mut s2 = EvalScratch::new();
            let (seq, _) = eval_product_controlled_csr_with(
                &nfa,
                &graph,
                src,
                None,
                FrontierMode::Hybrid,
                &control,
                &mut s2,
            );
            assert!(seq.stats.edges_scanned <= budget);
        }
    }

    #[test]
    fn wave_fanout_agrees_with_sequential_kernels() {
        use crate::batch::{eval_product_batch_csr_with, eval_product_to_batch_csr_with};
        use crate::pairset::{
            eval_pairs_bound_csr_with, eval_pairs_from_sources_csr_with,
            eval_pairs_to_targets_csr_with,
        };
        let (_ab, graph, _src, nfa) = web(300);
        let seeds: Vec<Oid> = (0..300).step_by(2).map(|i| Oid(i as u32)).collect();
        let targets: Vec<Oid> = (0..300).step_by(7).map(|i| Oid(i as u32)).collect();
        let reversed = nfa.reverse();

        let mut s = EvalScratch::new();
        let batch_seq = eval_product_batch_csr_with(&nfa, &graph, &seeds, &mut s);
        let to_seq = eval_product_to_batch_csr_with(&reversed, &graph, &targets, &mut s);
        let from_seq = eval_pairs_from_sources_csr_with(&nfa, &graph, &seeds, &mut s);
        let tgt_seq = eval_pairs_to_targets_csr_with(&reversed, &graph, &targets, &mut s);
        let bound_seq = eval_pairs_bound_csr_with(&nfa, &graph, &seeds, &targets, &mut s);

        for dop in [1usize, 2, 4] {
            let pool = ScratchPool::new();
            let mut scr = EvalScratch::new();
            let b =
                eval_product_batch_parallel_csr_with(&nfa, &graph, &seeds, dop, &pool, &mut scr);
            assert_eq!(b.per_source(), batch_seq.per_source(), "batch dop={dop}");
            assert_eq!(b.union(), batch_seq.union(), "batch union dop={dop}");
            assert_eq!(b.stats.answers, batch_seq.stats.answers);

            let t = eval_product_to_batch_parallel_csr_with(
                &reversed, &graph, &targets, dop, &pool, &mut scr,
            );
            assert_eq!(t.per_source(), to_seq.per_source(), "to-batch dop={dop}");

            let f = eval_pairs_from_sources_parallel_csr_with(
                &nfa, &graph, &seeds, dop, &pool, &mut scr,
            );
            assert_eq!(f.pairs, from_seq.pairs, "pairs-from dop={dop}");

            let g = eval_pairs_to_targets_parallel_csr_with(
                &reversed, &graph, &targets, dop, &pool, &mut scr,
            );
            assert_eq!(g.pairs, tgt_seq.pairs, "pairs-to dop={dop}");

            let h = eval_pairs_bound_parallel_csr_with(
                &nfa, &graph, &seeds, &targets, dop, &pool, &mut scr,
            );
            assert_eq!(h.pairs, bound_seq.pairs, "pairs-bound dop={dop}");
            if dop > 1 {
                assert!(h.stats.threads_used >= 2, "fan-out engaged at dop={dop}");
            }
        }
    }

    #[test]
    fn worker_pool_governs_permits() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.parallelism(), 4);
        assert_eq!(pool.available(), 3);
        let a = pool.lease(4);
        assert_eq!(a.dop(), 4);
        assert_eq!(pool.available(), 0);
        let b = pool.lease(4);
        assert_eq!(b.dop(), 1, "denied queries run sequentially");
        drop(a);
        assert_eq!(pool.available(), 3);
        let c = pool.lease(2);
        assert_eq!(c.dop(), 2);
        assert_eq!(pool.available(), 2);
        drop((b, c));
        assert_eq!(pool.available(), 3);
        // sequential-only pool grants nothing
        let seq = WorkerPool::new(1);
        assert_eq!(seq.lease(8).dop(), 1);
    }

    #[test]
    fn forced_modes_agree_in_parallel() {
        let (_ab, graph, src, nfa) = web(150);
        let seq = eval_product_csr(&nfa, &graph, src);
        for mode in [
            FrontierMode::ForcedSparse,
            FrontierMode::ForcedDense,
            FrontierMode::hybrid_with_discount(64),
        ] {
            let pool = ScratchPool::new();
            let mut scratch = EvalScratch::new();
            let (res, _) = eval_product_parallel_csr_with(
                &nfa,
                &graph,
                src,
                None,
                mode,
                &EvalControl::UNLIMITED,
                3,
                &pool,
                &mut scratch,
            );
            assert_eq!(res.answers, seq.answers, "{mode:?}");
        }
    }
}
