//! Evaluation statistics shared by all engines.

use serde::{Deserialize, Serialize};

/// Work counters reported by every evaluation engine, used by the Section 2
/// complexity experiments (bench `t1_eval_scaling`) to compare engines on
/// the same inputs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Distinct (automaton-state, node) or (quotient-class, node) pairs
    /// materialized — the data-complexity driver.
    pub pairs_visited: usize,
    /// Graph edges scanned (with multiplicity).
    pub edges_scanned: usize,
    /// Distinct quotient classes / DFA states materialized (1 for engines
    /// that track NFA states individually is *not* meaningful; product
    /// engines report the number of distinct automaton states touched).
    pub classes_materialized: usize,
    /// Number of answers produced.
    pub answers: usize,
}

impl EvalStats {
    /// Sum of the work counters — a crude single-number cost.
    pub fn total_work(&self) -> usize {
        self.pairs_visited + self.edges_scanned
    }

    /// Accumulate `other` into `self` — the aggregation used by
    /// `BatchResult` (and the default `Engine::eval_batch` loop), so work
    /// counters from per-source calls are no longer discarded. All four
    /// counters sum; for per-source batches `answers` is therefore the
    /// *total* across sources (with multiplicity), not the union size,
    /// and `classes_materialized` counts classes touched per constituent
    /// run (with multiplicity), not distinct classes across the batch.
    pub fn merge(&mut self, other: &EvalStats) {
        self.pairs_visited += other.pairs_visited;
        self.edges_scanned += other.edges_scanned;
        self.classes_materialized += other.classes_materialized;
        self.answers += other.answers;
    }
}
