//! Evaluation statistics shared by all engines.

use serde::{Deserialize, Serialize};

/// A planned traversal direction, as reported in [`EvalStats`] and chosen
/// by `rpq_optimizer::PlannedEngine` from per-label statistics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Forward product BFS over the forward adjacency — the first label
    /// group is decisively the rare end.
    Forward,
    /// Backward product BFS (reversed NFA over the reverse adjacency) —
    /// the last label group is decisively the rare end.
    Backward,
    /// Meet-in-the-middle — neither end dominates.
    Bidirectional,
}

/// Work counters reported by every evaluation engine, used by the Section 2
/// complexity experiments (bench `t1_eval_scaling`) to compare engines on
/// the same inputs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Distinct (automaton-state, node) or (quotient-class, node) pairs
    /// materialized — the data-complexity driver.
    pub pairs_visited: usize,
    /// Graph edges scanned (with multiplicity).
    pub edges_scanned: usize,
    /// Distinct quotient classes / DFA states materialized (1 for engines
    /// that track NFA states individually is *not* meaningful; product
    /// engines report the number of distinct automaton states touched).
    pub classes_materialized: usize,
    /// Number of answers produced.
    pub answers: usize,
    /// Compiled plans served from the planner's memo during this
    /// evaluation (0 for unplanned engines).
    pub plan_cache_hits: usize,
    /// Plans built from scratch (rewrite search + compilation) during this
    /// evaluation (0 for unplanned engines).
    pub plan_cache_misses: usize,
    /// The traversal direction the planner chose, when a planner ran
    /// (`None` for unplanned engines). Together with the cache counters,
    /// this is the observability seam the cost-calibration work reads.
    pub plan_direction: Option<Direction>,
}

impl EvalStats {
    /// Sum of the work counters — a crude single-number cost.
    pub fn total_work(&self) -> usize {
        self.pairs_visited + self.edges_scanned
    }

    /// Accumulate `other` into `self` — the aggregation used by
    /// `BatchResult` (and the default `Engine::eval_batch` loop), so work
    /// counters from per-source calls are no longer discarded. All counters
    /// sum; for per-source batches `answers` is therefore the *total*
    /// across sources (with multiplicity), not the union size, and
    /// `classes_materialized` counts classes touched per constituent run
    /// (with multiplicity), not distinct classes across the batch. The
    /// first recorded `plan_direction` wins (one plan serves a batch).
    pub fn merge(&mut self, other: &EvalStats) {
        self.pairs_visited += other.pairs_visited;
        self.edges_scanned += other.edges_scanned;
        self.classes_materialized += other.classes_materialized;
        self.answers += other.answers;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.plan_direction = self.plan_direction.or(other.plan_direction);
    }
}
