//! Evaluation statistics shared by all engines.

use serde::{Deserialize, Serialize};

/// A planned traversal direction, as reported in [`EvalStats`] and chosen
/// by `rpq_optimizer::PlannedEngine` from per-label statistics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Forward product BFS over the forward adjacency — the first label
    /// group is decisively the rare end.
    Forward,
    /// Backward product BFS (reversed NFA over the reverse adjacency) —
    /// the last label group is decisively the rare end.
    Backward,
    /// Meet-in-the-middle — neither end dominates.
    Bidirectional,
}

/// Per-atom work record for conjunctive (multi-atom) evaluations: one
/// entry per atom *in execution order*, so the sequence of `atom` indices
/// IS the join order the planner chose — the join-order telemetry the
/// server's `Metrics` aggregate.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomStats {
    /// The atom's index in the query's textual atom list (not the
    /// execution position — that is this entry's position in
    /// [`EvalStats::atoms`]).
    pub atom: usize,
    /// The traversal direction this atom was evaluated in (`None` when the
    /// atom was skipped, e.g. after budget exhaustion).
    pub direction: Option<Direction>,
    /// Graph edges scanned evaluating this atom.
    pub edges_scanned: usize,
    /// (source, target) bindings the atom contributed after semijoin
    /// restriction — the intermediate-result size the join planner tries
    /// to keep small.
    pub bindings: usize,
}

/// Work counters reported by every evaluation engine, used by the Section 2
/// complexity experiments (bench `t1_eval_scaling`) to compare engines on
/// the same inputs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Distinct (automaton-state, node) or (quotient-class, node) pairs
    /// materialized — the data-complexity driver.
    pub pairs_visited: usize,
    /// Graph edges scanned (with multiplicity).
    pub edges_scanned: usize,
    /// Distinct quotient classes / DFA states materialized (1 for engines
    /// that track NFA states individually is *not* meaningful; product
    /// engines report the number of distinct automaton states touched).
    pub classes_materialized: usize,
    /// Number of answers produced.
    pub answers: usize,
    /// Compiled plans served from the planner's memo during this
    /// evaluation (0 for unplanned engines).
    pub plan_cache_hits: usize,
    /// Plans built from scratch (rewrite search + compilation) during this
    /// evaluation (0 for unplanned engines).
    pub plan_cache_misses: usize,
    /// The traversal direction the planner chose, when a planner ran
    /// (`None` for unplanned engines). Together with the cache counters,
    /// this is the observability seam the cost-calibration work reads.
    pub plan_direction: Option<Direction>,
    /// Distinct query symbols erased by the planner's alphabet restriction
    /// (zero edges with that label in the snapshot). 0 for unplanned
    /// engines or when every query symbol occurs in the data.
    pub symbols_pruned: usize,
    /// NFA states dropped by the planner's trim pass (not on any
    /// start→accept path after alphabet restriction). 0 for unplanned
    /// engines.
    pub states_trimmed: usize,
    /// Did static analysis prove the query's language finite? Finite
    /// queries run the bounded-depth product fast path with an exact depth
    /// cap from the longest accepted word.
    pub finite_language: bool,
    /// Rewrite winners certified sound by the both-ways inclusion check
    /// under the constraint closure (0 when no rewrite fired).
    pub rewrites_certified: usize,
    /// Rewrite winners *rejected* by certification and rolled back to the
    /// original query. Nonzero values are a planner bug tripwire — the
    /// rewrite search validated a candidate certification then refuted.
    pub rewrites_rejected: usize,
    /// Wall-clock nanoseconds the static analysis pass spent at plan time
    /// (amortized to zero on plan-memo hits, which re-report the plan-time
    /// figure).
    pub analysis_ns: u64,
    /// BFS levels the hybrid product search expanded in sparse *push* mode
    /// (0 for non-product engines).
    pub push_levels: usize,
    /// BFS levels the hybrid product search expanded in dense *pull* mode —
    /// nonzero only when the direction-optimizing switch fired (or pull was
    /// forced).
    pub pull_levels: usize,
    /// Largest per-level frontier, in (state, node) pairs — the signal the
    /// planner will calibrate the push/pull switch threshold from.
    pub frontier_peak: usize,
    /// Evaluations served from a warm `ScratchPool` buffer whose capacity
    /// already covered this query's |Q|·|V| shape (no fresh allocation on
    /// the hot path).
    pub scratch_reused: usize,
    /// Peak number of OS threads a single evaluation engaged (1 for a
    /// purely sequential run, 0 for engines that predate the parallel
    /// kernels). Set by the frontier-parallel product search and the
    /// parallel wave fan-outs.
    pub threads_used: usize,
    /// Frontier chunks (or pull slabs / lane waves) a parallel worker
    /// claimed *beyond* its fair share — the work-stealing signal: nonzero
    /// means the static partition was skewed and the shared-cursor claims
    /// rebalanced it.
    pub steal_count: usize,
    /// BFS levels (or wave batches) expanded with more than one worker.
    /// `parallel_levels = 0` with `threads_used <= 1` certifies the
    /// sequential fast path ran — the zero-regression observable.
    pub parallel_levels: usize,
    /// Per-atom records for conjunctive evaluations, in execution order
    /// (see [`AtomStats`]). Empty for single-atom requests.
    pub atoms: Vec<AtomStats>,
}

impl EvalStats {
    /// Sum of the work counters — a crude single-number cost.
    pub fn total_work(&self) -> usize {
        self.pairs_visited + self.edges_scanned
    }

    /// Accumulate `other` into `self` — the aggregation used by
    /// `BatchResult` (and the default `Engine::eval_batch` loop), so work
    /// counters from per-source calls are no longer discarded. All counters
    /// sum; for per-source batches `answers` is therefore the *total*
    /// across sources (with multiplicity), not the union size, and
    /// `classes_materialized` counts classes touched per constituent run
    /// (with multiplicity), not distinct classes across the batch. The
    /// first recorded `plan_direction` wins (one plan serves a batch).
    pub fn merge(&mut self, other: &EvalStats) {
        self.pairs_visited += other.pairs_visited;
        self.edges_scanned += other.edges_scanned;
        self.classes_materialized += other.classes_materialized;
        self.answers += other.answers;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.plan_direction = self.plan_direction.or(other.plan_direction);
        // Analysis facts are per-plan: counters sum (one plan per
        // constituent run), flags OR (a batch is "finite" if any planned
        // constituent was), and analysis time sums like any cost counter.
        self.symbols_pruned += other.symbols_pruned;
        self.states_trimmed += other.states_trimmed;
        self.finite_language |= other.finite_language;
        self.rewrites_certified += other.rewrites_certified;
        self.rewrites_rejected += other.rewrites_rejected;
        self.analysis_ns += other.analysis_ns;
        // Hot-path telemetry: level and reuse counters sum like any work
        // counter; the frontier peak is a high-water mark, so it maxes.
        self.push_levels += other.push_levels;
        self.pull_levels += other.pull_levels;
        self.frontier_peak = self.frontier_peak.max(other.frontier_peak);
        self.scratch_reused += other.scratch_reused;
        // Parallelism telemetry: the thread count is a high-water mark
        // (constituent runs share one pool), steals and parallel levels sum
        // like any work counter.
        self.threads_used = self.threads_used.max(other.threads_used);
        self.steal_count += other.steal_count;
        self.parallel_levels += other.parallel_levels;
        // Per-atom records concatenate in merge order, preserving each
        // constituent's execution sequence.
        self.atoms.extend(other.atoms.iter().cloned());
    }
}
