//! General path queries and the `μ` translation (Section 2.4).
//!
//! Languages like Lorel use regular expressions at two granularities: over
//! *characters* within a label and over *labels* along a path, e.g.
//!
//! ```text
//! "doc" ("[sS]ections?" "text" + "[pP]aragraph")
//! ```
//!
//! The paper reduces such *general path queries* over instances with
//! arbitrarily many labels to ordinary regular path queries over a finite
//! alphabet (Proposition 2.2): labels are grouped into equivalence classes
//! `v ≡ v'` iff they satisfy exactly the same patterns of the query; `μ`
//! replaces each label by its class representative in both the instance and
//! the query. [`MuTranslation`] materializes that construction (Example 2.1
//! / Figure 1), and [`eval_general_direct`] provides an independent direct
//! evaluator used to verify Proposition 2.2.

use std::collections::HashMap;

use rpq_automata::charpat::{parse_char_pattern, CharPattern, CompiledPattern};
use rpq_automata::{parse_regex, Alphabet, Regex, Symbol};
use rpq_graph::{Instance, Oid};

use crate::product::eval_product;

/// A path-level regular expression whose atoms are character patterns
/// (indices into [`GeneralPathQuery::patterns`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeneralRegex {
    /// ∅ at the path level.
    Empty,
    /// ε at the path level.
    Epsilon,
    /// One edge whose label matches the pattern.
    Pattern(usize),
    /// Concatenation.
    Concat(Vec<GeneralRegex>),
    /// Union.
    Union(Vec<GeneralRegex>),
    /// Kleene star.
    Star(Box<GeneralRegex>),
}

/// A parsed general path query: the paper's two-level expressions.
#[derive(Clone, Debug)]
pub struct GeneralPathQuery {
    /// The set Π of string patterns occurring in the query (deduplicated).
    pub patterns: Vec<CharPattern>,
    /// Pattern sources as written (for display).
    pub pattern_sources: Vec<String>,
    /// The path-level structure.
    pub ast: GeneralRegex,
}

impl GeneralPathQuery {
    /// Parse a general path query. Each atom (identifier or quoted string)
    /// is interpreted as a grep-style character pattern; path-level
    /// operators are the usual `+`, concatenation, `*`, `?`.
    pub fn parse(src: &str) -> Result<GeneralPathQuery, String> {
        // Parse the path level with a private alphabet whose "labels" are
        // the pattern sources, then lift each symbol to a char pattern.
        let mut pattern_ab = Alphabet::new();
        let path = parse_regex(&mut pattern_ab, src).map_err(|e| e.to_string())?;
        let mut patterns = Vec::with_capacity(pattern_ab.len());
        let mut pattern_sources = Vec::with_capacity(pattern_ab.len());
        for s in pattern_ab.symbols() {
            let source = pattern_ab.name(s).to_owned();
            patterns.push(parse_char_pattern(&source)?);
            pattern_sources.push(source);
        }
        fn lift(r: &Regex) -> GeneralRegex {
            match r {
                Regex::Empty => GeneralRegex::Empty,
                Regex::Epsilon => GeneralRegex::Epsilon,
                Regex::Symbol(s) => GeneralRegex::Pattern(s.index()),
                Regex::Concat(parts) => GeneralRegex::Concat(parts.iter().map(lift).collect()),
                Regex::Union(parts) => GeneralRegex::Union(parts.iter().map(lift).collect()),
                Regex::Star(inner) => GeneralRegex::Star(Box::new(lift(inner))),
            }
        }
        Ok(GeneralPathQuery {
            patterns,
            pattern_sources,
            ast: lift(&path),
        })
    }
}

/// The materialized `μ` translation of a general path query against an
/// instance: label equivalence classes, the relabeled instance `μ(I)`, and
/// the translated ordinary query `μ(q)`.
#[derive(Debug)]
pub struct MuTranslation {
    /// Fresh alphabet of class-representative labels.
    pub class_alphabet: Alphabet,
    /// One symbol (in `class_alphabet`) per equivalence class.
    pub class_syms: Vec<Symbol>,
    /// Per class: the sorted indices of patterns its labels satisfy.
    pub class_signature: Vec<Vec<usize>>,
    /// Per class: a representative original label (the paper's `l([v])`).
    pub class_repr: Vec<String>,
    /// Map original label symbol → class index.
    pub label_class: HashMap<Symbol, usize>,
    /// The relabeled instance `μ(I)` (same node ids as the original).
    pub mu_instance: Instance,
    /// The translated query `μ(q)` over `class_alphabet`.
    pub mu_query: Regex,
}

/// Build the `μ` translation of `query` against `instance` (labels are
/// classified relative to the labels actually occurring in the instance).
pub fn translate(
    query: &GeneralPathQuery,
    instance: &Instance,
    original_alphabet: &Alphabet,
) -> MuTranslation {
    let compiled: Vec<CompiledPattern> = query
        .patterns
        .iter()
        .map(CompiledPattern::compile)
        .collect();

    // Collect distinct labels in use.
    let mut labels: Vec<Symbol> = Vec::new();
    for (_, l, _) in instance.edges() {
        if !labels.contains(&l) {
            labels.push(l);
        }
    }
    labels.sort();

    // Signature of each label; group into classes.
    let mut class_of_sig: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut class_signature: Vec<Vec<usize>> = Vec::new();
    let mut class_repr: Vec<String> = Vec::new();
    let mut label_class: HashMap<Symbol, usize> = HashMap::new();
    for &l in &labels {
        let name = original_alphabet.name(l);
        let sig: Vec<usize> = compiled
            .iter()
            .enumerate()
            .filter(|(_, p)| p.matches(name))
            .map(|(i, _)| i)
            .collect();
        let class = match class_of_sig.get(&sig) {
            Some(&c) => c,
            None => {
                let c = class_signature.len();
                class_of_sig.insert(sig.clone(), c);
                class_signature.push(sig);
                class_repr.push(name.to_owned());
                c
            }
        };
        label_class.insert(l, class);
    }

    // Fresh alphabet with one symbol per class, named by representative.
    let mut class_alphabet = Alphabet::new();
    let class_syms: Vec<Symbol> = class_repr
        .iter()
        .enumerate()
        .map(|(c, r)| class_alphabet.intern(&format!("{r}#{c}")))
        .collect();

    // μ(I): relabel edges.
    let mut mu_instance = Instance::new();
    for o in instance.nodes() {
        let copied = mu_instance.add_named_node(&instance.node_name(o));
        debug_assert_eq!(copied, o);
    }
    for (a, l, b) in instance.edges() {
        mu_instance.add_edge(a, class_syms[label_class[&l]], b);
    }

    // μ(q): each pattern becomes the union of class symbols satisfying it.
    fn lower(g: &GeneralRegex, class_signature: &[Vec<usize>], class_syms: &[Symbol]) -> Regex {
        match g {
            GeneralRegex::Empty => Regex::Empty,
            GeneralRegex::Epsilon => Regex::Epsilon,
            GeneralRegex::Pattern(i) => Regex::union(
                class_signature
                    .iter()
                    .enumerate()
                    .filter(|(_, sig)| sig.contains(i))
                    .map(|(c, _)| Regex::sym(class_syms[c]))
                    .collect(),
            ),
            GeneralRegex::Concat(parts) => Regex::concat(
                parts
                    .iter()
                    .map(|p| lower(p, class_signature, class_syms))
                    .collect(),
            ),
            GeneralRegex::Union(parts) => Regex::union(
                parts
                    .iter()
                    .map(|p| lower(p, class_signature, class_syms))
                    .collect(),
            ),
            GeneralRegex::Star(inner) => lower(inner, class_signature, class_syms).star(),
        }
    }
    let mu_query = lower(&query.ast, &class_signature, &class_syms);

    MuTranslation {
        class_alphabet,
        class_syms,
        class_signature,
        class_repr,
        label_class,
        mu_instance,
        mu_query,
    }
}

/// Evaluate a general path query via the `μ` translation (Proposition 2.2):
/// `q(o, I) = μ(q)(o, μ(I))`.
pub fn eval_general(
    query: &GeneralPathQuery,
    instance: &Instance,
    source: Oid,
    original_alphabet: &Alphabet,
) -> Vec<Oid> {
    let mu = translate(query, instance, original_alphabet);
    let nfa = rpq_automata::Nfa::thompson(&mu.mu_query);
    eval_product(&nfa, &mu.mu_instance, source).answers
}

/// Direct evaluation of a general path query, *without* the translation:
/// product BFS where a transition on pattern `i` fires on every edge whose
/// label string matches pattern `i`. Independent implementation used to
/// verify Proposition 2.2.
pub fn eval_general_direct(
    query: &GeneralPathQuery,
    instance: &Instance,
    source: Oid,
    original_alphabet: &Alphabet,
) -> Vec<Oid> {
    // Thompson construction over GeneralRegex.
    struct Frag {
        eps: Vec<Vec<usize>>,
        pat: Vec<Vec<(usize, usize)>>, // (pattern, target)
        accept: usize,
    }
    impl Frag {
        fn add_state(&mut self) -> usize {
            self.eps.push(Vec::new());
            self.pat.push(Vec::new());
            self.eps.len() - 1
        }
        fn build(&mut self, g: &GeneralRegex, from: usize, to: usize) {
            match g {
                GeneralRegex::Empty => {}
                GeneralRegex::Epsilon => self.eps[from].push(to),
                GeneralRegex::Pattern(i) => self.pat[from].push((*i, to)),
                GeneralRegex::Concat(parts) => {
                    let mut cur = from;
                    for (k, p) in parts.iter().enumerate() {
                        let next = if k + 1 == parts.len() {
                            to
                        } else {
                            self.add_state()
                        };
                        self.build(p, cur, next);
                        cur = next;
                    }
                    if parts.is_empty() {
                        self.eps[from].push(to);
                    }
                }
                GeneralRegex::Union(parts) => {
                    for p in parts {
                        self.build(p, from, to);
                    }
                }
                GeneralRegex::Star(inner) => {
                    let hub = self.add_state();
                    self.eps[from].push(hub);
                    self.eps[hub].push(to);
                    let back = self.add_state();
                    self.build(inner, hub, back);
                    self.eps[back].push(hub);
                }
            }
        }
    }
    let mut f = Frag {
        eps: vec![Vec::new(), Vec::new()],
        pat: vec![Vec::new(), Vec::new()],
        accept: 1,
    };
    let ast = query.ast.clone();
    f.build(&ast, 0, 1);

    let compiled: Vec<CompiledPattern> = query
        .patterns
        .iter()
        .map(CompiledPattern::compile)
        .collect();
    // Memoize pattern × label matches.
    let mut match_memo: HashMap<(usize, Symbol), bool> = HashMap::new();

    let nv = instance.num_nodes();
    let ns = f.eps.len();
    let mut seen = vec![false; ns * nv];
    let mut answer = vec![false; nv];
    let mut stack = vec![(0usize, source)];
    seen[source.index()] = true;
    while let Some((q, v)) = stack.pop() {
        if q == f.accept {
            answer[v.index()] = true;
        }
        for &q2 in &f.eps[q] {
            let idx = q2 * nv + v.index();
            if !seen[idx] {
                seen[idx] = true;
                stack.push((q2, v));
            }
        }
        for &(pi, q2) in &f.pat[q] {
            for &(label, v2) in instance.out_edges(v) {
                let hit = *match_memo
                    .entry((pi, label))
                    .or_insert_with(|| compiled[pi].matches(original_alphabet.name(label)));
                if hit {
                    let idx = q2 * nv + v2.index();
                    if !seen[idx] {
                        seen[idx] = true;
                        stack.push((q2, v2));
                    }
                }
            }
        }
    }
    instance.nodes().filter(|o| answer[o.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::InstanceBuilder;

    fn doc_instance() -> (Alphabet, Instance, Oid) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("root", "doc", "d1");
        b.edge("d1", "section", "s1");
        b.edge("d1", "Sections", "s2");
        b.edge("s1", "text", "t1");
        b.edge("s2", "text", "t2");
        b.edge("d1", "Paragraph", "p1");
        b.edge("d1", "footnote", "f1");
        let (inst, names) = b.finish();
        let root = names["root"];
        (ab, inst, root)
    }

    #[test]
    fn parses_paper_query() {
        let q =
            GeneralPathQuery::parse(r#""doc" ("[sS]ections?" "text" + "[pP]aragraph")"#).unwrap();
        assert_eq!(q.patterns.len(), 4);
    }

    #[test]
    fn mu_translation_evaluates_doc_query() {
        let (ab, inst, root) = doc_instance();
        let q =
            GeneralPathQuery::parse(r#""doc" ("[sS]ections?" "text" + "[pP]aragraph")"#).unwrap();
        let answers = eval_general(&q, &inst, root, &ab);
        let mut names: Vec<String> = answers.iter().map(|&o| inst.node_name(o)).collect();
        names.sort();
        assert_eq!(names, ["p1", "t1", "t2"]);
    }

    #[test]
    fn direct_and_translated_agree() {
        let (ab, inst, root) = doc_instance();
        for src in [
            r#""doc" ("[sS]ections?" "text" + "[pP]aragraph")"#,
            r#"("(.)*")* "text""#,
            r#""doc" "[sf].*""#,
            r#""doc"*"#,
        ] {
            let q = GeneralPathQuery::parse(src).unwrap();
            let via_mu = eval_general(&q, &inst, root, &ab);
            let direct = eval_general_direct(&q, &inst, root, &ab);
            assert_eq!(via_mu, direct, "Proposition 2.2 violated for {src}");
        }
    }

    #[test]
    fn classes_partition_labels() {
        let (ab, inst, _) = doc_instance();
        let q = GeneralPathQuery::parse(r#""[sS]ections?" + "[pP]aragraph""#).unwrap();
        let mu = translate(&q, &inst, &ab);
        // section & Sections share a class; Paragraph its own; doc/text/footnote
        // all match nothing → one "h" class.
        assert_eq!(mu.class_signature.len(), 3);
        let mut total = 0;
        for c in 0..mu.class_signature.len() {
            total += mu.label_class.values().filter(|&&x| x == c).count();
        }
        assert_eq!(total, mu.label_class.len());
    }

    #[test]
    fn example_21_class_count() {
        // Example 2.1: patterns a*b, ba*, c, dd* over suitable labels yield
        // six classes: [b], [ab], [ba], [c], [d], [h].
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        // one edge per interesting label
        for (i, l) in ["b", "aab", "baa", "c", "dd", "zzz"].iter().enumerate() {
            b.edge("o", l, &format!("t{i}"));
        }
        let (inst, _) = b.finish();
        let q = GeneralPathQuery::parse(
            r#"("a*b" "ba*") + ("a*b" "c") + ("ba*" "c") + "dd*" ("dd*")*"#,
        )
        .unwrap();
        let mu = translate(&q, &inst, &ab);
        assert_eq!(mu.class_signature.len(), 6, "{:?}", mu.class_repr);
    }
}
