//! The unified request/response calling convention — one entry point for
//! every evaluation shape.
//!
//! Historically each question had its own `Engine` method: `eval` (one
//! source), `eval_batch` (many sources), `eval_to` (one target),
//! `eval_to_batch` (many targets), plus the free-function pair scenario.
//! [`EvalRequest`] collapses them: a [`SourceSpec`] names the question, and
//! optional *execution controls* — a fetch budget on `edges_scanned`, a
//! cooperative cancellation flag, a [`FrontierMode`] and a direction hint —
//! ride along uniformly. [`Engine::run`] is the single dispatch point; the
//! legacy methods are thin wrappers over it, and `rpq-server` uses the
//! request form as its wire-level query type.
//!
//! ## Soundness under early termination
//!
//! A budgeted or cancelled run stops mid-search, but every answer it has
//! already collected is a *true* answer: the product BFS only reports a
//! node once an accepting `(state, node)` pair is actually reached, so a
//! partial exploration yields a sound subset (the same contract as
//! [`crate::StreamingEval`]'s budget semantics, where only a fully explored
//! search reports `Terminated`). [`EvalResponse::termination`] says which
//! case occurred: [`Termination::Complete`] means the answer set is exact;
//! [`Termination::BudgetExhausted`] / [`Termination::Cancelled`] mean it is
//! a sound subset (and a pair's `reachable == false` is "not determined",
//! not "no").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rpq_graph::{CsrGraph, Oid};

use crate::batch::{eval_product_matrix_csr_with, BatchResult, MatrixResult};
use crate::engine::{Engine, Query};
use crate::pair::{eval_product_pair_controlled_csr_with, PairResult};
use crate::pairset::{
    eval_pairs_bound_controlled_csr_with, eval_pairs_bound_csr_with,
    eval_pairs_from_sources_controlled_csr_with, eval_pairs_from_sources_csr_with,
    eval_pairs_to_targets_controlled_csr_with, eval_pairs_to_targets_csr_with, seed_candidates,
    PairSetResult,
};
use crate::product::{
    eval_product_backward_controlled_reversed_csr_with, eval_product_controlled_csr_with,
    EvalResult, FrontierMode,
};
use crate::scratch::EvalScratch;
use crate::stats::{Direction, EvalStats};

/// Execution controls threaded into the product BFS level loops: an
/// `edges_scanned` budget and a cooperative cancellation flag. The search
/// checks the flag once per BFS level and enforces the budget *before*
/// scanning each row, so a controlled run always reports
/// `edges_scanned ≤ budget`.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalControl<'a> {
    /// Hard cap on `stats.edges_scanned` (`None` = unlimited).
    pub budget: Option<usize>,
    /// Set by another thread to stop the search at the next level boundary.
    pub cancel: Option<&'a AtomicBool>,
}

impl EvalControl<'static> {
    /// No budget, no cancellation — the classic uncontrolled search.
    pub const UNLIMITED: EvalControl<'static> = EvalControl {
        budget: None,
        cancel: None,
    };
}

impl EvalControl<'_> {
    /// Has the cancellation flag been raised?
    pub fn cancelled(&self) -> bool {
        self.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Neither budget nor cancellation is in play.
    pub fn is_unlimited(&self) -> bool {
        self.budget.is_none() && self.cancel.is_none()
    }
}

/// How a controlled evaluation ended. Answers collected before a
/// non-complete termination are always a sound subset (see the module
/// docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Termination {
    /// The search ran to exhaustion — the answer set is exact.
    Complete,
    /// The `edges_scanned` budget tripped; answers are a sound subset.
    BudgetExhausted,
    /// The cancellation flag was raised; answers are a sound subset.
    Cancelled,
}

impl Termination {
    /// Did the search explore everything (answers are exact)?
    pub fn is_complete(&self) -> bool {
        matches!(self, Termination::Complete)
    }
}

/// Which reachability question a request asks — the axis that used to pick
/// an `Engine` method.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceSpec {
    /// `p(source, I)` — the paper's question (legacy `eval`).
    Source(Oid),
    /// `p(oᵢ, I)` for every source, per-source answers (legacy
    /// `eval_batch`).
    Sources(Vec<Oid>),
    /// `{o | target ∈ p(o, I)}` (legacy `eval_to`).
    Target(Oid),
    /// The target-bound question for every target (legacy `eval_to_batch`).
    Targets(Vec<Oid>),
    /// `target ∈ p(source, I)?` (legacy pair scenario).
    Pair {
        /// Path start.
        source: Oid,
        /// Path end.
        target: Oid,
    },
    /// The full N×M reachability matrix `target ∈ p(source, I)` in one
    /// bit-parallel pass ([`MatrixResult`]).
    Matrix {
        /// Row objects (path starts).
        sources: Vec<Oid>,
        /// Column objects (path ends).
        targets: Vec<Oid>,
    },
    /// The *binding set* `{(s, t) | t ∈ p(s, I)}` restricted to optional
    /// endpoint sets — the conjunctive-query form. On a single-atom query
    /// this asks the atom's set-valued pair question directly
    /// ([`crate::pairset`]); `rpq-optimizer` routes multi-atom CRPQs
    /// through the same spec, with `sources` / `targets` restricting the
    /// head variables. `None` means the endpoint is a free variable
    /// (unrestricted).
    Conjunctive {
        /// Allowed left-endpoint (head source variable) bindings; `None` =
        /// free.
        sources: Option<Vec<Oid>>,
        /// Allowed right-endpoint (head target variable) bindings; `None` =
        /// free.
        targets: Option<Vec<Oid>>,
    },
}

/// One evaluation request: the question ([`SourceSpec`]) plus uniform
/// execution controls. Built with the constructors and `with_*` builders;
/// dispatched by [`Engine::run`].
///
/// The direction and frontier-mode fields are *hints*: engines with their
/// own strategy (or a planner) may override them; the controlled execution
/// paths honor `frontier_mode` directly.
#[derive(Clone, Debug)]
pub struct EvalRequest {
    /// The question being asked.
    pub spec: SourceSpec,
    /// Traversal-direction hint for planning engines (`None` = let the
    /// engine decide).
    pub direction: Option<Direction>,
    /// Fetch budget: hard cap on `edges_scanned` (`None` = unlimited).
    pub budget: Option<usize>,
    /// Per-level expansion strategy for the product BFS paths.
    pub frontier_mode: FrontierMode,
    /// Cooperative cancellation flag, shared with the submitting thread.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl EvalRequest {
    /// An uncontrolled request asking `spec`, with default hints. The
    /// shape-specific constructors below are shorthand over this.
    pub fn new(spec: SourceSpec) -> EvalRequest {
        EvalRequest {
            spec,
            direction: None,
            budget: None,
            frontier_mode: FrontierMode::default(),
            cancel: None,
        }
    }

    fn with_spec(spec: SourceSpec) -> EvalRequest {
        EvalRequest::new(spec)
    }

    /// Single-source request (legacy `eval`).
    pub fn source(source: Oid) -> EvalRequest {
        EvalRequest::with_spec(SourceSpec::Source(source))
    }

    /// Multi-source request (legacy `eval_batch`).
    pub fn sources(sources: Vec<Oid>) -> EvalRequest {
        EvalRequest::with_spec(SourceSpec::Sources(sources))
    }

    /// Single-target request (legacy `eval_to`).
    pub fn target(target: Oid) -> EvalRequest {
        EvalRequest::with_spec(SourceSpec::Target(target))
    }

    /// Multi-target request (legacy `eval_to_batch`).
    pub fn targets(targets: Vec<Oid>) -> EvalRequest {
        EvalRequest::with_spec(SourceSpec::Targets(targets))
    }

    /// Pair-reachability request.
    pub fn pair(source: Oid, target: Oid) -> EvalRequest {
        EvalRequest::with_spec(SourceSpec::Pair { source, target })
    }

    /// N×M reachability-matrix request.
    pub fn matrix(sources: Vec<Oid>, targets: Vec<Oid>) -> EvalRequest {
        EvalRequest::with_spec(SourceSpec::Matrix { sources, targets })
    }

    /// Binding-set (conjunctive) request: all `(s, t)` pairs the query
    /// relates, optionally restricted to endpoint sets (`None` = free).
    pub fn conjunctive(sources: Option<Vec<Oid>>, targets: Option<Vec<Oid>>) -> EvalRequest {
        EvalRequest::with_spec(SourceSpec::Conjunctive { sources, targets })
    }

    /// Cap `edges_scanned` at `budget`.
    pub fn with_budget(mut self, budget: usize) -> EvalRequest {
        self.budget = Some(budget);
        self
    }

    /// Attach a cancellation flag (shared with the submitting thread).
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> EvalRequest {
        self.cancel = Some(cancel);
        self
    }

    /// Force a per-level expansion strategy.
    pub fn with_frontier_mode(mut self, mode: FrontierMode) -> EvalRequest {
        self.frontier_mode = mode;
        self
    }

    /// Hint a traversal direction to planning engines.
    pub fn with_direction(mut self, direction: Direction) -> EvalRequest {
        self.direction = Some(direction);
        self
    }

    /// Does the request carry a budget or a cancellation flag? Controlled
    /// requests route through the budget-aware product kernels.
    pub fn is_controlled(&self) -> bool {
        self.budget.is_some() || self.cancel.is_some()
    }

    /// Borrow the controls in the form the kernels consume.
    pub fn control(&self) -> EvalControl<'_> {
        EvalControl {
            budget: self.budget,
            cancel: self.cancel.as_deref(),
        }
    }
}

/// The answer payload of an [`EvalResponse`], shaped by the request's
/// [`SourceSpec`].
#[derive(Clone, Debug)]
pub enum Answers {
    /// Sorted answer set (`Source` / `Target` requests).
    Nodes(Vec<Oid>),
    /// Per-source (or per-target) batched answers (`Sources` / `Targets`).
    Batch(BatchResult),
    /// Pair verdict (`Pair`). Under a non-complete termination, `false`
    /// means *not determined*.
    Reachable(bool),
    /// Bit-packed N×M matrix (`Matrix`).
    Matrix(MatrixResult),
    /// Sorted, deduplicated (source, target) binding set (`Conjunctive`).
    Bindings(Vec<(Oid, Oid)>),
}

/// The uniform evaluation response: answers, aggregated work counters, and
/// how the run ended.
#[derive(Clone, Debug)]
pub struct EvalResponse {
    /// The answer payload.
    pub answers: Answers,
    /// Aggregated work counters (mirrors the payload's stats).
    pub stats: EvalStats,
    /// Exact ([`Termination::Complete`]) or sound-subset termination.
    pub termination: Termination,
}

impl EvalResponse {
    /// Wrap a node-set result (complete).
    pub fn from_nodes(result: EvalResult) -> EvalResponse {
        EvalResponse {
            stats: result.stats.clone(),
            answers: Answers::Nodes(result.answers),
            termination: Termination::Complete,
        }
    }

    /// Wrap a batched result (complete).
    pub fn from_batch(batch: BatchResult) -> EvalResponse {
        EvalResponse {
            stats: batch.stats.clone(),
            answers: Answers::Batch(batch),
            termination: Termination::Complete,
        }
    }

    /// Wrap a pair result (complete).
    pub fn from_pair(pair: PairResult) -> EvalResponse {
        EvalResponse {
            stats: pair.stats.clone(),
            answers: Answers::Reachable(pair.reachable),
            termination: Termination::Complete,
        }
    }

    /// Wrap a matrix result (complete).
    pub fn from_matrix(matrix: MatrixResult) -> EvalResponse {
        EvalResponse {
            stats: matrix.stats.clone(),
            answers: Answers::Matrix(matrix),
            termination: Termination::Complete,
        }
    }

    /// Wrap a binding-set result, carrying its own termination.
    pub fn from_pairset(result: PairSetResult) -> EvalResponse {
        EvalResponse {
            stats: result.stats,
            answers: Answers::Bindings(result.pairs),
            termination: result.termination,
        }
    }

    /// Override the termination (builder for the controlled paths).
    pub fn terminated(mut self, termination: Termination) -> EvalResponse {
        self.termination = termination;
        self
    }

    /// The sorted answer set, if the payload is node-shaped.
    pub fn nodes(&self) -> Option<&[Oid]> {
        match &self.answers {
            Answers::Nodes(ns) => Some(ns),
            _ => None,
        }
    }

    /// The batched answers, if the payload is batch-shaped.
    pub fn batch(&self) -> Option<&BatchResult> {
        match &self.answers {
            Answers::Batch(b) => Some(b),
            _ => None,
        }
    }

    /// The pair verdict, if the payload is pair-shaped.
    pub fn reachable(&self) -> Option<bool> {
        match &self.answers {
            Answers::Reachable(r) => Some(*r),
            _ => None,
        }
    }

    /// The reachability matrix, if the payload is matrix-shaped.
    pub fn matrix(&self) -> Option<&MatrixResult> {
        match &self.answers {
            Answers::Matrix(m) => Some(m),
            _ => None,
        }
    }

    /// The (source, target) binding set, if the payload is binding-shaped.
    pub fn bindings(&self) -> Option<&[(Oid, Oid)]> {
        match &self.answers {
            Answers::Bindings(bs) => Some(bs),
            _ => None,
        }
    }

    /// Collapse into the legacy single-set form: node payloads directly,
    /// batch payloads as their union, anything else as an empty set.
    pub fn into_eval_result(self) -> EvalResult {
        let stats = self.stats;
        let answers = match self.answers {
            Answers::Nodes(ns) => ns,
            Answers::Batch(b) => b.union().to_vec(),
            Answers::Bindings(bs) => {
                // The distinct right-hand endpoints — the "reachable set"
                // reading of a binding set.
                let mut ts: Vec<Oid> = bs.into_iter().map(|(_, t)| t).collect();
                ts.sort_unstable();
                ts.dedup();
                ts
            }
            Answers::Reachable(_) | Answers::Matrix(_) => Vec::new(),
        };
        EvalResult { answers, stats }
    }

    /// Collapse into the legacy batch form: batch payloads directly, node
    /// payloads as a union-only batch, anything else as an empty batch.
    pub fn into_batch(self) -> BatchResult {
        match self.answers {
            Answers::Batch(b) => b,
            Answers::Nodes(ns) => BatchResult::union_only(ns, self.stats),
            Answers::Reachable(_) | Answers::Matrix(_) | Answers::Bindings(_) => {
                BatchResult::union_only(Vec::new(), self.stats)
            }
        }
    }

    /// Collapse into the legacy pair form (`reachable == false` for
    /// non-pair payloads).
    pub fn into_pair(self) -> PairResult {
        let reachable = matches!(self.answers, Answers::Reachable(true));
        PairResult {
            reachable,
            stats: self.stats,
        }
    }
}

/// The default [`Engine::run`] dispatch, shared by every engine that does
/// not override `run`: uncontrolled requests route through the engine's
/// own single-source strategy (and the shared backward/pair/matrix
/// kernels); controlled requests route through the budget- and
/// cancellation-aware product kernels, bypassing the engine so the budget
/// binds uniformly.
///
/// Engines that *do* override `run` (for set-at-a-time strategies or
/// planning) call back into this for the arms they don't specialize.
pub fn run_default<E: Engine + ?Sized>(
    engine: &E,
    query: &Query,
    graph: &CsrGraph,
    req: &EvalRequest,
) -> EvalResponse {
    if req.is_controlled() {
        return run_controlled(query, graph, req);
    }
    match &req.spec {
        SourceSpec::Source(s) => EvalResponse::from_nodes(engine.eval(query, graph, *s)),
        SourceSpec::Sources(ss) => {
            let mut stats = EvalStats::default();
            let mut per_source = Vec::with_capacity(ss.len());
            for &s in ss {
                let r = engine.eval(query, graph, s);
                stats.merge(&r.stats);
                per_source.push(r.answers);
            }
            EvalResponse::from_batch(BatchResult::from_per_source(per_source, stats))
        }
        SourceSpec::Target(t) => EvalResponse::from_nodes(crate::pair::eval_to(query, graph, *t)),
        SourceSpec::Targets(ts) => {
            let mut stats = EvalStats::default();
            let mut per_target = Vec::with_capacity(ts.len());
            for &t in ts {
                let r = crate::pair::eval_to(query, graph, t);
                stats.merge(&r.stats);
                per_target.push(r.answers);
            }
            EvalResponse::from_batch(BatchResult::from_per_source(per_target, stats))
        }
        SourceSpec::Pair { source, target } => {
            EvalResponse::from_pair(crate::pair::eval_pair(query, graph, *source, *target))
        }
        SourceSpec::Matrix { sources, targets } => {
            let mut scratch = EvalScratch::new();
            EvalResponse::from_matrix(eval_product_matrix_csr_with(
                query.nfa(),
                graph,
                sources,
                targets,
                &mut scratch,
            ))
        }
        SourceSpec::Conjunctive { sources, targets } => {
            let mut scratch = EvalScratch::new();
            let res = match (sources, targets) {
                (Some(ss), Some(ts)) => {
                    eval_pairs_bound_csr_with(query.nfa(), graph, ss, ts, &mut scratch)
                }
                (Some(ss), None) => {
                    eval_pairs_from_sources_csr_with(query.nfa(), graph, ss, &mut scratch)
                }
                (None, Some(ts)) => {
                    let reversed = query.nfa().reverse();
                    eval_pairs_to_targets_csr_with(&reversed, graph, ts, &mut scratch)
                }
                (None, None) => {
                    let seeds = seed_candidates(query.nfa(), graph, &mut scratch);
                    eval_pairs_from_sources_csr_with(query.nfa(), graph, &seeds, &mut scratch)
                }
            };
            EvalResponse::from_pairset(res)
        }
    }
}

/// Budget for the next item of a multi-item controlled request: whatever
/// the whole-request budget has left after `spent` scans.
fn remaining_budget(budget: Option<usize>, spent: usize) -> Option<usize> {
    budget.map(|b| b.saturating_sub(spent))
}

/// Controlled execution: every arm runs through the budget- and
/// cancellation-aware product kernels. Multi-item arms share one budget
/// across items (unexplored items report empty answer sets — still a sound
/// subset) and stop at the first non-complete termination.
fn run_controlled(query: &Query, graph: &CsrGraph, req: &EvalRequest) -> EvalResponse {
    let mode = req.frontier_mode;
    let cancel = req.cancel.as_deref();
    let mut scratch = EvalScratch::new();
    match &req.spec {
        SourceSpec::Source(s) => {
            let (res, term) = eval_product_controlled_csr_with(
                query.nfa(),
                graph,
                *s,
                None,
                mode,
                &req.control(),
                &mut scratch,
            );
            EvalResponse::from_nodes(res).terminated(term)
        }
        SourceSpec::Target(t) => {
            let reversed = query.nfa().reverse();
            let (res, term) = eval_product_backward_controlled_reversed_csr_with(
                &reversed,
                graph,
                *t,
                None,
                mode,
                &req.control(),
                &mut scratch,
            );
            EvalResponse::from_nodes(res).terminated(term)
        }
        SourceSpec::Sources(ss) => {
            let mut stats = EvalStats::default();
            let mut per = Vec::with_capacity(ss.len());
            let mut term = Termination::Complete;
            for &s in ss {
                let control = EvalControl {
                    budget: remaining_budget(req.budget, stats.edges_scanned),
                    cancel,
                };
                let (r, t) = eval_product_controlled_csr_with(
                    query.nfa(),
                    graph,
                    s,
                    None,
                    mode,
                    &control,
                    &mut scratch,
                );
                stats.merge(&r.stats);
                per.push(r.answers);
                if !t.is_complete() {
                    term = t;
                    break;
                }
            }
            per.resize(ss.len(), Vec::new());
            EvalResponse::from_batch(BatchResult::from_per_source(per, stats)).terminated(term)
        }
        SourceSpec::Targets(ts) => {
            let reversed = query.nfa().reverse();
            let mut stats = EvalStats::default();
            let mut per = Vec::with_capacity(ts.len());
            let mut term = Termination::Complete;
            for &t in ts {
                let control = EvalControl {
                    budget: remaining_budget(req.budget, stats.edges_scanned),
                    cancel,
                };
                let (r, tt) = eval_product_backward_controlled_reversed_csr_with(
                    &reversed,
                    graph,
                    t,
                    None,
                    mode,
                    &control,
                    &mut scratch,
                );
                stats.merge(&r.stats);
                per.push(r.answers);
                if !tt.is_complete() {
                    term = tt;
                    break;
                }
            }
            per.resize(ts.len(), Vec::new());
            EvalResponse::from_batch(BatchResult::from_per_source(per, stats)).terminated(term)
        }
        SourceSpec::Pair { source, target } => {
            let (pair, term) = eval_product_pair_controlled_csr_with(
                query.nfa(),
                graph,
                *source,
                *target,
                mode,
                &req.control(),
                &mut scratch,
            );
            EvalResponse::from_pair(pair).terminated(term)
        }
        SourceSpec::Matrix { sources, targets } => {
            let mut matrix = MatrixResult::new(sources.clone(), targets.clone());
            let mut stats = EvalStats::default();
            let mut term = Termination::Complete;
            for (i, &s) in sources.iter().enumerate() {
                let control = EvalControl {
                    budget: remaining_budget(req.budget, stats.edges_scanned),
                    cancel,
                };
                let (r, t) = eval_product_controlled_csr_with(
                    query.nfa(),
                    graph,
                    s,
                    None,
                    mode,
                    &control,
                    &mut scratch,
                );
                for (j, &tgt) in targets.iter().enumerate() {
                    if r.answers.binary_search(&tgt).is_ok() {
                        matrix.set(i, j);
                    }
                }
                stats.merge(&r.stats);
                if !t.is_complete() {
                    term = t;
                    break;
                }
            }
            stats.answers = matrix.reachable_count();
            matrix.stats = stats;
            EvalResponse::from_matrix(matrix).terminated(term)
        }
        SourceSpec::Conjunctive { sources, targets } => {
            let control = req.control();
            let res: PairSetResult = match (sources, targets) {
                (Some(ss), Some(ts)) => eval_pairs_bound_controlled_csr_with(
                    query.nfa(),
                    graph,
                    ss,
                    ts,
                    mode,
                    &control,
                    &mut scratch,
                ),
                (Some(ss), None) => eval_pairs_from_sources_controlled_csr_with(
                    query.nfa(),
                    graph,
                    ss,
                    mode,
                    &control,
                    &mut scratch,
                ),
                (None, Some(ts)) => {
                    let reversed = query.nfa().reverse();
                    eval_pairs_to_targets_controlled_csr_with(
                        &reversed,
                        graph,
                        ts,
                        mode,
                        &control,
                        &mut scratch,
                    )
                }
                (None, None) => {
                    let seeds = seed_candidates(query.nfa(), graph, &mut scratch);
                    eval_pairs_from_sources_controlled_csr_with(
                        query.nfa(),
                        graph,
                        &seeds,
                        mode,
                        &control,
                        &mut scratch,
                    )
                }
            };
            EvalResponse::from_pairset(res)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{
        DerivativeEngine, ProductEngine, Query, QuotientDfaEngine, StreamingEngine,
    };
    use rpq_automata::Alphabet;
    use rpq_graph::{CsrGraph, InstanceBuilder};

    fn fig2ish() -> (Alphabet, CsrGraph) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o1", "a", "o2");
        b.edge("o2", "b", "o3");
        b.edge("o3", "b", "o2");
        b.edge("o1", "b", "o3");
        b.edge("o3", "a", "o1");
        let (inst, _) = b.finish();
        (ab, CsrGraph::from(&inst))
    }

    fn engines() -> Vec<Box<dyn Engine>> {
        vec![
            Box::new(ProductEngine),
            Box::new(QuotientDfaEngine),
            Box::new(DerivativeEngine),
            Box::new(StreamingEngine::default()),
        ]
    }

    #[test]
    fn run_agrees_with_every_legacy_entry_point() {
        let (mut ab, csr) = fig2ish();
        let all: Vec<Oid> = csr.nodes().collect();
        for qs in ["a.b*", "(a+b)*", "b.b", "()", "[]"] {
            let q = Query::parse(&mut ab, qs).unwrap();
            for e in engines() {
                let s = Oid(0);
                let t = Oid(2);
                let single = e.run(&q, &csr, &EvalRequest::source(s));
                assert_eq!(single.termination, Termination::Complete);
                assert_eq!(single.nodes().unwrap(), e.eval(&q, &csr, s).answers, "{qs}");

                let batch = e.run(&q, &csr, &EvalRequest::sources(all.clone()));
                assert_eq!(
                    batch.batch().unwrap().union(),
                    e.eval_batch(&q, &csr, &all).union(),
                    "{qs} {}",
                    e.name()
                );

                let to = e.run(&q, &csr, &EvalRequest::target(t));
                assert_eq!(to.nodes().unwrap(), e.eval_to(&q, &csr, t).answers);

                let to_batch = e.run(&q, &csr, &EvalRequest::targets(all.clone()));
                assert_eq!(
                    to_batch.batch().unwrap().union(),
                    e.eval_to_batch(&q, &csr, &all).union()
                );

                let pair = e.run(&q, &csr, &EvalRequest::pair(s, t));
                assert_eq!(
                    pair.reachable().unwrap(),
                    e.eval(&q, &csr, s).answers.contains(&t),
                    "{qs} {}",
                    e.name()
                );
            }
        }
    }

    #[test]
    fn matrix_request_agrees_with_pairwise_eval() {
        let (mut ab, csr) = fig2ish();
        let all: Vec<Oid> = csr.nodes().collect();
        for qs in ["a.b*", "(a+b)*", "b.b", "()"] {
            let q = Query::parse(&mut ab, qs).unwrap();
            let resp = ProductEngine.run(&q, &csr, &EvalRequest::matrix(all.clone(), all.clone()));
            let m = resp.matrix().unwrap();
            for (i, &s) in all.iter().enumerate() {
                let fwd = ProductEngine.eval(&q, &csr, s).answers;
                for (j, &t) in all.iter().enumerate() {
                    assert_eq!(m.reachable(i, j), fwd.contains(&t), "{qs} {s:?}->{t:?}");
                }
            }
        }
    }

    #[test]
    fn budget_caps_edges_scanned_and_answers_stay_sound() {
        let (mut ab, csr) = fig2ish();
        let q = Query::parse(&mut ab, "(a+b)*").unwrap();
        let full = ProductEngine.eval(&q, &csr, Oid(0)).answers;
        for budget in 0..8 {
            let resp =
                ProductEngine.run(&q, &csr, &EvalRequest::source(Oid(0)).with_budget(budget));
            assert!(
                resp.stats.edges_scanned <= budget,
                "scanned {} > budget {budget}",
                resp.stats.edges_scanned
            );
            for n in resp.nodes().unwrap() {
                assert!(full.contains(n), "budgeted answer {n:?} must be sound");
            }
            if resp.termination == Termination::Complete {
                assert_eq!(resp.nodes().unwrap(), full);
            }
        }
        // a generous budget completes exactly
        let resp = ProductEngine.run(&q, &csr, &EvalRequest::source(Oid(0)).with_budget(100_000));
        assert_eq!(resp.termination, Termination::Complete);
        assert_eq!(resp.nodes().unwrap(), full);
    }

    #[test]
    fn pre_set_cancel_flag_terminates_immediately() {
        let (mut ab, csr) = fig2ish();
        let q = Query::parse(&mut ab, "(a+b)*").unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        let req = EvalRequest::sources(csr.nodes().collect()).with_cancel(flag);
        let resp = ProductEngine.run(&q, &csr, &req);
        assert_eq!(resp.termination, Termination::Cancelled);
        let full: Vec<Oid> = csr.nodes().collect();
        for per in resp.batch().unwrap().per_source().unwrap() {
            for n in per {
                assert!(full.contains(n));
            }
        }
    }

    #[test]
    fn controlled_pair_found_is_definitive() {
        let (mut ab, csr) = fig2ish();
        let q = Query::parse(&mut ab, "a").unwrap();
        let resp = ProductEngine.run(
            &q,
            &csr,
            &EvalRequest::pair(Oid(0), Oid(1)).with_budget(100_000),
        );
        assert_eq!(resp.reachable(), Some(true));
        assert_eq!(resp.termination, Termination::Complete);
    }

    #[test]
    fn conjunctive_request_binds_pairs_under_every_restriction() {
        let (mut ab, csr) = fig2ish();
        let all: Vec<Oid> = csr.nodes().collect();
        let q = Query::parse(&mut ab, "a.b*").unwrap();
        // ground truth from per-source eval
        let mut full: Vec<(Oid, Oid)> = Vec::new();
        for &s in &all {
            for t in ProductEngine.eval(&q, &csr, s).answers {
                full.push((s, t));
            }
        }
        full.sort_unstable();

        let free = ProductEngine.run(&q, &csr, &EvalRequest::conjunctive(None, None));
        assert_eq!(free.bindings().unwrap(), full);
        assert_eq!(free.termination, Termination::Complete);

        let fwd = ProductEngine.run(&q, &csr, &EvalRequest::conjunctive(Some(all.clone()), None));
        assert_eq!(fwd.bindings().unwrap(), full);

        let bwd = ProductEngine.run(&q, &csr, &EvalRequest::conjunctive(None, Some(all.clone())));
        assert_eq!(bwd.bindings().unwrap(), full);

        let restricted = ProductEngine.run(
            &q,
            &csr,
            &EvalRequest::conjunctive(Some(vec![Oid(0)]), Some(vec![Oid(2)])),
        );
        let expect: Vec<(Oid, Oid)> = full
            .iter()
            .copied()
            .filter(|&(s, t)| s == Oid(0) && t == Oid(2))
            .collect();
        assert_eq!(restricted.bindings().unwrap(), expect);

        // controlled path: budget caps scans, bindings stay sound
        for budget in [0, 1, 3, 100_000] {
            let resp = ProductEngine.run(
                &q,
                &csr,
                &EvalRequest::conjunctive(None, None).with_budget(budget),
            );
            assert!(resp.stats.edges_scanned <= budget);
            for b in resp.bindings().unwrap() {
                assert!(full.contains(b), "unsound binding {b:?}");
            }
        }
    }

    #[test]
    fn response_conversions_are_total() {
        let (mut ab, csr) = fig2ish();
        let q = Query::parse(&mut ab, "a.b*").unwrap();
        let r = ProductEngine.run(&q, &csr, &EvalRequest::source(Oid(0)));
        let as_batch = r.clone().into_batch();
        assert_eq!(as_batch.union(), r.nodes().unwrap());
        let as_eval = r.clone().into_eval_result();
        assert_eq!(as_eval.answers, r.nodes().unwrap());
        assert!(!r.into_pair().reachable);
    }
}
