//! Pair reachability `target ∈ p(source, I)` — the (source, target)
//! scenario, with a meet-in-the-middle search.
//!
//! The forward engines answer the *set* question "which objects does
//! `p(o, I)` contain?". Many workloads ask the cheaper *pair* question:
//! "does this word-labeled path exist between these two objects?". Three
//! strategies answer it over any [`GraphView`] snapshot (the
//! [`rpq_graph::CsrGraph`]
//! or a delta overlay):
//!
//! * [`eval_product_pair_forward_csr`] — the forward product BFS of
//!   [`crate::eval_product_csr`] with an early exit as soon as `target`
//!   becomes an answer;
//! * [`eval_product_pair_backward_csr`] — the backward (reversed-NFA,
//!   reverse-adjacency) BFS of [`crate::eval_product_backward_csr`] with an
//!   early exit on `source`;
//! * [`eval_product_pair_csr`] — **meet-in-the-middle**: both searches run
//!   level-alternately (always expanding the currently smaller frontier)
//!   and stop at the first `(state, node)` cell discovered from both ends —
//!   a forward cell `(q, v)` says "some prefix `u` drives the automaton
//!   `start →u→ q` along a path `source →…→ v`", a backward cell says
//!   "some suffix `w` drives `q →w→ accept` along `v →…→ target`", so a
//!   shared cell splices a witness word `u·w ∈ L(p)`. Seen sets are one
//!   [`rpq_graph::bitset::NodeBitset`] per automaton state
//!   ([`FrontierArena`]), so the intersection probe is one bit test.
//!
//! Which strategy wins is data-dependent (first- vs last-label
//! selectivity); `rpq_optimizer::PlannedEngine` chooses from
//! [`rpq_graph::LabelStats`]. [`eval_pair`] and [`eval_to`] are the
//! `Query`-level entry points.

use rpq_automata::{Nfa, StateId};
use rpq_graph::bitset::FrontierArena;
use rpq_graph::{GraphView, Oid};

use crate::engine::Query;
use crate::product::{
    eval_product_backward_csr, product_search, product_search_with, EvalResult, FrontierMode,
};
use crate::request::{EvalControl, Termination};
use crate::scratch::EvalScratch;
use crate::stats::EvalStats;

/// Result of a pair-reachability evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairResult {
    /// Does a path from `source` to `target` spell a word of the query?
    pub reachable: bool,
    /// Work counters (`answers` is 1 when reachable, 0 otherwise).
    pub stats: EvalStats,
}

/// Forward product BFS with an early exit on `target`.
pub fn eval_product_pair_forward_csr<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    target: Oid,
) -> PairResult {
    let (res, found) = product_search(nfa, graph, source, false, Some(target), None);
    pair_result(found, res.stats)
}

/// [`eval_product_pair_forward_csr`] with an explicit [`FrontierMode`] and
/// caller-provided [`EvalScratch`] — the pooled hot-path form.
pub fn eval_product_pair_forward_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    target: Oid,
    mode: FrontierMode,
    scratch: &mut EvalScratch,
) -> PairResult {
    let (res, found, _) = product_search_with(
        nfa,
        graph,
        source,
        false,
        Some(target),
        None,
        mode,
        &EvalControl::UNLIMITED,
        scratch,
    );
    pair_result(found, res.stats)
}

/// Pair reachability under serving-layer execution controls: the forward
/// early-exit search with an `edges_scanned` budget and a cooperative
/// cancellation flag. A `reachable == true` verdict is definitive even if
/// the budget tripped right after the hit; `reachable == false` under a
/// non-[`Termination::Complete`] termination means *not determined* — the
/// search was abandoned before exhausting the pair space.
pub fn eval_product_pair_controlled_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    target: Oid,
    mode: FrontierMode,
    control: &EvalControl,
    scratch: &mut EvalScratch,
) -> (PairResult, Termination) {
    let (res, found, term) = product_search_with(
        nfa,
        graph,
        source,
        false,
        Some(target),
        None,
        mode,
        control,
        scratch,
    );
    let term = if found { Termination::Complete } else { term };
    (pair_result(found, res.stats), term)
}

/// Backward product BFS (reversed NFA over the reverse adjacency, starting
/// at `target`) with an early exit on `source`.
pub fn eval_product_pair_backward_csr<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    target: Oid,
) -> PairResult {
    eval_product_pair_backward_reversed_csr(&nfa.reverse(), graph, source, target)
}

/// As [`eval_product_pair_backward_csr`], but taking the
/// *already-reversed* automaton — for callers that cache [`Nfa::reverse`]
/// across repeated pair queries (e.g. the planner's compiled plans).
pub fn eval_product_pair_backward_reversed_csr<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    source: Oid,
    target: Oid,
) -> PairResult {
    let (res, found) = product_search(reversed, graph, target, true, Some(source), None);
    pair_result(found, res.stats)
}

/// [`eval_product_pair_backward_reversed_csr`] with an explicit
/// [`FrontierMode`] and caller-provided [`EvalScratch`].
pub fn eval_product_pair_backward_reversed_csr_with<G: GraphView>(
    reversed: &Nfa,
    graph: &G,
    source: Oid,
    target: Oid,
    mode: FrontierMode,
    scratch: &mut EvalScratch,
) -> PairResult {
    let (res, found, _) = product_search_with(
        reversed,
        graph,
        target,
        true,
        Some(source),
        None,
        mode,
        &EvalControl::UNLIMITED,
        scratch,
    );
    pair_result(found, res.stats)
}

fn pair_result(reachable: bool, mut stats: EvalStats) -> PairResult {
    stats.answers = usize::from(reachable);
    PairResult { reachable, stats }
}

/// Meet-in-the-middle pair reachability: alternate expanding the smaller
/// frontier of the forward and backward product searches, stopping at the
/// first `(state, node)` cell seen from both ends.
pub fn eval_product_pair_csr<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    target: Oid,
) -> PairResult {
    let mut scratch = EvalScratch::new();
    eval_product_pair_csr_with(nfa, graph, source, target, &mut scratch)
}

/// [`eval_product_pair_csr`] with a caller-provided [`EvalScratch`] —
/// reverses the automaton per call; planners holding a cached
/// [`Nfa::reverse`] should use [`eval_product_pair_reversed_csr_with`].
pub fn eval_product_pair_csr_with<G: GraphView>(
    nfa: &Nfa,
    graph: &G,
    source: Oid,
    target: Oid,
    scratch: &mut EvalScratch,
) -> PairResult {
    eval_product_pair_reversed_csr_with(nfa, &nfa.reverse(), graph, source, target, scratch)
}

/// Meet-in-the-middle with both automata supplied (`reversed` must be
/// `nfa.reverse()`) and all working memory drawn from `scratch` — the
/// planner's pooled hot-path form.
pub fn eval_product_pair_reversed_csr_with<G: GraphView>(
    nfa: &Nfa,
    reversed: &Nfa,
    graph: &G,
    source: Oid,
    target: Oid,
    scratch: &mut EvalScratch,
) -> PairResult {
    let nv = graph.num_nodes();
    let nq = nfa.num_states();
    let rnq = reversed.num_states();
    // The whole intersection scheme leans on Nfa::reverse's documented
    // numbering (fresh start 0, state i → i + 1); pin it here so a future
    // reverse() refactor fails loudly instead of corrupting answers.
    assert_eq!(rnq, nq + 1, "Nfa::reverse state-numbering contract broken");

    // Both seen arenas are sized by the larger (reversed) automaton: the
    // forward side simply never touches its extra state row.
    let covered = scratch.begin(rnq, nv);
    let mut stats = EvalStats {
        scratch_reused: usize::from(covered),
        ..EvalStats::default()
    };
    if nv == 0 {
        return pair_result(false, stats);
    }

    // seen_f = scratch.dense: a prefix reaches automaton state q at node v.
    // seen_b = scratch.dense_b: rq ≥ 1 ⇒ a suffix runs nfa state rq−1 to
    // acceptance along a path v →…→ target (rq = 0 is the reversed
    // automaton's fresh start and corresponds to no forward state).
    //
    // Seed both sides *with their ε-closures* before the first expansion:
    // the early-exit argument below ("a drained side proves
    // unreachability") needs every seed-level cell of the *other* side in
    // its seen set from the start.
    if scratch
        .dense
        .state_mut(nfa.start() as usize)
        .insert(source.index())
    {
        scratch.frontier.push((nfa.start(), source));
    }
    if scratch
        .dense_b
        .state_mut(reversed.start() as usize)
        .insert(target.index())
    {
        scratch.frontier_b.push((reversed.start(), target));
    }
    if close_level(
        nfa,
        &mut scratch.frontier,
        &mut scratch.dense,
        &scratch.dense_b,
        true,
    ) || close_level(
        reversed,
        &mut scratch.frontier_b,
        &mut scratch.dense_b,
        &scratch.dense,
        false,
    ) {
        return pair_result(true, stats);
    }

    // Either frontier draining without a meet proves unreachability: a
    // drained forward side has discovered every prefix-reachable cell — a
    // witness word would have put `(accept, target)` there, and the
    // backward *seed closure* already holds its mirror `(accept + 1,
    // target)`, so the meet probe would have fired (symmetrically for a
    // drained backward side against the forward seed closure).
    while !scratch.frontier.is_empty() && !scratch.frontier_b.is_empty() {
        // Expand the smaller frontier one full level.
        let forward_side = scratch.frontier.len() <= scratch.frontier_b.len();
        let EvalScratch {
            frontier,
            frontier_b,
            next,
            dense,
            dense_b,
            ..
        } = scratch;
        let (auto, frontier, seen, seen_other): (
            &Nfa,
            &mut Vec<(StateId, Oid)>,
            &mut FrontierArena,
            &FrontierArena,
        ) = if forward_side {
            (nfa, frontier, dense, dense_b)
        } else {
            (reversed, frontier_b, dense_b, dense)
        };
        stats.frontier_peak = stats.frontier_peak.max(frontier.len());

        // One labeled step over the matching adjacency.
        for &(q, v) in frontier.iter() {
            stats.pairs_visited += 1;
            for &(sym, q2) in auto.transitions(q) {
                let targets = if forward_side {
                    graph.out(v, sym)
                } else {
                    graph.rev(v, sym)
                };
                stats.edges_scanned += targets.len();
                for v2 in targets {
                    if seen.state_mut(q2 as usize).insert(v2.index()) {
                        next.push((q2, v2));
                        if meets(q2, seen_other, v2, forward_side) {
                            return pair_result(true, stats);
                        }
                    }
                }
            }
        }
        stats.push_levels += 1;
        std::mem::swap(frontier, next);
        next.clear();
        // ε-closure of the freshly advanced level.
        if close_level(auto, frontier, seen, seen_other, forward_side) {
            return pair_result(true, stats);
        }
    }

    pair_result(false, stats)
}

/// Does a cell of one search side meet the other side's seen set? A forward
/// cell `(q, v)` meets the backward cell `(q + 1, v)` (the reversed
/// automaton's states are the forward states shifted past its fresh start);
/// a backward cell `(rq, v)` with `rq ≥ 1` meets the forward cell
/// `(rq − 1, v)`; the fresh start `rq = 0` maps to no forward state.
fn meets(q: StateId, seen_other: &FrontierArena, v: Oid, forward_side: bool) -> bool {
    if forward_side {
        seen_other.state(q as usize + 1).contains(v.index())
    } else {
        q >= 1 && seen_other.state(q as usize - 1).contains(v.index())
    }
}

/// ε-close `frontier` in place (ε-moves consume no graph edge, so closure
/// cells belong to the same BFS level), probing the other side's seen set
/// at every insertion. Returns `true` on a meet.
fn close_level(
    auto: &Nfa,
    frontier: &mut Vec<(StateId, Oid)>,
    seen: &mut FrontierArena,
    seen_other: &FrontierArena,
    forward_side: bool,
) -> bool {
    let mut i = 0;
    while i < frontier.len() {
        let (q, v) = frontier[i];
        if i == 0 && meets(q, seen_other, v, forward_side) {
            return true;
        }
        i += 1;
        for &q2 in auto.eps_transitions(q) {
            if seen.state_mut(q2 as usize).insert(v.index()) {
                frontier.push((q2, v));
                if meets(q2, seen_other, v, forward_side) {
                    return true;
                }
            }
        }
    }
    false
}

/// `Query`-level pair entry point: is `target ∈ p(source, I)`?
/// Meet-in-the-middle by default; use `rpq_optimizer::PlannedEngine` to
/// pick the direction from label statistics instead.
pub fn eval_pair<G: GraphView>(query: &Query, graph: &G, source: Oid, target: Oid) -> PairResult {
    eval_product_pair_csr(query.nfa(), graph, source, target)
}

/// `Query`-level target-bound entry point: `{o | target ∈ p(o, I)}` by the
/// backward product BFS over the reverse adjacency.
pub fn eval_to<G: GraphView>(query: &Query, graph: &G, target: Oid) -> EvalResult {
    eval_product_backward_csr(query.nfa(), graph, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::eval_product_csr;
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::CsrGraph;
    use rpq_graph::InstanceBuilder;

    fn fig2ish() -> (Alphabet, CsrGraph) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o1", "a", "o2");
        b.edge("o2", "b", "o3");
        b.edge("o3", "b", "o2");
        b.edge("o1", "b", "o3");
        b.edge("o3", "a", "o1");
        let (inst, _) = b.finish();
        (ab, CsrGraph::from(&inst))
    }

    #[test]
    fn pair_strategies_agree_with_forward_sets() {
        let (mut ab, csr) = fig2ish();
        for qs in ["a.b*", "(a+b)*", "b.b", "()", "[]", "(a.b)*.a", "a"] {
            let r = parse_regex(&mut ab, qs).unwrap();
            let nfa = rpq_automata::Nfa::thompson(&r);
            for s in csr.nodes() {
                let forward = eval_product_csr(&nfa, &csr, s).answers;
                for t in csr.nodes() {
                    let expect = forward.contains(&t);
                    let mitm = eval_product_pair_csr(&nfa, &csr, s, t);
                    assert_eq!(mitm.reachable, expect, "mitm {qs} {s:?}->{t:?}");
                    assert_eq!(mitm.stats.answers, usize::from(expect));
                    let fwd = eval_product_pair_forward_csr(&nfa, &csr, s, t);
                    assert_eq!(fwd.reachable, expect, "fwd {qs} {s:?}->{t:?}");
                    let bwd = eval_product_pair_backward_csr(&nfa, &csr, s, t);
                    assert_eq!(bwd.reachable, expect, "bwd {qs} {s:?}->{t:?}");
                }
            }
        }
    }

    #[test]
    fn epsilon_pair_is_reflexive_only() {
        let (mut ab, csr) = fig2ish();
        let q = Query::parse(&mut ab, "()").unwrap();
        for s in csr.nodes() {
            for t in csr.nodes() {
                assert_eq!(eval_pair(&q, &csr, s, t).reachable, s == t);
            }
        }
    }

    #[test]
    fn meet_in_the_middle_beats_both_ends_on_an_expander() {
        // A deterministic 4-out-regular digraph (modular successors spread
        // edges expander-style) where both frontiers of the query a^6 grow
        // geometrically: a single-direction search pays ~b^6 edge scans
        // before the first length-6 answer appears, the bidirectional
        // search pays ~2·b^3 — meeting after three levels from each end.
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let n = 2003u32;
        let mut inst = rpq_graph::Instance::new();
        let nodes: Vec<Oid> = (0..n).map(|_| inst.add_node()).collect();
        for i in 0..n {
            for j in 0..4u32 {
                let to = (i * 31 + j * 97 + 17) % n;
                inst.add_edge(nodes[i as usize], a, nodes[to as usize]);
            }
        }
        let csr = CsrGraph::from(&inst);
        let q = parse_regex(&mut ab, "a.a.a.a.a.a").unwrap();
        let nfa = rpq_automata::Nfa::thompson(&q);
        let s = nodes[0];
        let answers = eval_product_csr(&nfa, &csr, s).answers;
        let t = *answers.last().expect("a^6 reaches something");
        let mitm = eval_product_pair_csr(&nfa, &csr, s, t);
        let fwd = eval_product_pair_forward_csr(&nfa, &csr, s, t);
        let bwd = eval_product_pair_backward_csr(&nfa, &csr, s, t);
        assert!(mitm.reachable && fwd.reachable && bwd.reachable);
        assert!(
            mitm.stats.edges_scanned < fwd.stats.edges_scanned
                && mitm.stats.edges_scanned < bwd.stats.edges_scanned,
            "mitm {} fwd {} bwd {}",
            mitm.stats.edges_scanned,
            fwd.stats.edges_scanned,
            bwd.stats.edges_scanned
        );
    }

    #[test]
    fn query_level_entry_points() {
        let (mut ab, csr) = fig2ish();
        let q = Query::parse(&mut ab, "a.b*").unwrap();
        let o1 = Oid(0);
        let fwd = eval_product_csr(q.nfa(), &csr, o1);
        for &t in &fwd.answers {
            assert!(eval_pair(&q, &csr, o1, t).reachable);
            assert!(eval_to(&q, &csr, t).answers.contains(&o1));
        }
    }
}
