//! The unified [`Engine`] calling convention.
//!
//! Every evaluation strategy in the workspace — the Section 2.2 product
//! search, both explicit-quotient variants, the definitional oracle, the
//! streaming evaluator, the Section 2.3 Datalog translations, and the
//! Section 3.1 distributed protocol — answers the same question: given a
//! query and a source object, which objects does `p(o, I)` contain? The
//! [`Engine`] trait pins that down to one signature over the shared
//! query-time representation:
//!
//! ```text
//! fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult
//! ```
//!
//! [`Query`] packages the three forms engines consume (the regex, its
//! Thompson NFA, and the alphabet) so one prepared query drives every
//! engine; [`rpq_graph::CsrGraph`] is the immutable label-indexed snapshot
//! they all traverse; [`crate::EvalStats`] makes their work comparable.
//! Implementations in this crate: [`ProductEngine`], [`QuotientDfaEngine`],
//! [`DerivativeEngine`], [`OracleEngine`], [`StreamingEngine`]. The
//! `rpq-datalog` and `rpq-distributed` crates add their strategies, giving
//! the agreement suite (and any future scheduler, cache, or shard router)
//! a single dispatch point.

use rpq_automata::{parse_regex, Alphabet, Nfa, ParseError, Regex};
use rpq_graph::{CsrGraph, Oid};

use crate::batch::{
    eval_product_batch_csr, eval_product_to_batch_csr, eval_quotient_dfa_batch_csr, BatchResult,
};
use crate::product::{eval_product_csr, EvalResult};
use crate::quotient::{eval_derivative_csr, eval_quotient_dfa_csr};
use crate::request::{run_default, EvalRequest, EvalResponse, SourceSpec};
use crate::stats::EvalStats;
use crate::streaming::StreamingEval;

/// A prepared path query: the regex, its Thompson NFA, and the alphabet it
/// was parsed against — everything any [`Engine`] needs, compiled once.
#[derive(Clone, Debug)]
pub struct Query {
    regex: Regex,
    nfa: Nfa,
    alphabet: Alphabet,
}

impl Query {
    /// Prepare `regex` (compiles the Thompson NFA, snapshots the alphabet).
    pub fn new(regex: Regex, alphabet: &Alphabet) -> Query {
        let nfa = Nfa::thompson(&regex);
        Query {
            regex,
            nfa,
            alphabet: alphabet.clone(),
        }
    }

    /// Prepare `regex` with a caller-supplied NFA instead of the Thompson
    /// compilation — the planner's seam: static analysis erases dead
    /// symbols and trims useless states, then packages the *restricted*
    /// regex with its already-trimmed automaton so both the syntactic
    /// engines (which read [`Query::regex`]) and the automaton engines
    /// (which read [`Query::nfa`]) see the same reduced language.
    ///
    /// Contract: `L(nfa)` must equal `L(regex)` — callers are responsible
    /// for keeping the two forms in sync.
    pub fn with_nfa(regex: Regex, nfa: Nfa, alphabet: &Alphabet) -> Query {
        Query {
            regex,
            nfa,
            alphabet: alphabet.clone(),
        }
    }

    /// Parse and prepare a query in one step.
    pub fn parse(alphabet: &mut Alphabet, src: &str) -> Result<Query, ParseError> {
        let regex = parse_regex(alphabet, src)?;
        Ok(Query::new(regex, alphabet))
    }

    /// The query as a regex (syntactic engines: derivatives, translations).
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// The query as a Thompson NFA (automaton engines).
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The alphabet the query was prepared against.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }
}

/// One evaluation strategy for `p(o, I)` over the label-indexed snapshot.
///
/// All implementations must compute the same answer set; they differ in
/// work profile ([`EvalStats`]) and operational setting (centralized,
/// set-at-a-time, streaming, distributed). The trait is object-safe, so
/// heterogeneous engine collections (`Vec<Box<dyn Engine>>`) can drive the
/// agreement suite and future routing layers.
pub trait Engine {
    /// A short stable identifier (used in reports and benches).
    fn name(&self) -> &'static str;

    /// Evaluate `query` from `source` over `graph`.
    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult;

    /// The unified entry point: dispatch an [`EvalRequest`] — any question
    /// shape ([`SourceSpec`]) plus uniform execution controls (budget,
    /// cancellation, frontier mode, direction hint) — to an
    /// [`EvalResponse`].
    ///
    /// The default implementation is [`run_default`]: uncontrolled
    /// requests route through the engine's own [`Engine::eval`] strategy
    /// (and the shared backward / pair / matrix kernels); requests with a
    /// budget or cancellation flag route through the controlled product
    /// kernels so early termination is sound and uniform. Engines with
    /// set-at-a-time strategies override this for the request arms they
    /// specialize and fall back to [`run_default`] for the rest; the
    /// legacy per-shape methods below are thin wrappers over `run`, making
    /// it the single dispatch point (and the server's wire-level entry).
    fn run(&self, query: &Query, graph: &CsrGraph, req: &EvalRequest) -> EvalResponse {
        run_default(self, query, graph, req)
    }

    /// Evaluate `query` from every source in `sources` over `graph`.
    ///
    /// Thin wrapper over [`Engine::run`] with [`SourceSpec::Sources`]; the
    /// default dispatch loops over [`Engine::eval`] and merges the
    /// per-source [`EvalStats`] (so no work counter is discarded), while
    /// set-at-a-time engines — the bit-parallel product BFS
    /// ([`crate::eval_product_batch_csr`]), the batched quotient-DFA
    /// search, the all-sources-seeded semi-naive Datalog fixpoint, the
    /// partitioned threaded driver in `rpq-distributed` — specialize the
    /// arm in their `run`. Union-only strategies report
    /// `per_source() == None`; all strategies agree on
    /// [`BatchResult::union`].
    fn eval_batch(&self, query: &Query, graph: &CsrGraph, sources: &[Oid]) -> BatchResult {
        self.run(query, graph, &EvalRequest::sources(sources.to_vec()))
            .into_batch()
    }

    /// Target-bound evaluation `{o | target ∈ p(o, I)}`.
    ///
    /// Thin wrapper over [`Engine::run`] with [`SourceSpec::Target`]; the
    /// default dispatch runs the shared backward product BFS (reversed NFA
    /// over the reverse adjacency, [`crate::eval_product_backward_csr`]) —
    /// correct for every engine because set-semantics answers are
    /// direction-independent. Engines with planner state specialize the
    /// arm in their `run` (e.g. `PlannedEngine` reuses its plan's cached
    /// reversed automaton and stamps cache counters).
    fn eval_to(&self, query: &Query, graph: &CsrGraph, target: Oid) -> EvalResult {
        self.run(query, graph, &EvalRequest::target(target))
            .into_eval_result()
    }

    /// Evaluate the target-bound question for every target in `targets` —
    /// the multi-*target* mirror of [`Engine::eval_batch`].
    ///
    /// Thin wrapper over [`Engine::run`] with [`SourceSpec::Targets`]; the
    /// default dispatch loops the backward BFS per target and merges the
    /// per-target [`EvalStats`] (`per_source()` of the result is aligned
    /// with `targets`), while [`ProductEngine`] specializes the arm with
    /// the bit-parallel backward wave ([`eval_product_to_batch_csr`]):
    /// waves of up to 64 *target* lanes over the reversed NFA and reverse
    /// adjacency, one row pass advancing every pending target at once.
    fn eval_to_batch(&self, query: &Query, graph: &CsrGraph, targets: &[Oid]) -> BatchResult {
        self.run(query, graph, &EvalRequest::targets(targets.to_vec()))
            .into_batch()
    }
}

/// The Section 2.2 product-automaton BFS ([`crate::eval_product_csr`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProductEngine;

impl Engine for ProductEngine {
    fn name(&self) -> &'static str {
        "product"
    }

    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult {
        eval_product_csr(query.nfa(), graph, source)
    }

    /// Specializes the uncontrolled multi-source and multi-target arms
    /// with the bit-parallel wave kernels: one CSR row pass advances every
    /// pending source lane at once ([`eval_product_batch_csr`]); targets
    /// ride waves of up to 64 lanes over the reversed NFA and reverse
    /// adjacency ([`eval_product_to_batch_csr`]), replacing the default
    /// one-BFS-per-item loops. Everything else — controlled requests
    /// included — falls back to [`run_default`].
    fn run(&self, query: &Query, graph: &CsrGraph, req: &EvalRequest) -> EvalResponse {
        if !req.is_controlled() {
            match &req.spec {
                SourceSpec::Sources(ss) => {
                    return EvalResponse::from_batch(eval_product_batch_csr(
                        query.nfa(),
                        graph,
                        ss,
                    ));
                }
                SourceSpec::Targets(ts) => {
                    return EvalResponse::from_batch(eval_product_to_batch_csr(
                        &query.nfa().reverse(),
                        graph,
                        ts,
                    ));
                }
                _ => {}
            }
        }
        run_default(self, query, graph, req)
    }
}

/// Explicit quotients as lazily determinized state sets
/// ([`crate::eval_quotient_dfa_csr`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct QuotientDfaEngine;

impl Engine for QuotientDfaEngine {
    fn name(&self) -> &'static str {
        "quotient-dfa"
    }

    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult {
        eval_quotient_dfa_csr(query.nfa(), graph, source)
    }

    /// Specializes the uncontrolled multi-source arm with the bit-parallel
    /// BFS keeping one lane-mask table per lazily determinized quotient
    /// class ([`eval_quotient_dfa_batch_csr`]); everything else falls back
    /// to [`run_default`].
    fn run(&self, query: &Query, graph: &CsrGraph, req: &EvalRequest) -> EvalResponse {
        if let SourceSpec::Sources(ss) = &req.spec {
            if !req.is_controlled() {
                return EvalResponse::from_batch(eval_quotient_dfa_batch_csr(
                    query.nfa(),
                    graph,
                    ss,
                ));
            }
        }
        run_default(self, query, graph, req)
    }
}

/// Syntactic quotients via Brzozowski derivatives
/// ([`crate::eval_derivative_csr`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct DerivativeEngine;

impl Engine for DerivativeEngine {
    fn name(&self) -> &'static str {
        "derivative"
    }

    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult {
        eval_derivative_csr(query.regex(), graph, source)
    }
}

/// The definitional word-enumeration oracle — exponential, for testing
/// only. `max_word_len: None` uses the `|Q| · |V|` pumping bound.
///
/// **Caveat:** enumeration is capped at 1,000,000 words, so on inputs
/// where `L(p)` up to the bound exceeds the cap (broad alternations over
/// more than a few nodes) the result is a sound but possibly *incomplete*
/// subset — the one deliberate exception to the trait's same-answer-set
/// contract. Keep this engine on the tiny inputs it exists for, and treat
/// its answers as a subset check elsewhere (as the agreement suite does).
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleEngine {
    /// Cap on enumerated word length (`None` = pumping bound).
    pub max_word_len: Option<usize>,
}

impl Engine for OracleEngine {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult {
        let nfa = query.nfa();
        let bound = self
            .max_word_len
            .unwrap_or(nfa.num_states() * graph.num_nodes());
        let mut stats = EvalStats::default();
        let mut answers: Vec<Oid> = Vec::new();
        for w in nfa.enumerate_words(bound, 1_000_000) {
            stats.classes_materialized += 1; // words enumerated
            for t in graph.word_targets(source, &w) {
                stats.edges_scanned += 1;
                if !answers.contains(&t) {
                    answers.push(t);
                }
            }
        }
        answers.sort_unstable();
        stats.answers = answers.len();
        EvalResult { answers, stats }
    }
}

/// The pull-based streaming evaluator of Remark 2.1, run to completion
/// under a node-expansion budget (the snapshot is finite, so a budget of at
/// least `|Q| · |V|` always terminates).
#[derive(Clone, Copy, Debug)]
pub struct StreamingEngine {
    /// Node-expansion budget (see [`StreamingEval`]).
    pub budget: usize,
}

impl Default for StreamingEngine {
    fn default() -> Self {
        StreamingEngine { budget: usize::MAX }
    }
}

impl Engine for StreamingEngine {
    fn name(&self) -> &'static str {
        "streaming"
    }

    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult {
        let mut ev = StreamingEval::new(query.nfa(), graph, source.index() as u64, self.budget);
        let mut answers: Vec<Oid> = ev
            .collect_all()
            .into_iter()
            .map(|n| Oid(n as u32))
            .collect();
        answers.sort_unstable();
        let stats = EvalStats {
            pairs_visited: ev.pairs_discovered(),
            edges_scanned: ev.edges_fetched(),
            answers: answers.len(),
            ..EvalStats::default()
        };
        EvalResult { answers, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::InstanceBuilder;

    fn fig2() -> (Alphabet, CsrGraph, Oid) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o1", "a", "o2");
        b.edge("o2", "b", "o3");
        b.edge("o3", "b", "o2");
        let (inst, names) = b.finish();
        let o1 = names["o1"];
        (ab, CsrGraph::from(&inst), o1)
    }

    fn core_engines() -> Vec<Box<dyn Engine>> {
        vec![
            Box::new(ProductEngine),
            Box::new(QuotientDfaEngine),
            Box::new(DerivativeEngine),
            Box::new(OracleEngine {
                max_word_len: Some(10),
            }),
            Box::new(StreamingEngine::default()),
        ]
    }

    #[test]
    fn all_core_engines_agree_through_the_trait() {
        let (mut ab, csr, o1) = fig2();
        for qs in ["a.b*", "(a+b)*", "a.b.b", "b*", "()"] {
            let query = Query::parse(&mut ab, qs).unwrap();
            let expected = ProductEngine.eval(&query, &csr, o1).answers;
            for engine in core_engines() {
                let got = engine.eval(&query, &csr, o1);
                assert_eq!(got.answers, expected, "{} on {qs}", engine.name());
                assert_eq!(got.stats.answers, expected.len(), "{}", engine.name());
            }
        }
    }

    #[test]
    fn query_packages_all_three_forms() {
        let mut ab = Alphabet::new();
        let q = Query::parse(&mut ab, "a.b*").unwrap();
        assert!(q.nfa().num_states() >= 2);
        assert_eq!(
            q.regex().size(),
            Query::new(q.regex().clone(), &ab).regex().size()
        );
        assert!(q.alphabet().get("a").is_some());
    }

    #[test]
    fn engine_names_are_distinct() {
        let names: Vec<&str> = core_engines().iter().map(|e| e.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
