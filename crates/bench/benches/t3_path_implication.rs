//! T3 — implication of path constraints by word constraints
//! (Theorem 4.3(ii): PSPACE; the bound is tight since regex equivalence is
//! already PSPACE-complete). Ablation: the antichain inclusion check versus
//! full determinization. Expected shape: both grow with expression size;
//! antichain dominates as the expressions grow.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::{regex_pair, word_system};
use rpq_constraints::implication::{word_implies_path, word_implies_path_naive};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_path_implication");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(150));

    for &depth in &[2usize, 5, 8, 12] {
        // constraints over the same alphabet as the regexes (a, b)
        let (mut ab, _) = word_system(3, 2, 4, 3);
        // reuse alphabet letters a/b by interning them now
        ab.intern("a");
        ab.intern("b");
        let set = {
            let lines = vec!["a.a <= a", "b.a = a.b"];
            rpq_constraints::ConstraintSet::parse(&mut ab, lines).unwrap()
        };
        let (p, q) = regex_pair(&mut ab, depth);
        let sigma = ab.len();

        group.bench_with_input(BenchmarkId::new("antichain", depth), &depth, |b, _| {
            b.iter(|| black_box(word_implies_path(&set, &p, &q).is_implied()))
        });
        if depth <= 8 {
            group.bench_with_input(
                BenchmarkId::new("naive_determinize", depth),
                &depth,
                |b, _| {
                    b.iter(|| black_box(word_implies_path_naive(&set, &p, &q, sigma).is_implied()))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
