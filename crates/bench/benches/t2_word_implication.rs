//! T2 — word-constraint implication (Theorem 4.3(i): PTIME). Expected
//! shape: polynomial growth in both the number of rules and word length —
//! no exponential blow-up anywhere.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpq_automata::random::random_word;
use rpq_bench::word_system;
use rpq_constraints::word_implies_word;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_word_implication");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(700));
    group.warm_up_time(Duration::from_millis(150));

    // sweep the number of rules
    for &rules in &[4usize, 16, 64, 256] {
        let (ab, set) = word_system(11, 3, rules, 4);
        let syms: Vec<_> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(5);
        let u = random_word(&mut rng, &syms, 6);
        let v = random_word(&mut rng, &syms, 3);
        group.bench_with_input(BenchmarkId::new("rules", rules), &rules, |b, _| {
            b.iter(|| black_box(word_implies_word(&set, &u, &v)))
        });
    }

    // sweep the query word length
    for &len in &[4usize, 16, 64] {
        let (ab, set) = word_system(11, 3, 16, 4);
        let syms: Vec<_> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(5);
        let u = random_word(&mut rng, &syms, len);
        let v = random_word(&mut rng, &syms, len / 2);
        group.bench_with_input(BenchmarkId::new("word_len", len), &len, |b, _| {
            b.iter(|| black_box(word_implies_word(&set, &u, &v)))
        });
    }

    // Guard: extracting the prefix rewrite system from a *large* constraint
    // set must stay hash-dedup linear — the quadratic `Vec::contains`
    // regression stalled planning once the rule set held thousands of
    // *distinct* rules, so the workload uses a wide symbol space (many
    // distinct rules, ~10% duplicates) and the measured series is the
    // regression tripwire in the perf trajectory. The assertion pins dedup
    // *correctness* exactly: the emitted rule list must equal the distinct
    // rule set computed independently, order-preserved.
    for &rules in &[512usize, 2_048, 8_192] {
        let (_, set) = word_system(23, 8, rules, 4);
        group.bench_with_input(
            BenchmarkId::new("rewrite_system_build", rules),
            &rules,
            |b, _| {
                b.iter(|| {
                    let rs = rpq_constraints::RewriteSystem::from_constraints(&set);
                    black_box(rs.rules.len())
                })
            },
        );
        // exact-dedup check, once per size (outside the timed loop)
        let rs = rpq_constraints::RewriteSystem::from_constraints(&set);
        let mut seen = std::collections::HashSet::new();
        let distinct: Vec<_> = rs
            .rules
            .iter()
            .filter(|r| seen.insert((*r).clone()))
            .cloned()
            .collect();
        assert_eq!(rs.rules, distinct, "rule list must be exactly deduplicated");
        assert!(
            rs.rules.len() > rules / 2,
            "workload must be dominated by distinct rules ({} of {rules})",
            rs.rules.len()
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
