//! T2 — word-constraint implication (Theorem 4.3(i): PTIME). Expected
//! shape: polynomial growth in both the number of rules and word length —
//! no exponential blow-up anywhere.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpq_automata::random::random_word;
use rpq_bench::word_system;
use rpq_constraints::word_implies_word;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_word_implication");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(700));
    group.warm_up_time(Duration::from_millis(150));

    // sweep the number of rules
    for &rules in &[4usize, 16, 64, 256] {
        let (ab, set) = word_system(11, 3, rules, 4);
        let syms: Vec<_> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(5);
        let u = random_word(&mut rng, &syms, 6);
        let v = random_word(&mut rng, &syms, 3);
        group.bench_with_input(BenchmarkId::new("rules", rules), &rules, |b, _| {
            b.iter(|| black_box(word_implies_word(&set, &u, &v)))
        });
    }

    // sweep the query word length
    for &len in &[4usize, 16, 64] {
        let (ab, set) = word_system(11, 3, 16, 4);
        let syms: Vec<_> = ab.symbols().collect();
        let mut rng = StdRng::seed_from_u64(5);
        let u = random_word(&mut rng, &syms, len);
        let v = random_word(&mut rng, &syms, len / 2);
        group.bench_with_input(BenchmarkId::new("word_len", len), &len, |b, _| {
            b.iter(|| black_box(word_implies_word(&set, &u, &v)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
