//! T14 — static query analysis (plan-time facts payoff). Three claims,
//! asserted at registration time so `--test` mode (the CI bench smoke)
//! enforces the acceptance criteria without paying measurement time:
//!
//! * **Empty on alphabet** — a query that must cross a label with zero
//!   edges in the snapshot is statically empty: the `PlannedEngine`
//!   answers it with `edges_scanned == 0` and `pairs_visited == 0` (no
//!   frontier is ever allocated), where the plain product engine pays a
//!   real traversal to discover the same emptiness.
//! * **Trimmed NFA** — dead alternation arms are erased before
//!   determinization; the plan records `states_trimmed > 0` and the
//!   trimmed plan answers exactly like the unanalyzed original.
//! * **Certified rewrite** — on the cached-site workload the constraint
//!   rewrite (`(a.b)* → l`) is certified by a two-sided inclusion check at
//!   plan time (`rewrites_certified == 1`), and the certified plan's
//!   answers match the plain engine's.
//!
//! The measured series compare the planned engine (analysis amortized via
//! the plan memo) against the plain product engine on all three shapes.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::parse_regex;
use rpq_bench::{distributed_workload, skewed_workload};
use rpq_core::{Engine, ProductEngine, Query};
use rpq_graph::CsrGraph;
use rpq_optimizer::PlannedEngine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t14_static_analysis");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));

    for &depth in &[64usize, 256] {
        let mut w = skewed_workload(depth, 32);
        // `ghost` is interned but never attached to an edge, so any query
        // that must cross it is unsatisfiable on this snapshot.
        let ghost_q = parse_regex(&mut w.alphabet, "ghost.cold*").unwrap();
        let ghost_query = Query::new(ghost_q, &w.alphabet);
        // A live spine query with a dead alternation arm: analysis erases
        // the `ghost.hot*` branch and trims the orphaned NFA states.
        let trimmed_q = parse_regex(&mut w.alphabet, "cold* + ghost.hot*").unwrap();
        let trimmed_query = Query::new(trimmed_q, &w.alphabet);
        let graph = CsrGraph::from(&w.instance);
        let planned = PlannedEngine::unconstrained(ProductEngine, w.alphabet.clone());

        // Acceptance 1: statically empty answers touch no edges and
        // allocate no frontier.
        let plan = planned.plan(&ghost_query, &graph);
        assert!(
            plan.facts.statically_empty,
            "ghost-crossing query must be statically empty at depth {depth}"
        );
        let res = planned.eval(&ghost_query, &graph, w.source);
        assert!(res.answers.is_empty(), "statically empty query answered");
        assert_eq!(
            (res.stats.edges_scanned, res.stats.pairs_visited),
            (0, 0),
            "statically empty query must not touch the graph at depth {depth}"
        );
        assert!(res.stats.symbols_pruned >= 1, "ghost must be pruned");
        let batch = planned.eval_batch(&ghost_query, &graph, &[w.source]);
        assert_eq!(
            (batch.stats.edges_scanned, batch.stats.pairs_visited),
            (0, 0),
            "statically empty batch must not touch the graph"
        );
        // The plain engine pays a real traversal for the same answer.
        let plain = ProductEngine.eval(&ghost_query, &graph, w.source);
        assert!(plain.answers.is_empty());

        // Acceptance 2: the dead arm is trimmed and answers are unchanged.
        let tplan = planned.plan(&trimmed_query, &graph);
        assert!(
            tplan.facts.states_trimmed > 0,
            "dead `ghost.hot*` arm must trim NFA states at depth {depth}"
        );
        let tres = planned.eval(&trimmed_query, &graph, w.source);
        let tref = ProductEngine.eval(&trimmed_query, &graph, w.source);
        assert_eq!(tres.answers, tref.answers, "trimmed plan diverged");

        group.bench_with_input(
            BenchmarkId::new("empty_on_alphabet_planned", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    black_box(
                        planned
                            .eval(&ghost_query, &graph, black_box(w.source))
                            .answers
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("empty_on_alphabet_plain", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    black_box(
                        ProductEngine
                            .eval(&ghost_query, &graph, black_box(w.source))
                            .answers
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("trimmed_nfa_planned", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    black_box(
                        planned
                            .eval(&trimmed_query, &graph, black_box(w.source))
                            .answers
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("trimmed_nfa_plain", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    black_box(
                        ProductEngine
                            .eval(&trimmed_query, &graph, black_box(w.source))
                            .answers
                            .len(),
                    )
                })
            },
        );
    }

    // Acceptance 3: the cached-site rewrite certifies and the certified
    // plan answers exactly like the plain engine.
    for &depth in &[32usize, 128] {
        let w = distributed_workload(depth);
        let query = Query::new(w.query.clone(), &w.alphabet);
        let graph = CsrGraph::from(&w.instance);
        let planned = PlannedEngine::new(ProductEngine, w.constraints.clone(), w.alphabet.clone());
        let plan = planned.plan(&query, &graph);
        assert_eq!(
            (plan.facts.rewrites_certified, plan.facts.rewrites_rejected),
            (1, 0),
            "cache-substitution rewrite must certify at depth {depth}"
        );
        let res = planned.eval(&query, &graph, w.source);
        let plain = ProductEngine.eval(&query, &graph, w.source);
        assert_eq!(res.answers, plain.answers, "certified rewrite diverged");

        group.bench_with_input(
            BenchmarkId::new("certified_rewrite_planned", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    black_box(
                        planned
                            .eval(&query, &graph, black_box(w.source))
                            .answers
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("certified_rewrite_plain", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    black_box(
                        ProductEngine
                            .eval(&query, &graph, black_box(w.source))
                            .answers
                            .len(),
                    )
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
