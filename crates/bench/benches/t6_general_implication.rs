//! T6 — general path-constraint implication (Theorem 4.2: decidable in
//! 2-EXPSPACE; our engine is budgeted with certified verdicts). Expected
//! shape: the exact word route is fastest; regex-saturation proofs cost
//! more; refutation search cost is dominated by the chase budget.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::Alphabet;
use rpq_constraints::general::{check, Budget};
use rpq_constraints::{parse_constraint, ConstraintSet};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t6_general_implication");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(150));

    // X2 — exact word route (Theorem 4.3 inside the general engine)
    {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
        let claim = parse_constraint(&mut ab, "l* = l + ()").unwrap();
        group.bench_function(BenchmarkId::new("word_exact", "x2"), |b| {
            b.iter(|| black_box(check(&set, &claim, &Budget::default()).is_implied()))
        });
    }

    // X3 — regex saturation proof (cache substitution)
    {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
        let claim = parse_constraint(&mut ab, "a.(b.a)*.c = l.a.c").unwrap();
        group.bench_function(BenchmarkId::new("saturation_proof", "x3"), |b| {
            b.iter(|| black_box(check(&set, &claim, &Budget::default()).is_implied()))
        });
    }

    // X1 — refutation by counterexample search
    {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["(a+b+d+l)*.l = ()"]).unwrap();
        let claim = parse_constraint(&mut ab, "(l.a + l.b)*.d = (a+b).d").unwrap();
        group.bench_function(BenchmarkId::new("refutation", "x1"), |b| {
            b.iter(|| black_box(check(&set, &claim, &Budget::default()).is_refuted()))
        });
    }

    // saturation with growing cache bodies (proof cost growth)
    for &depth in &[1usize, 2, 3] {
        let mut ab = Alphabet::new();
        let body = "(a.b)*".to_string().to_string();
        let mut tail = String::from("c");
        for _ in 0..depth {
            tail = format!("a.{tail}");
        }
        let set = ConstraintSet::parse(&mut ab, [format!("l = {body}")]).unwrap();
        let claim = parse_constraint(&mut ab, &format!("l.{tail} = (a.b)*.{tail}")).unwrap();
        group.bench_with_input(BenchmarkId::new("proof_depth", depth), &depth, |b, _| {
            b.iter(|| black_box(check(&set, &claim, &Budget::default()).is_implied()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
