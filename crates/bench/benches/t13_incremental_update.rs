//! T13 — incremental snapshots (delta-overlay payoff). On the
//! incremental-update workload (a web-like base graph plus a small edge
//! batch), absorbing the batch through the `DeltaGraph` overlay must be
//! ≥ 5× cheaper than the full `CsrGraph::from` rebuild the seed
//! architecture paid per mutation (in practice the gap is orders of
//! magnitude — the overlay does `O(batch)` sorted-log patches, the rebuild
//! re-sorts all `O(V + E)` rows), the overlay must answer queries exactly
//! like the rebuild, and the `PlannedEngine` must report a plan-cache
//! *hit* across the delta epoch (and a miss after `compact()` installs a
//! fresh lineage). The assertions run at registration time, so `--test`
//! mode (the CI bench smoke) enforces the acceptance criteria without
//! paying measurement time; the measured series compare overlay
//! apply+revert against the full rebuild, and evaluation over the overlay
//! against evaluation over the rebuilt CSR.

use std::hint::black_box;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::incremental_workload;
use rpq_core::{eval_product_csr, ProductEngine, Query};
use rpq_graph::{CsrGraph, DeltaGraph};
use rpq_optimizer::PlannedEngine;

/// Sorted wall-clock nanoseconds of `reps` runs of `f`.
fn sample_ns(reps: usize, mut f: impl FnMut()) -> Vec<u128> {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t13_incremental_update");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));

    for &nodes in &[1024usize, 4096] {
        let w = incremental_workload(nodes, 16);
        let query = Query::new(w.query.clone(), &w.alphabet);
        let inverse = w.delta.inverse();

        // Acceptance 1: the overlay path absorbs the batch ≥ 5× cheaper
        // than the full O(V + E) rebuild (measured as a full apply+revert
        // cycle — two overlay applications — against one rebuild). The
        // overlay side is microsecond-scale, so scheduler preemption on a
        // loaded runner can only *inflate* its samples; comparing the
        // rebuild's median against the overlay's minimum keeps the gate
        // stable (the true gap is orders of magnitude, so the margin is
        // not load-bearing).
        let mut dg = DeltaGraph::from_instance(&w.instance);
        let overlay = sample_ns(25, || {
            dg.apply_delta(black_box(&w.delta));
            dg.apply_delta(black_box(&inverse));
        });
        let rebuild = sample_ns(9, || {
            black_box(CsrGraph::from(black_box(&w.instance)));
        });
        let (overlay_ns, rebuild_ns) = (overlay[0], rebuild[rebuild.len() / 2]);
        assert!(
            rebuild_ns >= 5 * overlay_ns.max(1),
            "overlay snapshot must be ≥5x cheaper than a full rebuild at \
             {nodes} nodes: overlay {overlay_ns}ns vs rebuild {rebuild_ns}ns"
        );

        // Acceptance 2: the overlay answers exactly like a rebuild of the
        // mutated graph.
        dg.apply_delta(&w.delta);
        let mut mirror = w.instance.clone();
        for &(f, l, t) in &w.delta.dels {
            mirror.remove_edge(f, l, t);
        }
        for &(f, l, t) in &w.delta.adds {
            mirror.add_edge(f, l, t);
        }
        let rebuilt = CsrGraph::from(&mirror);
        let over = eval_product_csr(query.nfa(), &dg, w.source);
        let full = eval_product_csr(query.nfa(), &rebuilt, w.source);
        assert_eq!(over.answers, full.answers, "overlay evaluation diverged");

        // Acceptance 3: the plan memo survives the delta epoch (hit) and
        // dies at compaction (fresh lineage -> miss).
        let planned = PlannedEngine::unconstrained(ProductEngine, w.alphabet.clone());
        dg.apply_delta(&inverse);
        planned.plan(&query, &dg);
        assert_eq!(planned.plan_cache_misses(), 1);
        dg.apply_delta(&w.delta);
        let res = planned.eval_view(&query, &dg, w.source);
        assert_eq!(
            (res.stats.plan_cache_hits, res.stats.plan_cache_misses),
            (1, 0),
            "PlannedEngine must report a plan-cache hit across the delta epoch"
        );
        dg.compact();
        planned.plan(&query, &dg);
        assert_eq!(
            planned.plan_cache_misses(),
            2,
            "compaction must invalidate the memoized plan"
        );

        // Measured series. The eval series runs over a live (uncompacted)
        // overlay so the merge iterators are actually on the hot path.
        let dg_eval = {
            let mut d = DeltaGraph::from_instance(&w.instance);
            d.apply_delta(&w.delta);
            d
        };
        let mut dg_bench = DeltaGraph::from_instance(&w.instance);
        group.bench_with_input(
            BenchmarkId::new("snapshot_delta_overlay", nodes),
            &nodes,
            |b, _| {
                b.iter(|| {
                    dg_bench.apply_delta(black_box(&w.delta));
                    dg_bench.apply_delta(black_box(&inverse));
                    black_box(dg_bench.num_edges())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("snapshot_full_rebuild", nodes),
            &nodes,
            |b, _| b.iter(|| black_box(CsrGraph::from(black_box(&w.instance))).num_edges()),
        );
        group.bench_with_input(
            BenchmarkId::new("eval_over_delta", nodes),
            &nodes,
            |b, _| {
                b.iter(|| {
                    black_box(
                        eval_product_csr(query.nfa(), &dg_eval, w.source)
                            .answers
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("eval_over_csr", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    eval_product_csr(query.nfa(), &rebuilt, w.source)
                        .answers
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
