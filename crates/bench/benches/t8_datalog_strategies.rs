//! T8 — the three goal-directed evaluation strategies the paper's analogy
//! connects (Section 1: "the magic-set [9] or query–subquery [31]
//! evaluation"): plain semi-naive bottom-up, top-down QSQ, and magic-sets
//! rewriting + semi-naive, on the RPQ programs of Section 2.3 and on the
//! classic bound-argument transitive-closure query.
//!
//! Expected shapes: on the source-seeded RPQ programs all three meet the
//! same fixpoint (magic degenerates gracefully; QSQ tracks the product
//! automaton); on `tc(c, X)` over a multi-component graph, magic and QSQ
//! beat full semi-naive by the pruned component — the magic-set effect.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::eval_workload;
use rpq_datalog::translate::{load_csr, load_csr_multi, translate_quotient};
use rpq_datalog::{
    eval_magic, eval_qsq, eval_seminaive, Atom, Database, MagicQuery, Program, RuleBuilder,
};
use rpq_graph::CsrGraph;
use rpq_graph::Oid;

fn tc_setup(chains: usize, len: usize) -> (Program, usize, Database) {
    let mut p = Program::default();
    let edge = p.declare("edge", 2, true);
    let tc = p.declare("tc", 2, false);
    let mut b = RuleBuilder::new();
    let (x, y) = (b.var("x"), b.var("y"));
    p.add_rule(b.rule(
        Atom {
            pred: tc,
            terms: vec![x, y],
        },
        vec![Atom {
            pred: edge,
            terms: vec![x, y],
        }],
    ));
    let mut b = RuleBuilder::new();
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    p.add_rule(b.rule(
        Atom {
            pred: tc,
            terms: vec![x, z],
        },
        vec![
            Atom {
                pred: edge,
                terms: vec![x, y],
            },
            Atom {
                pred: tc,
                terms: vec![y, z],
            },
        ],
    ));
    let mut db = Database::for_program(&p);
    for c in 0..chains as u64 {
        let base = c * 1000;
        for i in 0..len as u64 {
            db.insert(edge, vec![base + i, base + i + 1]);
        }
    }
    (p, tc, db)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t8_datalog_strategies");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(150));

    // --- RPQ programs: all strategies compute the same answers ------------
    for &nodes in &[200usize, 800] {
        let w = eval_workload(0x78 ^ 0x11, nodes);
        let (_, q) = &w.queries[3]; // the broad query (l0+l1+l2)* reaches everything
        let tq = translate_quotient(q, &w.alphabet).unwrap();
        // snapshot once: the timed loops compare Datalog *strategies*, not
        // storage construction
        let graph = CsrGraph::from(&w.instance);
        let db = load_csr(&tq, &graph, w.source);

        // consistency + series print (once per size)
        {
            let mut db1 = load_csr(&tq, &graph, w.source);
            let semi = eval_seminaive(&tq.program, &mut db1);
            let (qsq_answers, qsq_stats) = eval_qsq(&tq.program, &db, tq.answer_pred).unwrap();
            let (magic_answers, magic_stats) = eval_magic(
                &tq.program,
                &db,
                &MagicQuery {
                    pred: tq.answer_pred,
                    pattern: vec![None],
                },
            );
            let mut semi_answers: Vec<u64> =
                db1.relation(tq.answer_pred).iter().map(|t| t[0]).collect();
            semi_answers.sort();
            let mut qsq_sorted = qsq_answers.clone();
            qsq_sorted.sort();
            let magic_flat: Vec<u64> = magic_answers.iter().map(|t| t[0]).collect();
            assert_eq!(semi_answers, qsq_sorted);
            assert_eq!(semi_answers, magic_flat);
            eprintln!(
                "t8 rpq nodes={nodes}: semi-naive {} tuples / {} rounds, qsq {} subgoals, magic {} demanded",
                semi.idb_tuples, semi.rounds, qsq_stats.subgoals, magic_stats.demanded
            );
        }

        group.bench_with_input(BenchmarkId::new("rpq_seminaive", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut db = load_csr(&tq, &graph, w.source);
                black_box(eval_seminaive(&tq.program, &mut db).idb_tuples)
            })
        });
        group.bench_with_input(BenchmarkId::new("rpq_qsq", nodes), &nodes, |b, _| {
            b.iter(|| black_box(eval_qsq(&tq.program, &db, tq.answer_pred).unwrap().0.len()))
        });
        group.bench_with_input(BenchmarkId::new("rpq_magic", nodes), &nodes, |b, _| {
            b.iter(|| {
                let query = MagicQuery {
                    pred: tq.answer_pred,
                    pattern: vec![None],
                };
                black_box(eval_magic(&tq.program, &db, &query).0.len())
            })
        });
    }

    // --- multi-source seeding: one fixpoint answers the whole batch --------
    // Semi-naive with every source in the round-0 delta (the batched
    // `eval_batch` strategy) vs one fixpoint per source; the shared chain
    // rules fire once per derived tuple either way, but the loop re-derives
    // the overlap of the N reachable sets N times.
    for &nsrc in &[8usize, 32] {
        let w = eval_workload(0x78 ^ 0x22, 400);
        let (_, q) = &w.queries[1]; // l0.(l1+l2)* — source-sensitive prefix
        let tq = translate_quotient(q, &w.alphabet).unwrap();
        let graph = CsrGraph::from(&w.instance);
        let sources: Vec<Oid> = (0..nsrc as u32).map(Oid).collect();

        // consistency: multi-seeded fixpoint == union of per-source runs
        {
            let mut db = load_csr_multi(&tq, &graph, &sources);
            let multi = eval_seminaive(&tq.program, &mut db);
            let mut multi_answers: Vec<u64> =
                db.relation(tq.answer_pred).iter().map(|t| t[0]).collect();
            multi_answers.sort_unstable();
            multi_answers.dedup();
            let mut union: Vec<u64> = Vec::new();
            let mut loop_derivations = 0usize;
            for &s in &sources {
                let mut db1 = load_csr(&tq, &graph, s);
                loop_derivations += eval_seminaive(&tq.program, &mut db1).derivations;
                union.extend(db1.relation(tq.answer_pred).iter().map(|t| t[0]));
            }
            union.sort_unstable();
            union.dedup();
            assert_eq!(multi_answers, union, "multi-seed vs per-source union");
            eprintln!(
                "t8 multi-source nsrc={nsrc}: one fixpoint {} derivations vs loop {}",
                multi.derivations, loop_derivations
            );
        }

        group.bench_with_input(
            BenchmarkId::new("rpq_seminaive_loop", nsrc),
            &nsrc,
            |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for &s in &sources {
                        let mut db = load_csr(&tq, &graph, s);
                        total += eval_seminaive(&tq.program, &mut db).idb_tuples;
                    }
                    black_box(total)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rpq_seminaive_multiseed", nsrc),
            &nsrc,
            |b, _| {
                b.iter(|| {
                    let mut db = load_csr_multi(&tq, &graph, &sources);
                    black_box(eval_seminaive(&tq.program, &mut db).idb_tuples)
                })
            },
        );
    }

    // --- bound-argument TC: the magic-set pruning effect -------------------
    for &chains in &[4usize, 16] {
        let (p, tc, db) = tc_setup(chains, 30);
        let query = MagicQuery {
            pred: tc,
            pattern: vec![Some(0), None],
        };
        {
            let mut full_db = db.clone_for_bench(&p);
            let full = eval_seminaive(&p, &mut full_db);
            let (answers, magic_stats) = eval_magic(&p, &db, &query);
            assert_eq!(answers.len(), 30);
            eprintln!(
                "t8 tc chains={chains}: full fixpoint {} tuples, magic {} tuples ({}x pruning)",
                full.idb_tuples,
                magic_stats.idb_tuples,
                full.idb_tuples / magic_stats.idb_tuples.max(1)
            );
        }
        group.bench_with_input(BenchmarkId::new("tc_full", chains), &chains, |b, _| {
            b.iter(|| {
                let mut db2 = db.clone_for_bench(&p);
                black_box(eval_seminaive(&p, &mut db2).idb_tuples)
            })
        });
        group.bench_with_input(BenchmarkId::new("tc_magic", chains), &chains, |b, _| {
            b.iter(|| black_box(eval_magic(&p, &db, &query).0.len()))
        });
    }

    group.finish();
}

/// Cheap full copy of the EDB for repeated runs.
trait CloneForBench {
    fn clone_for_bench(&self, p: &Program) -> Database;
}
impl CloneForBench for Database {
    fn clone_for_bench(&self, p: &Program) -> Database {
        let mut out = Database::for_program(p);
        for (pred, decl) in p.predicates.iter().enumerate() {
            if decl.is_edb {
                for t in self.relation(pred).iter() {
                    out.insert(pred, t.clone());
                }
            }
        }
        out
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
