//! T12 — direction-aware planned evaluation (reverse-CSR payoff). On the
//! direction-skewed pair workload (plentiful first label group, one cold
//! edge into the target) the `PlannedEngine` must *choose* backward from
//! the label statistics and scan strictly — and at fanout ≥ 16, an order
//! of magnitude — fewer edges than a forced-forward pair search. The
//! assertions run at registration time, so `--test` mode (the CI bench
//! smoke) enforces the acceptance criterion without paying measurement
//! time; the measured series compare forced-forward, planned(backward),
//! and meet-in-the-middle wall clocks.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::direction_workload;
use rpq_core::ProductEngine;
use rpq_core::{eval_product_pair_csr, eval_product_pair_forward_csr, eval_to, Query};
use rpq_graph::CsrGraph;
use rpq_optimizer::{Direction, PlannedEngine};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t12_direction_choice");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));

    for &fanout in &[16usize, 64, 256] {
        let w = direction_workload(fanout);
        let query = Query::new(w.query.clone(), &w.alphabet);
        let graph = CsrGraph::from(&w.instance);
        let planned = PlannedEngine::unconstrained(ProductEngine, w.alphabet.clone());

        // Acceptance: the planner picks backward from the statistics, and
        // the planned pair search scans strictly (10x) fewer edges than a
        // forced-forward one.
        let plan = planned.plan(&query, &graph);
        assert_eq!(
            plan.direction,
            Direction::Backward,
            "planner must choose backward at fanout {fanout}: {plan:?}"
        );
        let chosen = planned.eval_pair(&query, &graph, w.source, w.target);
        let forced = eval_product_pair_forward_csr(query.nfa(), &graph, w.source, w.target);
        assert!(chosen.reachable && forced.reachable);
        assert!(
            chosen.stats.edges_scanned * 10 < forced.stats.edges_scanned,
            "planned backward must scan 10x fewer edges at fanout {fanout}: {} vs {}",
            chosen.stats.edges_scanned,
            forced.stats.edges_scanned
        );
        // the target-bound scenario rides the same reverse adjacency
        let to = eval_to(&query, &graph, w.target);
        assert_eq!(to.answers, vec![w.source]);

        group.bench_with_input(
            BenchmarkId::new("pair_forced_forward", fanout),
            &fanout,
            |b, _| {
                b.iter(|| {
                    black_box(
                        eval_product_pair_forward_csr(query.nfa(), &graph, w.source, w.target)
                            .reachable,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pair_planned_backward", fanout),
            &fanout,
            |b, _| {
                b.iter(|| {
                    black_box(
                        planned
                            .eval_pair(&query, &graph, w.source, w.target)
                            .reachable,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pair_meet_in_middle", fanout),
            &fanout,
            |b, _| {
                b.iter(|| {
                    black_box(
                        eval_product_pair_csr(query.nfa(), &graph, w.source, w.target).reachable,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("target_bound_backward", fanout),
            &fanout,
            |b, _| b.iter(|| black_box(eval_to(&query, &graph, w.target).answers.len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
