//! T4 — boundedness under word equalities (Theorem 4.10: decidable,
//! EXPTIME construction; Lemma 4.9: all structure within the K-sphere).
//! Expected shape: cost tracks the K-sphere size, which grows with the
//! alphabet and the equality system's reach — the `commute` system's sphere
//! is exponentially larger than `idempotent`'s.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::{parse_regex, Alphabet, Symbol};
use rpq_bench::boundedness_systems;
use rpq_constraints::{decide_boundedness, suggested_radius, ArmstrongSphere, ConstraintSet};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t4_boundedness");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(150));

    for (name, lines, query) in boundedness_systems() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        let p = parse_regex(&mut ab, query).unwrap();

        group.bench_with_input(BenchmarkId::new("decide", name), &name, |b, _| {
            b.iter(|| black_box(decide_boundedness(&set, &p, &ab).is_ok()))
        });

        // sphere construction alone (the dominant phase)
        let syms: Vec<Symbol> = ab.symbols().collect();
        let k = suggested_radius(&set).min(8);
        group.bench_with_input(BenchmarkId::new("sphere", name), &name, |b, _| {
            b.iter(|| {
                black_box(
                    ArmstrongSphere::build(&set, &syms, k, 500_000)
                        .map(|s| s.num_nodes())
                        .unwrap_or(0),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
