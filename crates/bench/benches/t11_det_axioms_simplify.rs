//! T11 — ablations for the Section 5 machinery built in this repo:
//!
//! * deterministic-instance implication (congruence closure) vs the general
//!   Theorem 4.3(i) procedure (prefix-rewrite saturation) on the same word
//!   systems — both PTIME, very different constants;
//! * the axiomatic prover on the paper's worked examples vs the budgeted
//!   Theorem 4.2 saturation engine — the prover's goal-directed search is
//!   the fast path the optimizer relies on;
//! * the algebraic simplifier: shallow vs deep mode on seeded random
//!   regexes, with the size-reduction series printed.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpq_automata::random::{random_regex, RegexGenConfig};
use rpq_automata::simplify::{simplify_deep, simplify_with, SimplifyConfig};
use rpq_automata::{parse_regex, Alphabet};
use rpq_bench::word_system;
use rpq_constraints::axioms::{Prover, ProverConfig};
use rpq_constraints::deterministic::det_implies_word;
use rpq_constraints::general::{check, Budget};
use rpq_constraints::implication::word_implies_word;
use rpq_constraints::{parse_constraint, ConstraintSet};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t11_det_axioms_simplify");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(700));
    group.warm_up_time(Duration::from_millis(150));

    // --- deterministic vs general word implication -------------------------
    for &rules in &[4usize, 16, 64] {
        let (ab, set) = word_system(0x7B, 3, rules, 4);
        let u: Vec<_> = ab.symbols().take(2).collect();
        let v: Vec<_> = ab.symbols().skip(1).take(2).collect();
        group.bench_with_input(BenchmarkId::new("word_general", rules), &rules, |b, _| {
            b.iter(|| black_box(word_implies_word(&set, &u, &v)))
        });
        group.bench_with_input(BenchmarkId::new("word_det", rules), &rules, |b, _| {
            b.iter(|| black_box(det_implies_word(&set, &u, &v).is_implied()))
        });
    }

    // --- rule ablation: which inference rules are load-bearing -------------
    {
        let corpus: Vec<(&[&str], &str)> = vec![
            (&["l.l <= l"], "l* <= l + ()"),
            (&["l = (a.b)*"], "a.(b.a)*.c = l.a.c"),
            (&["(l+a+b+d)*.l <= ()"], "(l.a + l.b)*.d <= (() + a + b).d"),
            (&["u <= v", "v.w <= x"], "u.w <= x"),
            (&["m = s"], "m.x.y <= s.x.y"),
        ];
        let variants: Vec<(&str, ProverConfig)> = vec![
            ("full", ProverConfig::default()),
            (
                "-star-induction",
                ProverConfig {
                    enable_star_induction: false,
                    ..ProverConfig::default()
                },
            ),
            (
                "-suffix-strip",
                ProverConfig {
                    enable_suffix_strip: false,
                    ..ProverConfig::default()
                },
            ),
            (
                "-suffix-intro",
                ProverConfig {
                    enable_suffix_intro: false,
                    ..ProverConfig::default()
                },
            ),
            (
                "-prefix-rewrite",
                ProverConfig {
                    enable_prefix_rewrite: false,
                    ..ProverConfig::default()
                },
            ),
        ];
        for (name, cfg) in &variants {
            let mut proved = 0;
            for (axioms, goal) in &corpus {
                let mut ab = Alphabet::new();
                let set = ConstraintSet::parse(&mut ab, axioms.iter().copied()).unwrap();
                let c = parse_constraint(&mut ab, goal).unwrap();
                if Prover::new(&set, cfg.clone())
                    .prove_constraint(&c)
                    .is_some()
                {
                    proved += 1;
                }
            }
            eprintln!(
                "t11 prover ablation {name}: {proved}/{} goals proved",
                corpus.len()
            );
        }
    }

    // --- axiomatic prover vs saturation engine on the worked examples ------
    let cases: Vec<(&str, Vec<&str>, &str)> = vec![
        ("x2", vec!["l.l <= l"], "l* <= l + ()"),
        ("x3", vec!["l = (a.b)*"], "a.(b.a)*.c = l.a.c"),
        ("chain", vec!["u <= v", "v.w <= x"], "u.w <= x"),
    ];
    for (name, axioms, goal) in cases {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, axioms.iter().copied()).unwrap();
        let c0 = parse_constraint(&mut ab, goal).unwrap();
        {
            let prover = Prover::new(&set, ProverConfig::default());
            assert!(prover.prove_constraint(&c0).is_some(), "{name}");
            assert!(check(&set, &c0, &Budget::default()).is_implied(), "{name}");
        }
        group.bench_function(BenchmarkId::new("axiomatic", name), |b| {
            b.iter(|| {
                let prover = Prover::new(&set, ProverConfig::default());
                black_box(prover.prove_constraint(&c0).is_some())
            })
        });
        group.bench_function(BenchmarkId::new("saturation", name), |b| {
            b.iter(|| black_box(check(&set, &c0, &Budget::default()).is_implied()))
        });
    }

    // --- simplifier ---------------------------------------------------------
    let mut ab = Alphabet::new();
    let syms = vec![ab.intern("a"), ab.intern("b"), ab.intern("c")];
    let mut cfg = RegexGenConfig::new(syms);
    cfg.max_depth = 5;
    let mut rng = StdRng::seed_from_u64(0x7B11);
    let inputs: Vec<_> = (0..64).map(|_| random_regex(&mut rng, &cfg)).collect();
    {
        let before: usize = inputs.iter().map(|r| r.size()).sum();
        let shallow: usize = inputs
            .iter()
            .map(|r| simplify_with(r, &SimplifyConfig::default()).size())
            .sum();
        let deep: usize = inputs
            .iter()
            .map(|r| simplify_deep(r, &SimplifyConfig::default()).size())
            .sum();
        eprintln!("t11 simplify: total size {before} → shallow {shallow} → deep {deep}");
    }
    group.bench_function("simplify_shallow", |b| {
        b.iter(|| {
            let total: usize = inputs
                .iter()
                .map(|r| simplify_with(r, &SimplifyConfig::default()).size())
                .sum();
            black_box(total)
        })
    });
    group.bench_function("simplify_deep", |b| {
        b.iter(|| {
            let total: usize = inputs
                .iter()
                .map(|r| simplify_deep(r, &SimplifyConfig::default()).size())
                .sum();
            black_box(total)
        })
    });

    // --- DFA minimization: Moore (O(n²σ)) vs Hopcroft (O(nσ log n)) --------
    // The subset-blowup family (a+b)*a(a+b)^k makes determinization produce
    // ~2^k states — where the asymptotic difference shows.
    for &k in &[6usize, 9, 12] {
        let mut ab = Alphabet::new();
        let src = format!("(a+b)*.a{}", ".(a+b)".repeat(k));
        let r = parse_regex(&mut ab, &src).unwrap();
        let dfa = rpq_automata::Dfa::from_nfa(&rpq_automata::Nfa::thompson(&r), 2);
        {
            let m = dfa.minimize();
            let h = dfa.minimize_hopcroft();
            assert_eq!(m.num_states(), h.num_states());
        }
        group.bench_with_input(BenchmarkId::new("minimize_moore", k), &k, |b, _| {
            b.iter(|| black_box(dfa.minimize().num_states()))
        });
        group.bench_with_input(BenchmarkId::new("minimize_hopcroft", k), &k, |b, _| {
            b.iter(|| black_box(dfa.minimize_hopcroft().num_states()))
        });
    }

    // growth classification on representative families
    let growth_inputs: Vec<_> = ["a*", "a*.b*.a*", "(a+b)*", "(a.b + b.a)*.c"]
        .iter()
        .map(|s| {
            let mut ab2 = Alphabet::new();
            parse_regex(&mut ab2, s).unwrap()
        })
        .collect();
    group.bench_function("growth_classify", |b| {
        b.iter(|| {
            for r in &growth_inputs {
                black_box(rpq_automata::growth::classify_regex(r));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
