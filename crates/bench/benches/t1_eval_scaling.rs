//! T1 — RPQ evaluation scaling (paper claims: PTIME combined complexity,
//! NLOGSPACE/NC data complexity — Section 2.2; Datalog connection —
//! Section 2.3). Expected shape: all engines scale near-linearly in graph
//! size; the product-NFA engine wins; the Datalog engines pay a constant
//! factor; semi-naive beats naive.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::Nfa;
use rpq_bench::eval_workload;
use rpq_core::{eval_derivative, eval_product, eval_quotient_dfa};
use rpq_datalog::engine::{eval_naive, eval_seminaive};
use rpq_datalog::translate::{load_instance, translate_quotient};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_eval_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));

    for &nodes in &[500usize, 2_000, 8_000] {
        let w = eval_workload(7, nodes);
        // the "broad" query (l0+l1+l2)* reaches every node, so the work
        // scales with the data — the data-complexity claim under test
        let (_, query) = &w.queries[3];
        let nfa = Nfa::thompson(query);

        group.bench_with_input(BenchmarkId::new("product_nfa", nodes), &nodes, |b, _| {
            b.iter(|| black_box(eval_product(&nfa, &w.instance, w.source).answers.len()))
        });
        let glu = rpq_automata::glushkov(query);
        group.bench_with_input(BenchmarkId::new("product_glushkov", nodes), &nodes, |b, _| {
            b.iter(|| black_box(eval_product(&glu, &w.instance, w.source).answers.len()))
        });
        group.bench_with_input(BenchmarkId::new("quotient_dfa", nodes), &nodes, |b, _| {
            b.iter(|| black_box(eval_quotient_dfa(&nfa, &w.instance, w.source).answers.len()))
        });
        group.bench_with_input(BenchmarkId::new("derivative", nodes), &nodes, |b, _| {
            b.iter(|| black_box(eval_derivative(query, &w.instance, w.source).answers.len()))
        });
        if nodes <= 2_000 {
            let tq = translate_quotient(query, &w.alphabet).unwrap();
            group.bench_with_input(BenchmarkId::new("datalog_seminaive", nodes), &nodes, |b, _| {
                b.iter(|| {
                    let mut db = load_instance(&tq, &w.instance, w.source);
                    black_box(eval_seminaive(&tq.program, &mut db).idb_tuples)
                })
            });
            if nodes <= 500 {
                group.bench_with_input(BenchmarkId::new("datalog_naive", nodes), &nodes, |b, _| {
                    b.iter(|| {
                        let mut db = load_instance(&tq, &w.instance, w.source);
                        black_box(eval_naive(&tq.program, &mut db).idb_tuples)
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
