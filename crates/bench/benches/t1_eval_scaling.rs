//! T1 — RPQ evaluation scaling (paper claims: PTIME combined complexity,
//! NLOGSPACE/NC data complexity — Section 2.2; Datalog connection —
//! Section 2.3). Expected shape: all engines scale near-linearly in graph
//! size; the product-NFA engine wins; the Datalog engines pay a constant
//! factor; semi-naive beats naive.
//!
//! Engines evaluate over a pre-built `CsrGraph` snapshot (the query-time
//! form); a `product_scan` series keeps the seed's scan-and-filter loop
//! (over the mutable `Instance`) as the baseline, and the `skew_*` series
//! isolates the label-index payoff on a label-skewed workload: one hot
//! label with high fanout, a query that follows the cold label.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::{eval_workload, multi_source_workload, skewed_workload};
use rpq_core::{
    eval_product_csr, eval_product_scan, DerivativeEngine, Engine, ProductEngine, Query,
    QuotientDfaEngine,
};
use rpq_datalog::engine::{eval_naive, eval_seminaive};
use rpq_datalog::translate::{load_csr, translate_quotient};
use rpq_distributed::PartitionedBatchEngine;
use rpq_graph::CsrGraph;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_eval_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));

    for &nodes in &[500usize, 2_000, 8_000] {
        let w = eval_workload(7, nodes);
        // the "broad" query (l0+l1+l2)* reaches every node, so the work
        // scales with the data — the data-complexity claim under test
        let (_, regex) = &w.queries[3];
        let query = Query::new(regex.clone(), &w.alphabet);
        let graph = CsrGraph::from(&w.instance);

        group.bench_with_input(BenchmarkId::new("product_nfa", nodes), &nodes, |b, _| {
            b.iter(|| black_box(ProductEngine.eval(&query, &graph, w.source).answers.len()))
        });
        let glu = rpq_automata::glushkov(regex);
        group.bench_with_input(
            BenchmarkId::new("product_glushkov", nodes),
            &nodes,
            |b, _| b.iter(|| black_box(eval_product_csr(&glu, &graph, w.source).answers.len())),
        );
        group.bench_with_input(BenchmarkId::new("product_scan", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    eval_product_scan(query.nfa(), &w.instance, w.source)
                        .answers
                        .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("quotient_dfa", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    QuotientDfaEngine
                        .eval(&query, &graph, w.source)
                        .answers
                        .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("derivative", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    DerivativeEngine
                        .eval(&query, &graph, w.source)
                        .answers
                        .len(),
                )
            })
        });
        if nodes <= 2_000 {
            // translation hoisted out of the timed loop (it is query
            // compilation, not evaluation); the EDB load stays inside
            // because the fixpoint consumes the database destructively
            let tq = translate_quotient(regex, &w.alphabet).unwrap();
            group.bench_with_input(
                BenchmarkId::new("datalog_seminaive", nodes),
                &nodes,
                |b, _| {
                    b.iter(|| {
                        let mut db = load_csr(&tq, &graph, w.source);
                        black_box(eval_seminaive(&tq.program, &mut db).idb_tuples)
                    })
                },
            );
            if nodes <= 500 {
                group.bench_with_input(BenchmarkId::new("datalog_naive", nodes), &nodes, |b, _| {
                    b.iter(|| {
                        let mut db = load_csr(&tq, &graph, w.source);
                        black_box(eval_naive(&tq.program, &mut db).idb_tuples)
                    })
                });
            }
        }
    }

    // Label-skew series: scan-and-filter pays the hot fanout at every spine
    // step; the label index touches only the cold edges it follows. The
    // asserted edges_scanned gap makes the speedup's cause visible.
    for &fanout in &[16usize, 64, 256] {
        let w = skewed_workload(64, fanout);
        let query = Query::new(w.query.clone(), &w.alphabet);
        let graph = CsrGraph::from(&w.instance);
        let indexed = ProductEngine.eval(&query, &graph, w.source);
        let scanned = eval_product_scan(query.nfa(), &w.instance, w.source);
        assert_eq!(indexed.answers, scanned.answers);
        assert!(
            indexed.stats.edges_scanned < scanned.stats.edges_scanned,
            "label index must scan fewer edges on skew"
        );
        group.bench_with_input(
            BenchmarkId::new("skew_scan_filter", fanout),
            &fanout,
            |b, _| {
                b.iter(|| {
                    black_box(
                        eval_product_scan(query.nfa(), &w.instance, w.source)
                            .answers
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("skew_label_indexed", fanout),
            &fanout,
            |b, _| b.iter(|| black_box(ProductEngine.eval(&query, &graph, w.source).answers.len())),
        );
    }

    // Multi-source series: N sources funnel into one shared spine
    // (skew graph with `hot_fanout` noise edges per node). The per-source
    // loop re-walks the spine once per source; the bit-parallel batch
    // engine rides all source lanes over each CSR row in one pass. The
    // asserted edges_scanned gap is the acceptance criterion: at N ≥ 16
    // the batch engine must scan strictly fewer total edges than N×
    // single-source product BFS.
    for &nsrc in &[16usize, 64] {
        let w = multi_source_workload(64, 32, nsrc);
        let query = Query::new(w.query.clone(), &w.alphabet);
        let graph = CsrGraph::from(&w.instance);

        let batch = ProductEngine.eval_batch(&query, &graph, &w.sources);
        let mut loop_edges = 0usize;
        for (i, &s) in w.sources.iter().enumerate() {
            let single = ProductEngine.eval(&query, &graph, s);
            loop_edges += single.stats.edges_scanned;
            assert_eq!(
                batch.per_source().unwrap()[i],
                single.answers,
                "batch/per-source disagreement at source {i}"
            );
        }
        assert!(
            batch.stats.edges_scanned < loop_edges,
            "bit-parallel batch must scan strictly fewer edges than the \
             per-source loop at N={nsrc}: batch {} vs loop {}",
            batch.stats.edges_scanned,
            loop_edges
        );

        group.bench_with_input(
            BenchmarkId::new("multi_per_source_loop", nsrc),
            &nsrc,
            |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for &s in &w.sources {
                        total += ProductEngine.eval(&query, &graph, s).answers.len();
                    }
                    black_box(total)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("multi_batch_bitparallel", nsrc),
            &nsrc,
            |b, _| {
                b.iter(|| {
                    black_box(
                        ProductEngine
                            .eval_batch(&query, &graph, &w.sources)
                            .stats
                            .answers,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("multi_batch_partitioned", nsrc),
            &nsrc,
            |b, _| {
                let engine = PartitionedBatchEngine::new(4);
                b.iter(|| black_box(engine.eval_batch(&query, &graph, &w.sources).stats.answers))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
