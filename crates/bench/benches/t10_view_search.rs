//! T10 — the Section 5 view-rewriting search: cost of the bounded
//! Boolean-combination search (universal quotients, subset enumeration,
//! verification) as the number of caches and the query size grow.
//!
//! Expected shape: exponential in the number of caches (2^k subsets —
//! exactly the paper's "exhaustive search of Boolean combination"), mild
//! in query size while the DFA budgets hold; the axiomatic-prover fast
//! path keeps verification out of the saturation engine for the common
//! cache shapes.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::{parse_regex, Alphabet, Regex};
use rpq_constraints::ConstraintSet;
use rpq_optimizer::{rewrite_with_views, ViewSearchConfig};

/// `k` caches `li = (ai.bi)*` and the union query of their tails.
fn view_workload(k: usize) -> (Alphabet, ConstraintSet, Regex) {
    let mut ab = Alphabet::new();
    let mut lines = Vec::new();
    let mut arms = Vec::new();
    for i in 0..k {
        lines.push(format!("l{i} = (a{i}.b{i})*"));
        arms.push(format!("a{i}.(b{i}.a{i})*.x{i}"));
    }
    let set = ConstraintSet::parse(&mut ab, lines.iter().map(String::as_str)).unwrap();
    let q = parse_regex(&mut ab, &arms.join(" + ")).unwrap();
    (ab, set, q)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t10_view_search");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(150));

    for &k in &[1usize, 2, 3, 4] {
        let (ab, set, q) = view_workload(k);
        // sanity + series print (once per size)
        {
            let rs = rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default());
            let total = rs
                .iter()
                .filter(|r| r.kind == rpq_optimizer::ViewKind::Total)
                .count();
            eprintln!(
                "t10 caches={k}: {} rewritings ({} total covers), best = {}",
                rs.len(),
                total,
                rs.first()
                    .map(|r| format!("{}", r.query.display(&ab)))
                    .unwrap_or_else(|| "-".into())
            );
            assert!(!rs.is_empty());
        }
        group.bench_with_input(BenchmarkId::new("caches", k), &k, |b, _| {
            b.iter(|| {
                black_box(rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default()).len())
            })
        });
    }

    // Query-size sweep at a fixed cache count.
    for &reps in &[1usize, 2, 4] {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
        let tail: Vec<String> = (0..reps).map(|i| format!("c{i}")).collect();
        let q = parse_regex(&mut ab, &format!("a.(b.a)*.{}", tail.join("."))).unwrap();
        group.bench_with_input(BenchmarkId::new("tail_len", reps), &reps, |b, _| {
            b.iter(|| {
                black_box(rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default()).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
