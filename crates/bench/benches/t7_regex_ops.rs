//! T7 — the regular-expression decision substrate (equivalence is
//! PSPACE-complete; the paper leans on this for Theorem 4.3(ii)'s lower
//! bound). Ablation of the three equivalence algorithms. Expected shape:
//! naive full determinization blows up on the (a+b)*a(a+b)^k family
//! (2^k DFA states); antichain and Hopcroft–Karp stay tame.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::ops::{equivalent, equivalent_hopcroft_karp, included_naive};
use rpq_automata::{parse_regex, Alphabet, Nfa};

fn exp_family(ab: &mut Alphabet, k: usize) -> (Nfa, Nfa) {
    // (a+b)*.a.(a+b)^k vs (a+b)*.a.(a+b)^k.(a+b)? — close but different
    let mut suffix = String::new();
    for _ in 0..k {
        suffix.push_str(".(a+b)");
    }
    let p = parse_regex(ab, &format!("(a+b)*.a{suffix}")).unwrap();
    let q = parse_regex(ab, &format!("(a+b)*.a{suffix}.(a+b) + (a+b)*.a{suffix}")).unwrap();
    (Nfa::thompson(&p), Nfa::thompson(&q))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t7_regex_ops");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(150));

    for &k in &[4usize, 8, 12] {
        let mut ab = Alphabet::new();
        let (np, nq) = exp_family(&mut ab, k);
        let sigma = ab.len();

        group.bench_with_input(BenchmarkId::new("antichain", k), &k, |b, _| {
            b.iter(|| black_box(equivalent(&np, &nq).is_ok()))
        });
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", k), &k, |b, _| {
            b.iter(|| black_box(equivalent_hopcroft_karp(&np, &nq, sigma).is_ok()))
        });
        if k <= 8 {
            group.bench_with_input(BenchmarkId::new("naive_product", k), &k, |b, _| {
                b.iter(|| {
                    black_box(
                        included_naive(&np, &nq, sigma).is_ok()
                            && included_naive(&nq, &np, sigma).is_ok(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
