//! T16 — the concurrent serving layer: epoch-pinned snapshot isolation,
//! admission control, and fetch budgets under a mixed read/write
//! workload. Three claims, asserted at registration time so `--test`
//! mode (the CI bench smoke) enforces the acceptance criteria without
//! paying measurement time:
//!
//! * **Admission cap is enforced** — with `max_concurrent = 2`, a third
//!   outstanding submission is rejected synchronously with the observed
//!   occupancy, the rejection is counted, and joining a handle frees its
//!   slot so the next submission is admitted again.
//! * **Budgets terminate runaways soundly** — a query submitted under the
//!   server's default fetch budget returns
//!   [`rpq_core::Termination::BudgetExhausted`] with
//!   `edges_scanned <= budget`, and an explicit per-request budget
//!   overrides the default.
//! * **Pinned readers never observe a compaction** — a session pinned
//!   before writer churn that trips the compaction policy keeps its
//!   epoch, its base lineage, and its bit-identical answers, while the
//!   freshly pinned snapshot has moved to a new lineage.
//!
//! Measured series: end-to-end throughput of `readers` concurrent
//! sessions submitting through the shared planner while the writer
//! commits delta batches between submissions; per-class p50/p99 latency
//! aggregated by the server's [`rpq_server::Metrics`] is printed after
//! the run.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::incremental_workload;
use rpq_core::{EvalRequest, Query, Termination};
use rpq_graph::CompactionPolicy;
use rpq_server::{Catalog, QueryClass, Server, ServerConfig, SubmitError};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t16_serving");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));

    // Acceptance 1: the admission cap rejects the third outstanding
    // handle and a join frees its slot deterministically (slots are held
    // until the handle is joined or dropped, not until the worker ends).
    {
        let w = incremental_workload(512, 16);
        let catalog = Arc::new(Catalog::from_instance(&w.instance));
        let server = Server::new(catalog, w.alphabet.clone()).with_config(ServerConfig {
            max_concurrent: 2,
            default_budget: None,
            ..ServerConfig::default()
        });
        let query = Query::new(w.query.clone(), &w.alphabet);
        let session = server.session();
        let h1 = session
            .submit(&query, EvalRequest::source(w.source))
            .expect("first slot");
        let h2 = session
            .submit(&query, EvalRequest::source(w.source))
            .expect("second slot");
        match session.submit(&query, EvalRequest::source(w.source)) {
            Err(SubmitError::Rejected { active, cap }) => {
                assert_eq!((active, cap), (2, 2), "rejection must report occupancy");
            }
            other => panic!("expected rejection at the cap, got {other:?}"),
        }
        assert_eq!(server.metrics().rejected(), 1);
        let complete = h1.join();
        assert_eq!(complete.termination, Termination::Complete);
        let h3 = session
            .submit(&query, EvalRequest::source(w.source))
            .expect("join must free the slot");
        let _ = h3.join();
        let _ = h2.join();
        assert_eq!(server.active_queries(), 0, "all slots released");
    }

    // Acceptance 2: the default fetch budget terminates a broad query
    // early with `edges_scanned <= budget`, and an explicit request
    // budget overrides the default.
    {
        let w = incremental_workload(1024, 16);
        let catalog = Arc::new(Catalog::from_instance(&w.instance));
        let server = Server::new(catalog, w.alphabet.clone()).with_config(ServerConfig {
            max_concurrent: 8,
            default_budget: Some(8),
            ..ServerConfig::default()
        });
        // Through the text front end: parse → analyze → plan → eval. The
        // broad closure reaches most of the web graph, so it cannot
        // complete within the default budget.
        let query = server.parse("(l0+l1+l2)*").expect("broad query parses");
        let session = server.session();
        let resp = session
            .submit(&query, EvalRequest::source(w.source))
            .expect("under cap")
            .join();
        assert_eq!(
            resp.termination,
            Termination::BudgetExhausted,
            "the default budget must cut the broad query short"
        );
        assert!(
            resp.stats.edges_scanned <= 8,
            "scanned {} > default budget 8",
            resp.stats.edges_scanned
        );
        let resp = session
            .submit(
                &query,
                EvalRequest::source(w.source).with_budget(50_000_000),
            )
            .expect("under cap")
            .join();
        assert_eq!(
            resp.termination,
            Termination::Complete,
            "an explicit budget must override the default"
        );
    }

    // Acceptance 3: a reader pinned before policy-triggered compactions
    // keeps its epoch, lineage, and answers.
    {
        let w = incremental_workload(512, 16);
        let catalog = Arc::new(
            Catalog::from_instance(&w.instance).with_policy(CompactionPolicy {
                min_log_len: 2,
                max_log_ratio: 0.01,
                ..CompactionPolicy::default()
            }),
        );
        let server = Server::new(catalog.clone(), w.alphabet.clone());
        let query = Query::new(w.query.clone(), &w.alphabet);
        let pinned = server.session();
        let epoch0 = pinned.epoch();
        let before = pinned
            .run(&query, &EvalRequest::source(w.source))
            .into_eval_result()
            .answers;
        let inverse = w.delta.inverse();
        for _ in 0..8 {
            catalog.commit(&w.delta);
            catalog.commit(&inverse);
        }
        assert!(
            catalog.compactions() >= 1,
            "the aggressive policy must compact under this churn"
        );
        assert_eq!(pinned.epoch(), epoch0, "pinned epoch never moves");
        let after = pinned
            .run(&query, &EvalRequest::source(w.source))
            .into_eval_result()
            .answers;
        assert_eq!(before, after, "pinned answers must be bit-identical");
        assert!(
            !server
                .session()
                .snapshot()
                .shares_base_with(pinned.snapshot()),
            "a fresh pin must be on the post-compaction lineage"
        );
    }

    // Measured: mixed read/write throughput — `readers` sessions submit
    // through the shared planner while the writer commits delta batches
    // in between. One iteration = readers submissions + 2 commits + all
    // joins.
    for &readers in &[4usize, 8] {
        let w = incremental_workload(1024, 16);
        let catalog = Arc::new(Catalog::from_instance(&w.instance));
        let server = Arc::new(Server::new(catalog.clone(), w.alphabet.clone()));
        let query = Query::new(w.query.clone(), &w.alphabet);
        let inverse = w.delta.inverse();

        group.bench_with_input(
            BenchmarkId::new("mixed_read_write", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    let handles: Vec<_> = (0..readers)
                        .map(|_| {
                            server
                                .session()
                                .submit(&query, EvalRequest::source(w.source))
                                .expect("under cap")
                        })
                        .collect();
                    catalog.commit(&w.delta);
                    catalog.commit(&inverse);
                    let mut answers = 0usize;
                    for h in handles {
                        answers += h.join().into_eval_result().answers.len();
                    }
                    black_box(answers)
                })
            },
        );

        let snap = server.metrics().class(QueryClass::Single);
        assert!(snap.queries > 0, "the measured series must record metrics");
        assert!(
            snap.p50_latency_ns <= snap.p99_latency_ns,
            "percentiles must be ordered"
        );
        println!(
            "t16 mixed_read_write/{readers}: {} queries, p50 {} ns, p99 {} ns, \
             {} edges scanned",
            snap.queries, snap.p50_latency_ns, snap.p99_latency_ns, snap.edges_scanned
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
