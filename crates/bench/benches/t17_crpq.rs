//! T17 — conjunctive RPQs: the cost-based join planner and semijoin
//! propagation against static orders and the naive independent-atom
//! evaluator. Three claims, asserted at registration time so `--test`
//! mode (the CI bench smoke) enforces the acceptance criteria without
//! paying measurement time:
//!
//! * **The cost-based order wins** — on the hot/rare skew workload the
//!   planner picks the rare bottleneck atom first and runs the hot atom
//!   backward from its bindings; the planned order scans *strictly*
//!   fewer edges than the worst static order (which evaluates the hot
//!   fan-out unbound), with identical binding sets.
//! * **Semijoin propagation beats independent evaluation** — the
//!   executor's bound-side atom evaluation scans fewer total edges than
//!   [`rpq_optimizer::execute_naive`] (every atom both-sides-free, then
//!   hash-joined), again with identical bindings.
//! * **The text front end serves CRPQs end-to-end** — `ans(x, z) :- …`
//!   submitted through [`rpq_server::Session::submit_text`] comes back
//!   under [`rpq_server::QueryClass::Conjunctive`] with per-atom
//!   telemetry and the exact binding set.
//!
//! Measured series: planned-order vs worst-static-order `execute_join`
//! wall time over growing hot fan-outs; the per-atom edge split is
//! printed after each size.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::crpq_workload;
use rpq_core::{EvalControl, EvalScratch, FrontierMode, Termination};
use rpq_graph::CsrGraph;
use rpq_optimizer::{
    execute_join, execute_naive, parse_crpq, plan_join, Direction, HeadBindings, PlannerConfig,
};
use rpq_server::{Catalog, QueryClass, Server};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t17_crpq");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));

    // Acceptance 1: the planner orders the rare atom first, binds the hot
    // atom backward, and the planned order scans strictly fewer edges
    // than the worst static order — same bindings.
    {
        let w = crpq_workload(64, 16);
        let mut ab = w.alphabet.clone();
        let crpq = parse_crpq(&mut ab, w.text).expect("workload text parses");
        let graph = CsrGraph::from(&w.instance);
        let plan = plan_join(
            &crpq,
            graph.stats(),
            &PlannerConfig::default(),
            false,
            false,
        );
        assert_eq!(plan.order, vec![1, 0], "rare bottleneck atom must go first");
        assert_eq!(
            plan.directions[1],
            Direction::Backward,
            "the hot atom must run backward from the bound join variable"
        );

        let run = |order: &[usize]| {
            let mut scratch = EvalScratch::new();
            execute_join(
                &crpq,
                order,
                &graph,
                HeadBindings::default(),
                FrontierMode::Hybrid,
                &EvalControl::UNLIMITED,
                &mut scratch,
            )
        };
        let planned = run(&plan.order);
        assert_eq!(planned.termination, Termination::Complete);
        assert_eq!(
            planned.pairs.len(),
            w.answers,
            "every source reaches the sink"
        );
        let worst = [vec![0, 1], vec![1, 0]]
            .into_iter()
            .map(|o| run(&o))
            .max_by_key(|r| r.stats.edges_scanned)
            .unwrap();
        assert_eq!(worst.pairs, planned.pairs, "order never changes semantics");
        assert!(
            planned.stats.edges_scanned * 2 < worst.stats.edges_scanned,
            "planned order scanned {} edges, worst static order {} — the \
             cost-based plan must win decisively on the skew workload",
            planned.stats.edges_scanned,
            worst.stats.edges_scanned
        );
    }

    // Acceptance 2: semijoin propagation (bound-side evaluation in plan
    // order) scans fewer edges than evaluating every atom independently
    // and joining after the fact.
    {
        let w = crpq_workload(64, 16);
        let mut ab = w.alphabet.clone();
        let crpq = parse_crpq(&mut ab, w.text).expect("workload text parses");
        let graph = CsrGraph::from(&w.instance);
        let plan = plan_join(
            &crpq,
            graph.stats(),
            &PlannerConfig::default(),
            false,
            false,
        );
        let mut scratch = EvalScratch::new();
        let semi = execute_join(
            &crpq,
            &plan.order,
            &graph,
            HeadBindings::default(),
            FrontierMode::Hybrid,
            &EvalControl::UNLIMITED,
            &mut scratch,
        );
        let (naive_pairs, naive_edges) = execute_naive(&crpq, &graph, HeadBindings::default());
        assert_eq!(semi.pairs, naive_pairs, "semijoin never changes semantics");
        assert!(
            semi.stats.edges_scanned < naive_edges,
            "semijoin scanned {} edges, naive independent evaluation {}",
            semi.stats.edges_scanned,
            naive_edges
        );
    }

    // Acceptance 3: the text front end serves the CRPQ end-to-end under
    // the Conjunctive class with per-atom telemetry.
    {
        let w = crpq_workload(16, 8);
        let catalog = Arc::new(Catalog::from_instance(&w.instance));
        let server = Server::new(catalog, w.alphabet.clone());
        let session = server.session();
        let handle = session
            .submit_text(
                w.text,
                rpq_core::SourceSpec::Conjunctive {
                    sources: None,
                    targets: None,
                },
            )
            .expect("under cap");
        assert_eq!(handle.class(), QueryClass::Conjunctive);
        let resp = handle.join();
        assert_eq!(resp.termination, Termination::Complete);
        assert_eq!(resp.bindings().expect("binding answers").len(), w.answers);
        assert_eq!(
            resp.stats.atoms.len(),
            2,
            "per-atom telemetry must cover both atoms"
        );
        let snap = server.metrics().class(QueryClass::Conjunctive);
        assert_eq!(snap.queries, 1);
        assert_eq!(snap.atoms_evaluated, 2);
    }

    // Measured: planned vs worst static order over growing hot fan-outs.
    for &n_src in &[64usize, 256] {
        let w = crpq_workload(n_src, 16);
        let mut ab = w.alphabet.clone();
        let crpq = parse_crpq(&mut ab, w.text).expect("workload text parses");
        let graph = CsrGraph::from(&w.instance);
        let plan = plan_join(
            &crpq,
            graph.stats(),
            &PlannerConfig::default(),
            false,
            false,
        );
        let worst_order = vec![0usize, 1];

        for (name, order) in [("planned", &plan.order), ("worst_static", &worst_order)] {
            group.bench_with_input(BenchmarkId::new(name, n_src), order, |b, order| {
                let mut scratch = EvalScratch::new();
                b.iter(|| {
                    let res = execute_join(
                        &crpq,
                        order,
                        &graph,
                        HeadBindings::default(),
                        FrontierMode::Hybrid,
                        &EvalControl::UNLIMITED,
                        &mut scratch,
                    );
                    black_box(res.pairs.len())
                })
            });
        }

        let mut scratch = EvalScratch::new();
        let res = execute_join(
            &crpq,
            &plan.order,
            &graph,
            HeadBindings::default(),
            FrontierMode::Hybrid,
            &EvalControl::UNLIMITED,
            &mut scratch,
        );
        let split: Vec<String> = res
            .stats
            .atoms
            .iter()
            .map(|a| {
                format!(
                    "atom {} → {} edges, {} bindings",
                    a.atom, a.edges_scanned, a.bindings
                )
            })
            .collect();
        println!(
            "t17 n_src={n_src}: planned {} edges total ({}), hot fan {} edges",
            res.stats.edges_scanned,
            split.join("; "),
            w.hot_edges
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
