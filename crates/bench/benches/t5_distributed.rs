//! T5 — distributed evaluation and the Section 3.2 payoff: message counts
//! with and without constraint-based subquery rewriting on cached sites.
//! Expected shape: both runs produce identical answers; the optimized run
//! sends a near-constant number of messages per answer while the plain run
//! pays for the whole backbone + trap exploration (the message-count series
//! is printed once per size on stderr).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::distributed_workload;
use rpq_constraints::general::Budget;
use rpq_distributed::{Delivery, Simulator};
use rpq_optimizer::RewriteCache;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_distributed");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(150));

    for &depth in &[10usize, 40, 120] {
        let w = distributed_workload(depth);

        // print the message-count series once (the paper-shaped result)
        {
            let plain =
                Simulator::new(&w.instance, &w.alphabet, Delivery::Fifo).run(w.source, &w.query);
            let cache = RewriteCache::new(&w.constraints, &w.alphabet, Budget::default());
            let src = w.source.0;
            let optimized = Simulator::new(&w.instance, &w.alphabet, Delivery::Fifo)
                .with_rewrite(move |site, q| {
                    if site == src {
                        cache.rewrite(q)
                    } else {
                        q.clone()
                    }
                })
                .run(w.source, &w.query);
            assert_eq!(plain.answers, optimized.answers);
            eprintln!(
                "t5 depth={depth}: plain {} msgs / {} B   optimized {} msgs / {} B",
                plain.stats.total(),
                plain.stats.bytes,
                optimized.stats.total(),
                optimized.stats.bytes
            );
        }

        group.bench_with_input(BenchmarkId::new("plain", depth), &depth, |b, _| {
            b.iter(|| {
                let mut sim = Simulator::new(&w.instance, &w.alphabet, Delivery::Fifo);
                black_box(sim.run(w.source, &w.query).stats.total())
            })
        });
        group.bench_with_input(BenchmarkId::new("optimized", depth), &depth, |b, _| {
            b.iter(|| {
                let cache = RewriteCache::new(&w.constraints, &w.alphabet, Budget::default());
                let src = w.source.0;
                let mut sim = Simulator::new(&w.instance, &w.alphabet, Delivery::Fifo)
                    .with_rewrite(move |site, q| {
                        if site == src {
                            cache.rewrite(q)
                        } else {
                            q.clone()
                        }
                    });
                black_box(sim.run(w.source, &w.query).stats.total())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
