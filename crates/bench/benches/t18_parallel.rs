//! T18 — intra-query parallelism: the frontier-parallel hybrid product
//! BFS and the wave-parallel batch kernel against their sequential
//! siblings. Four claims, asserted at registration time so `--test` mode
//! (the CI bench smoke) enforces the acceptance criteria without paying
//! measurement time:
//!
//! * **Parallelism never changes answers** — at every DoP and every
//!   frontier mode the parallel kernels return bit-for-bit the sequential
//!   answer sets, with identical `edges_scanned` (set-identical levels
//!   price identically, so the work counters are deterministic too).
//! * **DoP = 1 is the PR 7 hot path** — the parallel entry at `dop = 1`
//!   delegates to the unchanged sequential kernel: identical answers,
//!   identical work counters, and min-of-N wall clock within noise of the
//!   direct sequential call (a generous 2× bound on an identical code
//!   path; the real gap is one function call).
//! * **Four workers win at least 2×** — on a multi-wave batch workload
//!   the wave-parallel kernel at `dop = 4` beats `dop = 1` by ≥ 2× on
//!   min-of-N wall clock, with identical per-source answers. Gated on
//!   `std::thread::available_parallelism() >= 4` so single-core smoke
//!   runners skip the timing claim (the agreement claims still run).
//! * **Hybrid stays ≤ sparse under parallelism** — the parallel hybrid
//!   run never scans more edges than the parallel forced-sparse run; the
//!   exact shrinking pull-bound accounting (summed per-worker debits)
//!   preserves the PR 7 pricing under partitioned sweeps.

use std::hint::black_box;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::Nfa;
use rpq_bench::eval_workload;
use rpq_core::{
    eval_product_batch_csr_with, eval_product_batch_parallel_csr_with, eval_product_csr_with,
    eval_product_parallel_csr_with, EvalControl, EvalScratch, FrontierMode, ScratchPool,
};
use rpq_graph::{CsrGraph, Oid};

/// Minimum wall clock of `n` runs of `f` (the robust statistic for a
/// speedup gate: load spikes only ever inflate samples).
fn min_time_of(n: usize, mut f: impl FnMut()) -> Duration {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("n >= 1")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t18_parallel");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool = ScratchPool::with_capacity(8);

    // Acceptance 1 + 4: agreement across DoP and mode, hybrid <= sparse
    // under parallelism. The web workload's broad closure saturates the
    // graph, so levels are large enough to cross PAR_LEVEL_THRESHOLD and
    // genuinely fan out.
    let w = eval_workload(13, 8_000);
    let graph = CsrGraph::from(&w.instance);
    let broad = Nfa::thompson(&w.queries[3].1); // `(l0+l1+l2)*`
    {
        let mut scratch = EvalScratch::new();
        for (name, q) in &w.queries {
            let nfa = Nfa::thompson(q);
            for mode in [
                FrontierMode::ForcedSparse,
                FrontierMode::ForcedDense,
                FrontierMode::Hybrid,
            ] {
                let seq = eval_product_csr_with(&nfa, &graph, w.source, mode, &mut scratch);
                for dop in [1usize, 2, 4] {
                    let (par, _) = eval_product_parallel_csr_with(
                        &nfa,
                        &graph,
                        w.source,
                        None,
                        mode,
                        &EvalControl::UNLIMITED,
                        dop,
                        &pool,
                        &mut scratch,
                    );
                    assert_eq!(
                        par.answers, seq.answers,
                        "{name} diverged ({mode:?} dop={dop})"
                    );
                    assert_eq!(
                        par.stats.edges_scanned, seq.stats.edges_scanned,
                        "{name} priced differently ({mode:?} dop={dop})"
                    );
                }
            }
        }
        // hybrid <= sparse with the level sweeps actually partitioned
        let (sparse, _) = eval_product_parallel_csr_with(
            &broad,
            &graph,
            w.source,
            None,
            FrontierMode::ForcedSparse,
            &EvalControl::UNLIMITED,
            4,
            &pool,
            &mut scratch,
        );
        let (hybrid, _) = eval_product_parallel_csr_with(
            &broad,
            &graph,
            w.source,
            None,
            FrontierMode::Hybrid,
            &EvalControl::UNLIMITED,
            4,
            &pool,
            &mut scratch,
        );
        assert_eq!(
            sparse.answers, hybrid.answers,
            "hybrid diverged under parallelism"
        );
        assert!(
            hybrid.stats.edges_scanned <= sparse.stats.edges_scanned,
            "parallel hybrid {} > parallel sparse {}",
            hybrid.stats.edges_scanned,
            sparse.stats.edges_scanned
        );
    }

    // Acceptance 2: DoP = 1 is the sequential hot path. Counters are
    // asserted exactly; wall clock gets a generous identical-code-path
    // noise bound on the min of nine runs.
    {
        let mut scratch = EvalScratch::new();
        let seq_time = min_time_of(9, || {
            black_box(
                eval_product_csr_with(&broad, &graph, w.source, FrontierMode::Hybrid, &mut scratch)
                    .answers
                    .len(),
            );
        });
        let mut scratch2 = EvalScratch::new();
        let dop1_time = min_time_of(9, || {
            black_box(
                eval_product_parallel_csr_with(
                    &broad,
                    &graph,
                    w.source,
                    None,
                    FrontierMode::Hybrid,
                    &EvalControl::UNLIMITED,
                    1,
                    &pool,
                    &mut scratch2,
                )
                .0
                .answers
                .len(),
            );
        });
        assert!(
            dop1_time <= seq_time * 2 + Duration::from_micros(200),
            "dop=1 ({dop1_time:?}) not within noise of the sequential hot path ({seq_time:?})"
        );
    }

    // Acceptance 3: >= 2x speedup at 4 workers on the wave-parallel batch
    // kernel, identical answers. Only meaningful with >= 4 cores; the CI
    // bench runners have them, single-core smoke boxes skip the timing.
    {
        let sources: Vec<Oid> = (0..graph.num_nodes() as u32).step_by(16).map(Oid).collect();
        assert!(sources.len() >= 256, "need multiple 64-lane waves");
        let mut scratch = EvalScratch::new();
        let seq = eval_product_batch_csr_with(&broad, &graph, &sources, &mut scratch);
        let par =
            eval_product_batch_parallel_csr_with(&broad, &graph, &sources, 4, &pool, &mut scratch);
        assert_eq!(
            par.per_source(),
            seq.per_source(),
            "wave fan-out changed the batch answers"
        );
        if cores >= 4 {
            let dop1 = min_time_of(5, || {
                black_box(
                    eval_product_batch_parallel_csr_with(
                        &broad,
                        &graph,
                        &sources,
                        1,
                        &pool,
                        &mut scratch,
                    )
                    .stats
                    .answers,
                );
            });
            let dop4 = min_time_of(5, || {
                black_box(
                    eval_product_batch_parallel_csr_with(
                        &broad,
                        &graph,
                        &sources,
                        4,
                        &pool,
                        &mut scratch,
                    )
                    .stats
                    .answers,
                );
            });
            let speedup = dop1.as_secs_f64() / dop4.as_secs_f64().max(f64::MIN_POSITIVE);
            assert!(
                speedup >= 2.0,
                "4 workers must win >= 2x on the wave batch (dop1 {dop1:?} / dop4 {dop4:?} = {speedup:.2}x)"
            );
        } else {
            eprintln!("t18: {cores} core(s) available, skipping the 4-worker speedup gate");
        }

        // Measured series: the batch kernel by DoP (capped at the machine).
        for &dop in &[1usize, 2, 4] {
            if dop > 1 && dop > cores {
                continue;
            }
            group.bench_with_input(BenchmarkId::new("batch_waves", dop), &dop, |b, &dop| {
                let mut scratch = EvalScratch::new();
                b.iter(|| {
                    black_box(
                        eval_product_batch_parallel_csr_with(
                            &broad,
                            &graph,
                            black_box(&sources),
                            dop,
                            &pool,
                            &mut scratch,
                        )
                        .stats
                        .answers,
                    )
                })
            });
        }
    }

    // Measured series: the frontier-parallel single-source kernel by DoP.
    for &dop in &[1usize, 2, 4] {
        if dop > 1 && dop > cores {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("product_frontier", dop),
            &dop,
            |b, &dop| {
                let mut scratch = EvalScratch::new();
                b.iter(|| {
                    black_box(
                        eval_product_parallel_csr_with(
                            &broad,
                            &graph,
                            black_box(w.source),
                            None,
                            FrontierMode::Hybrid,
                            &EvalControl::UNLIMITED,
                            dop,
                            &pool,
                            &mut scratch,
                        )
                        .0
                        .answers
                        .len(),
                    )
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
