//! T15 — the serving hot path: direction-optimizing hybrid product BFS and
//! zero-allocation scratch reuse. Three claims, asserted at registration
//! time so `--test` mode (the CI bench smoke) enforces the acceptance
//! criteria without paying measurement time:
//!
//! * **Hybrid never loses, and wins on high fanout** — on every workload
//!   the hybrid BFS scans no more edges than the forced-sparse baseline,
//!   and on the complete-digraph pull workload it runs at least one pull
//!   level and scans *strictly* fewer edges (the sparse sweep re-scans all
//!   `hubs²` edges at the saturated level to discover nothing).
//! * **Warm scratch allocates nothing** — a second evaluation through a
//!   [`ScratchPool`] reports `scratch_reused > 0` (its tables already
//!   cover `|Q|·|V|`) and returns identical answers; the measured series
//!   compare the warm pooled path against a cold arena per evaluation.
//! * **Multi-target lanes beat the loop** — on the funnel workload the
//!   bit-parallel [`rpq_core::eval_product_to_batch_csr`] kernel scans
//!   strictly fewer edges than N independent backward BFS runs, with
//!   identical per-target answers.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::Nfa;
use rpq_bench::{eval_workload, multi_target_workload, pull_workload, skewed_workload};
use rpq_core::{
    eval_product_backward_reversed_csr, eval_product_csr_with, eval_product_to_batch_csr,
    EvalScratch, FrontierMode, ScratchPool,
};
use rpq_graph::CsrGraph;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t15_hot_path");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));

    // Acceptance 1a: hybrid scans no more edges than forced-sparse on
    // every workload shape (web-like, label-skewed, saturating).
    {
        let w = eval_workload(7, 400);
        let graph = CsrGraph::from(&w.instance);
        let mut scratch = EvalScratch::new();
        for (name, q) in &w.queries {
            let nfa = Nfa::thompson(q);
            let sparse = eval_product_csr_with(
                &nfa,
                &graph,
                w.source,
                FrontierMode::ForcedSparse,
                &mut scratch,
            );
            let hybrid =
                eval_product_csr_with(&nfa, &graph, w.source, FrontierMode::Hybrid, &mut scratch);
            assert_eq!(sparse.answers, hybrid.answers, "{name} diverged");
            assert!(
                hybrid.stats.edges_scanned <= sparse.stats.edges_scanned,
                "{name}: hybrid {} > sparse {}",
                hybrid.stats.edges_scanned,
                sparse.stats.edges_scanned
            );
        }
        let w = skewed_workload(128, 32);
        let graph = CsrGraph::from(&w.instance);
        let nfa = Nfa::thompson(&w.query);
        let sparse = eval_product_csr_with(
            &nfa,
            &graph,
            w.source,
            FrontierMode::ForcedSparse,
            &mut scratch,
        );
        let hybrid =
            eval_product_csr_with(&nfa, &graph, w.source, FrontierMode::Hybrid, &mut scratch);
        assert_eq!(sparse.answers, hybrid.answers, "skewed diverged");
        assert!(hybrid.stats.edges_scanned <= sparse.stats.edges_scanned);
    }

    // Acceptance 1b: on the high-fanout pull series the hybrid runs pull
    // levels and scans strictly fewer edges. Measured: hybrid vs sparse.
    for &hubs in &[48usize, 96] {
        let w = pull_workload(hubs);
        let graph = CsrGraph::from(&w.instance);
        let nfa = Nfa::thompson(&w.query);
        let mut scratch = EvalScratch::new();
        let sparse = eval_product_csr_with(
            &nfa,
            &graph,
            w.source,
            FrontierMode::ForcedSparse,
            &mut scratch,
        );
        let hybrid =
            eval_product_csr_with(&nfa, &graph, w.source, FrontierMode::Hybrid, &mut scratch);
        assert_eq!(sparse.answers, hybrid.answers, "pull workload diverged");
        assert!(
            hybrid.stats.pull_levels >= 1,
            "hybrid never pulled at {hubs} hubs"
        );
        assert!(
            hybrid.stats.edges_scanned < sparse.stats.edges_scanned,
            "hybrid {} must strictly beat sparse {} at {hubs} hubs",
            hybrid.stats.edges_scanned,
            sparse.stats.edges_scanned
        );

        group.bench_with_input(BenchmarkId::new("pull_hybrid", hubs), &hubs, |b, _| {
            let mut scratch = EvalScratch::new();
            b.iter(|| {
                black_box(
                    eval_product_csr_with(
                        &nfa,
                        &graph,
                        black_box(w.source),
                        FrontierMode::Hybrid,
                        &mut scratch,
                    )
                    .answers
                    .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("pull_sparse", hubs), &hubs, |b, _| {
            let mut scratch = EvalScratch::new();
            b.iter(|| {
                black_box(
                    eval_product_csr_with(
                        &nfa,
                        &graph,
                        black_box(w.source),
                        FrontierMode::ForcedSparse,
                        &mut scratch,
                    )
                    .answers
                    .len(),
                )
            })
        });
    }

    // Acceptance 2: warm pooled evaluation reports scratch reuse with
    // identical answers. Measured: warm pooled arena vs cold allocation.
    for &nodes in &[200usize, 800] {
        let w = eval_workload(11, nodes);
        let graph = CsrGraph::from(&w.instance);
        let nfa = Nfa::thompson(&w.queries[3].1); // `broad`, traverses everything
        let pool = ScratchPool::new();
        let cold = {
            let mut scratch = pool.checkout();
            eval_product_csr_with(&nfa, &graph, w.source, FrontierMode::Hybrid, &mut scratch)
        };
        let warm = {
            let mut scratch = pool.checkout();
            eval_product_csr_with(&nfa, &graph, w.source, FrontierMode::Hybrid, &mut scratch)
        };
        assert_eq!(cold.answers, warm.answers, "warm scratch diverged");
        assert!(
            warm.stats.scratch_reused > 0,
            "warm evaluation did not reuse the pooled arena at {nodes} nodes"
        );
        assert_eq!(pool.allocs(), 1, "pool allocated twice at {nodes} nodes");
        assert!(pool.reuses() >= 1);

        group.bench_with_input(BenchmarkId::new("warm_scratch", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut scratch = pool.checkout();
                black_box(
                    eval_product_csr_with(
                        &nfa,
                        &graph,
                        black_box(w.source),
                        FrontierMode::Hybrid,
                        &mut scratch,
                    )
                    .answers
                    .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("cold_alloc", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut scratch = EvalScratch::new();
                black_box(
                    eval_product_csr_with(
                        &nfa,
                        &graph,
                        black_box(w.source),
                        FrontierMode::Hybrid,
                        &mut scratch,
                    )
                    .answers
                    .len(),
                )
            })
        });
    }

    // Acceptance 3: multi-target lanes scan strictly fewer edges than the
    // per-target backward loop, answers identical. Measured: both paths.
    for &targets_n in &[16usize, 64] {
        let w = multi_target_workload(64, 16, targets_n);
        let graph = CsrGraph::from(&w.instance);
        let reversed = Nfa::thompson(&w.query).reverse();
        let batch = eval_product_to_batch_csr(&reversed, &graph, &w.targets);
        let per_target = batch.per_source().expect("lane kernel partitions");
        let mut loop_edges = 0usize;
        for (i, &t) in w.targets.iter().enumerate() {
            let single = eval_product_backward_reversed_csr(&reversed, &graph, t);
            loop_edges += single.stats.edges_scanned;
            assert_eq!(per_target[i], single.answers, "target {i} diverged");
        }
        assert!(
            batch.stats.edges_scanned < loop_edges,
            "lanes {} must strictly beat the loop {} at {targets_n} targets",
            batch.stats.edges_scanned,
            loop_edges
        );

        group.bench_with_input(
            BenchmarkId::new("lanes_to_batch", targets_n),
            &targets_n,
            |b, _| {
                b.iter(|| {
                    black_box(
                        eval_product_to_batch_csr(&reversed, &graph, black_box(&w.targets))
                            .union()
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("looped_eval_to", targets_n),
            &targets_n,
            |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for &t in &w.targets {
                        total +=
                            eval_product_backward_reversed_csr(&reversed, &graph, black_box(t))
                                .answers
                                .len();
                    }
                    black_box(total)
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
