//! T9 — distributed protocol comparison: the Section 3.1 agent protocol,
//! the Section 5 knowledge-carrying variant, and the ship-query-once
//! decomposition baseline of the related work ([30]).
//!
//! Expected shapes: agent messages grow with the *reached* subgraph;
//! carrying sends strictly fewer messages on cyclic graphs (paying in
//! bytes); decomposition sends exactly `2·#sites` messages regardless of
//! reach but pays table-computation work for unreached regions. All three
//! produce identical answers (asserted every run).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpq_automata::{parse_regex, Alphabet, Symbol};
use rpq_distributed::{
    run_and_check, run_carrying, run_decomposition_checked, Delivery, Partition, Simulator,
};
use rpq_graph::generators::web_graph;
use rpq_graph::{Instance, Oid};

struct Workload {
    alphabet: Alphabet,
    instance: Instance,
    source: Oid,
    query: rpq_automata::Regex,
}

fn workload(nodes: usize) -> Workload {
    let mut alphabet = Alphabet::new();
    let labels: Vec<Symbol> = (0..2).map(|i| alphabet.intern(&format!("l{i}"))).collect();
    let mut rng = StdRng::seed_from_u64(0x79);
    let (instance, source) = web_graph(&mut rng, nodes, 3, &labels);
    let query = parse_regex(&mut alphabet, "l0.(l0+l1)*").unwrap();
    Workload {
        alphabet,
        instance,
        source,
        query,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t9_protocol_comparison");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(150));

    for &nodes in &[30usize, 120, 480] {
        let w = workload(nodes);
        let part = Partition::blocks(&w.instance, 8);

        // answers agree + series print (once per size)
        {
            let agent = run_and_check(&w.instance, &w.alphabet, w.source, &w.query, Delivery::Fifo);
            let carrying = run_carrying(&w.instance, &w.alphabet, w.source, &w.query);
            let dec =
                run_decomposition_checked(&w.instance, &w.alphabet, &part, w.source, &w.query);
            assert_eq!(agent.answers, carrying.answers);
            assert_eq!(agent.answers, dec.answers);
            eprintln!(
                "t9 nodes={nodes}: agent {} msgs/{} B | carrying {} msgs/{} B (skip {}) | decomposition {} msgs/{} B ({} entries)",
                agent.stats.total(),
                agent.stats.bytes,
                carrying.stats.total(),
                carrying.stats.bytes,
                carrying.skipped_spawns,
                dec.messages,
                dec.bytes,
                dec.table_entries
            );
        }

        group.bench_with_input(BenchmarkId::new("agent", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut sim = Simulator::new(&w.instance, &w.alphabet, Delivery::Fifo);
                black_box(sim.run(w.source, &w.query).stats.total())
            })
        });
        group.bench_with_input(BenchmarkId::new("carrying", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    run_carrying(&w.instance, &w.alphabet, w.source, &w.query)
                        .stats
                        .total(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("decomposition", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    rpq_distributed::run_decomposition(
                        &w.instance,
                        &w.alphabet,
                        &part,
                        w.source,
                        &w.query,
                    )
                    .messages,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
