//! Regenerate every figure and worked example of the paper as text output.
//!
//! ```sh
//! cargo run -p rpq-bench --bin paper-figures            # everything
//! cargo run -p rpq-bench --bin paper-figures f3 x2      # a selection
//! ```
//!
//! Ids: f1 (Example 2.1 / Figure 1 μ-translation), f2f3 (Figures 2–3
//! distributed run), f4 (Lemma 4.4 instance), f5 (Armstrong K-sphere),
//! x1 x2 x3 (the Section 3.2 optimization examples), s5a (Section 5
//! axiomatization: derivation trees), s5d (Section 5 deterministic
//! special case: the separation witness).

use rpq_automata::{parse_regex, Alphabet, Nfa, Symbol};
use rpq_constraints::general::{check, Budget, Refutation, Verdict};
use rpq_constraints::{
    decide_boundedness, lemma44_instance, parse_constraint, suggested_radius, ArmstrongSphere,
    Boundedness, ConstraintSet,
};
use rpq_core::eval_product;
use rpq_core::general::{translate, GeneralPathQuery};
use rpq_distributed::{render_trace, Delivery, Simulator};
use rpq_graph::generators::fig2_graph;
use rpq_graph::InstanceBuilder;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    if want("f1") {
        fig1();
    }
    if want("f2f3") || want("f2") || want("f3") {
        fig2_fig3();
    }
    if want("f4") {
        fig4();
    }
    if want("f5") {
        fig5();
    }
    if want("x1") {
        example1();
    }
    if want("x2") {
        example2();
    }
    if want("x3") {
        example3();
    }
    if want("s5a") {
        section5_axioms();
    }
    if want("s5d") {
        section5_deterministic();
    }
}

fn section5_axioms() {
    use rpq_constraints::axioms::{Prover, ProverConfig};
    header("S5a — Section 5 future work: a sound axiomatization, with derivations");
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
    let prover = Prover::new(&set, ProverConfig::default());
    let p = parse_regex(&mut ab, "l*").unwrap();
    let q = parse_regex(&mut ab, "l + ()").unwrap();
    let d = prover.prove_inclusion(&p, &q).expect("X2 proof");
    println!("{{l·l ⊆ l}} ⊢ l* ⊆ l + ε   (Example 2, proved axiomatically):\n");
    print!("{}", d.render(&ab));
    assert!(d.verify(&prover));
    println!(
        "\nderivation: {} nodes, depth {}; replayed by Derivation::verify",
        d.num_nodes(),
        d.depth()
    );
}

fn section5_deterministic() {
    use rpq_constraints::deterministic::det_implies_word;
    use rpq_constraints::implication::word_implies_word;
    header("S5d — Section 5: instances with ≤1 outgoing edge per label");
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["a <= c", "a.x <= c"]).unwrap();
    let u = rpq_automata::parse_word(&mut ab, "a.x").unwrap();
    let v = rpq_automata::parse_word(&mut ab, "a").unwrap();
    println!("E = {{a ⊆ c, a·x ⊆ c}}, conclusion a·x ⊆ a:");
    println!(
        "  over all instances (Theorem 4.3):   {}",
        word_implies_word(&set, &u, &v)
    );
    println!(
        "  over deterministic instances:        {}",
        det_implies_word(&set, &u, &v).is_implied()
    );
    println!(
        "\nDeterminism contracts words sharing a singleton target — the paper's\n\
         conjecture that this case 'may simplify some of the problems' confirmed:\n\
         the deterministic decision is congruence closure, in PTIME."
    );
}

fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

fn fig1() {
    header("F1 — Example 2.1 / Figure 1: general path queries and the μ translation");
    let mut ab = Alphabet::new();
    let mut b = InstanceBuilder::new(&mut ab);
    for (i, l) in ["b", "aab", "baa", "c", "dd", "zzz"].iter().enumerate() {
        b.edge("o", l, &format!("t{i}"));
    }
    b.edge("t0", "baa", "u0");
    b.edge("t1", "c", "u1");
    b.edge("t4", "dd", "u2");
    let (inst, names) = b.finish();
    let q =
        GeneralPathQuery::parse(r#"("a*b" "ba*") + ("a*b" "c") + ("ba*" "c") + "dd*" ("dd*")*"#)
            .unwrap();
    println!("q = (\"a*b\" \"ba*\") + (\"a*b\" \"c\") + (\"ba*\" \"c\") + (\"dd*\")+");
    let mu = translate(&q, &inst, &ab);
    println!("\nlabel equivalence classes (paper: [b], [ab], [ba], [c], [d], [h]):");
    for (c, sig) in mu.class_signature.iter().enumerate() {
        println!(
            "  class {c}: representative {:?}, satisfies patterns {:?}",
            mu.class_repr[c], sig
        );
    }
    println!("\nμ(q) = {}", mu.mu_query.display(&mu.class_alphabet));
    let answers = rpq_core::general::eval_general(&q, &inst, names["o"], &ab);
    println!(
        "q(o, I) = μ(q)(o, μ(I)) = {:?}   (Proposition 2.2)",
        answers
            .iter()
            .map(|&x| inst.node_name(x))
            .collect::<Vec<_>>()
    );
}

fn fig2_fig3() {
    header("F2/F3 — Figures 2–3: distributed evaluation of ab* with termination detection");
    let mut ab = Alphabet::new();
    let (inst, _d, o1) = fig2_graph(&mut ab);
    println!("graph I: o1 -a→ o2, o2 -b→ o3, o3 -b→ o2; client d asks ab* at o1\n");
    let q = parse_regex(&mut ab, "a.b*").unwrap();
    let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo);
    let client = sim.client;
    let res = sim.run(o1, &q);
    print!("{}", render_trace(&res.trace, &ab, &inst, client));
    println!(
        "\nanswers: {:?}   termination detected: {}",
        res.answers
            .iter()
            .map(|&o| inst.node_name(o))
            .collect::<Vec<_>>(),
        res.termination_detected
    );
    println!(
        "messages: {} subquery, {} answer, {} done, {} akn ({} bytes total)",
        res.stats.subqueries, res.stats.answers, res.stats.dones, res.stats.acks, res.stats.bytes
    );
    println!(
        "note o2's duplicate b* subquery (from o3) answered done immediately — the paper's dedup"
    );
}

fn fig4() {
    header("F4 — Figure 4: the Lemma 4.4 instance for E = {a² ⊆ a}, k = 3");
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["a.a <= a"]).unwrap();
    let a = ab.get("a").unwrap();
    let ci = lemma44_instance(&set, &[a], 3, &ab).unwrap();
    println!(
        "classes (vertices): {:?}",
        ci.class_reps
            .iter()
            .map(|r| ab.render_word(r))
            .collect::<Vec<_>>()
    );
    for (c, obj) in ci.obj.iter().enumerate() {
        println!(
            "  obj({}) = {:?}",
            ab.render_word(&ci.class_reps[c]),
            obj.iter()
                .map(|&o| ci.instance.node_name(o))
                .collect::<Vec<_>>()
        );
    }
    println!("\nedges (all labeled a):");
    for (x, _l, y) in ci.instance.edges() {
        println!(
            "  {} → {}",
            ci.instance.node_name(x),
            ci.instance.node_name(y)
        );
    }
    println!(
        "\nanswer sets (paper: ε→{{o_ε}}, a→{{o_a,o_a²,o_a³}}, a²→{{o_a²,o_a³}}, a³→{{o_a³}}):"
    );
    for len in 0..=3usize {
        let ans = eval_product(&Nfa::from_word(&vec![a; len]), &ci.instance, ci.source).answers;
        println!(
            "  a^{len}(o, I) = {:?}",
            ans.iter()
                .map(|&o| ci.instance.node_name(o))
                .collect::<Vec<_>>()
        );
    }
}

fn fig5() {
    header("F5 — Figure 5: the Armstrong instance and its K-sphere (Lemma 4.9)");
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["a.b.a = b", "b.b = a.a"]).unwrap();
    let syms: Vec<Symbol> = ab.symbols().collect();
    let k = suggested_radius(&set);
    let radius = 9;
    let sphere = ArmstrongSphere::build(&set, &syms, radius, 200_000).unwrap();
    println!(
        "E = {{aba = b, bb = aa}};  M = {}, suggested K = {k}",
        set.max_word_len()
    );
    println!(
        "sphere of radius {radius}: {} congruence classes",
        sphere.num_nodes()
    );
    let m = set.max_word_len();
    println!(
        "Lemma 4.9 checks: indegree-1 violations outside the M-sphere: {};  re-entry edges past K: {}",
        sphere.indegree_violations(m).len(),
        sphere
            .reentry_violations(k.min(radius.saturating_sub(1)))
            .len()
    );
    println!("\nclasses near the source:");
    for n in 0..sphere.num_nodes().min(10) {
        let succ: Vec<String> = sphere.edges[n]
            .iter()
            .map(|&(s, m)| format!("-{}→ {}", ab.name(s), ab.render_word(&sphere.reps[m])))
            .collect();
        println!(
            "  [{}] depth {}: {}",
            ab.render_word(&sphere.reps[n]),
            sphere.depth[n],
            succ.join("  ")
        );
    }
}

fn example1() {
    header("X1 — Section 3.2 Example 1: Σ*·l = ε and p = (la+lb)*d");
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["(a+b+d+l)*.l = ()"]).unwrap();
    let literal = parse_constraint(&mut ab, "(l.a + l.b)*.d = (a+b).d").unwrap();
    println!("paper claim: p ≡ (a+b)d.  Checking literally…");
    match check(&set, &literal, &Budget::default()) {
        Verdict::Refuted(Refutation::Instance(w)) => {
            println!(
                "REFUTED: the k=0 word `d` breaks it. Witness instance ({} nodes):",
                w.instance.num_nodes()
            );
            for (x, l, y) in w.instance.edges() {
                println!(
                    "  {} -{}→ {}",
                    w.instance.node_name(x),
                    ab.name(l),
                    w.instance.node_name(y)
                );
            }
        }
        other => println!("unexpected: {other:?}"),
    }
    let incl = ConstraintSet::parse(&mut ab, ["(a+b+d+l)*.l <= ()"]).unwrap();
    let sound = parse_constraint(&mut ab, "(l.a + l.b)*.d <= (() + a + b).d").unwrap();
    match check(&incl, &sound, &Budget::default()) {
        Verdict::Implied { method } => println!(
            "\nsound form PROVED ({method}): under Σ*·l ⊆ ε, (la+lb)*d ⊆ (ε+a+b)d — \
             the nonrecursive upper envelope the example is after"
        ),
        other => println!("unexpected: {other:?}"),
    }
}

fn example2() {
    header("X2 — Section 3.2 Example 2: {ll ⊆ l} ⊨ l* = l + ε");
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
    let claim = parse_constraint(&mut ab, "l* = l + ()").unwrap();
    match check(&set, &claim, &Budget::default()) {
        Verdict::Implied { method } => println!("PROVED ({method}): l* collapses to l + ε"),
        other => println!("unexpected: {other:?}"),
    }
    // and Theorem 4.10 discovers the equivalent automatically
    let eq = ConstraintSet::parse(&mut ab, ["l.l = l"]).unwrap();
    let p = parse_regex(&mut ab, "l*").unwrap();
    if let Ok(Boundedness::Bounded { equivalent, .. }) = decide_boundedness(&eq, &p, &ab) {
        println!(
            "Theorem 4.10 (with the equality version): l* ≡ {}   — certified nonrecursive",
            equivalent.display(&ab)
        );
    }
}

fn example3() {
    header("X3 — Section 3.2 Example 3: cached (ab)* labeled l; a(ba)*c = l·a·c");
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
    let claim = parse_constraint(&mut ab, "a.(b.a)*.c = l.a.c").unwrap();
    match check(&set, &claim, &Budget::default()) {
        Verdict::Implied { method } => println!("PROVED ({method})"),
        other => println!("unexpected: {other:?}"),
    }
    let q = parse_regex(&mut ab, "a.(b.a)*.c").unwrap();
    let opt = rpq_optimizer::optimize(&set, &q, &ab, &Budget::default());
    println!(
        "optimizer: {} → {}   (rule {:?}; recursion removed: {})",
        q.display(&ab),
        opt.query.display(&ab),
        opt.applied,
        !opt.after.recursive
    );
}
